//! Integration tests for the distributed breakout on structured
//! scenarios: wave alternation, weight escalation, and both weight
//! modes.

use discsp_core::{Assignment, DistributedCsp, Domain, Nogood, Termination, Value};
use discsp_dba::{DbaSolver, WeightMode};

fn v(i: u16) -> Value {
    Value::new(i)
}

fn cycle_graph(n: usize, colors: u16) -> DistributedCsp {
    let mut b = DistributedCsp::builder();
    let vars: Vec<_> = (0..n).map(|_| b.variable(Domain::new(colors))).collect();
    for i in 0..n {
        b.not_equal(vars[i], vars[(i + 1) % n]).unwrap();
    }
    b.build().unwrap()
}

#[test]
fn solves_even_cycle_with_two_colors() {
    let problem = cycle_graph(8, 2);
    let init = Assignment::total(vec![v(0); 8]);
    let run = DbaSolver::new().solve_sync(&problem, &init).unwrap();
    assert_eq!(run.outcome.metrics.termination, Termination::Solved);
    assert!(problem.is_solution(&run.outcome.solution.unwrap()));
}

#[test]
fn odd_cycle_with_two_colors_cuts_off() {
    // Odd cycles are not 2-colorable; DB must hit the limit without
    // claiming anything.
    let problem = cycle_graph(7, 2);
    let init = Assignment::total(vec![v(0); 7]);
    let run = DbaSolver::new()
        .cycle_limit(500)
        .solve_sync(&problem, &init)
        .unwrap();
    assert_eq!(run.outcome.metrics.termination, Termination::CutOff);
    assert_eq!(run.outcome.metrics.cycles, 500);
}

#[test]
fn odd_cycle_with_three_colors_solves() {
    let problem = cycle_graph(9, 3);
    let init = Assignment::total(vec![v(0); 9]);
    for mode in [WeightMode::PerNogood, WeightMode::PerPair] {
        let run = DbaSolver::new()
            .weight_mode(mode)
            .solve_sync(&problem, &init)
            .unwrap();
        assert_eq!(
            run.outcome.metrics.termination,
            Termination::Solved,
            "{mode:?}"
        );
    }
}

#[test]
fn cycles_alternate_ok_and_improve_waves() {
    // Every move round costs two cycles (ok? + improve), so solved runs
    // from a conflicted start take an even number of cycles plus the
    // final detection cycle parity; weaker but robust: cycles ≥ 2 and
    // messages per cycle ≈ constant (every agent sends every wave).
    let problem = cycle_graph(6, 3);
    let init = Assignment::total(vec![v(0); 6]);
    let run = DbaSolver::new()
        .record_history(true)
        .solve_sync(&problem, &init)
        .unwrap();
    assert!(run.outcome.metrics.cycles >= 2);
    // Each cycle after the first, every agent sends to its 2 neighbors.
    for record in &run.history[1..run.history.len().saturating_sub(1)] {
        assert_eq!(record.messages, 12, "cycle {}", record.cycle);
    }
}

#[test]
fn breakout_escapes_quasi_local_minimum() {
    // A frustrated square: x0-x1-x2-x3 ring, 2 colors, plus one unary
    // nogood pinning x0 away from the coloring greedy would pick — the
    // initial state is a quasi-local-minimum for naive hill-climbing.
    let mut b = DistributedCsp::builder();
    let vars: Vec<_> = (0..4).map(|_| b.variable(Domain::new(2))).collect();
    for i in 0..4 {
        b.not_equal(vars[i], vars[(i + 1) % 4]).unwrap();
    }
    b.nogood(Nogood::of([(vars[0], v(0))])).unwrap();
    let problem = b.build().unwrap();
    // Start at the "wrong" proper coloring (x0 = 0 violates the unary
    // pin but the ring is satisfied: no single flip helps).
    let init = Assignment::total([v(0), v(1), v(0), v(1)]);
    let run = DbaSolver::new()
        .cycle_limit(2_000)
        .solve_sync(&problem, &init)
        .unwrap();
    assert_eq!(run.outcome.metrics.termination, Termination::Solved);
    let solution = run.outcome.solution.unwrap();
    assert_eq!(solution.get(discsp_core::VariableId::new(0)), Some(v(1)));
}

#[test]
fn db_metrics_are_wave_shaped() {
    let problem = cycle_graph(10, 3);
    let init = Assignment::total(vec![v(0); 10]);
    let run = DbaSolver::new().solve_sync(&problem, &init).unwrap();
    let m = &run.outcome.metrics;
    // DB never learns nogoods.
    assert_eq!(m.nogoods_generated, 0);
    assert_eq!(m.nogood_messages, 0);
    // Improve messages flow every other cycle: roughly half the traffic.
    assert!(m.other_messages > 0);
    assert!(m.ok_messages > 0);
}

#[test]
fn message_delay_preserves_correctness() {
    let problem = cycle_graph(8, 3);
    let init = Assignment::total(vec![v(0); 8]);
    let run = DbaSolver::new()
        .message_delay(3, 5)
        .solve_sync(&problem, &init)
        .unwrap();
    assert_eq!(run.outcome.metrics.termination, Termination::Solved);
    assert!(problem.is_solution(&run.outcome.solution.unwrap()));
}

#[test]
fn weight_modes_differ_only_in_grouping() {
    // On a problem where every nogood has a distinct foreign set, the
    // two modes must behave identically.
    let problem = cycle_graph(6, 2);
    let init = Assignment::total([v(0), v(1), v(0), v(1), v(0), v(1)]);
    let a = DbaSolver::new()
        .weight_mode(WeightMode::PerNogood)
        .solve_sync(&problem, &init)
        .unwrap();
    let b = DbaSolver::new()
        .weight_mode(WeightMode::PerPair)
        .solve_sync(&problem, &init)
        .unwrap();
    // Already solved at start: both detect in one cycle.
    assert_eq!(a.outcome.metrics.cycles, b.outcome.metrics.cycles);
    assert_eq!(a.outcome.metrics.cycles, 1);
}
