//! The distributed breakout algorithm (DB) — Yokoo & Hirayama,
//! ICMAS'96 — as evaluated against AWC + nogood learning in §4.3 of
//! Hirayama & Yokoo (ICDCS 2000).
//!
//! DB is concurrent hill-climbing with mutual exclusion of neighboring
//! moves and the *breakout* strategy (Morris, AAAI'93) for escaping
//! quasi-local-minima: every constraint nogood carries a weight
//! (footnote 7 of the paper), an agent's cost is the weighted sum of its
//! violated nogoods, and an agent stuck at a positive cost that nobody in
//! its neighborhood can improve raises the weights of its violated
//! nogoods by one.
//!
//! # Examples
//!
//! ```
//! use discsp_dba::DbaSolver;
//! use discsp_core::{Assignment, DistributedCsp, Domain, Value};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = DistributedCsp::builder();
//! let x = b.variable(Domain::new(3));
//! let y = b.variable(Domain::new(3));
//! b.not_equal(x, y)?;
//! let problem = b.build()?;
//!
//! let init = Assignment::total([Value::new(0), Value::new(0)]);
//! let run = DbaSolver::new().solve_sync(&problem, &init)?;
//! assert!(run.outcome.metrics.termination.is_solved());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod agent;
mod msg;
mod solver;

pub use agent::{DbaAgent, WeightMode};
pub use msg::DbaMessage;
pub use solver::{DbaError, DbaSolver};
