//! The distributed breakout agent state machine (§4.3 of the paper).

use std::collections::{BTreeMap, BTreeSet};

use discsp_core::{
    AgentId, Domain, IncrementalEval, Nogood, NogoodIdx, NogoodStore, Value, VarValue, VariableId,
};
use discsp_runtime::{AgentStats, DistributedAgent, Envelope, Outbox};
use serde::{Deserialize, Serialize};

use crate::msg::DbaMessage;

/// Where constraint weights live.
///
/// The paper's footnote 7: the original DB assigned a weight "to a pair of
/// variables" for graph coloring, while this paper "assigns it to a
/// nogood" and found the latter better. Both modes are provided so the
/// claim can be ablated.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum WeightMode {
    /// One weight per nogood (the paper's choice).
    #[default]
    PerNogood,
    /// One weight per foreign-variable group: all nogoods sharing the
    /// same set of non-own variables share a weight (the ICMAS'96
    /// variable-pair scheme generalized to n-ary nogoods).
    PerPair,
}

/// Wave-alternation phase of a DB agent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    WaitOk,
    WaitImprove,
}

/// One distributed breakout agent owning a single variable.
///
/// DB alternates two synchronized waves: an `ok?` wave announcing values,
/// then an `improve` wave arbitrating which agent in each neighborhood
/// may move (ties break toward the smaller agent id). An agent whose cost
/// is positive while nobody nearby can improve is at a *quasi-local-
/// minimum* and escapes by the breakout strategy: incrementing the weight
/// of each currently violated nogood.
#[derive(Debug)]
pub struct DbaAgent {
    id: AgentId,
    var: VariableId,
    domain: Domain,
    value: Value,
    store: NogoodStore,
    /// Incremental violation cache over `store` × `view`. Synced once per
    /// wave (the view only changes at wave boundaries); never meters
    /// checks itself — [`DbaAgent::eval_value`] charges the naive cost.
    eval: IncrementalEval,
    /// Weight of nogood `i` is `weights[weight_group[i]]`.
    weights: Vec<u64>,
    weight_group: Vec<usize>,
    neighbor_vars: BTreeSet<VariableId>,
    neighbor_agents: BTreeSet<AgentId>,
    view: BTreeMap<VariableId, Value>,
    phase: Phase,
    ok_pending: BTreeMap<VariableId, Value>,
    improve_pending: BTreeMap<AgentId, u64>,
    /// Computed during the `ok?` wave for use in the `improve` wave.
    planned_value: Value,
    my_improve: u64,
    my_eval: u64,
    violated_now: Vec<usize>,
    stats: AgentStats,
}

impl DbaAgent {
    /// Creates an agent for `var` with its relevant nogoods and
    /// neighborhood, all weights starting at 1.
    ///
    /// # Panics
    ///
    /// Panics if `initial_value` is outside `domain`.
    pub fn new(
        id: AgentId,
        var: VariableId,
        domain: Domain,
        initial_value: Value,
        nogoods: Vec<Nogood>,
        neighbors: Vec<(VariableId, AgentId)>,
        mode: WeightMode,
    ) -> Self {
        assert!(
            domain.contains(initial_value),
            "initial value {initial_value} outside domain {domain}"
        );
        let store = NogoodStore::with_nogoods(nogoods);
        let (weights, weight_group) = match mode {
            WeightMode::PerNogood => {
                let groups: Vec<usize> = store.indices().collect();
                (vec![1; store.len()], groups)
            }
            WeightMode::PerPair => {
                let mut group_of: BTreeMap<Vec<VariableId>, usize> = BTreeMap::new();
                let mut groups = Vec::with_capacity(store.len());
                for ng in store.iter() {
                    let key: Vec<VariableId> = ng.vars().filter(|&v| v != var).collect();
                    let next = group_of.len();
                    let g = *group_of.entry(key).or_insert(next);
                    groups.push(g);
                }
                (vec![1; group_of.len()], groups)
            }
        };
        DbaAgent {
            id,
            var,
            domain,
            value: initial_value,
            store,
            eval: IncrementalEval::new(var),
            weights,
            weight_group,
            neighbor_vars: neighbors.iter().map(|&(v, _)| v).collect(),
            neighbor_agents: neighbors.iter().map(|&(_, a)| a).collect(),
            view: BTreeMap::new(),
            phase: Phase::WaitOk,
            ok_pending: BTreeMap::new(),
            improve_pending: BTreeMap::new(),
            planned_value: initial_value,
            my_improve: 0,
            my_eval: 0,
            violated_now: Vec::new(),
            stats: AgentStats::default(),
        }
    }

    /// The variable this agent owns.
    pub fn var(&self) -> VariableId {
        self.var
    }

    /// The variable's current value.
    pub fn value(&self) -> Value {
        self.value
    }

    /// The current weight of the nogood at store index `index`.
    pub fn weight_of(&self, index: usize) -> Option<u64> {
        self.weight_group.get(index).map(|&g| self.weights[g])
    }

    /// Re-syncs the incremental cache with the current view. Must run
    /// after every view mutation and before any [`DbaAgent::eval_value`];
    /// work is proportional to the view size plus the nogoods touching
    /// actually-changed variables.
    fn sync_eval(&mut self) {
        self.eval
            .refresh(&self.store, self.view.iter().map(|(&k, &v)| (k, v)));
    }

    /// Metered weighted cost of taking `value` under the current view,
    /// together with the violated store indices.
    ///
    /// Answers from the [`IncrementalEval`] cache but charges one check
    /// per stored nogood — exactly the cost of the naive full scan this
    /// replaces, keeping `maxcck` bit-identical (pinned by the golden
    /// metric tests).
    fn eval_value(&self, value: Value) -> (u64, Vec<NogoodIdx>) {
        self.store.charge_checks(self.store.len() as u64);
        let mut cost = 0u64;
        let mut violated = Vec::new();
        for i in self.store.indices() {
            if self.eval.is_violated(i, value) {
                cost += self.weights[self.weight_group[i]];
                violated.push(i);
            }
        }
        (cost, violated)
    }

    fn send_ok(&self, out: &mut Outbox<DbaMessage>) {
        for &peer in &self.neighbor_agents {
            out.send(
                peer,
                DbaMessage::Ok {
                    var: self.var,
                    value: self.value,
                },
            );
        }
    }

    /// Runs the `ok?` wave: absorb neighbor values, compute eval /
    /// improve / planned move, broadcast `improve`.
    fn process_ok_wave(&mut self, out: &mut Outbox<DbaMessage>) {
        for (var, value) in std::mem::take(&mut self.ok_pending) {
            self.view.insert(var, value);
        }
        self.sync_eval();
        let (eval, violated) = self.eval_value(self.value);
        self.my_eval = eval;
        self.violated_now = violated;
        // Best alternative value.
        let mut best_value = self.value;
        let mut best_cost = eval;
        for d in self.domain.iter() {
            if d == self.value {
                continue;
            }
            let (cost, _) = self.eval_value(d);
            if cost < best_cost {
                best_cost = cost;
                best_value = d;
            }
        }
        self.planned_value = best_value;
        self.my_improve = eval - best_cost;
        for &peer in &self.neighbor_agents {
            out.send(
                peer,
                DbaMessage::Improve {
                    improve: self.my_improve,
                    eval: self.my_eval,
                },
            );
        }
        self.phase = Phase::WaitImprove;
    }

    /// Runs the `improve` wave: arbitrate the right to move, move or
    /// break out, broadcast `ok?`.
    fn process_improve_wave(&mut self, out: &mut Outbox<DbaMessage>) {
        let improves = std::mem::take(&mut self.improve_pending);
        // The right to change: strictly larger improve than every
        // neighbor, ties broken toward the smaller agent id.
        let wins = self.my_improve > 0
            && improves.iter().all(|(&agent, &imp)| {
                self.my_improve > imp || (self.my_improve == imp && self.id < agent)
            });
        let nobody_improves = self.my_improve == 0 && improves.values().all(|&imp| imp == 0);
        if wins {
            self.value = self.planned_value;
        } else if self.my_eval > 0 && nobody_improves {
            // Quasi-local-minimum: breakout — raise the weight of every
            // currently violated nogood.
            for &i in &self.violated_now {
                self.weights[self.weight_group[i]] += 1;
            }
        }
        self.send_ok(out);
        self.phase = Phase::WaitOk;
    }

    fn wave_ready(&self) -> bool {
        match self.phase {
            Phase::WaitOk => self
                .neighbor_vars
                .iter()
                .all(|v| self.ok_pending.contains_key(v)),
            Phase::WaitImprove => self
                .neighbor_agents
                .iter()
                .all(|a| self.improve_pending.contains_key(a)),
        }
    }
}

impl DistributedAgent for DbaAgent {
    type Message = DbaMessage;

    fn id(&self) -> AgentId {
        self.id
    }

    fn on_start(&mut self, out: &mut Outbox<DbaMessage>) {
        if self.neighbor_agents.is_empty() {
            // Isolated variable: settle its (unary) nogoods immediately —
            // no waves will ever run.
            self.sync_eval();
            let (_, _) = self.eval_value(self.value);
            // Domains are nonempty by construction; the fallback keeps
            // this step function panic-free.
            let best = self
                .domain
                .iter()
                .min_by_key(|&d| self.eval_value(d).0)
                .unwrap_or(self.value);
            self.value = best;
            return;
        }
        self.send_ok(out);
    }

    fn on_batch(&mut self, inbox: Vec<Envelope<DbaMessage>>, out: &mut Outbox<DbaMessage>) {
        if self.neighbor_agents.is_empty() {
            // An isolated variable has no waves to run (and already
            // settled at start); without this guard the vacuously-ready
            // wave loop below would spin forever.
            return;
        }
        for env in inbox {
            match env.payload {
                DbaMessage::Ok { var, value } => {
                    self.ok_pending.insert(var, value);
                }
                DbaMessage::Improve { improve, .. } => {
                    self.improve_pending.insert(env.from, improve);
                }
            }
        }
        // A buffered backlog can complete several waves back to back
        // (possible on the asynchronous runtime).
        while self.wave_ready() {
            match self.phase {
                Phase::WaitOk => self.process_ok_wave(out),
                Phase::WaitImprove => self.process_improve_wave(out),
            }
        }
    }

    fn assignments(&self) -> Vec<VarValue> {
        vec![VarValue::new(self.var, self.value)]
    }

    fn take_checks(&mut self) -> u64 {
        self.store.take_checks()
    }

    fn stats(&self) -> AgentStats {
        self.stats
    }

    fn on_nudge(&mut self, out: &mut Outbox<DbaMessage>) {
        if self.neighbor_agents.is_empty() {
            return;
        }
        // Resend the message of the wave this agent last completed — what
        // a stalled neighbor must be waiting for. Wave buffers are keyed
        // maps, so a peer that already has the message absorbs the copy
        // idempotently.
        match self.phase {
            Phase::WaitOk => self.send_ok(out),
            Phase::WaitImprove => {
                for &peer in &self.neighbor_agents {
                    out.send(
                        peer,
                        DbaMessage::Improve {
                            improve: self.my_improve,
                            eval: self.my_eval,
                        },
                    );
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x(i: u32) -> VariableId {
        VariableId::new(i)
    }
    fn v(i: u16) -> Value {
        Value::new(i)
    }

    fn two_agent_pair(mode: WeightMode) -> DbaAgent {
        DbaAgent::new(
            AgentId::new(0),
            x(0),
            Domain::new(2),
            v(0),
            vec![
                Nogood::of([(x(0), v(0)), (x(1), v(0))]),
                Nogood::of([(x(0), v(1)), (x(1), v(1))]),
            ],
            vec![(x(1), AgentId::new(1))],
            mode,
        )
    }

    #[test]
    fn eval_counts_weighted_violations() {
        let mut agent = two_agent_pair(WeightMode::PerNogood);
        agent.view.insert(x(1), v(0));
        agent.sync_eval();
        let (cost, violated) = agent.eval_value(v(0));
        assert_eq!(cost, 1);
        assert_eq!(violated, vec![0]);
        let (cost, violated) = agent.eval_value(v(1));
        assert_eq!(cost, 0);
        assert!(violated.is_empty());
        // Four checks were metered (two nogoods × two evaluations).
        assert_eq!(agent.store.take_checks(), 4);
    }

    #[test]
    fn ok_wave_computes_improve_and_plans_move() {
        let mut agent = two_agent_pair(WeightMode::PerNogood);
        let mut out = Outbox::new(agent.id());
        agent.on_batch(
            vec![Envelope::new(
                AgentId::new(1),
                AgentId::new(0),
                DbaMessage::Ok {
                    var: x(1),
                    value: v(0),
                },
            )],
            &mut out,
        );
        assert_eq!(agent.my_eval, 1);
        assert_eq!(agent.my_improve, 1);
        assert_eq!(agent.planned_value, v(1));
        let msgs = out.drain();
        assert_eq!(msgs.len(), 1);
        assert!(matches!(
            msgs[0].payload,
            DbaMessage::Improve {
                improve: 1,
                eval: 1
            }
        ));
    }

    #[test]
    fn improve_wave_moves_winner_only() {
        let mut agent = two_agent_pair(WeightMode::PerNogood);
        let mut out = Outbox::new(agent.id());
        // ok? wave: neighbor at 0 → conflict, improve 1.
        agent.on_batch(
            vec![Envelope::new(
                AgentId::new(1),
                AgentId::new(0),
                DbaMessage::Ok {
                    var: x(1),
                    value: v(0),
                },
            )],
            &mut out,
        );
        // improve wave: neighbor also has improve 1 — tie, smaller id
        // (this agent) wins.
        agent.on_batch(
            vec![Envelope::new(
                AgentId::new(1),
                AgentId::new(0),
                DbaMessage::Improve {
                    improve: 1,
                    eval: 1,
                },
            )],
            &mut out,
        );
        assert_eq!(agent.value(), v(1));
    }

    #[test]
    fn improve_tie_loses_to_smaller_neighbor_id() {
        let mut agent = DbaAgent::new(
            AgentId::new(5),
            x(5),
            Domain::new(2),
            v(0),
            vec![Nogood::of([(x(5), v(0)), (x(1), v(0))])],
            vec![(x(1), AgentId::new(1))],
            WeightMode::PerNogood,
        );
        let mut out = Outbox::new(agent.id());
        agent.on_batch(
            vec![Envelope::new(
                AgentId::new(1),
                AgentId::new(5),
                DbaMessage::Ok {
                    var: x(1),
                    value: v(0),
                },
            )],
            &mut out,
        );
        agent.on_batch(
            vec![Envelope::new(
                AgentId::new(1),
                AgentId::new(5),
                DbaMessage::Improve {
                    improve: 1,
                    eval: 1,
                },
            )],
            &mut out,
        );
        // Tie at improve 1 but neighbor id 1 < 5: stay put.
        assert_eq!(agent.value(), v(0));
    }

    #[test]
    fn quasi_local_minimum_triggers_breakout() {
        // Both of this agent's values conflict with the neighbor's fixed
        // state: improve 0, eval > 0 for everyone → weights escalate.
        let mut agent = DbaAgent::new(
            AgentId::new(0),
            x(0),
            Domain::new(2),
            v(0),
            vec![
                Nogood::of([(x(0), v(0)), (x(1), v(0))]),
                Nogood::of([(x(0), v(1)), (x(1), v(0))]),
            ],
            vec![(x(1), AgentId::new(1))],
            WeightMode::PerNogood,
        );
        let mut out = Outbox::new(agent.id());
        agent.on_batch(
            vec![Envelope::new(
                AgentId::new(1),
                AgentId::new(0),
                DbaMessage::Ok {
                    var: x(1),
                    value: v(0),
                },
            )],
            &mut out,
        );
        assert_eq!(agent.my_improve, 0);
        assert_eq!(agent.weight_of(0), Some(1));
        agent.on_batch(
            vec![Envelope::new(
                AgentId::new(1),
                AgentId::new(0),
                DbaMessage::Improve {
                    improve: 0,
                    eval: 1,
                },
            )],
            &mut out,
        );
        // Only the violated nogood's weight rose.
        assert_eq!(agent.weight_of(0), Some(2));
        assert_eq!(agent.weight_of(1), Some(1));
    }

    #[test]
    fn per_pair_mode_groups_by_foreign_vars() {
        let agent = two_agent_pair(WeightMode::PerPair);
        // Both nogoods share the foreign set {x1}: one weight group.
        assert_eq!(agent.weights.len(), 1);
        assert_eq!(agent.weight_group, vec![0, 0]);
    }

    #[test]
    fn isolated_agent_batch_terminates() {
        // Regression: the simulator calls on_batch every cycle even with
        // an empty inbox; a neighborless agent must return immediately
        // instead of spinning in the vacuously-ready wave loop.
        let mut agent = DbaAgent::new(
            AgentId::new(0),
            x(0),
            Domain::new(2),
            v(0),
            vec![],
            vec![],
            WeightMode::PerNogood,
        );
        let mut out = Outbox::new(agent.id());
        agent.on_batch(vec![], &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn isolated_agent_settles_at_start() {
        let mut agent = DbaAgent::new(
            AgentId::new(0),
            x(0),
            Domain::new(2),
            v(0),
            vec![Nogood::of([(x(0), v(0))])],
            vec![],
            WeightMode::PerNogood,
        );
        let mut out = Outbox::new(agent.id());
        agent.on_start(&mut out);
        assert!(out.is_empty());
        assert_eq!(agent.value(), v(1));
    }

    #[test]
    #[should_panic(expected = "outside domain")]
    fn out_of_domain_initial_value_rejected() {
        let _ = DbaAgent::new(
            AgentId::new(0),
            x(0),
            Domain::new(2),
            v(9),
            vec![],
            vec![],
            WeightMode::PerNogood,
        );
    }
}
