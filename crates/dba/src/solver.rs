//! Front-end: run the distributed breakout against a [`DistributedCsp`].

use std::error::Error;
use std::fmt;

use discsp_core::{AgentId, Assignment, DistributedCsp, VariableId};
use discsp_runtime::{
    run_async, run_sharded, run_virtual, AsyncConfig, AsyncReport, ShardConfig, SyncRun,
    SyncSimulator, VirtualConfig, VirtualReport,
};

use crate::agent::{DbaAgent, WeightMode};

/// Errors raised when a problem does not fit the DB's one-variable-per-
/// agent execution model, or initial values are unusable.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DbaError {
    /// An agent owns a number of variables other than one.
    WrongVariableCount {
        /// The offending agent.
        agent: AgentId,
        /// How many variables it owns.
        count: usize,
    },
    /// A variable has no initial value, or the value is outside its
    /// domain.
    BadInitialValue {
        /// The offending variable.
        var: VariableId,
    },
    /// The underlying runtime failed (misrouted message, dead agent
    /// thread).
    Runtime(discsp_runtime::RuntimeError),
}

impl fmt::Display for DbaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbaError::WrongVariableCount { agent, count } => write!(
                f,
                "agent {agent} owns {count} variables; the DB runs one variable per agent"
            ),
            DbaError::BadInitialValue { var } => {
                write!(f, "variable {var} has no usable initial value")
            }
            DbaError::Runtime(e) => write!(f, "runtime failure: {e}"),
        }
    }
}

impl Error for DbaError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DbaError::Runtime(e) => Some(e),
            _ => None,
        }
    }
}

impl From<discsp_runtime::RuntimeError> for DbaError {
    fn from(e: discsp_runtime::RuntimeError) -> Self {
        DbaError::Runtime(e)
    }
}

/// Builds and runs distributed breakout agent populations.
///
/// # Examples
///
/// ```
/// use discsp_dba::DbaSolver;
/// use discsp_core::{Assignment, DistributedCsp, Domain, Value};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = DistributedCsp::builder();
/// let x = b.variable(Domain::new(3));
/// let y = b.variable(Domain::new(3));
/// b.not_equal(x, y)?;
/// let problem = b.build()?;
///
/// let init = Assignment::total([Value::new(0), Value::new(0)]);
/// let run = DbaSolver::new().solve_sync(&problem, &init)?;
/// assert!(run.outcome.metrics.termination.is_solved());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DbaSolver {
    mode: WeightMode,
    cycle_limit: u64,
    record_history: bool,
    record_trace: bool,
    message_delay: Option<(u64, u64)>,
}

impl DbaSolver {
    /// Creates a solver with per-nogood weights (the paper's choice) and
    /// the 10 000-cycle limit.
    pub fn new() -> Self {
        DbaSolver {
            mode: WeightMode::PerNogood,
            cycle_limit: discsp_core::PAPER_CYCLE_LIMIT,
            record_history: false,
            record_trace: false,
            message_delay: None,
        }
    }

    /// Adds a random per-message delivery delay of up to `max_extra`
    /// additional cycles on synchronous runs, drawn deterministically
    /// from `seed`. The DB's wave protocol tolerates arbitrary delays —
    /// agents buffer out-of-phase messages.
    pub fn message_delay(mut self, max_extra: u64, seed: u64) -> Self {
        self.message_delay = Some((max_extra, seed));
        self
    }

    /// Always false: the distributed breakout is a local-search method
    /// (§4.3) and may wander forever even on solvable instances, so
    /// oracles must tolerate cutoffs. The counterpart of
    /// `AwcSolver::is_complete`.
    pub fn is_complete(&self) -> bool {
        false
    }

    /// Selects the weight placement mode.
    pub fn weight_mode(mut self, mode: WeightMode) -> Self {
        self.mode = mode;
        self
    }

    /// The configured weight placement mode.
    pub fn mode(&self) -> WeightMode {
        self.mode
    }

    /// Overrides the cycle limit.
    pub fn cycle_limit(mut self, limit: u64) -> Self {
        self.cycle_limit = limit;
        self
    }

    /// Enables per-cycle history recording on synchronous runs.
    pub fn record_history(mut self, on: bool) -> Self {
        self.record_history = on;
        self
    }

    /// Enables event-trace recording on synchronous runs (see
    /// `discsp_runtime::TraceEvent`).
    pub fn record_trace(mut self, on: bool) -> Self {
        self.record_trace = on;
        self
    }

    /// Builds one agent per problem agent, seeded with `init`.
    ///
    /// # Errors
    ///
    /// Fails when an agent owns a number of variables other than one, or
    /// an initial value is missing or out of domain.
    pub fn build_agents(
        &self,
        problem: &DistributedCsp,
        init: &Assignment,
    ) -> Result<Vec<DbaAgent>, DbaError> {
        let mut agents = Vec::with_capacity(problem.num_agents());
        for a in 0..problem.num_agents() {
            let agent_id = AgentId::new(a as u32);
            let vars = problem.vars_of_agent(agent_id);
            let &[var] = &vars[..] else {
                return Err(DbaError::WrongVariableCount {
                    agent: agent_id,
                    count: vars.len(),
                });
            };
            let domain = problem.domain(var);
            let value = init
                .get(var)
                .filter(|&v| domain.contains(v))
                .ok_or(DbaError::BadInitialValue { var })?;
            let neighbors = problem
                .neighbors(var)
                .iter()
                .map(|&v| (v, problem.owner(v)))
                .collect();
            let nogoods = problem.nogoods_of(var).cloned().collect();
            agents.push(DbaAgent::new(
                agent_id, var, domain, value, nogoods, neighbors, self.mode,
            ));
        }
        Ok(agents)
    }

    /// Runs on the synchronous cycle simulator. Each `ok?` wave and each
    /// `improve` wave is one cycle, which is why DB consumes roughly two
    /// cycles per move round (visible in Tables 8–10).
    ///
    /// # Errors
    ///
    /// See [`DbaSolver::build_agents`].
    pub fn solve_sync(
        &self,
        problem: &DistributedCsp,
        init: &Assignment,
    ) -> Result<SyncRun, DbaError> {
        let agents = self.build_agents(problem, init)?;
        let mut sim = SyncSimulator::new(agents);
        sim.cycle_limit(self.cycle_limit)
            .record_history(self.record_history)
            .record_trace(self.record_trace);
        if let Some((max_extra, seed)) = self.message_delay {
            sim.message_delay(max_extra, seed);
        }
        sim.run(problem).map_err(DbaError::from)
    }

    /// Runs on the asynchronous threads-and-channels runtime.
    ///
    /// DB's ok?/improve waves never go quiet, so the run always observes
    /// the first consistent snapshot (`stop_on_first_solution` is forced
    /// on), mirroring the paper's "until a solution is found" semantics.
    ///
    /// # Errors
    ///
    /// See [`DbaSolver::build_agents`].
    pub fn solve_async(
        &self,
        problem: &DistributedCsp,
        init: &Assignment,
        config: &AsyncConfig,
    ) -> Result<AsyncReport, DbaError> {
        let agents = self.build_agents(problem, init)?;
        let mut config = config.clone();
        config.stop_on_first_solution = true;
        run_async(agents, problem, &config).map_err(DbaError::from)
    }

    /// Runs on the deterministic discrete-event runtime with link faults.
    /// As with [`DbaSolver::solve_async`], `stop_on_first_solution` is
    /// forced on — the breakout's waves never quiesce.
    ///
    /// # Errors
    ///
    /// See [`DbaSolver::build_agents`].
    pub fn solve_virtual(
        &self,
        problem: &DistributedCsp,
        init: &Assignment,
        config: &VirtualConfig,
    ) -> Result<VirtualReport, DbaError> {
        let agents = self.build_agents(problem, init)?;
        let mut config = config.clone();
        config.stop_on_first_solution = true;
        run_virtual(agents, problem, &config).map_err(DbaError::from)
    }

    /// Runs on the M:N sharded executor with the same forced
    /// `stop_on_first_solution` semantics as [`DbaSolver::solve_virtual`]
    /// — the breakout's waves never quiesce. Reports are bit-identical
    /// to `solve_virtual` under `config.base` for any worker count.
    ///
    /// # Errors
    ///
    /// See [`DbaSolver::build_agents`].
    pub fn solve_sharded(
        &self,
        problem: &DistributedCsp,
        init: &Assignment,
        config: &ShardConfig,
    ) -> Result<VirtualReport, DbaError> {
        let agents = self.build_agents(problem, init)?;
        let mut config = config.clone();
        config.base.stop_on_first_solution = true;
        run_sharded(agents, problem, &config).map_err(DbaError::from)
    }
}

impl Default for DbaSolver {
    fn default() -> Self {
        DbaSolver::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use discsp_core::{Domain, Termination, Value};

    fn triangle() -> DistributedCsp {
        let mut b = DistributedCsp::builder();
        let x = b.variable(Domain::new(3));
        let y = b.variable(Domain::new(3));
        let z = b.variable(Domain::new(3));
        b.not_equal(x, y).unwrap();
        b.not_equal(y, z).unwrap();
        b.not_equal(x, z).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn db_solves_triangle_from_uniform_init() {
        let problem = triangle();
        let init = Assignment::total([Value::new(0); 3]);
        for mode in [WeightMode::PerNogood, WeightMode::PerPair] {
            let run = DbaSolver::new()
                .weight_mode(mode)
                .solve_sync(&problem, &init)
                .unwrap();
            assert_eq!(
                run.outcome.metrics.termination,
                Termination::Solved,
                "mode {mode:?}"
            );
            assert!(problem.is_solution(run.outcome.solution.as_ref().unwrap()));
        }
    }

    #[test]
    fn db_cuts_off_on_insoluble_problem() {
        // K4 with 3 colors: DB is incomplete and must hit the limit.
        let mut b = DistributedCsp::builder();
        let vars: Vec<_> = (0..4).map(|_| b.variable(Domain::new(3))).collect();
        for i in 0..4 {
            for j in (i + 1)..4 {
                b.not_equal(vars[i], vars[j]).unwrap();
            }
        }
        let problem = b.build().unwrap();
        let init = Assignment::total([Value::new(0); 4]);
        let run = DbaSolver::new()
            .cycle_limit(300)
            .solve_sync(&problem, &init)
            .unwrap();
        assert_eq!(run.outcome.metrics.termination, Termination::CutOff);
        assert_eq!(run.outcome.metrics.cycles, 300);
    }

    #[test]
    fn db_solves_triangle_asynchronously() {
        let problem = triangle();
        let init = Assignment::total([Value::new(0); 3]);
        let report = DbaSolver::new()
            .solve_async(&problem, &init, &discsp_runtime::AsyncConfig::default())
            .unwrap();
        assert_eq!(report.outcome.metrics.termination, Termination::Solved);
    }

    #[test]
    fn rejects_bad_inputs() {
        let problem = triangle();
        let err = DbaSolver::new()
            .solve_sync(&problem, &Assignment::empty(3))
            .unwrap_err();
        assert!(matches!(err, DbaError::BadInitialValue { .. }));

        let mut b = DistributedCsp::builder();
        let agent = AgentId::new(0);
        let x = b.variable_owned_by(Domain::new(2), agent);
        let y = b.variable_owned_by(Domain::new(2), agent);
        b.not_equal(x, y).unwrap();
        let multi = b.build().unwrap();
        let err = DbaSolver::new()
            .solve_sync(&multi, &Assignment::total([Value::new(0); 2]))
            .unwrap_err();
        assert!(matches!(err, DbaError::WrongVariableCount { count: 2, .. }));
    }

    #[test]
    fn error_messages_are_informative() {
        let e = DbaError::WrongVariableCount {
            agent: AgentId::new(3),
            count: 0,
        };
        assert!(e.to_string().contains("a3"));
    }
}
