//! The distributed breakout message protocol.

use std::fmt;

use discsp_core::{Value, VariableId, Wire, WireError, WireReader};
use discsp_runtime::{Classify, MessageClass};
use serde::{Deserialize, Serialize};

use crate::agent::WeightMode;

/// Messages exchanged by DB agents (§4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DbaMessage {
    /// `ok?` — announces the sender's current value.
    Ok {
        /// The announced variable.
        var: VariableId,
        /// Its current value.
        value: Value,
    },
    /// `improve` — announces the sender's possible maximal improvement
    /// and current cost, so neighbors can arbitrate the right to move.
    Improve {
        /// The sender's best achievable cost reduction.
        improve: u64,
        /// The sender's current weighted violation cost.
        eval: u64,
    },
}

impl Classify for DbaMessage {
    fn class(&self) -> MessageClass {
        match self {
            DbaMessage::Ok { .. } => MessageClass::Ok,
            DbaMessage::Improve { .. } => MessageClass::Other,
        }
    }
}

impl fmt::Display for DbaMessage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbaMessage::Ok { var, value } => write!(f, "ok?({var}={value})"),
            DbaMessage::Improve { improve, eval } => {
                write!(f, "improve({improve}, eval {eval})")
            }
        }
    }
}

impl Wire for DbaMessage {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            DbaMessage::Ok { var, value } => {
                out.push(0);
                var.encode(out);
                value.encode(out);
            }
            DbaMessage::Improve { improve, eval } => {
                out.push(1);
                improve.encode(out);
                eval.encode(out);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.u8("DbaMessage")? {
            0 => {
                let var = VariableId::decode(r)?;
                let value = Value::decode(r)?;
                Ok(DbaMessage::Ok { var, value })
            }
            1 => {
                let improve = r.u64("DbaMessage.improve")?;
                let eval = r.u64("DbaMessage.eval")?;
                Ok(DbaMessage::Improve { improve, eval })
            }
            tag => Err(WireError::BadTag {
                context: "DbaMessage",
                tag,
            }),
        }
    }
}

impl Wire for WeightMode {
    fn encode(&self, out: &mut Vec<u8>) {
        let tag: u8 = match self {
            WeightMode::PerNogood => 0,
            WeightMode::PerPair => 1,
        };
        out.push(tag);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.u8("WeightMode")? {
            0 => Ok(WeightMode::PerNogood),
            1 => Ok(WeightMode::PerPair),
            tag => Err(WireError::BadTag {
                context: "WeightMode",
                tag,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_and_display() {
        let ok = DbaMessage::Ok {
            var: VariableId::new(1),
            value: Value::new(2),
        };
        assert_eq!(ok.class(), MessageClass::Ok);
        assert_eq!(ok.to_string(), "ok?(x1=2)");
        let imp = DbaMessage::Improve {
            improve: 3,
            eval: 5,
        };
        assert_eq!(imp.class(), MessageClass::Other);
        assert_eq!(imp.to_string(), "improve(3, eval 5)");
    }

    #[test]
    fn messages_and_modes_roundtrip_on_the_wire() {
        let samples = [
            DbaMessage::Ok {
                var: VariableId::new(4),
                value: Value::new(1),
            },
            DbaMessage::Improve { improve: 6, eval: 9 },
        ];
        for msg in samples {
            assert_eq!(DbaMessage::from_bytes(&msg.to_bytes()), Ok(msg));
        }
        for mode in [WeightMode::PerNogood, WeightMode::PerPair] {
            assert_eq!(WeightMode::from_bytes(&mode.to_bytes()), Ok(mode));
        }
        assert!(matches!(
            DbaMessage::from_bytes(&[7]),
            Err(WireError::BadTag { .. })
        ));
    }
}
