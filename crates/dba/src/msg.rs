//! The distributed breakout message protocol.

use std::fmt;

use discsp_core::{Value, VariableId};
use discsp_runtime::{Classify, MessageClass};
use serde::{Deserialize, Serialize};

/// Messages exchanged by DB agents (§4.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DbaMessage {
    /// `ok?` — announces the sender's current value.
    Ok {
        /// The announced variable.
        var: VariableId,
        /// Its current value.
        value: Value,
    },
    /// `improve` — announces the sender's possible maximal improvement
    /// and current cost, so neighbors can arbitrate the right to move.
    Improve {
        /// The sender's best achievable cost reduction.
        improve: u64,
        /// The sender's current weighted violation cost.
        eval: u64,
    },
}

impl Classify for DbaMessage {
    fn class(&self) -> MessageClass {
        match self {
            DbaMessage::Ok { .. } => MessageClass::Ok,
            DbaMessage::Improve { .. } => MessageClass::Other,
        }
    }
}

impl fmt::Display for DbaMessage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbaMessage::Ok { var, value } => write!(f, "ok?({var}={value})"),
            DbaMessage::Improve { improve, eval } => {
                write!(f, "improve({improve}, eval {eval})")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_and_display() {
        let ok = DbaMessage::Ok {
            var: VariableId::new(1),
            value: Value::new(2),
        };
        assert_eq!(ok.class(), MessageClass::Ok);
        assert_eq!(ok.to_string(), "ok?(x1=2)");
        let imp = DbaMessage::Improve {
            improve: 3,
            eval: 5,
        };
        assert_eq!(imp.class(), MessageClass::Other);
        assert_eq!(imp.to_string(), "improve(3, eval 5)");
    }
}
