//! Workspace file discovery.
//!
//! Collects `.rs` files under `<root>/crates/`, skipping directories
//! that are out of scope by construction: build output, vendored
//! dependencies, and test/bench/example/fixture trees (tests are exempt
//! from every rule).

use std::fs;
use std::path::{Path, PathBuf};

const SKIP_DIRS: &[&str] = &[
    "target", "vendor", "tests", "benches", "examples", "fixtures",
];

/// Returns workspace-relative paths of all lintable `.rs` files under
/// `<root>/crates/`, sorted so output order is stable. I/O errors on
/// individual entries are skipped rather than fatal — a half-readable
/// tree should still produce findings for the readable half.
pub fn lintable_files(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    collect(&root.join("crates"), &mut out);
    let mut rel: Vec<PathBuf> = out
        .into_iter()
        .filter_map(|p| p.strip_prefix(root).map(Path::to_path_buf).ok())
        .collect();
    rel.sort();
    rel
}

fn collect(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if !SKIP_DIRS.contains(&name.as_ref()) {
                collect(&path, out);
            }
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_this_crate_and_skips_exempt_dirs() {
        // CARGO_MANIFEST_DIR = crates/lint; the workspace root is two up.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .canonicalize()
            .expect("workspace root resolves");
        let files = lintable_files(&root);
        assert!(!files.is_empty());
        let as_str: Vec<String> = files
            .iter()
            .map(|p| p.to_string_lossy().replace('\\', "/"))
            .collect();
        assert!(as_str.iter().any(|p| p == "crates/lint/src/walk.rs"));
        assert!(as_str.iter().all(|p| !p.contains("/tests/")));
        assert!(as_str.iter().all(|p| !p.contains("/target/")));
        assert!(as_str.iter().all(|p| p.ends_with(".rs")));
        // Sorted output keeps diagnostics diffable between runs.
        let mut sorted = as_str.clone();
        sorted.sort();
        assert_eq!(as_str, sorted);
    }
}
