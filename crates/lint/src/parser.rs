//! A recursive-descent item/signature parser on top of the lexer.
//!
//! The per-file rules see tokens; the workspace rules (P2, D3, W1) need
//! *structure*: which functions exist, which impl block owns them, what
//! they call, and which panic- or determinism-relevant facts their
//! bodies contain. This module extracts exactly that — no expression
//! trees, no types beyond names — because the interprocedural rules
//! only reason about names, edges, and line positions.
//!
//! Like the lexer, the parser is total: any token stream produces a
//! [`ParsedFile`]. Items it does not understand are skipped, never
//! fatal, so the analyzer cannot be wedged by the code it scans.
//! `#[cfg(test)]` / `#[test]` items are dropped here with the same
//! attribute scan the per-file rules use (tests are exempt from every
//! rule, interprocedural ones included).

use crate::lexer::{Token, TokenKind};

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// The called name (last path segment: `foo` in `a::b::foo(..)`).
    pub callee: String,
    /// The path segment or receiver type immediately before the name
    /// (`Type` in `Type::foo(..)`), when one is present.
    pub qualifier: Option<String>,
    /// Whether this is a method call (`recv.foo(..)`).
    pub method: bool,
    /// 1-based line of the callee token.
    pub line: u32,
}

/// What kind of invariant-relevant fact a body token is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FactKind {
    /// Can panic: `.unwrap()`, `.expect(..)`, `panic!`-family macros,
    /// literal indexing.
    Panic,
    /// Iteration-order instability: `HashMap` / `HashSet` (D1's set).
    Unordered,
    /// Wall-clock / OS entropy: `Instant::now`, `SystemTime`,
    /// `thread_rng` (D2's set).
    Timing,
}

/// One invariant-relevant fact found in a function body.
#[derive(Debug, Clone)]
pub struct Fact {
    /// Which family the fact belongs to.
    pub kind: FactKind,
    /// Short description of the construct (`.unwrap()`, `Instant::now`).
    pub what: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
}

/// One parsed `fn` item.
#[derive(Debug)]
pub struct FnItem {
    /// The function's name.
    pub name: String,
    /// The impl/trait target that owns it (`NogoodStore` for methods of
    /// `impl NogoodStore` or `impl Wire for NogoodStore`), if any.
    pub owner: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Whether the signature declares a non-unit return type.
    pub returns_value: bool,
    /// Calls made from the body, in source order.
    pub calls: Vec<CallSite>,
    /// Panic/determinism facts found in the body.
    pub facts: Vec<Fact>,
    /// `Enum::Variant` path references in the body (for schema
    /// exhaustiveness checks), with their lines.
    pub variant_refs: Vec<(String, String, u32)>,
    /// Integer arguments of `.push(<int>)` calls in the body, in source
    /// order (W1 uses these as the wire tags of an `encode` body).
    pub tag_pushes: Vec<(u64, u32)>,
}

impl FnItem {
    /// `Owner::name` or plain `name`, for diagnostics.
    pub fn display_name(&self) -> String {
        match &self.owner {
            Some(owner) => format!("{owner}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// One parsed `enum` item: its name and variant names with lines.
#[derive(Debug)]
pub struct EnumItem {
    /// The enum's name.
    pub name: String,
    /// 1-based line of the `enum` keyword.
    pub line: u32,
    /// Variant names with their 1-based lines, in declaration order.
    pub variants: Vec<(String, u32)>,
}

/// One `impl <Trait> for <Target>` record (trait impls only).
#[derive(Debug)]
pub struct TraitImpl {
    /// The trait's last path segment.
    pub trait_name: String,
    /// The target type's last path segment (generics stripped).
    pub target: String,
    /// 1-based line of the `impl` keyword.
    pub line: u32,
}

/// Everything the workspace rules need to know about one file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    /// Workspace-relative path (`crates/awc/src/agent.rs`).
    pub rel: String,
    /// All non-test functions, including methods.
    pub fns: Vec<FnItem>,
    /// All non-test enum definitions.
    pub enums: Vec<EnumItem>,
    /// All non-test trait impls (`impl Wire for X` and friends).
    pub trait_impls: Vec<TraitImpl>,
}

/// Rust keywords that can directly precede `(` without being calls.
const NON_CALL_KEYWORDS: &[&str] = &[
    "if", "while", "match", "for", "return", "loop", "in", "as", "move", "ref", "mut", "else",
    "let", "fn", "impl", "pub", "use", "mod", "struct", "enum", "trait", "where", "unsafe", "dyn",
    "break", "continue", "await", "async", "const", "static", "type", "crate", "self", "super",
];

struct Parser<'a> {
    toks: Vec<&'a Token>,
    pos: usize,
    out: ParsedFile,
    /// Stack of enclosing impl/trait targets.
    owners: Vec<String>,
}

/// Parses one file's token stream into its item structure.
pub fn parse_file(rel: &str, tokens: &[Token]) -> ParsedFile {
    let toks: Vec<&Token> = tokens
        .iter()
        .filter(|t| t.kind != TokenKind::Comment)
        .collect();
    let mut p = Parser {
        toks,
        pos: 0,
        out: ParsedFile {
            rel: rel.to_string(),
            ..ParsedFile::default()
        },
        owners: Vec::new(),
    };
    p.items();
    p.out
}

impl<'a> Parser<'a> {
    fn at(&self, off: usize) -> Option<&'a Token> {
        self.toks.get(self.pos + off).copied()
    }

    fn text(&self, off: usize) -> &str {
        self.at(off).map_or("", |t| &t.text)
    }

    fn is_ident(&self, off: usize) -> bool {
        self.at(off).is_some_and(|t| t.kind == TokenKind::Ident)
    }

    /// Skips a balanced `<...>` group if one starts here. Conservative:
    /// also stops at `;` or `{` so a stray `<` (comparison) cannot eat
    /// an item body.
    fn skip_generics(&mut self) {
        if self.text(0) != "<" {
            return;
        }
        let mut depth = 0usize;
        while let Some(t) = self.at(0) {
            match t.text.as_str() {
                "<" => depth += 1,
                ">" => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        self.pos += 1;
                        return;
                    }
                }
                ";" | "{" => return,
                _ => {}
            }
            self.pos += 1;
        }
    }

    /// Skips a balanced delimiter group starting at the current token
    /// (one of `(`, `[`, `{`). Position ends just after the closer.
    fn skip_group(&mut self, open: &str, close: &str) {
        let mut depth = 0usize;
        while let Some(t) = self.at(0) {
            if t.text == open {
                depth += 1;
            } else if t.text == close {
                depth -= 1;
                if depth == 0 {
                    self.pos += 1;
                    return;
                }
            }
            self.pos += 1;
        }
    }

    /// Scans an attribute `#[...]` at the current `#`. Returns whether
    /// it marks test-only code. Position ends after the `]`.
    fn attribute_is_test(&mut self) -> bool {
        self.pos += 1; // `#`
        if self.text(0) == "!" {
            self.pos += 1; // inner attribute `#![...]`
        }
        let mut depth = 0usize;
        let mut has_test = false;
        let mut has_not = false;
        while let Some(t) = self.at(0) {
            match t.text.as_str() {
                "[" => depth += 1,
                "]" => {
                    depth -= 1;
                    if depth == 0 {
                        self.pos += 1;
                        return has_test && !has_not;
                    }
                }
                "test" if t.kind == TokenKind::Ident => has_test = true,
                "not" if t.kind == TokenKind::Ident => has_not = true,
                _ => {}
            }
            self.pos += 1;
        }
        has_test && !has_not
    }

    /// Skips one whole item (used for test-attributed items): further
    /// attributes, then everything up to a top-level `;` or the end of
    /// the first braced body.
    fn skip_item(&mut self) {
        while self.text(0) == "#" {
            self.attribute_is_test();
        }
        let mut depth = 0usize;
        while let Some(t) = self.at(0) {
            match t.text.as_str() {
                ";" if depth == 0 => {
                    self.pos += 1;
                    return;
                }
                "{" => depth += 1,
                "}" => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        self.pos += 1;
                        return;
                    }
                }
                _ => {}
            }
            self.pos += 1;
        }
    }

    /// Parses a run of items until end of input or a closing `}` that
    /// ends the enclosing block (which the caller consumes).
    fn items(&mut self) {
        while let Some(t) = self.at(0) {
            match t.text.as_str() {
                "}" => return,
                "#" => {
                    let save = self.pos;
                    if self.attribute_is_test() {
                        self.skip_item();
                    } else {
                        // Keep scanning items after a non-test attribute.
                        let _ = save;
                    }
                }
                "fn" if self.is_ident(1) => self.fn_item(),
                "impl" => self.impl_item(),
                "trait" if self.is_ident(1) => self.trait_item(),
                "enum" if self.is_ident(1) => self.enum_item(),
                "mod" if self.is_ident(1) => {
                    // `mod name;` or `mod name { items }`.
                    self.pos += 2;
                    if self.text(0) == "{" {
                        self.pos += 1;
                        self.items();
                        self.pos += 1; // `}`
                    } else if self.text(0) == ";" {
                        self.pos += 1;
                    }
                }
                "use" => {
                    while self.at(0).is_some() && self.text(0) != ";" {
                        self.pos += 1;
                    }
                    self.pos += 1;
                }
                // Any other braced group at item level (struct body,
                // const/static initializer) contains no items; skip it
                // wholesale so its `}` is not mistaken for the end of
                // the enclosing block.
                "{" => self.skip_group("{", "}"),
                _ => self.pos += 1,
            }
        }
    }

    /// Parses the path after `impl` / `for`, returning the last plain
    /// segment before the body (generic arguments stripped).
    fn path_target(&mut self) -> Option<String> {
        let mut last = None;
        loop {
            match self.at(0) {
                // The lexer classifies keywords as idents; `for` and
                // `where` end the path here.
                Some(t) if t.text == "for" || t.text == "where" => return last,
                Some(t) if t.kind == TokenKind::Ident => {
                    last = Some(t.text.clone());
                    self.pos += 1;
                }
                Some(t) if t.text == "<" => self.skip_generics(),
                Some(t) if t.text == ":" && self.text(1) == ":" => self.pos += 2,
                Some(t) if t.text == "&" || t.kind == TokenKind::Lifetime => self.pos += 1,
                _ => return last,
            }
        }
    }

    fn impl_item(&mut self) {
        let line = self.at(0).map_or(0, |t| t.line);
        self.pos += 1; // `impl`
        self.skip_generics();
        let first = self.path_target();
        let target = if self.text(0) == "for" {
            self.pos += 1;
            let t = self.path_target();
            if let (Some(trait_name), Some(target)) = (first.clone(), t.clone()) {
                self.out.trait_impls.push(TraitImpl {
                    trait_name,
                    target: target.clone(),
                    line,
                });
            }
            t
        } else {
            first
        };
        // `where` clause, then the body.
        while self.at(0).is_some() && self.text(0) != "{" && self.text(0) != ";" {
            self.pos += 1;
        }
        if self.text(0) == "{" {
            self.pos += 1;
            if let Some(target) = target {
                self.owners.push(target);
                self.items();
                self.owners.pop();
            } else {
                self.items();
            }
            self.pos += 1; // `}`
        } else {
            self.pos += 1; // `;`
        }
    }

    fn trait_item(&mut self) {
        self.pos += 1; // `trait`
        let name = self.text(0).to_string();
        self.pos += 1;
        while self.at(0).is_some() && self.text(0) != "{" && self.text(0) != ";" {
            self.pos += 1;
        }
        if self.text(0) == "{" {
            self.pos += 1;
            self.owners.push(name);
            self.items();
            self.owners.pop();
            self.pos += 1;
        } else {
            self.pos += 1;
        }
    }

    fn enum_item(&mut self) {
        let line = self.at(0).map_or(0, |t| t.line);
        self.pos += 1; // `enum`
        let name = self.text(0).to_string();
        self.pos += 1;
        self.skip_generics();
        while self.at(0).is_some() && self.text(0) != "{" && self.text(0) != ";" {
            self.pos += 1;
        }
        if self.text(0) != "{" {
            self.pos += 1;
            return;
        }
        self.pos += 1; // `{`
        let mut variants = Vec::new();
        while let Some(t) = self.at(0) {
            match t.text.as_str() {
                "}" => break,
                "#" => {
                    self.attribute_is_test();
                }
                "(" => self.skip_group("(", ")"),
                "{" => self.skip_group("{", "}"),
                "=" => {
                    // Explicit discriminant: skip to `,` or `}`.
                    while self.at(0).is_some() && self.text(0) != "," && self.text(0) != "}" {
                        self.pos += 1;
                    }
                }
                _ => {
                    if t.kind == TokenKind::Ident {
                        variants.push((t.text.clone(), t.line));
                        self.pos += 1;
                        // Skip any payload right after the name.
                        match self.text(0) {
                            "(" => self.skip_group("(", ")"),
                            "{" => self.skip_group("{", "}"),
                            _ => {}
                        }
                        if self.text(0) == "," {
                            self.pos += 1;
                        }
                    } else {
                        self.pos += 1;
                    }
                }
            }
        }
        self.pos += 1; // `}`
        self.out.enums.push(EnumItem {
            name,
            line,
            variants,
        });
    }

    fn fn_item(&mut self) {
        let line = self.at(0).map_or(0, |t| t.line);
        self.pos += 1; // `fn`
        let name = self.text(0).to_string();
        self.pos += 1;
        self.skip_generics();
        if self.text(0) == "(" {
            self.skip_group("(", ")");
        }
        let mut returns_value = false;
        if self.text(0) == "-" && self.text(1) == ">" {
            self.pos += 2;
            // `-> ()` is unit; anything else is a value.
            returns_value = !(self.text(0) == "(" && self.text(1) == ")");
            while self.at(0).is_some()
                && self.text(0) != "{"
                && self.text(0) != ";"
                && self.text(0) != "where"
            {
                // Generic args in the return type may contain `{`? No —
                // const generics in return position are rare enough to
                // ignore; `<` groups are skipped wholesale.
                if self.text(0) == "<" {
                    self.skip_generics();
                } else {
                    self.pos += 1;
                }
            }
        }
        if self.text(0) == "where" {
            while self.at(0).is_some() && self.text(0) != "{" && self.text(0) != ";" {
                self.pos += 1;
            }
        }
        if self.text(0) != "{" {
            self.pos += 1; // trait method declaration `;`
            return;
        }
        let mut item = FnItem {
            name,
            owner: self.owners.last().cloned(),
            line,
            returns_value,
            calls: Vec::new(),
            facts: Vec::new(),
            variant_refs: Vec::new(),
            tag_pushes: Vec::new(),
        };
        self.fn_body(&mut item);
        self.out.fns.push(item);
    }

    /// Scans one `{ ... }` body, collecting calls and facts. Nested
    /// `fn` items are parsed as separate [`FnItem`]s and their tokens
    /// excluded from this body.
    fn fn_body(&mut self, item: &mut FnItem) {
        debug_assert_eq!(self.text(0), "{");
        self.pos += 1;
        let mut depth = 1usize;
        while let Some(t) = self.at(0) {
            match t.text.as_str() {
                "{" => {
                    depth += 1;
                    self.pos += 1;
                }
                "}" => {
                    depth -= 1;
                    self.pos += 1;
                    if depth == 0 {
                        return;
                    }
                }
                "fn" if self.is_ident(1) => self.fn_item(),
                "#" => {
                    if self.attribute_is_test() {
                        self.skip_item();
                    }
                }
                _ => {
                    self.body_token(item);
                    self.pos += 1;
                }
            }
        }
    }

    /// Classifies the current body token, appending calls/facts.
    fn body_token(&mut self, item: &mut FnItem) {
        let t = match self.at(0) {
            Some(t) => t,
            None => return,
        };
        let prev = self.pos.checked_sub(1).and_then(|p| self.toks.get(p).copied());
        let prev2 = self.pos.checked_sub(2).and_then(|p| self.toks.get(p).copied());
        let prev3 = self.pos.checked_sub(3).and_then(|p| self.toks.get(p).copied());

        if t.kind == TokenKind::Ident {
            let after_dot = prev.is_some_and(|p| p.text == ".");
            let after_colons =
                prev.is_some_and(|p| p.text == ":") && prev2.is_some_and(|p| p.text == ":");
            let next_is_paren = self.text(1) == "(";
            let next_is_bang = self.text(1) == "!";

            // `Enum::Variant` references (both capitalized) for W1.
            if after_colons {
                if let Some(q) = prev3 {
                    if q.kind == TokenKind::Ident
                        && starts_upper(&q.text)
                        && starts_upper(&t.text)
                    {
                        item.variant_refs.push((q.text.clone(), t.text.clone(), t.line));
                    }
                }
            }

            // Determinism facts.
            match t.text.as_str() {
                "HashMap" | "HashSet" => item.facts.push(Fact {
                    kind: FactKind::Unordered,
                    what: t.text.clone(),
                    line: t.line,
                    col: t.col,
                }),
                "Instant"
                    if self.text(1) == ":" && self.text(2) == ":" && self.text(3) == "now" =>
                {
                    item.facts.push(Fact {
                        kind: FactKind::Timing,
                        what: "Instant::now".to_string(),
                        line: t.line,
                        col: t.col,
                    });
                }
                "SystemTime" | "thread_rng" => item.facts.push(Fact {
                    kind: FactKind::Timing,
                    what: t.text.clone(),
                    line: t.line,
                    col: t.col,
                }),
                _ => {}
            }

            // Panic facts (mirrors the per-file P1 shapes).
            if t.text == "unwrap" && after_dot && next_is_paren && self.text(2) == ")" {
                item.facts.push(Fact {
                    kind: FactKind::Panic,
                    what: ".unwrap()".to_string(),
                    line: t.line,
                    col: t.col,
                });
            } else if t.text == "expect" && after_dot && next_is_paren {
                item.facts.push(Fact {
                    kind: FactKind::Panic,
                    what: ".expect(..)".to_string(),
                    line: t.line,
                    col: t.col,
                });
            } else if next_is_bang
                && matches!(t.text.as_str(), "panic" | "unreachable" | "todo" | "unimplemented")
            {
                item.facts.push(Fact {
                    kind: FactKind::Panic,
                    what: format!("{}!", t.text),
                    line: t.line,
                    col: t.col,
                });
            }

            // `.push(<int>)` — wire-tag collection for W1.
            if t.text == "push"
                && after_dot
                && next_is_paren
                && self.at(2).is_some_and(|n| n.kind == TokenKind::Number)
                && self.text(3) == ")"
            {
                if let Ok(tag) = self.text(2).trim_end_matches(|c: char| c.is_alphabetic()).parse()
                {
                    item.tag_pushes.push((tag, t.line));
                }
            }

            // Call sites.
            if next_is_paren && !NON_CALL_KEYWORDS.contains(&t.text.as_str()) {
                let qualifier = if after_colons {
                    prev3
                        .filter(|q| q.kind == TokenKind::Ident)
                        .map(|q| q.text.clone())
                } else {
                    None
                };
                item.calls.push(CallSite {
                    callee: t.text.clone(),
                    qualifier,
                    method: after_dot,
                    line: t.line,
                });
            }
        } else if t.text == "[" {
            // Literal indexing `xs[0]` (P1/P2's panic shape).
            let indexee = prev.is_some_and(|p| {
                p.kind == TokenKind::Ident || p.text == ")" || p.text == "]"
            });
            if indexee
                && self.at(1).is_some_and(|n| n.kind == TokenKind::Number)
                && self.text(2) == "]"
            {
                item.facts.push(Fact {
                    kind: FactKind::Panic,
                    what: "literal indexing".to_string(),
                    line: t.line,
                    col: t.col,
                });
            }
        }
    }
}

fn starts_upper(s: &str) -> bool {
    s.chars().next().is_some_and(|c| c.is_uppercase())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn parse(src: &str) -> ParsedFile {
        parse_file("crates/x/src/a.rs", &lex(src))
    }

    #[test]
    fn finds_free_fns_and_methods_with_owners() {
        let src = "fn free() {}\n\
                   impl Store { fn insert(&mut self) {} }\n\
                   impl Wire for Event { fn encode(&self) {} }\n";
        let pf = parse(src);
        let names: Vec<String> = pf.fns.iter().map(FnItem::display_name).collect();
        assert_eq!(names, vec!["free", "Store::insert", "Event::encode"]);
        assert_eq!(pf.trait_impls.len(), 1);
        assert_eq!(pf.trait_impls[0].trait_name, "Wire");
        assert_eq!(pf.trait_impls[0].target, "Event");
    }

    #[test]
    fn generic_trait_impl_target_is_stripped() {
        let src = "impl<M: Wire> Wire for RunFrame<M> { fn encode(&self) {} }\n";
        let pf = parse(src);
        assert_eq!(pf.trait_impls[0].target, "RunFrame");
        assert_eq!(pf.fns[0].owner.as_deref(), Some("RunFrame"));
    }

    #[test]
    fn collects_calls_with_shapes() {
        let src = "fn f() { helper(); self.store.insert(x); Type::make(1); Some(3); if (x) {} }\n";
        let pf = parse(src);
        let calls = &pf.fns[0].calls;
        let named: Vec<(&str, bool, Option<&str>)> = calls
            .iter()
            .map(|c| (c.callee.as_str(), c.method, c.qualifier.as_deref()))
            .collect();
        assert!(named.contains(&("helper", false, None)));
        assert!(named.contains(&("insert", true, None)));
        assert!(named.contains(&("make", false, Some("Type"))));
        // Tuple constructors are recorded as calls but resolve to
        // nothing (no workspace fn is named `Some`); keywords are not.
        assert!(named.iter().all(|(n, _, _)| *n != "if"));
    }

    #[test]
    fn collects_panic_and_determinism_facts() {
        let src = "fn f() -> u32 {\n\
                   let a = x.unwrap();\n\
                   let b = y.expect(\"msg\");\n\
                   panic!(\"boom\");\n\
                   let c = xs[0];\n\
                   let m: HashMap<u8,u8> = HashMap::new();\n\
                   let t = Instant::now();\n\
                   1\n}\n";
        let pf = parse(src);
        let f = &pf.fns[0];
        assert!(f.returns_value);
        let panics: Vec<u32> = f
            .facts
            .iter()
            .filter(|x| x.kind == FactKind::Panic)
            .map(|x| x.line)
            .collect();
        assert_eq!(panics, vec![2, 3, 4, 5]);
        assert_eq!(
            f.facts.iter().filter(|x| x.kind == FactKind::Unordered).count(),
            2
        );
        assert_eq!(
            f.facts.iter().filter(|x| x.kind == FactKind::Timing).count(),
            1
        );
    }

    #[test]
    fn unit_and_value_returns() {
        let pf = parse(
            "fn a() {}\nfn b() -> () {}\nfn c() -> io::Result<()> { x }\nfn d(x: u8) -> u8 { x }\n",
        );
        let rv: Vec<bool> = pf.fns.iter().map(|f| f.returns_value).collect();
        assert_eq!(rv, vec![false, false, true, true]);
    }

    #[test]
    fn test_items_are_dropped_entirely() {
        let src = "#[cfg(test)]\nmod tests { fn helper() { x.unwrap(); } }\n\
                   #[test]\nfn t() { y.unwrap(); }\n\
                   fn real() {}\n";
        let pf = parse(src);
        assert_eq!(pf.fns.len(), 1);
        assert_eq!(pf.fns[0].name, "real");
    }

    #[test]
    fn enums_with_payloads_and_discriminants() {
        let src = "pub enum E {\n\
                   A,\n\
                   B { x: u32, y: Vec<u8> },\n\
                   C(u64),\n\
                   D = 4,\n\
                   }\n";
        let pf = parse(src);
        assert_eq!(pf.enums.len(), 1);
        let names: Vec<&str> = pf.enums[0].variants.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["A", "B", "C", "D"]);
    }

    #[test]
    fn variant_refs_and_tag_pushes() {
        let src = "fn encode(&self) { match self { Event::Go { .. } => out.push(7), } }\n";
        let pf = parse(src);
        let f = &pf.fns[0];
        assert_eq!(f.variant_refs, vec![("Event".to_string(), "Go".to_string(), 1)]);
        assert_eq!(f.tag_pushes, vec![(7, 1)]);
    }

    #[test]
    fn nested_fns_are_separate_items() {
        let src = "fn outer() { fn inner() { x.unwrap(); } inner(); }\n";
        let pf = parse(src);
        assert_eq!(pf.fns.len(), 2);
        let inner = pf.fns.iter().find(|f| f.name == "inner").unwrap();
        assert_eq!(inner.facts.len(), 1);
        let outer = pf.fns.iter().find(|f| f.name == "outer").unwrap();
        assert!(outer.facts.is_empty());
        assert!(outer.calls.iter().any(|c| c.callee == "inner"));
    }

    #[test]
    fn mods_are_transparent() {
        let src = "mod inner { impl S { fn m(&self) {} } }\n";
        let pf = parse(src);
        assert_eq!(pf.fns[0].display_name(), "S::m");
    }
}
