//! The workspace-level rule families: P2, D3, and W1.
//!
//! | code | allow name   | invariant                                          |
//! |------|--------------|----------------------------------------------------|
//! | P2   | `panic-path` | no panic site transitively reachable from runtime  |
//! | D3   | `taint`      | no D1/D2-forbidden value flows into policed code   |
//! | W1   | `schema`     | `TraceEvent` stays in sync across its four codecs  |
//!
//! Unlike D1/D2/M1/P1, these rules see the whole workspace at once:
//! they run on the symbol table and call graph built by [`crate::parser`]
//! and [`crate::graph`], and their diagnostics carry per-edge blame
//! chains so a finding three calls away from its entry point is still
//! actionable (and a false edge from the over-approximate resolution is
//! visible rather than mysterious).

use std::collections::BTreeMap;

use crate::diag::{Finding, Severity};
use crate::graph::{CallGraph, FnId};
use crate::parser::{FactKind, ParsedFile};
use crate::rules::{rules_for, Rule};

/// Everything the workspace rules need, pre-read by the caller so this
/// module stays free of I/O.
pub struct WorkspaceInput<'a> {
    /// Parsed structure of every lintable file.
    pub files: &'a [ParsedFile],
    /// The resolved call graph over `files`.
    pub graph: &'a CallGraph,
    /// Source lines per workspace-relative path (for snippets).
    pub lines: &'a BTreeMap<String, Vec<String>>,
    /// Content of `crates/net/tests/wire_props.rs`, when that file
    /// exists (`None` means the codec-coverage check is skipped or, if
    /// the net crate is present, reported as a W1 finding).
    pub wire_props: Option<&'a str>,
}

/// The file that owns the trace schema.
pub const TRACE_EVENT_FILE: &str = "crates/trace/src/event.rs";
/// The schema enum every sync point must track.
pub const TRACE_EVENT_ENUM: &str = "TraceEvent";
/// The codec property-test file every `Wire` type must appear in.
pub const WIRE_PROPS_FILE: &str = "crates/net/tests/wire_props.rs";

/// `Wire` impl targets exempt from codec-coverage: primitives and std
/// containers are covered by construction through every composite type.
const WIRE_BUILTINS: &[&str] = &["u8", "u16", "u32", "u64", "bool", "Option", "Vec"];

/// One place the trace schema must be mirrored: a function (or, with
/// `func: None`, any function in the file) that must mention every
/// `TraceEvent::Variant`.
struct SyncPoint {
    file: &'static str,
    /// `(fn name, required impl owner)`; `None` means any fn in `file`.
    func: Option<(&'static str, Option<&'static str>)>,
    what: &'static str,
}

const W1_SYNC_POINTS: &[SyncPoint] = &[
    SyncPoint {
        file: "crates/trace/src/wire.rs",
        func: Some(("encode", Some("TraceEvent"))),
        what: "wire encode arm (no tag is ever written)",
    },
    SyncPoint {
        file: "crates/trace/src/wire.rs",
        func: Some(("decode", Some("TraceEvent"))),
        what: "wire decode arm (its tag cannot be read back)",
    },
    SyncPoint {
        file: "crates/trace/src/jsonl.rs",
        func: Some(("event_to_json", None)),
        what: "JSONL encode arm",
    },
    SyncPoint {
        file: "crates/trace/src/jsonl.rs",
        func: Some(("event_from_object", None)),
        what: "JSONL decode arm",
    },
    SyncPoint {
        file: "crates/trace/src/audit.rs",
        func: None,
        what: "audit arm (the auditor cannot account for it)",
    },
    SyncPoint {
        file: "crates/trace/src/summary.rs",
        func: None,
        what: "summary arm",
    },
];

/// Runs P2, D3, and W1 over the workspace model. Returns rule-tagged
/// candidate findings (the caller applies annotations and the
/// allowlist) plus internal analyzer errors (exit code 3, not findings).
pub fn check_workspace(input: &WorkspaceInput<'_>) -> (Vec<(Rule, Finding)>, Vec<String>) {
    let mut out = Vec::new();
    let mut internal = Vec::new();
    check_p2(input, &mut out);
    check_d3(input, &mut out);
    check_w1(input, &mut out, &mut internal);
    (out, internal)
}

fn snippet(input: &WorkspaceInput<'_>, rel: &str, line: u32) -> String {
    input
        .lines
        .get(rel)
        .and_then(|ls| ls.get(line as usize - 1))
        .cloned()
        .unwrap_or_default()
}

fn finding(
    input: &WorkspaceInput<'_>,
    rule: Rule,
    rel: &str,
    line: u32,
    col: u32,
    message: String,
) -> (Rule, Finding) {
    (
        rule,
        Finding {
            rule: rule.code(),
            severity: Severity::Error,
            path: rel.to_string(),
            line,
            col,
            message,
            snippet: snippet(input, rel, line),
            help: rule.help(),
        },
    )
}

/// P2: a panic site in *any* function transitively reachable from the
/// runtime / agent-step entry points (the P1-scoped files) crashes the
/// run just as surely as one written in those files directly. The
/// per-file P1 rule polices its own scope; P2 follows every call edge
/// out of it.
fn check_p2(input: &WorkspaceInput<'_>, out: &mut Vec<(Rule, Finding)>) {
    let g = input.graph;
    let entries: Vec<FnId> = (0..g.fns.len())
        .filter(|&id| rules_for(&g.fns[id].rel).contains(&Rule::P1))
        .collect();
    if entries.is_empty() {
        return;
    }
    let reached = g.reach_forward(&entries);
    for id in 0..g.fns.len() {
        let node = &g.fns[id];
        if rules_for(&node.rel).contains(&Rule::P1) {
            continue; // P1's own jurisdiction
        }
        if !reached.contains_key(&id) {
            continue;
        }
        let panics: Vec<_> = node
            .facts
            .iter()
            .filter(|f| f.kind == FactKind::Panic)
            .collect();
        if panics.is_empty() {
            continue;
        }
        let chain = g
            .path_to(&reached, id)
            .map(|p| g.render_chain(&p))
            .unwrap_or_default();
        for fact in panics {
            out.push(finding(
                input,
                Rule::P2,
                &node.rel,
                fact.line,
                fact.col,
                format!(
                    "{} in `{}` is reachable from a runtime/agent entry point: {chain}",
                    fact.what,
                    node.display_name()
                ),
            ));
        }
    }
}

/// D3: a function outside the D1/D2 scope may legitimately touch
/// `HashMap` or `Instant::now` — but the moment a determinism-policed
/// function consumes a value it returns, iteration order or wall time
/// has leaked into solver state or metrics, one call away from where
/// the per-file rules look.
fn check_d3(input: &WorkspaceInput<'_>, out: &mut Vec<(Rule, Finding)>) {
    let g = input.graph;
    let is_protected = |id: FnId| {
        let rules = rules_for(&g.fns[id].rel);
        rules.contains(&Rule::D1) || rules.contains(&Rule::D2)
    };
    for id in 0..g.fns.len() {
        let node = &g.fns[id];
        if !node.returns_value {
            continue; // nothing flows back to a caller
        }
        let scoped = rules_for(&node.rel);
        let tainted: Vec<_> = node
            .facts
            .iter()
            .filter(|f| match f.kind {
                // Sources already policed in-file by D1/D2 are not
                // re-reported one level up.
                FactKind::Unordered => !scoped.contains(&Rule::D1),
                FactKind::Timing => !scoped.contains(&Rule::D2),
                FactKind::Panic => false,
            })
            .collect();
        if tainted.is_empty() {
            continue;
        }
        // Who can reach this source? Walk the caller graph upward and
        // report against the nearest determinism-policed caller.
        let reached = g.reach_backward(&[id]);
        let Some(&protected) = reached.keys().find(|&&c| c != id && is_protected(c)) else {
            continue;
        };
        let chain = g
            .caller_chain(&reached, protected)
            .map(|p| g.render_chain(&p))
            .unwrap_or_default();
        for fact in tainted {
            out.push(finding(
                input,
                Rule::D3,
                &node.rel,
                fact.line,
                fact.col,
                format!(
                    "`{}` in `{}` returns a value consumed by determinism-policed code: {chain}",
                    fact.what,
                    node.display_name()
                ),
            ));
        }
    }
}

/// W1: the trace schema is mirrored in four hand-written codecs (wire
/// tags, JSONL, audit, summary) plus the codec property tests; PR 6
/// synchronized them by hand for `NogoodForgotten`, and this rule makes
/// that sync mechanical for every variant after it.
fn check_w1(
    input: &WorkspaceInput<'_>,
    out: &mut Vec<(Rule, Finding)>,
    internal: &mut Vec<String>,
) {
    let event_file = input.files.iter().find(|f| f.rel == TRACE_EVENT_FILE);
    if let Some(event_file) = event_file {
        let Some(schema) = event_file.enums.iter().find(|e| e.name == TRACE_EVENT_ENUM) else {
            internal.push(format!(
                "W1: {TRACE_EVENT_FILE} exists but no `enum {TRACE_EVENT_ENUM}` was parsed from it"
            ));
            return;
        };
        check_sync_points(input, schema, out);
        check_wire_tags(input, out);
    }
    check_wire_coverage(input, out, internal);
}

fn check_sync_points(
    input: &WorkspaceInput<'_>,
    schema: &crate::parser::EnumItem,
    out: &mut Vec<(Rule, Finding)>,
) {
    for point in W1_SYNC_POINTS {
        let Some(file) = input.files.iter().find(|f| f.rel == point.file) else {
            out.push(finding(
                input,
                Rule::W1,
                TRACE_EVENT_FILE,
                schema.line,
                1,
                format!(
                    "schema sync point {} is missing from the workspace (needed for the {})",
                    point.file, point.what
                ),
            ));
            continue;
        };
        // Collect the functions this sync point inspects.
        let fns: Vec<_> = file
            .fns
            .iter()
            .filter(|f| match point.func {
                Some((name, owner)) => {
                    f.name == name && (owner.is_none() || f.owner.as_deref() == owner)
                }
                None => true,
            })
            .collect();
        if fns.is_empty() {
            let (name, _) = point.func.unwrap_or(("<any>", None));
            out.push(finding(
                input,
                Rule::W1,
                point.file,
                1,
                1,
                format!(
                    "schema sync function `{name}` is missing from {} (needed for the {})",
                    point.file, point.what
                ),
            ));
            continue;
        }
        let anchor = fns[0].line;
        for (variant, _) in &schema.variants {
            let mentioned = fns.iter().any(|f| {
                f.variant_refs
                    .iter()
                    .any(|(e, v, _)| e == TRACE_EVENT_ENUM && v == variant)
            });
            if !mentioned {
                out.push(finding(
                    input,
                    Rule::W1,
                    point.file,
                    anchor,
                    1,
                    format!(
                        "`{TRACE_EVENT_ENUM}::{variant}` has no {} in {}",
                        point.what, point.file
                    ),
                ));
            }
        }
    }
}

/// Every `out.push(<tag>)` in `TraceEvent::encode` must use a distinct
/// tag, or two variants alias on the wire and decode picks one of them.
fn check_wire_tags(input: &WorkspaceInput<'_>, out: &mut Vec<(Rule, Finding)>) {
    let Some(file) = input.files.iter().find(|f| f.rel == "crates/trace/src/wire.rs") else {
        return; // already reported by the sync-point pass
    };
    let Some(encode) = file
        .fns
        .iter()
        .find(|f| f.name == "encode" && f.owner.as_deref() == Some(TRACE_EVENT_ENUM))
    else {
        return; // already reported by the sync-point pass
    };
    let mut seen: BTreeMap<u64, u32> = BTreeMap::new();
    for &(tag, line) in &encode.tag_pushes {
        if let Some(&first) = seen.get(&tag) {
            out.push(finding(
                input,
                Rule::W1,
                &file.rel,
                line,
                1,
                format!(
                    "wire tag {tag} is pushed twice in `TraceEvent::encode` \
                     (first at line {first}); tags must be unique per variant"
                ),
            ));
        } else {
            seen.insert(tag, line);
        }
    }
}

/// Every non-builtin `impl Wire for X` must exercise `X` in the codec
/// property tests — an impl the fuzzer never constructs is an impl
/// whose truncation/corruption behavior nobody has checked.
fn check_wire_coverage(
    input: &WorkspaceInput<'_>,
    out: &mut Vec<(Rule, Finding)>,
    internal: &mut Vec<String>,
) {
    let impls: Vec<(&str, &str, u32)> = input
        .files
        .iter()
        .flat_map(|f| {
            f.trait_impls
                .iter()
                .filter(|i| i.trait_name == "Wire" && !WIRE_BUILTINS.contains(&i.target.as_str()))
                .map(move |i| (f.rel.as_str(), i.target.as_str(), i.line))
        })
        .collect();
    if impls.is_empty() {
        return;
    }
    let has_net = input.files.iter().any(|f| f.rel.starts_with("crates/net/"));
    let Some(props) = input.wire_props else {
        if has_net {
            internal.push(format!(
                "W1: {WIRE_PROPS_FILE} is missing or unreadable, so codec coverage \
                 cannot be checked"
            ));
        }
        return;
    };
    // Lex the test file so `LinkStats` in a comment or string does not
    // count as coverage.
    let idents: std::collections::BTreeSet<String> = crate::lexer::lex(props)
        .into_iter()
        .filter(|t| t.kind == crate::lexer::TokenKind::Ident)
        .map(|t| t.text)
        .collect();
    for (rel, target, line) in impls {
        if !idents.contains(target) {
            out.push(finding(
                input,
                Rule::W1,
                rel,
                line,
                1,
                format!(
                    "`{target}` implements `Wire` but never appears in the codec \
                     property tests ({WIRE_PROPS_FILE})"
                ),
            ));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse_file;

    fn run(files: &[(&str, &str)], wire_props: Option<&str>) -> (Vec<(Rule, Finding)>, Vec<String>) {
        let parsed: Vec<ParsedFile> = files
            .iter()
            .map(|(rel, src)| parse_file(rel, &lex(src)))
            .collect();
        let graph = CallGraph::build(&parsed);
        let lines: BTreeMap<String, Vec<String>> = files
            .iter()
            .map(|(rel, src)| {
                (
                    rel.to_string(),
                    src.lines().map(str::to_string).collect(),
                )
            })
            .collect();
        let input = WorkspaceInput {
            files: &parsed,
            graph: &graph,
            lines: &lines,
            wire_props,
        };
        check_workspace(&input)
    }

    fn codes(findings: &[(Rule, Finding)]) -> Vec<&'static str> {
        findings.iter().map(|(_, f)| f.rule).collect()
    }

    #[test]
    fn p2_flags_reachable_panic_with_blame_chain() {
        let (fs, _) = run(
            &[
                (
                    "crates/runtime/src/sync.rs",
                    "pub fn run_cycle() {\n helper();\n}\n",
                ),
                (
                    "crates/core/src/util.rs",
                    "pub fn helper() {\n let x = v.unwrap();\n}\n",
                ),
            ],
            None,
        );
        assert_eq!(codes(&fs), vec!["P2"]);
        let f = &fs[0].1;
        assert_eq!(f.path, "crates/core/src/util.rs");
        assert_eq!(f.line, 2);
        assert!(f.message.contains("`run_cycle` (crates/runtime/src/sync.rs:2)"), "{}", f.message);
        assert!(f.message.ends_with("`helper`"), "{}", f.message);
    }

    #[test]
    fn p2_ignores_unreachable_panics_and_p1_scope() {
        let (fs, _) = run(
            &[
                ("crates/runtime/src/sync.rs", "pub fn run_cycle() {}\n"),
                (
                    "crates/core/src/util.rs",
                    "pub fn never_called() { v.unwrap(); }\n",
                ),
            ],
            None,
        );
        assert!(codes(&fs).is_empty(), "{fs:?}");
    }

    #[test]
    fn d3_flags_tainted_value_flowing_into_policed_code() {
        let (fs, _) = run(
            &[
                (
                    "crates/net/src/endpoint.rs",
                    "pub fn session() {\n let d = transport::deadline_left();\n}\n",
                ),
                (
                    "crates/net/src/transport.rs",
                    "pub fn deadline_left() -> u64 {\n Instant::now().elapsed().as_millis() as u64\n}\n",
                ),
            ],
            None,
        );
        assert_eq!(codes(&fs), vec!["D3"]);
        let f = &fs[0].1;
        assert_eq!(f.path, "crates/net/src/transport.rs");
        assert!(f.message.contains("Instant::now"));
        assert!(f.message.contains("`session` (crates/net/src/endpoint.rs:2)"), "{}", f.message);
    }

    #[test]
    fn d3_ignores_unit_returns_and_unreferenced_sources() {
        let (fs, _) = run(
            &[
                (
                    "crates/net/src/endpoint.rs",
                    "pub fn session() {\n transport::wait();\n}\n",
                ),
                (
                    "crates/net/src/transport.rs",
                    // Unit return: the wall clock bounds a wait, no value
                    // escapes to the caller.
                    "pub fn wait() {\n let t = Instant::now();\n}\n\
                     pub fn unused() -> u64 { SystemTime::now() }\n",
                ),
            ],
            None,
        );
        assert!(codes(&fs).is_empty(), "{fs:?}");
    }

    const MINI_EVENT: &str = "pub enum TraceEvent {\n A { cycle: u64 },\n B { cycle: u64 },\n}\n";

    fn mini_trace_files(jsonl_has_b: bool) -> Vec<(&'static str, String)> {
        let jsonl_b = if jsonl_has_b {
            "TraceEvent::B { .. } => x(),"
        } else {
            ""
        };
        vec![
            ("crates/trace/src/event.rs", MINI_EVENT.to_string()),
            (
                "crates/trace/src/wire.rs",
                "impl Wire for TraceEvent {\n\
                 fn encode(&self) { match self { TraceEvent::A { .. } => out.push(0), \
                 TraceEvent::B { .. } => out.push(1), } }\n\
                 fn decode(r: &mut R) -> T { match t { 0 => TraceEvent::A { cycle: 0 }, \
                 _ => TraceEvent::B { cycle: 0 } } }\n}\n"
                    .to_string(),
            ),
            (
                "crates/trace/src/jsonl.rs",
                format!(
                    "pub fn event_to_json(e: &TraceEvent) {{ match e {{ \
                     TraceEvent::A {{ .. }} => x(), {jsonl_b} }} }}\n\
                     fn event_from_object(o: &O) {{ let a = TraceEvent::A {{ cycle: 0 }}; \
                     let b = TraceEvent::B {{ cycle: 0 }}; }}\n"
                ),
            ),
            (
                "crates/trace/src/audit.rs",
                "pub fn audit(e: &TraceEvent) { match e { TraceEvent::A { .. } => x(), \
                 TraceEvent::B { .. } => y(), } }\n"
                    .to_string(),
            ),
            (
                "crates/trace/src/summary.rs",
                "pub fn summarize(e: &TraceEvent) { match e { TraceEvent::A { .. } => x(), \
                 TraceEvent::B { .. } => y(), } }\n"
                    .to_string(),
            ),
        ]
    }

    #[test]
    fn w1_clean_when_all_arms_present() {
        let files = mini_trace_files(true);
        let refs: Vec<(&str, &str)> = files.iter().map(|(r, s)| (*r, s.as_str())).collect();
        let (fs, internal) = run(&refs, None);
        assert!(codes(&fs).is_empty(), "{fs:?}");
        assert!(internal.is_empty());
    }

    #[test]
    fn w1_catches_missing_jsonl_arm() {
        let files = mini_trace_files(false);
        let refs: Vec<(&str, &str)> = files.iter().map(|(r, s)| (*r, s.as_str())).collect();
        let (fs, _) = run(&refs, None);
        assert_eq!(codes(&fs), vec!["W1"]);
        let f = &fs[0].1;
        assert_eq!(f.path, "crates/trace/src/jsonl.rs");
        assert!(f.message.contains("`TraceEvent::B` has no JSONL encode arm"), "{}", f.message);
    }

    #[test]
    fn w1_catches_duplicate_wire_tag() {
        let mut files = mini_trace_files(true);
        files[1].1 = files[1].1.replace("out.push(1)", "out.push(0)");
        let refs: Vec<(&str, &str)> = files.iter().map(|(r, s)| (*r, s.as_str())).collect();
        let (fs, _) = run(&refs, None);
        assert_eq!(codes(&fs), vec!["W1"]);
        assert!(fs[0].1.message.contains("wire tag 0 is pushed twice"), "{}", fs[0].1.message);
    }

    #[test]
    fn w1_catches_missing_sync_file() {
        let mut files = mini_trace_files(true);
        files.retain(|(rel, _)| *rel != "crates/trace/src/summary.rs");
        let refs: Vec<(&str, &str)> = files.iter().map(|(r, s)| (*r, s.as_str())).collect();
        let (fs, _) = run(&refs, None);
        assert_eq!(codes(&fs), vec!["W1"]);
        assert!(fs[0].1.message.contains("crates/trace/src/summary.rs is missing"));
        assert_eq!(fs[0].1.path, TRACE_EVENT_FILE);
    }

    #[test]
    fn w1_wire_coverage_flags_untested_impls() {
        let (fs, internal) = run(
            &[(
                "crates/net/src/frame.rs",
                "impl Wire for SetupFrame { fn encode(&self) {} }\n\
                 impl Wire for Spare { fn encode(&self) {} }\n",
            )],
            Some("fn roundtrip() { let f: SetupFrame = gen(); }\n// Spare in a comment only\n"),
        );
        assert_eq!(codes(&fs), vec!["W1"]);
        assert!(fs[0].1.message.contains("`Spare` implements `Wire`"));
        assert!(internal.is_empty());
    }

    #[test]
    fn w1_missing_props_file_is_internal_when_net_exists() {
        let (fs, internal) = run(
            &[(
                "crates/net/src/frame.rs",
                "impl Wire for SetupFrame { fn encode(&self) {} }\n",
            )],
            None,
        );
        assert!(codes(&fs).is_empty());
        assert_eq!(internal.len(), 1);
        assert!(internal[0].contains("wire_props.rs"));
    }
}
