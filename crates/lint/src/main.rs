//! The `discsp-lint` binary.
//!
//! ```text
//! cargo run -p discsp-lint                  # lint the whole workspace
//! cargo run -p discsp-lint -- --json       # machine-readable output
//! cargo run -p discsp-lint -- FILE.rs ...  # lint specific files, all rules
//! ```
//!
//! Exits 0 when no error-severity findings exist, 1 when any do, and
//! 2 on usage errors. Warnings (stale allowlist entries, unused inline
//! annotations) are printed but do not fail the run.

use std::env;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use discsp_lint::allow::Allowlist;
use discsp_lint::diag::{render_json, render_text, Finding, Severity};
use discsp_lint::rules::ALL_RULES;
use discsp_lint::{analyze_source, analyze_workspace};

struct Options {
    root: Option<PathBuf>,
    allowlist: Option<PathBuf>,
    json: bool,
    files: Vec<PathBuf>,
}

fn usage() -> &'static str {
    "usage: discsp-lint [--root DIR] [--allowlist FILE] [--json] [FILES...]\n\
     \n\
     With FILES, every rule is applied to each file regardless of the\n\
     scope map (fixture/debug mode). Without FILES, the workspace under\n\
     --root (autodetected from the current directory) is analyzed with\n\
     the scope map and lint-allow.list."
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        root: None,
        allowlist: None,
        json: false,
        files: Vec::new(),
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => opts.json = true,
            "--root" => {
                i += 1;
                let dir = args.get(i).ok_or("--root needs a directory argument")?;
                opts.root = Some(PathBuf::from(dir));
            }
            "--allowlist" => {
                i += 1;
                let file = args.get(i).ok_or("--allowlist needs a file argument")?;
                opts.allowlist = Some(PathBuf::from(file));
            }
            "--help" | "-h" => return Err(String::new()),
            flag if flag.starts_with('-') => {
                return Err(format!("unknown flag `{flag}`"));
            }
            file => opts.files.push(PathBuf::from(file)),
        }
        i += 1;
    }
    Ok(opts)
}

/// Walks upward from the current directory to the first directory that
/// looks like the workspace root (has both `Cargo.toml` and `crates/`).
fn detect_root() -> Option<PathBuf> {
    let mut dir = env::current_dir().ok()?;
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn load_allowlist(path: &Path) -> (Allowlist, Vec<Finding>) {
    match fs::read_to_string(path) {
        Ok(text) => Allowlist::parse(&path.to_string_lossy(), &text),
        Err(e) => {
            eprintln!("discsp-lint: cannot read allowlist {}: {e}", path.display());
            (Allowlist::empty(), Vec::new())
        }
    }
}

/// Fixture/debug mode: every rule on every named file, so rule behavior
/// can be exercised on files outside the workspace scope map.
fn run_on_files(opts: &Options) -> Result<Vec<Finding>, String> {
    let (allowlist, mut findings) = match &opts.allowlist {
        Some(path) => load_allowlist(path),
        None => (Allowlist::empty(), Vec::new()),
    };
    for file in &opts.files {
        let src = fs::read_to_string(file)
            .map_err(|e| format!("cannot read {}: {e}", file.display()))?;
        let rel = file.to_string_lossy().replace('\\', "/");
        findings.extend(analyze_source(&rel, &src, &ALL_RULES, &allowlist));
    }
    findings.extend(allowlist.unused_entries());
    Ok(findings)
}

fn run_on_workspace(opts: &Options) -> Result<(Vec<Finding>, usize), String> {
    let root = match &opts.root {
        Some(r) => r.clone(),
        None => detect_root().ok_or(
            "cannot find workspace root (no Cargo.toml + crates/ above the current \
             directory); pass --root",
        )?,
    };
    let report = analyze_workspace(&root);
    Ok((report.findings, report.files_scanned))
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            if msg.is_empty() {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            eprintln!("discsp-lint: {msg}\n{}", usage());
            return ExitCode::from(2);
        }
    };

    let outcome = if opts.files.is_empty() {
        run_on_workspace(&opts).map(|(f, n)| (f, Some(n)))
    } else {
        run_on_files(&opts).map(|f| (f, None))
    };
    let (findings, files_scanned) = match outcome {
        Ok(x) => x,
        Err(msg) => {
            eprintln!("discsp-lint: {msg}");
            return ExitCode::from(2);
        }
    };

    let errors = findings.iter().filter(|f| f.severity == Severity::Error).count();
    let warnings = findings.len() - errors;

    if opts.json {
        print!("{}", render_json(&findings));
    } else {
        for f in &findings {
            print!("{}", render_text(f));
            println!();
        }
        let scanned = files_scanned.map_or(String::new(), |n| format!(" across {n} files"));
        if errors == 0 && warnings == 0 {
            println!("discsp-lint: clean{scanned}");
        } else {
            println!(
                "discsp-lint: {errors} error{}, {warnings} warning{}{scanned}",
                if errors == 1 { "" } else { "s" },
                if warnings == 1 { "" } else { "s" },
            );
        }
    }

    if errors > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
