//! The `discsp-lint` binary.
//!
//! ```text
//! cargo run -p discsp-lint                  # lint the whole workspace
//! cargo run -p discsp-lint -- --json       # machine-readable output
//! cargo run -p discsp-lint -- --timing     # per-phase wall-time table
//! cargo run -p discsp-lint -- FILE.rs ...  # lint specific files, all per-file rules
//! ```
//!
//! Exit codes: 0 clean, 1 error-severity findings, 2 usage errors, and
//! 3 for *internal analyzer errors* (unreadable inputs, missing schema
//! sync points, blown `--max-millis` budget) — a distinct code so CI
//! can tell a broken lint from a dirty tree. Warnings (unused inline
//! annotations) are printed but do not fail the run.

use std::env;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use discsp_lint::allow::Allowlist;
use discsp_lint::diag::{render_json, render_text, Finding, Severity};
use discsp_lint::rules::FILE_RULES;
use discsp_lint::{analyze_source, analyze_workspace, WorkspaceReport};

struct Options {
    root: Option<PathBuf>,
    allowlist: Option<PathBuf>,
    json: bool,
    timing: bool,
    max_millis: Option<u64>,
    files: Vec<PathBuf>,
}

fn usage() -> &'static str {
    "usage: discsp-lint [--root DIR] [--allowlist FILE] [--json] [--timing] \
     [--max-millis N] [FILES...]\n\
     \n\
     With FILES, every per-file rule is applied to each file regardless\n\
     of the scope map (fixture/debug mode). Without FILES, the workspace\n\
     under --root (autodetected from the current directory) is analyzed\n\
     with the scope map, the workspace rules (P2/D3/W1), and\n\
     lint-allow.list. --timing prints a per-phase wall-time table;\n\
     --max-millis N makes a run slower than N ms an internal error\n\
     (exit 3), which is how CI holds the analyzer to its budget."
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut opts = Options {
        root: None,
        allowlist: None,
        json: false,
        timing: false,
        max_millis: None,
        files: Vec::new(),
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--json" => opts.json = true,
            "--timing" => opts.timing = true,
            "--max-millis" => {
                i += 1;
                let n = args.get(i).ok_or("--max-millis needs a number argument")?;
                opts.max_millis =
                    Some(n.parse().map_err(|_| format!("bad --max-millis value `{n}`"))?);
            }
            "--root" => {
                i += 1;
                let dir = args.get(i).ok_or("--root needs a directory argument")?;
                opts.root = Some(PathBuf::from(dir));
            }
            "--allowlist" => {
                i += 1;
                let file = args.get(i).ok_or("--allowlist needs a file argument")?;
                opts.allowlist = Some(PathBuf::from(file));
            }
            "--help" | "-h" => return Err(String::new()),
            flag if flag.starts_with('-') => {
                return Err(format!("unknown flag `{flag}`"));
            }
            file => opts.files.push(PathBuf::from(file)),
        }
        i += 1;
    }
    Ok(opts)
}

/// Walks upward from the current directory to the first directory that
/// looks like the workspace root (has both `Cargo.toml` and `crates/`).
fn detect_root() -> Option<PathBuf> {
    let mut dir = env::current_dir().ok()?;
    loop {
        if dir.join("Cargo.toml").is_file() && dir.join("crates").is_dir() {
            return Some(dir);
        }
        if !dir.pop() {
            return None;
        }
    }
}

fn load_allowlist(path: &Path) -> (Allowlist, Vec<Finding>) {
    match fs::read_to_string(path) {
        Ok(text) => Allowlist::parse(&path.to_string_lossy(), &text),
        Err(e) => {
            eprintln!("discsp-lint: cannot read allowlist {}: {e}", path.display());
            (Allowlist::empty(), Vec::new())
        }
    }
}

/// Fixture/debug mode: every per-file rule on every named file, so rule
/// behavior can be exercised on files outside the workspace scope map.
fn run_on_files(opts: &Options) -> Result<Vec<Finding>, String> {
    let (allowlist, mut findings) = match &opts.allowlist {
        Some(path) => load_allowlist(path),
        None => (Allowlist::empty(), Vec::new()),
    };
    for file in &opts.files {
        let src = fs::read_to_string(file)
            .map_err(|e| format!("cannot read {}: {e}", file.display()))?;
        let rel = file.to_string_lossy().replace('\\', "/");
        findings.extend(analyze_source(&rel, &src, &FILE_RULES, &allowlist));
    }
    findings.extend(allowlist.unused_entries());
    Ok(findings)
}

fn run_on_workspace(opts: &Options) -> Result<WorkspaceReport, String> {
    let root = match &opts.root {
        Some(r) => r.clone(),
        None => detect_root().ok_or(
            "cannot find workspace root (no Cargo.toml + crates/ above the current \
             directory); pass --root",
        )?,
    };
    Ok(analyze_workspace(&root))
}

fn print_timings(report: &WorkspaceReport) {
    println!("discsp-lint timing:");
    for (phase, d) in &report.timings {
        println!("  {phase:<20} {:>8.2} ms", d.as_secs_f64() * 1000.0);
    }
    println!(
        "  {:<20} {:>8.2} ms  ({} files, {} fns, {} call edges)",
        "total",
        report.total_time().as_secs_f64() * 1000.0,
        report.files_scanned,
        report.fns_indexed,
        report.call_edges,
    );
}

fn main() -> ExitCode {
    let args: Vec<String> = env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            if msg.is_empty() {
                println!("{}", usage());
                return ExitCode::SUCCESS;
            }
            eprintln!("discsp-lint: {msg}\n{}", usage());
            return ExitCode::from(2);
        }
    };

    let mut internal_errors = Vec::new();
    let (findings, files_scanned) = if opts.files.is_empty() {
        match run_on_workspace(&opts) {
            Ok(report) => {
                internal_errors.extend(report.internal_errors.iter().cloned());
                if let Some(budget) = opts.max_millis {
                    // Microsecond resolution so `--max-millis 0` always
                    // trips: a sub-millisecond run truncates to 0 ms.
                    let spent_us = report.total_time().as_micros() as u64;
                    if spent_us > budget.saturating_mul(1000) {
                        internal_errors.push(format!(
                            "analyzer blew its time budget: {:.2} ms > {budget} ms",
                            spent_us as f64 / 1000.0
                        ));
                    }
                }
                if opts.timing {
                    print_timings(&report);
                }
                (report.findings, Some(report.files_scanned))
            }
            Err(msg) => {
                eprintln!("discsp-lint: {msg}");
                return ExitCode::from(2);
            }
        }
    } else {
        match run_on_files(&opts) {
            Ok(f) => (f, None),
            Err(msg) => {
                eprintln!("discsp-lint: {msg}");
                return ExitCode::from(2);
            }
        }
    };

    let errors = findings.iter().filter(|f| f.severity == Severity::Error).count();
    let warnings = findings.len() - errors;

    if opts.json {
        print!("{}", render_json(&findings));
    } else {
        for f in &findings {
            print!("{}", render_text(f));
            println!();
        }
        let scanned = files_scanned.map_or(String::new(), |n| format!(" across {n} files"));
        if errors == 0 && warnings == 0 {
            println!("discsp-lint: clean{scanned}");
        } else {
            println!(
                "discsp-lint: {errors} error{}, {warnings} warning{}{scanned}",
                if errors == 1 { "" } else { "s" },
                if warnings == 1 { "" } else { "s" },
            );
        }
    }

    if !internal_errors.is_empty() {
        for e in &internal_errors {
            eprintln!("discsp-lint: internal error: {e}");
        }
        return ExitCode::from(3);
    }
    if errors > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
