//! A small hand-rolled Rust lexer.
//!
//! The rule engine does not need a parser — every invariant it enforces
//! is visible at the token level — but it *does* need to distinguish
//! identifiers from the same words inside strings, comments, and char
//! literals, and it needs exact `line:col` positions for diagnostics.
//! That is precisely what this lexer provides, and nothing more.

/// Classification of one token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword (`HashMap`, `fn`, `unwrap`, …).
    Ident,
    /// Lifetime (`'a`) — distinguished from char literals.
    Lifetime,
    /// Numeric literal (`0`, `0xFF`, `1_000u64`, `1.5`).
    Number,
    /// String literal of any flavor (`"…"`, `r#"…"#`, `b"…"`).
    Str,
    /// Character or byte literal (`'x'`, `b'\n'`).
    CharLit,
    /// Single punctuation character (`.`, `[`, `!`, …).
    Punct,
    /// Line or block comment, text included (`// …`, `/* … */`).
    Comment,
}

/// One lexed token with its 1-based source position.
#[derive(Debug, Clone)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// The token's text, including delimiters for strings and comments.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
    /// 1-based column of the token's first character.
    pub col: u32,
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

fn is_ident_start(c: char) -> bool {
    c == '_' || c.is_alphabetic()
}

fn is_ident_continue(c: char) -> bool {
    c == '_' || c.is_alphanumeric()
}

/// Lexes `src` into a token stream.
///
/// The lexer is total: any input produces a token list (unterminated
/// strings or comments simply extend to end of input), so the analyzer
/// can never be crashed by the code it scans.
pub fn lex(src: &str) -> Vec<Token> {
    let mut lx = Lexer {
        chars: src.chars().collect(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut tokens = Vec::new();

    while let Some(c) = lx.peek(0) {
        let (line, col) = (lx.line, lx.col);
        match c {
            c if c.is_whitespace() => {
                lx.bump();
            }
            '/' if lx.peek(1) == Some('/') => {
                let mut text = String::new();
                while let Some(ch) = lx.peek(0) {
                    if ch == '\n' {
                        break;
                    }
                    text.push(ch);
                    lx.bump();
                }
                tokens.push(Token {
                    kind: TokenKind::Comment,
                    text,
                    line,
                    col,
                });
            }
            '/' if lx.peek(1) == Some('*') => {
                let mut text = String::new();
                let mut depth = 0usize;
                while let Some(ch) = lx.peek(0) {
                    if ch == '/' && lx.peek(1) == Some('*') {
                        depth += 1;
                        text.push('/');
                        text.push('*');
                        lx.bump();
                        lx.bump();
                    } else if ch == '*' && lx.peek(1) == Some('/') {
                        depth -= 1;
                        text.push('*');
                        text.push('/');
                        lx.bump();
                        lx.bump();
                        if depth == 0 {
                            break;
                        }
                    } else {
                        text.push(ch);
                        lx.bump();
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Comment,
                    text,
                    line,
                    col,
                });
            }
            '"' => {
                let text = lex_string(&mut lx, false);
                tokens.push(Token {
                    kind: TokenKind::Str,
                    text,
                    line,
                    col,
                });
            }
            '\'' => {
                let (kind, text) = lex_quote(&mut lx);
                tokens.push(Token {
                    kind,
                    text,
                    line,
                    col,
                });
            }
            c if c.is_ascii_digit() => {
                let mut text = String::new();
                while let Some(ch) = lx.peek(0) {
                    let fraction_dot =
                        ch == '.' && lx.peek(1).is_some_and(|d| d.is_ascii_digit());
                    if is_ident_continue(ch) || fraction_dot {
                        text.push(ch);
                        lx.bump();
                    } else {
                        break;
                    }
                }
                tokens.push(Token {
                    kind: TokenKind::Number,
                    text,
                    line,
                    col,
                });
            }
            c if is_ident_start(c) => {
                let mut text = String::new();
                while let Some(ch) = lx.peek(0) {
                    if is_ident_continue(ch) {
                        text.push(ch);
                        lx.bump();
                    } else {
                        break;
                    }
                }
                // String prefixes: r"…", r#"…"#, b"…", br#"…"#, c"…".
                let raw_capable = matches!(text.as_str(), "r" | "br" | "cr" | "b" | "c");
                if raw_capable && lx.peek(0) == Some('"') {
                    let raw = text.contains('r');
                    let body = lex_string(&mut lx, raw);
                    tokens.push(Token {
                        kind: TokenKind::Str,
                        text: format!("{text}{body}"),
                        line,
                        col,
                    });
                } else if raw_capable && text.contains('r') && lx.peek(0) == Some('#') {
                    let body = lex_raw_hash_string(&mut lx);
                    tokens.push(Token {
                        kind: TokenKind::Str,
                        text: format!("{text}{body}"),
                        line,
                        col,
                    });
                } else if text == "b" && lx.peek(0) == Some('\'') {
                    let (_, body) = lex_quote(&mut lx);
                    tokens.push(Token {
                        kind: TokenKind::CharLit,
                        text: format!("b{body}"),
                        line,
                        col,
                    });
                } else {
                    tokens.push(Token {
                        kind: TokenKind::Ident,
                        text,
                        line,
                        col,
                    });
                }
            }
            _ => {
                lx.bump();
                tokens.push(Token {
                    kind: TokenKind::Punct,
                    text: c.to_string(),
                    line,
                    col,
                });
            }
        }
    }
    tokens
}

/// Lexes a `"…"` string starting at the opening quote. In raw mode no
/// escape processing happens.
fn lex_string(lx: &mut Lexer, raw: bool) -> String {
    let mut text = String::new();
    text.push('"');
    lx.bump(); // opening quote
    while let Some(ch) = lx.peek(0) {
        if ch == '\\' && !raw {
            text.push(ch);
            lx.bump();
            if let Some(esc) = lx.peek(0) {
                text.push(esc);
                lx.bump();
            }
        } else if ch == '"' {
            text.push(ch);
            lx.bump();
            break;
        } else {
            text.push(ch);
            lx.bump();
        }
    }
    text
}

/// Lexes a `#…#"…"#…#` raw string starting at the first `#`.
fn lex_raw_hash_string(lx: &mut Lexer) -> String {
    let mut text = String::new();
    let mut hashes = 0usize;
    while lx.peek(0) == Some('#') {
        hashes += 1;
        text.push('#');
        lx.bump();
    }
    if lx.peek(0) != Some('"') {
        return text; // `r#foo` raw identifier, not a string
    }
    text.push('"');
    lx.bump();
    let closer: String = std::iter::once('"').chain("#".repeat(hashes).chars()).collect();
    let mut tail = String::new();
    while let Some(ch) = lx.peek(0) {
        tail.push(ch);
        lx.bump();
        if tail.ends_with(&closer) {
            break;
        }
    }
    text.push_str(&tail);
    text
}

/// Lexes a `'`-introduced token: either a char literal or a lifetime.
fn lex_quote(lx: &mut Lexer) -> (TokenKind, String) {
    let mut text = String::new();
    text.push('\'');
    lx.bump(); // opening quote
    match lx.peek(0) {
        Some('\\') => {
            // Escaped char literal: consume until the closing quote.
            while let Some(ch) = lx.peek(0) {
                text.push(ch);
                lx.bump();
                if ch == '\'' && text.len() > 2 {
                    break;
                }
            }
            (TokenKind::CharLit, text)
        }
        Some(c) if is_ident_start(c) => {
            while let Some(ch) = lx.peek(0) {
                if is_ident_continue(ch) {
                    text.push(ch);
                    lx.bump();
                } else {
                    break;
                }
            }
            if lx.peek(0) == Some('\'') && text.chars().count() == 2 {
                text.push('\'');
                lx.bump();
                (TokenKind::CharLit, text)
            } else {
                (TokenKind::Lifetime, text)
            }
        }
        Some(c) => {
            text.push(c);
            lx.bump();
            if lx.peek(0) == Some('\'') {
                text.push('\'');
                lx.bump();
            }
            (TokenKind::CharLit, text)
        }
        None => (TokenKind::CharLit, text),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text)).collect()
    }

    #[test]
    fn idents_and_puncts() {
        let toks = kinds("let x = a.unwrap();");
        assert_eq!(toks[0], (TokenKind::Ident, "let".to_string()));
        assert_eq!(toks[3], (TokenKind::Ident, "a".to_string()));
        assert_eq!(toks[4], (TokenKind::Punct, ".".to_string()));
        assert_eq!(toks[5], (TokenKind::Ident, "unwrap".to_string()));
    }

    #[test]
    fn words_in_strings_and_comments_are_not_idents() {
        let toks = kinds("\"HashMap\" // HashMap\n/* HashMap */ r#\"HashMap\"#");
        assert!(toks
            .iter()
            .all(|(k, _)| !matches!(k, TokenKind::Ident)));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("impl<'a> Foo<'a> { const C: char = 'a'; }");
        let lifetimes = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Lifetime)
            .count();
        let chars = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::CharLit)
            .count();
        assert_eq!(lifetimes, 2);
        assert_eq!(chars, 1);
    }

    #[test]
    fn nested_block_comment_is_one_token() {
        let toks = kinds("/* a /* b */ c */ x");
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[1], (TokenKind::Ident, "x".to_string()));
    }

    #[test]
    fn positions_are_one_based_and_line_aware() {
        let toks = lex("a\n  b");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn numeric_literals_with_separators_and_suffixes() {
        let toks = kinds("0x2545_F491u64 1_000 1.5");
        assert!(toks.iter().all(|(k, _)| *k == TokenKind::Number));
        assert_eq!(toks.len(), 3);
    }

    #[test]
    fn escaped_quote_in_string() {
        let toks = kinds(r#""a\"b" x"#);
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[1], (TokenKind::Ident, "x".to_string()));
    }
}
