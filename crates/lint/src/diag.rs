//! Findings and their two output formats: rustc-style text and JSON.

use std::fmt::Write as _;

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Fails the lint run (exit code 1).
    Error,
    /// Reported but does not fail the run (e.g. stale allowlist entries).
    Warning,
}

impl Severity {
    fn label(self) -> &'static str {
        match self {
            Severity::Error => "error",
            Severity::Warning => "warning",
        }
    }
}

/// One rule violation (or meta-problem such as a stale allowlist entry).
#[derive(Debug, Clone)]
pub struct Finding {
    /// Rule code (`D1`, `D2`, `M1`, `P1`, `A0`).
    pub rule: &'static str,
    /// Error or warning.
    pub severity: Severity,
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based line.
    pub line: u32,
    /// 1-based column.
    pub col: u32,
    /// One-line description of the violation.
    pub message: String,
    /// The offending source line, for context.
    pub snippet: String,
    /// Rule-specific remediation hint.
    pub help: &'static str,
}

/// Renders one finding in rustc diagnostic style.
pub fn render_text(f: &Finding) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{}[{}]: {}", f.severity.label(), f.rule, f.message);
    let _ = writeln!(out, "  --> {}:{}:{}", f.path, f.line, f.col);
    let gutter = f.line.to_string().len().max(3);
    let _ = writeln!(out, "{:gutter$} |", "");
    let _ = writeln!(out, "{:>gutter$} | {}", f.line, f.snippet.trim_end());
    let caret_pad = f.col.saturating_sub(1) as usize;
    let _ = writeln!(out, "{:gutter$} | {:caret_pad$}^", "", "");
    if !f.help.is_empty() {
        let _ = writeln!(out, "{:gutter$} = help: {}", "", f.help);
    }
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders all findings as one JSON array (machine-readable mode).
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n  {{\"rule\":\"{}\",\"severity\":\"{}\",\"path\":\"{}\",\"line\":{},\"col\":{},\
             \"message\":\"{}\",\"snippet\":\"{}\"}}",
            f.rule,
            f.severity.label(),
            json_escape(&f.path),
            f.line,
            f.col,
            json_escape(&f.message),
            json_escape(f.snippet.trim_end()),
        );
    }
    out.push_str("\n]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding() -> Finding {
        Finding {
            rule: "D1",
            severity: Severity::Error,
            path: "crates/x/src/a.rs".into(),
            line: 12,
            col: 5,
            message: "iteration-order-unstable collection `HashSet`".into(),
            snippet: "    field: HashSet<u32>,".into(),
            help: "use BTreeSet",
        }
    }

    #[test]
    fn text_has_rustc_shape() {
        let text = render_text(&finding());
        assert!(text.contains("error[D1]:"));
        assert!(text.contains("--> crates/x/src/a.rs:12:5"));
        assert!(text.contains("= help: use BTreeSet"));
    }

    #[test]
    fn json_is_escaped_and_parsable_shape() {
        let mut f = finding();
        f.message = "quote \" and backslash \\".into();
        let json = render_json(&[f]);
        assert!(json.starts_with('['));
        assert!(json.contains(r#""rule":"D1""#));
        assert!(json.contains(r#"quote \" and backslash \\"#));
        assert!(json.trim_end().ends_with(']'));
    }

    #[test]
    fn empty_findings_render_as_empty_array() {
        assert_eq!(render_json(&[]), "[\n]\n");
    }
}
