//! The machine-readable allowlist file (`lint-allow.list`).
//!
//! Each non-comment line grants one exemption:
//!
//! ```text
//! RULE | path/suffix.rs | line substring | justification
//! ```
//!
//! A finding is suppressed when its rule code matches, its path ends
//! with the entry's path field, and the offending source line contains
//! the entry's substring. Entries without a justification, entries
//! naming an unknown rule code, and entries that match nothing are all
//! hard errors so the file cannot silently rot.

use std::cell::Cell;

use crate::diag::{Finding, Severity};
use crate::rules::ALL_RULES;

/// One parsed allowlist entry.
#[derive(Debug)]
pub struct Entry {
    /// Rule code the entry exempts (`D1`, `D2`, `M1`, `P1`).
    pub rule: String,
    /// Path suffix the entry applies to.
    pub path: String,
    /// Substring of the offending source line.
    pub substring: String,
    /// Why the exemption is justified (mandatory).
    pub justification: String,
    /// 1-based line in the allowlist file (for diagnostics).
    pub line: u32,
    used: Cell<bool>,
}

/// A parsed allowlist plus any findings about the file itself.
#[derive(Debug, Default)]
pub struct Allowlist {
    /// The usable entries.
    pub entries: Vec<Entry>,
    /// Path of the allowlist file (for diagnostics), if loaded.
    pub path: String,
}

impl Allowlist {
    /// An empty allowlist (used when no file exists).
    pub fn empty() -> Self {
        Allowlist::default()
    }

    /// Parses allowlist text. Malformed or justification-free lines
    /// become error findings rather than silent exemptions.
    pub fn parse(path: &str, text: &str) -> (Self, Vec<Finding>) {
        let mut entries = Vec::new();
        let mut findings = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line_no = i as u32 + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let fields: Vec<&str> = line.split('|').map(str::trim).collect();
            if fields.len() != 4 || fields.iter().take(3).any(|f| f.is_empty()) {
                findings.push(Finding {
                    rule: "A0",
                    severity: Severity::Error,
                    path: path.to_string(),
                    line: line_no,
                    col: 1,
                    message: "malformed allowlist entry (expected `RULE | path | substring | \
                              justification`)"
                        .to_string(),
                    snippet: raw.to_string(),
                    help: "",
                });
                continue;
            }
            if !ALL_RULES.iter().any(|r| r.code() == fields[0]) {
                findings.push(Finding {
                    rule: "A0",
                    severity: Severity::Error,
                    path: path.to_string(),
                    line: line_no,
                    col: 1,
                    message: format!(
                        "unknown rule code `{}` in allowlist entry (expected one of {})",
                        fields[0],
                        ALL_RULES
                            .iter()
                            .map(|r| r.code())
                            .collect::<Vec<_>>()
                            .join(", ")
                    ),
                    snippet: raw.to_string(),
                    help: "an entry naming no real rule exempts nothing and hides a typo",
                });
                continue;
            }
            if fields[3].len() < 10 {
                findings.push(Finding {
                    rule: "A0",
                    severity: Severity::Error,
                    path: path.to_string(),
                    line: line_no,
                    col: 1,
                    message: "allowlist entry needs a real justification (≥ 10 characters)"
                        .to_string(),
                    snippet: raw.to_string(),
                    help: "",
                });
                continue;
            }
            entries.push(Entry {
                rule: fields[0].to_string(),
                path: fields[1].to_string(),
                substring: fields[2].to_string(),
                justification: fields[3].to_string(),
                line: line_no,
                used: Cell::new(false),
            });
        }
        (
            Allowlist {
                entries,
                path: path.to_string(),
            },
            findings,
        )
    }

    /// Whether `finding` is exempted; marks the matching entry as used.
    pub fn covers(&self, finding: &Finding) -> bool {
        for e in &self.entries {
            if e.rule == finding.rule
                && finding.path.ends_with(&e.path)
                && finding.snippet.contains(&e.substring)
            {
                e.used.set(true);
                return true;
            }
        }
        false
    }

    /// Errors for entries that exempted nothing this run: a stale entry
    /// is a standing exemption for code that no longer exists, ready to
    /// silently swallow the next unrelated finding that happens to
    /// match it.
    pub fn unused_entries(&self) -> Vec<Finding> {
        self.entries
            .iter()
            .filter(|e| !e.used.get())
            .map(|e| Finding {
                rule: "A0",
                severity: Severity::Error,
                path: self.path.clone(),
                line: e.line,
                col: 1,
                message: format!(
                    "stale allowlist entry: no {} finding matches `{}` in `{}`",
                    e.rule, e.substring, e.path
                ),
                snippet: format!("{} | {} | {}", e.rule, e.path, e.substring),
                help: "delete the entry, or fix it to match the violation it exempts",
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(rule: &'static str, path: &str, snippet: &str) -> Finding {
        Finding {
            rule,
            severity: Severity::Error,
            path: path.to_string(),
            line: 1,
            col: 1,
            message: String::new(),
            snippet: snippet.to_string(),
            help: "",
        }
    }

    #[test]
    fn parses_and_matches() {
        let (al, errs) = Allowlist::parse(
            "lint-allow.list",
            "# comment\n\nD2 | src/bin/repro.rs | Instant::now | CLI progress timing only\n",
        );
        assert!(errs.is_empty());
        assert_eq!(al.entries.len(), 1);
        let f = finding(
            "D2",
            "crates/bench/src/bin/repro.rs",
            "let t = Instant::now();",
        );
        assert!(al.covers(&f));
        assert!(al.unused_entries().is_empty());
    }

    #[test]
    fn justification_is_mandatory() {
        let (al, errs) = Allowlist::parse("x", "D1 | a.rs | HashMap | short\n");
        assert!(al.entries.is_empty());
        assert_eq!(errs.len(), 1);
        assert_eq!(errs[0].rule, "A0");
    }

    #[test]
    fn malformed_lines_are_errors() {
        let (al, errs) = Allowlist::parse("x", "D1 | only two fields\n");
        assert!(al.entries.is_empty());
        assert_eq!(errs.len(), 1);
    }

    #[test]
    fn unused_entries_become_errors() {
        let (al, _) = Allowlist::parse("x", "P1 | never.rs | unwrap | this never matches anything\n");
        assert_eq!(al.unused_entries().len(), 1);
        assert_eq!(al.unused_entries()[0].severity, Severity::Error);
    }

    #[test]
    fn unknown_rule_code_is_an_error() {
        let (al, errs) = Allowlist::parse("x", "Q9 | a.rs | HashMap | maps are fine here honestly\n");
        assert!(al.entries.is_empty());
        assert_eq!(errs.len(), 1);
        assert!(errs[0].message.contains("unknown rule code `Q9`"), "{}", errs[0].message);
        assert!(errs[0].message.contains("W1"), "{}", errs[0].message);
    }

    #[test]
    fn workspace_rule_entries_parse() {
        let (al, errs) = Allowlist::parse(
            "x",
            "D3 | crates/net/src/transport.rs | Instant::now | deadline only bounds a wait\n",
        );
        assert!(errs.is_empty());
        assert_eq!(al.entries.len(), 1);
    }

    #[test]
    fn wrong_rule_or_path_does_not_cover() {
        let (al, _) = Allowlist::parse("x", "D1 | a.rs | HashMap | maps are fine here honestly\n");
        assert!(!al.covers(&finding("D2", "crates/a.rs", "HashMap")));
        assert!(!al.covers(&finding("D1", "crates/b.rs", "HashMap")));
        assert!(!al.covers(&finding("D1", "crates/a.rs", "BTreeMap")));
    }
}
