//! The workspace symbol table and call graph.
//!
//! Call resolution is *name-based* and deliberately over-approximate
//! (class-hierarchy style): a method call `recv.foo(..)` gains an edge
//! to every workspace method named `foo`; a free call prefers same-file
//! then same-crate definitions; a qualified call `Type::foo(..)` keeps
//! only candidates owned by `Type` when any exist. Over-approximation
//! is the right polarity for a linter — an edge too many can only
//! produce a finding a human then reviews, never hide one — and every
//! interprocedural diagnostic carries its full blame chain so a false
//! edge is visible (and suppressible with a written justification)
//! rather than mysterious.
//!
//! Everything is ordered (`BTreeMap`, sorted inputs), so the graph and
//! every traversal over it is deterministic — the analyzer holds itself
//! to the same D1 standard it enforces.

use std::collections::BTreeMap;

use crate::parser::{Fact, ParsedFile};

/// Index of one function in the workspace table.
pub type FnId = usize;

/// One function in the symbol table, flattened across files.
#[derive(Debug)]
pub struct FnNode {
    /// The function's name.
    pub name: String,
    /// Owning impl/trait target, if a method.
    pub owner: Option<String>,
    /// Workspace-relative path of the defining file.
    pub rel: String,
    /// Crate name segment of `rel` (`awc` in `crates/awc/src/x.rs`).
    pub krate: String,
    /// 1-based line of the `fn` keyword.
    pub line: u32,
    /// Whether the signature declares a non-unit return type.
    pub returns_value: bool,
    /// Panic/determinism facts in the body.
    pub facts: Vec<Fact>,
}

impl FnNode {
    /// `Owner::name` or plain `name`, for diagnostics.
    pub fn display_name(&self) -> String {
        match &self.owner {
            Some(owner) => format!("{owner}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// One resolved call edge.
#[derive(Debug, Clone, Copy)]
pub struct Edge {
    /// The called function.
    pub callee: FnId,
    /// 1-based line of the call site in the caller's file.
    pub line: u32,
}

/// The workspace call graph.
#[derive(Debug, Default)]
pub struct CallGraph {
    /// All functions, in file order then declaration order.
    pub fns: Vec<FnNode>,
    /// Outgoing edges per function.
    pub calls: Vec<Vec<Edge>>,
    /// Incoming edges per function (callee → callers).
    pub callers: Vec<Vec<Edge>>,
}

fn crate_of(rel: &str) -> String {
    rel.strip_prefix("crates/")
        .and_then(|r| r.split('/').next())
        .unwrap_or("")
        .to_string()
}

impl CallGraph {
    /// Builds the symbol table and resolves every call site.
    pub fn build(files: &[ParsedFile]) -> CallGraph {
        let mut fns = Vec::new();
        let mut site_lists = Vec::new();
        for file in files {
            for f in &file.fns {
                fns.push(FnNode {
                    name: f.name.clone(),
                    owner: f.owner.clone(),
                    rel: file.rel.clone(),
                    krate: crate_of(&file.rel),
                    line: f.line,
                    returns_value: f.returns_value,
                    facts: f.facts.clone(),
                });
                site_lists.push(&f.calls);
            }
        }

        let mut by_name: BTreeMap<&str, Vec<FnId>> = BTreeMap::new();
        for (id, node) in fns.iter().enumerate() {
            by_name.entry(&node.name).or_default().push(id);
        }

        let mut calls: Vec<Vec<Edge>> = vec![Vec::new(); fns.len()];
        for (caller, sites) in site_lists.iter().enumerate() {
            for site in sites.iter() {
                let Some(candidates) = by_name.get(site.callee.as_str()) else {
                    continue; // external (std or dependency) call
                };
                let resolved = resolve(&fns, caller, candidates, site.method, site.qualifier.as_deref());
                for callee in resolved {
                    if callee == caller {
                        continue; // self-recursion adds nothing to reachability
                    }
                    if !calls[caller].iter().any(|e| e.callee == callee) {
                        calls[caller].push(Edge {
                            callee,
                            line: site.line,
                        });
                    }
                }
            }
        }

        let mut callers: Vec<Vec<Edge>> = vec![Vec::new(); fns.len()];
        for (caller, edges) in calls.iter().enumerate() {
            for e in edges {
                callers[e.callee].push(Edge {
                    callee: caller, // reversed: "callee" field holds the caller
                    line: e.line,
                });
            }
        }

        CallGraph { fns, calls, callers }
    }

    /// Multi-source BFS over outgoing edges. Returns, for every
    /// reachable function, the edge it was first discovered through:
    /// `(predecessor FnId, call-site line)`. Sources map to themselves.
    pub fn reach_forward(&self, sources: &[FnId]) -> BTreeMap<FnId, (FnId, u32)> {
        self.bfs(sources, &self.calls)
    }

    /// Multi-source BFS over incoming edges (who can reach me).
    pub fn reach_backward(&self, sources: &[FnId]) -> BTreeMap<FnId, (FnId, u32)> {
        self.bfs(sources, &self.callers)
    }

    fn bfs(&self, sources: &[FnId], adj: &[Vec<Edge>]) -> BTreeMap<FnId, (FnId, u32)> {
        let mut seen: BTreeMap<FnId, (FnId, u32)> = BTreeMap::new();
        let mut queue: std::collections::VecDeque<FnId> = std::collections::VecDeque::new();
        for &s in sources {
            if let std::collections::btree_map::Entry::Vacant(slot) = seen.entry(s) {
                slot.insert((s, 0));
                queue.push_back(s);
            }
        }
        while let Some(at) = queue.pop_front() {
            for e in &adj[at] {
                if let std::collections::btree_map::Entry::Vacant(slot) = seen.entry(e.callee) {
                    slot.insert((at, e.line));
                    queue.push_back(e.callee);
                }
            }
        }
        seen
    }

    /// Reconstructs the discovery path from a BFS source to `to` as a
    /// list of `(FnId, call-site line into the next hop)`; the last
    /// entry's line is 0. Returns `None` if `to` was not reached.
    pub fn path_to(
        &self,
        reached: &BTreeMap<FnId, (FnId, u32)>,
        to: FnId,
    ) -> Option<Vec<(FnId, u32)>> {
        reached.get(&to)?;
        let mut rev = vec![];
        let mut at = to;
        loop {
            let &(pred, line) = reached.get(&at)?;
            rev.push((at, line));
            if pred == at {
                break;
            }
            at = pred;
        }
        rev.reverse();
        // `rev` is source→…→to with each entry carrying the line of the
        // call that *discovered it* (i.e. the call in its predecessor).
        // Shift lines one step so each entry carries the line of its
        // *outgoing* call, which reads naturally in a blame chain.
        let mut path: Vec<(FnId, u32)> = Vec::with_capacity(rev.len());
        for i in 0..rev.len() {
            let (id, _) = rev[i];
            let out_line = rev.get(i + 1).map_or(0, |&(_, l)| l);
            path.push((id, out_line));
        }
        Some(path)
    }

    /// Reconstructs the chain from a caller `from` down to a
    /// [`reach_backward`](Self::reach_backward) source, as
    /// `(FnId, call-site line into the next hop)`; the source's line is
    /// 0. Backward discovery edges already carry the call line in the
    /// *caller's* file, so unlike [`path_to`](Self::path_to) no line
    /// shift is needed. Returns `None` if `from` was not reached.
    pub fn caller_chain(
        &self,
        reached: &BTreeMap<FnId, (FnId, u32)>,
        from: FnId,
    ) -> Option<Vec<(FnId, u32)>> {
        reached.get(&from)?;
        let mut path = vec![];
        let mut at = from;
        loop {
            let &(pred, line) = reached.get(&at)?;
            path.push((at, line));
            if pred == at {
                break;
            }
            at = pred;
        }
        Some(path)
    }

    /// Renders a blame chain `a (file:line) → b (file:line) → c` where
    /// each location is the call site into the next hop.
    pub fn render_chain(&self, path: &[(FnId, u32)]) -> String {
        let mut parts = Vec::with_capacity(path.len());
        for &(id, out_line) in path {
            let node = &self.fns[id];
            if out_line == 0 {
                parts.push(format!("`{}`", node.display_name()));
            } else {
                parts.push(format!(
                    "`{}` ({}:{})",
                    node.display_name(),
                    node.rel,
                    out_line
                ));
            }
        }
        parts.join(" → ")
    }
}

/// Applies the resolution policy for one call site.
fn resolve(
    fns: &[FnNode],
    caller: FnId,
    candidates: &[FnId],
    method: bool,
    qualifier: Option<&str>,
) -> Vec<FnId> {
    if let Some(q) = qualifier {
        // `Type::foo(..)`: an owner match beats everything; a module-file
        // match (`jsonl::parse_line`) is next; otherwise fall through to
        // the free-call policy (the qualifier names something external).
        let owned: Vec<FnId> = candidates
            .iter()
            .copied()
            .filter(|&id| fns[id].owner.as_deref() == Some(q))
            .collect();
        if !owned.is_empty() {
            return owned;
        }
        let in_module: Vec<FnId> = candidates
            .iter()
            .copied()
            .filter(|&id| fns[id].rel.ends_with(&format!("/{q}.rs")))
            .collect();
        if !in_module.is_empty() {
            return in_module;
        }
    }
    if method {
        // CHA: every workspace method of that name.
        return candidates
            .iter()
            .copied()
            .filter(|&id| fns[id].owner.is_some())
            .collect();
    }
    // Free call: prefer same-file, then same-crate, then anything.
    let same_file: Vec<FnId> = candidates
        .iter()
        .copied()
        .filter(|&id| fns[id].rel == fns[caller].rel)
        .collect();
    if !same_file.is_empty() {
        return same_file;
    }
    let same_crate: Vec<FnId> = candidates
        .iter()
        .copied()
        .filter(|&id| fns[id].krate == fns[caller].krate)
        .collect();
    if !same_crate.is_empty() {
        return same_crate;
    }
    candidates.to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;
    use crate::parser::parse_file;

    fn graph(files: &[(&str, &str)]) -> CallGraph {
        let parsed: Vec<ParsedFile> = files
            .iter()
            .map(|(rel, src)| parse_file(rel, &lex(src)))
            .collect();
        CallGraph::build(&parsed)
    }

    fn id_of(g: &CallGraph, display: &str) -> FnId {
        g.fns
            .iter()
            .position(|f| f.display_name() == display)
            .unwrap_or_else(|| panic!("no fn {display}"))
    }

    #[test]
    fn free_calls_prefer_same_file_then_crate() {
        let g = graph(&[
            (
                "crates/a/src/lib.rs",
                "fn top() { helper(); }\nfn helper() {}\n",
            ),
            ("crates/b/src/lib.rs", "fn helper() {}\n"),
        ]);
        let top = id_of(&g, "top");
        let local = id_of(&g, "helper");
        assert_eq!(g.calls[top].len(), 1);
        assert_eq!(g.calls[top][0].callee, local);
        assert_eq!(g.fns[local].rel, "crates/a/src/lib.rs");
    }

    #[test]
    fn method_calls_fan_out_to_all_impls() {
        let g = graph(&[
            ("crates/a/src/lib.rs", "fn top(s: S) { s.go(); }\n"),
            ("crates/b/src/lib.rs", "impl S { fn go(&self) {} }\n"),
            ("crates/c/src/lib.rs", "impl T { fn go(&self) {} }\n"),
        ]);
        let top = id_of(&g, "top");
        assert_eq!(g.calls[top].len(), 2);
    }

    #[test]
    fn qualified_calls_stick_to_the_owner() {
        let g = graph(&[
            ("crates/a/src/lib.rs", "fn top() { S::go(); }\n"),
            ("crates/b/src/lib.rs", "impl S { fn go(&self) {} }\n"),
            ("crates/c/src/lib.rs", "impl T { fn go(&self) {} }\n"),
        ]);
        let top = id_of(&g, "top");
        assert_eq!(g.calls[top].len(), 1);
        assert_eq!(g.calls[top][0].callee, id_of(&g, "S::go"));
    }

    #[test]
    fn module_qualified_calls_resolve_to_the_file() {
        let g = graph(&[
            ("crates/a/src/lib.rs", "fn top() { jsonl::parse_line(x); }\n"),
            ("crates/a/src/jsonl.rs", "pub fn parse_line(s: &str) {}\n"),
            ("crates/b/src/lib.rs", "pub fn parse_line(s: &str) {}\n"),
        ]);
        let top = id_of(&g, "top");
        assert_eq!(g.calls[top].len(), 1);
        assert_eq!(g.fns[g.calls[top][0].callee].rel, "crates/a/src/jsonl.rs");
    }

    #[test]
    fn reachability_and_blame_chain() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "fn entry() {\n mid();\n}\nfn mid() {\n deep();\n}\nfn deep() { x.unwrap(); }\n",
        )]);
        let entry = id_of(&g, "entry");
        let deep = id_of(&g, "deep");
        let reached = g.reach_forward(&[entry]);
        assert!(reached.contains_key(&deep));
        let path = g.path_to(&reached, deep).expect("path exists");
        let chain = g.render_chain(&path);
        assert!(chain.contains("`entry` (crates/a/src/lib.rs:2)"), "{chain}");
        assert!(chain.contains("`mid` (crates/a/src/lib.rs:5)"), "{chain}");
        assert!(chain.ends_with("`deep`"), "{chain}");
    }

    #[test]
    fn backward_reachability_finds_callers() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "fn entry() { mid(); }\nfn mid() { deep(); }\nfn deep() {}\n",
        )]);
        let entry = id_of(&g, "entry");
        let deep = id_of(&g, "deep");
        let reached = g.reach_backward(&[deep]);
        assert!(reached.contains_key(&entry));
    }

    #[test]
    fn caller_chain_lines_land_in_the_caller() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "fn entry() {\n mid();\n}\nfn mid() {\n deep();\n}\nfn deep() {}\n",
        )]);
        let entry = id_of(&g, "entry");
        let deep = id_of(&g, "deep");
        let reached = g.reach_backward(&[deep]);
        let chain = g.caller_chain(&reached, entry).expect("chain exists");
        let rendered = g.render_chain(&chain);
        assert!(rendered.starts_with("`entry` (crates/a/src/lib.rs:2)"), "{rendered}");
        assert!(rendered.contains("`mid` (crates/a/src/lib.rs:5)"), "{rendered}");
        assert!(rendered.ends_with("`deep`"), "{rendered}");
    }

    #[test]
    fn recursion_terminates() {
        let g = graph(&[(
            "crates/a/src/lib.rs",
            "fn a() { b(); }\nfn b() { a(); b(); }\n",
        )]);
        let a = id_of(&g, "a");
        let reached = g.reach_forward(&[a]);
        assert_eq!(reached.len(), 2);
    }
}
