//! The invariant rules and the per-file analysis pass.
//!
//! | code | allow name   | invariant                                           |
//! |------|--------------|-----------------------------------------------------|
//! | D1   | `unordered`  | no iteration-order-unstable collections             |
//! | D2   | `timing`     | no wall-clock or OS entropy in simulator paths      |
//! | M1   | `unmetered`  | nogood-store queries must charge constraint checks  |
//! | P1   | `panic`      | no panic paths in the runtime or agent step code    |
//! | P2   | `panic-path` | workspace rule — see [`crate::wrules`]              |
//! | D3   | `taint`      | workspace rule — see [`crate::wrules`]              |
//! | W1   | `schema`     | workspace rule — see [`crate::wrules`]              |
//!
//! `A0` covers meta-problems with the suppression machinery itself
//! (malformed annotations, stale allowlist entries) so that exemptions
//! can never silently rot.
//!
//! Suppression is per-line: `// lint: allow(<name>): <justification>`
//! as a trailing comment exempts its own line; as a full-line comment
//! it exempts the next code line. The justification is mandatory.

use std::cell::Cell;

use crate::diag::{Finding, Severity};
use crate::lexer::{lex, Token, TokenKind};

/// One lint rule.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rule {
    /// Iteration-order-unstable collections in deterministic code.
    D1,
    /// Wall-clock / entropy sources in simulator paths.
    D2,
    /// Nogood-store queries that bypass check metering.
    M1,
    /// Panic paths in the runtime and agent step functions.
    P1,
    /// Panic paths transitively reachable from runtime entry points
    /// (workspace rule; see [`crate::wrules`]).
    P2,
    /// D1/D2 taint flowing through the call graph into policed code
    /// (workspace rule; see [`crate::wrules`]).
    D3,
    /// Trace schema drift across its hand-written codecs (workspace
    /// rule; see [`crate::wrules`]).
    W1,
}

/// Every rule, per-file and workspace, for allow-name resolution.
pub const ALL_RULES: [Rule; 7] = [
    Rule::D1,
    Rule::D2,
    Rule::M1,
    Rule::P1,
    Rule::P2,
    Rule::D3,
    Rule::W1,
];

/// The per-file token rules, for fixture/debug mode where the scope
/// mapping is bypassed.
pub const FILE_RULES: [Rule; 4] = [Rule::D1, Rule::D2, Rule::M1, Rule::P1];

impl Rule {
    /// The diagnostic code (`D1`, …).
    pub fn code(self) -> &'static str {
        match self {
            Rule::D1 => "D1",
            Rule::D2 => "D2",
            Rule::M1 => "M1",
            Rule::P1 => "P1",
            Rule::P2 => "P2",
            Rule::D3 => "D3",
            Rule::W1 => "W1",
        }
    }

    /// The name accepted by `// lint: allow(<name>)` for this rule.
    pub fn allow_name(self) -> &'static str {
        match self {
            Rule::D1 => "unordered",
            Rule::D2 => "timing",
            Rule::M1 => "unmetered",
            Rule::P1 => "panic",
            Rule::P2 => "panic-path",
            Rule::D3 => "taint",
            Rule::W1 => "schema",
        }
    }

    /// Whether this rule runs over the whole workspace (call graph /
    /// schema) rather than one file's token stream.
    pub fn is_workspace(self) -> bool {
        matches!(self, Rule::P2 | Rule::D3 | Rule::W1)
    }

    /// Remediation hint shown under each finding.
    pub fn help(self) -> &'static str {
        match self {
            Rule::D1 => {
                "use BTreeMap/BTreeSet (stable iteration order), or annotate with \
                 `// lint: allow(unordered): <why order cannot reach any output>`"
            }
            Rule::D2 => {
                "metrics must depend only on cycles and constraint checks; move timing \
                 out of simulator paths or annotate `// lint: allow(timing): <why>`"
            }
            Rule::M1 => {
                "route the query through IncrementalEval::eval or add a charge_checks \
                 call nearby so maxcck stays faithful to the paper's cost model"
            }
            Rule::P1 => {
                "propagate a RuntimeError (or handle the None case) so one agent's \
                 failure degrades into a reported error instead of a crash"
            }
            Rule::P2 => {
                "make the helper return Option/Result (or handle the failing case) so \
                 the panic cannot cross into the runtime, or annotate the panic site \
                 `// lint: allow(panic-path): <why the invariant holds>`"
            }
            Rule::D3 => {
                "determinism-policed code must not consume values derived from wall \
                 time or hash order; plumb a seeded/virtual source through, or annotate \
                 the source `// lint: allow(taint): <why the value never reaches solver \
                 state or metrics>`"
            }
            Rule::W1 => {
                "add the missing arm/tag/test alongside the other variants so every \
                 TraceEvent codec and the Wire property tests stay exhaustive"
            }
        }
    }

    fn for_allow_name(name: &str) -> Option<Rule> {
        ALL_RULES.iter().copied().find(|r| r.allow_name() == name)
    }
}

/// Maps a workspace-relative path to the rules that apply to it.
///
/// Test directories never reach this function (the walker skips them);
/// `#[cfg(test)]` modules inside scoped files are skipped token-wise.
/// Files exempt from D2 *by name*: the link layer owns the virtual-tick
/// clock (`u64` ticks drawn from seeded streams) that is the sanctioned
/// replacement for wall time, so a wall-clock identifier there would be
/// caught in review, not by the linter. A named exemption keeps the scope
/// auditable — unlike blanket `allow` annotations, which rule A0 would
/// also have to police line by line.
pub const D2_EXEMPT_VIRTUAL_CLOCK: &[&str] = &["crates/runtime/src/link.rs"];

/// Files exempt from D2 by name in the network transport: socket
/// plumbing legitimately needs wall-clock deadlines (handshake accept
/// windows, connect backoff) — everything above it in `discsp-net`
/// reasons in virtual ticks and stays under D2.
pub const D2_EXEMPT_NET_TRANSPORT: &[&str] = &["crates/net/src/transport.rs"];

/// Files exempt from D2 by name in the solve service: the TCP front end
/// (socket accept loop, response-write timeouts, scheduler idle waits)
/// and the load generator (wall-clock sessions/sec is its one real-time
/// number). Everything underneath — session drivers, the table, the
/// sweep scheduler — reasons purely in sweeps and virtual ticks and
/// stays under D2.
pub const D2_EXEMPT_SERVICE_REALTIME: &[&str] = &[
    "crates/service/src/server.rs",
    "crates/service/src/main.rs",
];

pub fn rules_for(rel_path: &str) -> Vec<Rule> {
    let p = rel_path.replace('\\', "/");
    let in_any = |prefixes: &[&str]| prefixes.iter().any(|pre| p.starts_with(pre));

    let mut rules = Vec::new();
    if in_any(&[
        "crates/core/src/",
        "crates/trace/src/",
        "crates/runtime/src/",
        "crates/awc/src/",
        "crates/dba/src/",
        "crates/net/src/",
        "crates/service/src/",
        "crates/cspsolve/src/",
        "crates/probgen/src/",
        "crates/bench/src/",
        "crates/explore/src/",
    ]) {
        rules.push(Rule::D1);
    }
    if in_any(&[
        "crates/core/src/",
        "crates/trace/src/",
        "crates/runtime/src/",
        "crates/awc/src/",
        "crates/dba/src/",
        "crates/net/src/",
        "crates/service/src/",
        "crates/bench/src/",
        "crates/explore/src/",
    ]) && !D2_EXEMPT_VIRTUAL_CLOCK.contains(&p.as_str())
        && !D2_EXEMPT_NET_TRANSPORT.contains(&p.as_str())
        && !D2_EXEMPT_SERVICE_REALTIME.contains(&p.as_str())
    {
        rules.push(Rule::D2);
    }
    if in_any(&["crates/awc/src/", "crates/dba/src/"]) {
        rules.push(Rule::M1);
    }
    if p.starts_with("crates/runtime/src/")
        || (p.starts_with("crates/net/src/") && p != "crates/net/src/main.rs")
        || (p.starts_with("crates/service/src/") && p != "crates/service/src/main.rs")
        || (p.starts_with("crates/trace/src/") && p != "crates/trace/src/main.rs")
        || (p.starts_with("crates/explore/src/") && p != "crates/explore/src/main.rs")
        || p == "crates/awc/src/agent.rs"
        || p == "crates/awc/src/abt.rs"
        || p == "crates/dba/src/agent.rs"
    {
        rules.push(Rule::P1);
    }
    rules
}

/// A parsed `lint: allow(...)` comment, resolved to the line it exempts.
struct Annotation {
    /// 1-based line of the code this annotation exempts.
    target_line: u32,
    /// 1-based line of the comment itself (for diagnostics).
    comment_line: u32,
    rule: Rule,
    used: Cell<bool>,
}

/// Runs `rules` over one file and returns surviving findings.
///
/// Inline annotations are applied here; the file-level allowlist is the
/// caller's concern (it spans files).
pub fn check_source(rel_path: &str, src: &str, rules: &[Rule]) -> Vec<Finding> {
    check_tokens(rel_path, src, &lex(src), rules)
}

/// Like [`check_source`], but on an already-lexed token stream so the
/// workspace pass can share one lex per file with the item parser.
pub fn check_tokens(rel_path: &str, src: &str, tokens: &[Token], rules: &[Rule]) -> Vec<Finding> {
    let lines: Vec<&str> = src.lines().collect();
    let (annotations, mut out) = parse_annotations(tokens, rel_path);
    let code = code_tokens(tokens);

    let mut candidates: Vec<(Rule, Finding)> = Vec::new();
    for &rule in rules {
        match rule {
            Rule::D1 => check_d1(rel_path, &code, &lines, &mut candidates),
            Rule::D2 => check_d2(rel_path, &code, &lines, &mut candidates),
            Rule::M1 => check_m1(rel_path, &code, &lines, &mut candidates),
            Rule::P1 => check_p1(rel_path, &code, &lines, &mut candidates),
            // Workspace rules have no per-file candidates; their
            // annotations are consumed by the workspace pass in lib.rs.
            Rule::P2 | Rule::D3 | Rule::W1 => {}
        }
    }

    for (rule, finding) in candidates {
        let exempted = annotations
            .iter()
            .find(|a| a.rule == rule && a.target_line == finding.line);
        match exempted {
            Some(a) => a.used.set(true),
            None => out.push(finding),
        }
    }

    // An annotation that exempts nothing is a lie waiting to happen:
    // warn so it gets deleted alongside the code it used to excuse.
    for a in &annotations {
        if !a.used.get() && rules.contains(&a.rule) {
            out.push(Finding {
                rule: "A0",
                severity: Severity::Warning,
                path: rel_path.to_string(),
                line: a.comment_line,
                col: 1,
                message: format!(
                    "unused `lint: allow({})` annotation: no {} finding on the line it covers",
                    a.rule.allow_name(),
                    a.rule.code()
                ),
                snippet: snippet(&lines, a.comment_line),
                help: "delete the annotation, or move it onto the violation it exempts",
            });
        }
    }

    out.sort_by_key(|f| (f.line, f.col));
    out
}

fn snippet(lines: &[&str], line: u32) -> String {
    lines
        .get(line as usize - 1)
        .copied()
        .unwrap_or("")
        .to_string()
}

/// A workspace-rule (`panic-path`/`taint`/`schema`) annotation, exposed
/// to the workspace pass in `lib.rs` — the per-file pass parses all
/// annotations but only consumes the per-file ones.
#[derive(Debug)]
pub struct WsAnnotation {
    /// Rule the annotation exempts.
    pub rule: Rule,
    /// 1-based line of the code it exempts.
    pub target_line: u32,
    /// 1-based line of the comment itself (for diagnostics).
    pub comment_line: u32,
}

/// Extracts the workspace-rule annotations from a token stream.
/// Malformed-annotation A0 errors are *not* re-reported here — the
/// per-file pass owns those.
pub fn workspace_annotations(tokens: &[Token]) -> Vec<WsAnnotation> {
    let (annotations, _) = parse_annotations(tokens, "");
    annotations
        .into_iter()
        .filter(|a| a.rule.is_workspace())
        .map(|a| WsAnnotation {
            rule: a.rule,
            target_line: a.target_line,
            comment_line: a.comment_line,
        })
        .collect()
}

/// Extracts `lint: allow(name): justification` annotations from comment
/// tokens. Malformed annotations become A0 errors — a typo must never
/// silently fail open *or* closed.
fn parse_annotations(tokens: &[Token], rel_path: &str) -> (Vec<Annotation>, Vec<Finding>) {
    let mut annotations = Vec::new();
    let mut findings = Vec::new();
    for (i, tok) in tokens.iter().enumerate() {
        if tok.kind != TokenKind::Comment {
            continue;
        }
        let Some(at) = tok.text.find("lint:") else {
            continue;
        };
        let a0 = |message: String| Finding {
            rule: "A0",
            severity: Severity::Error,
            path: rel_path.to_string(),
            line: tok.line,
            col: tok.col,
            message,
            snippet: tok.text.lines().next().unwrap_or("").to_string(),
            help: "format: `// lint: allow(unordered|timing|unmetered|panic|panic-path|\
                   taint|schema): <justification>`",
        };
        let rest = tok.text[at + "lint:".len()..].trim_start();
        let Some(name_and_rest) = rest.strip_prefix("allow(") else {
            findings.push(a0("malformed lint annotation: expected `allow(<name>)`".to_string()));
            continue;
        };
        let Some(close) = name_and_rest.find(')') else {
            findings.push(a0("malformed lint annotation: missing `)`".to_string()));
            continue;
        };
        let name = name_and_rest[..close].trim();
        let Some(rule) = Rule::for_allow_name(name) else {
            findings.push(a0(format!(
                "unknown lint allow name `{name}` (expected unordered, timing, unmetered, \
                 panic, panic-path, taint, or schema)"
            )));
            continue;
        };
        let justification = name_and_rest[close + 1..]
            .trim_start()
            .trim_start_matches(':')
            .trim();
        if justification.is_empty() {
            findings.push(a0(format!(
                "`allow({name})` needs a justification after the closing paren"
            )));
            continue;
        }
        // Trailing comment exempts its own line; a comment on its own
        // line exempts the next code line (skipping further comments,
        // so multi-line justifications work).
        let trailing = tokens[..i]
            .iter()
            .rev()
            .take_while(|t| t.line == tok.line)
            .any(|t| t.kind != TokenKind::Comment);
        let target_line = if trailing {
            tok.line
        } else {
            tokens[i + 1..]
                .iter()
                .find(|t| t.kind != TokenKind::Comment)
                .map_or(tok.line, |t| t.line)
        };
        annotations.push(Annotation {
            target_line,
            comment_line: tok.line,
            rule,
            used: Cell::new(false),
        });
    }
    (annotations, findings)
}

/// Filters the token stream down to the code the rules should see:
/// comments out, `use` statements out (imports are not uses), and any
/// item under a `#[test]`-ish attribute out (tests are exempt).
fn code_tokens(tokens: &[Token]) -> Vec<&Token> {
    let toks: Vec<&Token> = tokens
        .iter()
        .filter(|t| t.kind != TokenKind::Comment)
        .collect();
    let mut out = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        let t = toks[i];
        if t.kind == TokenKind::Ident && t.text == "use" {
            // `use` is a keyword, so this cannot be an expression ident.
            while i < toks.len() && toks[i].text != ";" {
                i += 1;
            }
            i += 1; // the `;`
            continue;
        }
        if t.text == "#" && toks.get(i + 1).is_some_and(|n| n.text == "[") {
            let (close, is_test) = scan_attribute(&toks, i + 1);
            if is_test {
                i = skip_item(&toks, close + 1);
                continue;
            }
            // Non-test attribute: pass its tokens through (harmless).
            for tok in &toks[i..=close.min(toks.len() - 1)] {
                out.push(*tok);
            }
            i = close + 1;
            continue;
        }
        out.push(t);
        i += 1;
    }
    out
}

/// Scans a `[...]` attribute group starting at the opening bracket.
/// Returns the index of the closing bracket and whether the attribute
/// marks test-only code (`#[test]`, `#[cfg(test)]`, `#[tokio::test]`;
/// `not(test)` does not count).
fn scan_attribute(toks: &[&Token], open: usize) -> (usize, bool) {
    let mut depth = 0usize;
    let mut has_test = false;
    let mut has_not = false;
    let mut i = open;
    while i < toks.len() {
        match toks[i].text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth -= 1;
                if depth == 0 {
                    return (i, has_test && !has_not);
                }
            }
            "test" if toks[i].kind == TokenKind::Ident => has_test = true,
            "not" if toks[i].kind == TokenKind::Ident => has_not = true,
            _ => {}
        }
        i += 1;
    }
    (toks.len().saturating_sub(1), has_test && !has_not)
}

/// Skips one item starting at `i` (any further attributes, then either
/// a `;`-terminated item or a braced body). Returns the index after it.
fn skip_item(toks: &[&Token], mut i: usize) -> usize {
    while i < toks.len() && toks[i].text == "#" && toks.get(i + 1).is_some_and(|n| n.text == "[") {
        let (close, _) = scan_attribute(toks, i + 1);
        i = close + 1;
    }
    let mut depth = 0usize;
    while i < toks.len() {
        match toks[i].text.as_str() {
            ";" if depth == 0 => return i + 1,
            "{" => depth += 1,
            "}" => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return i + 1;
                }
            }
            _ => {}
        }
        i += 1;
    }
    i
}

fn finding(rule: Rule, path: &str, tok: &Token, lines: &[&str], message: String) -> (Rule, Finding) {
    (
        rule,
        Finding {
            rule: rule.code(),
            severity: Severity::Error,
            path: path.to_string(),
            line: tok.line,
            col: tok.col,
            message,
            snippet: snippet(lines, tok.line),
            help: rule.help(),
        },
    )
}

/// D1: HashMap/HashSet iterate in hash order, which std randomizes per
/// process; any such iteration reaching agent decisions or metrics
/// destroys run-to-run reproducibility of cycle/maxcck.
fn check_d1(path: &str, code: &[&Token], lines: &[&str], out: &mut Vec<(Rule, Finding)>) {
    for t in code {
        if t.kind == TokenKind::Ident && (t.text == "HashMap" || t.text == "HashSet") {
            out.push(finding(
                Rule::D1,
                path,
                t,
                lines,
                format!("iteration-order-unstable collection `{}` in deterministic code", t.text),
            ));
        }
    }
}

/// D2: the simulators measure cost in cycles and constraint checks,
/// never in seconds; wall-clock or OS entropy in those paths makes
/// results machine-dependent.
fn check_d2(path: &str, code: &[&Token], lines: &[&str], out: &mut Vec<(Rule, Finding)>) {
    for (i, t) in code.iter().enumerate() {
        if t.kind != TokenKind::Ident {
            continue;
        }
        let flagged = match t.text.as_str() {
            "Instant" => {
                code.get(i + 1).is_some_and(|a| a.text == ":")
                    && code.get(i + 2).is_some_and(|a| a.text == ":")
                    && code.get(i + 3).is_some_and(|a| a.text == "now")
            }
            "SystemTime" | "thread_rng" => true,
            _ => false,
        };
        if flagged {
            out.push(finding(
                Rule::D2,
                path,
                t,
                lines,
                format!("wall-clock/entropy source `{}` in a simulator path", t.text),
            ));
        }
    }
}

const M1_TRIGGERS: &[&str] = &[
    "for_variable",
    "is_violated",
    "violated_among",
    "violated_with",
    "violation_count_with",
];

/// How far (in lines) a metering call may sit from the query it covers.
const M1_WINDOW: u32 = 8;

/// M1: every nogood-store consultation must be visible in the check
/// counter, or maxcck undercounts and the paper's Figures 3–5 cannot be
/// reproduced faithfully. Positional loops over the store are a second
/// trigger: since the arena rebuild, slot indices have holes, so
/// `0..store.len()` iteration is wrong as well as unmetered —
/// `entries()` / `indices()` are the only valid iteration.
fn check_m1(path: &str, code: &[&Token], lines: &[&str], out: &mut Vec<(Rule, Finding)>) {
    for (i, t) in code.iter().enumerate() {
        if t.kind == TokenKind::Number
            && t.text == "0"
            && code.get(i + 1).is_some_and(|n| n.text == ".")
            && code.get(i + 2).is_some_and(|n| n.text == ".")
            && positional_chain_hits_store(code, i + 3)
        {
            out.push(finding(
                Rule::M1,
                path,
                t,
                lines,
                "positional loop `0..<store>.len()` over the arena-backed nogood store; \
                 slot indices have holes — iterate entries() or indices() instead"
                    .to_string(),
            ));
        }
        let is_trigger = t.kind == TokenKind::Ident
            && M1_TRIGGERS.contains(&t.text.as_str())
            && i > 0
            && code[i - 1].text == ".";
        if !is_trigger {
            continue;
        }
        let metered = code.iter().enumerate().any(|(j, u)| {
            u.line.abs_diff(t.line) <= M1_WINDOW
                && u.kind == TokenKind::Ident
                && (u.text == "charge_checks"
                    || (u.text == "eval" && code.get(j + 1).is_some_and(|n| n.text == "(")))
        });
        if !metered {
            out.push(finding(
                Rule::M1,
                path,
                t,
                lines,
                format!(
                    "nogood-store query `.{}` with no check-charging call within {M1_WINDOW} lines",
                    t.text
                ),
            ));
        }
    }
}

const P1_MACROS: &[&str] = &["panic", "unreachable", "todo", "unimplemented"];

/// P1: one panicking agent thread must not take down a whole multi-hour
/// benchmark run; runtime and agent step code propagates errors instead.
fn check_p1(path: &str, code: &[&Token], lines: &[&str], out: &mut Vec<(Rule, Finding)>) {
    for (i, t) in code.iter().enumerate() {
        let prev = i.checked_sub(1).and_then(|p| code.get(p));
        let next = code.get(i + 1);
        let next2 = code.get(i + 2);
        if t.kind == TokenKind::Ident {
            let after_dot = prev.is_some_and(|p| p.text == ".");
            if t.text == "unwrap"
                && after_dot
                && next.is_some_and(|n| n.text == "(")
                && next2.is_some_and(|n| n.text == ")")
            {
                out.push(finding(
                    Rule::P1,
                    path,
                    t,
                    lines,
                    "call to `.unwrap()` in a panic-free zone".to_string(),
                ));
            } else if t.text == "expect" && after_dot && next.is_some_and(|n| n.text == "(") {
                out.push(finding(
                    Rule::P1,
                    path,
                    t,
                    lines,
                    "call to `.expect(..)` in a panic-free zone".to_string(),
                ));
            } else if P1_MACROS.contains(&t.text.as_str()) && next.is_some_and(|n| n.text == "!") {
                out.push(finding(
                    Rule::P1,
                    path,
                    t,
                    lines,
                    format!("`{}!` in a panic-free zone", t.text),
                ));
            }
        } else if t.text == "[" {
            let indexee = prev.is_some_and(|p| {
                p.kind == TokenKind::Ident || p.text == ")" || p.text == "]"
            });
            if indexee
                && next.is_some_and(|n| n.kind == TokenKind::Number)
                && next2.is_some_and(|n| n.text == "]")
            {
                out.push(finding(
                    Rule::P1,
                    path,
                    t,
                    lines,
                    "indexing with a literal can panic; use .get() or a checked pattern"
                        .to_string(),
                ));
            } else if indexee && is_bounded_range_slice(code, i) {
                out.push(finding(
                    Rule::P1,
                    path,
                    t,
                    lines,
                    "range-slicing with a bound (`buf[a..b]`) can panic; use .get(a..b) \
                     or a checked pattern"
                        .to_string(),
                ));
            }
        }
    }
}

/// Walks the `self.foo.bar.len()` chain after a `0..` range start and
/// reports whether it names the nogood store before reaching `.len(`.
fn positional_chain_hits_store(code: &[&Token], mut j: usize) -> bool {
    let mut hits_store = false;
    while let Some(u) = code.get(j) {
        if u.kind == TokenKind::Ident {
            if u.text == "len" && code.get(j + 1).is_some_and(|n| n.text == "(") {
                return hits_store;
            }
            let lower = u.text.to_ascii_lowercase();
            if lower.contains("store") || lower.contains("nogood") {
                hits_store = true;
            }
        } else if u.text != "." {
            return false;
        }
        j += 1;
    }
    false
}

/// Looks inside `indexee[ ... ]` (with `open` at the `[`) for a range
/// expression with at least one bound. `buf[..]` reslices the whole
/// thing and cannot panic; `buf[a..b]`, `buf[..b]`, `buf[a..]`, and
/// `buf[a..=b]` all can.
fn is_bounded_range_slice(code: &[&Token], open: usize) -> bool {
    let mut depth = 0usize;
    let mut has_range = false;
    let mut has_bound = false;
    for j in open..code.len() {
        match code[j].text.as_str() {
            "[" | "(" => depth += 1,
            "]" | ")" => {
                depth -= 1;
                if depth == 0 {
                    return has_range && has_bound;
                }
            }
            "." if depth == 1 && code.get(j + 1).is_some_and(|n| n.text == ".") => {
                has_range = true;
            }
            _ if depth >= 1 && code[j].text != "." && code[j].text != "=" => {
                has_bound = true;
            }
            _ => {}
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(rules: &[Rule], src: &str) -> Vec<Finding> {
        check_source("crates/x/src/a.rs", src, rules)
    }

    fn codes(findings: &[Finding]) -> Vec<&'static str> {
        findings.iter().map(|f| f.rule).collect()
    }

    #[test]
    fn d1_flags_hash_collections_outside_tests() {
        let src = "struct S { a: HashSet<u32> }\n\
                   #[cfg(test)]\nmod tests { fn f() { let m: HashMap<u8, u8> = x(); } }\n";
        let fs = run(&[Rule::D1], src);
        assert_eq!(codes(&fs), vec!["D1"]);
        assert_eq!(fs[0].line, 1);
    }

    #[test]
    fn d1_ignores_imports_strings_and_comments() {
        let src = "use std::collections::HashMap;\n\
                   // HashMap in a comment\n\
                   fn f() -> &'static str { \"HashMap\" }\n";
        assert!(run(&[Rule::D1], src).is_empty());
    }

    #[test]
    fn inline_allow_with_justification_suppresses() {
        let src = "// lint: allow(unordered): keys are hashes, order never observed\n\
                   struct S { a: HashMap<u64, u8> }\n";
        assert!(run(&[Rule::D1], src).is_empty());
    }

    #[test]
    fn trailing_allow_covers_its_own_line() {
        let src =
            "struct S { a: HashMap<u64, u8> } // lint: allow(unordered): never iterated here\n";
        assert!(run(&[Rule::D1], src).is_empty());
    }

    #[test]
    fn allow_without_justification_is_a0_error() {
        let src = "// lint: allow(unordered)\nstruct S { a: HashMap<u64, u8> }\n";
        let fs = run(&[Rule::D1], src);
        assert!(fs.iter().any(|f| f.rule == "A0" && f.severity == Severity::Error));
        assert!(fs.iter().any(|f| f.rule == "D1"));
    }

    #[test]
    fn unknown_allow_name_is_a0_error() {
        let src = "// lint: allow(hashmaps): because I said so\nfn f() {}\n";
        let fs = run(&[Rule::D1], src);
        assert_eq!(codes(&fs), vec!["A0"]);
    }

    #[test]
    fn unused_allow_is_a0_warning() {
        let src = "// lint: allow(unordered): stale excuse for deleted code\nfn f() {}\n";
        let fs = run(&[Rule::D1], src);
        assert_eq!(codes(&fs), vec!["A0"]);
        assert_eq!(fs[0].severity, Severity::Warning);
    }

    #[test]
    fn d2_flags_instant_now_and_thread_rng() {
        let src = "fn f() { let t = Instant::now(); let r = thread_rng(); }\n\
                   fn g(i: Instant) -> Instant { i }\n";
        let fs = run(&[Rule::D2], src);
        assert_eq!(codes(&fs), vec!["D2", "D2"]);
    }

    #[test]
    fn m1_unmetered_query_flagged_metered_ok() {
        let bad = "fn f(&self) { for ng in self.store.for_variable(v) { use_it(ng); } }\n";
        assert_eq!(codes(&run(&[Rule::M1], bad)), vec!["M1"]);

        let good = "fn f(&mut self) {\n\
                    self.metrics.charge_checks(self.store.len());\n\
                    for ng in self.store.for_variable(v) { use_it(ng); }\n}\n";
        assert!(run(&[Rule::M1], good).is_empty());

        let via_eval = "fn f(&mut self) { let v = self.cache.eval(x); x.is_violated(a) }\n";
        assert!(run(&[Rule::M1], via_eval).is_empty());
    }

    #[test]
    fn p1_flags_panic_paths_but_not_handled_variants() {
        let src = "fn f(xs: &[u32]) -> u32 {\n\
                   let a = xs.first().unwrap();\n\
                   let b = opt.expect(\"msg\");\n\
                   let c = xs[0];\n\
                   panic!(\"boom\");\n\
                   }\n";
        let fs = run(&[Rule::P1], src);
        assert_eq!(codes(&fs), vec!["P1", "P1", "P1", "P1"]);

        let ok = "fn f(xs: &[u32]) -> u32 { xs.first().copied().unwrap_or(0) }\n";
        assert!(run(&[Rule::P1], ok).is_empty());
    }

    #[test]
    fn p1_ignores_array_type_and_literal() {
        let src = "fn f() { let a: [u8; 4] = [0, 1, 2, 3]; let s = &a[..]; g(&a); }\n";
        assert!(run(&[Rule::P1], src).is_empty());
    }

    #[test]
    fn p1_flags_bounded_range_slices_but_not_full_reslice() {
        let src = "fn f(buf: &[u8], n: usize) {\n\
                   let a = &buf[1..4];\n\
                   let b = &buf[..n];\n\
                   let c = &buf[n..];\n\
                   let d = &buf[x.min(y)..=n];\n\
                   let e = &buf[..];\n\
                   let m = map[k];\n\
                   }\n";
        let fs = run(&[Rule::P1], src);
        assert_eq!(codes(&fs), vec!["P1", "P1", "P1", "P1"]);
        assert_eq!(fs.iter().map(|f| f.line).collect::<Vec<_>>(), vec![2, 3, 4, 5]);
        assert!(fs[0].message.contains("range-slicing"), "{}", fs[0].message);
    }

    #[test]
    fn m1_flags_positional_loops_over_the_store_only() {
        let bad = "fn f(&self) { for i in 0..self.store.len() { use_slot(i); } }\n";
        assert_eq!(codes(&run(&[Rule::M1], bad)), vec!["M1"]);

        // Metering does not excuse positional iteration: slot indices
        // have holes after forgetting.
        let metered = "fn f(&mut self) {\n\
                       self.metrics.charge_checks(1);\n\
                       for i in 0..self.nogood_store.len() { use_slot(i); }\n}\n";
        assert_eq!(codes(&run(&[Rule::M1], metered)), vec!["M1"]);

        let other_len = "fn f(&self) { for i in 0..self.queue.len() { use_slot(i); } }\n";
        assert!(run(&[Rule::M1], other_len).is_empty());

        let entries = "fn f(&mut self) {\n\
                       self.metrics.charge_checks(n);\n\
                       for (i, ng) in self.store.entries() { g(i, ng); }\n}\n";
        assert!(run(&[Rule::M1], entries).is_empty());
    }

    #[test]
    fn workspace_allow_names_parse_without_per_file_noise() {
        // A panic-path/taint/schema annotation is the workspace pass's
        // business; the per-file pass must neither reject it nor flag
        // it as unused.
        let src = "// lint: allow(panic-path): capacity bounded by MAX_NOGOODS\n\
                   fn f() {}\n\
                   // lint: allow(taint): value only feeds logging\n\
                   fn g() {}\n";
        assert!(run(&FILE_RULES, src).is_empty());
    }

    #[test]
    fn scope_mapping_matches_design() {
        assert_eq!(
            rules_for("crates/awc/src/agent.rs"),
            vec![Rule::D1, Rule::D2, Rule::M1, Rule::P1]
        );
        assert_eq!(rules_for("crates/awc/src/solver.rs"), vec![Rule::D1, Rule::D2, Rule::M1]);
        assert_eq!(
            rules_for("crates/runtime/src/sync.rs"),
            vec![Rule::D1, Rule::D2, Rule::P1]
        );
        // The sharded executor and its slab/shard-plan arena live on the
        // determinism-critical replay path: same policing as the rest of
        // the runtime.
        assert_eq!(
            rules_for("crates/runtime/src/shard.rs"),
            vec![Rule::D1, Rule::D2, Rule::P1]
        );
        assert_eq!(
            rules_for("crates/runtime/src/pool.rs"),
            vec![Rule::D1, Rule::D2, Rule::P1]
        );
        assert_eq!(rules_for("crates/cspsolve/src/backtrack.rs"), vec![Rule::D1]);
        assert_eq!(rules_for("crates/probgen/src/lib.rs"), vec![Rule::D1]);
        assert_eq!(rules_for("crates/lint/src/main.rs"), Vec::<Rule>::new());
        // Protocol paths in the net crate are determinism- and
        // panic-policed like the runtime; the binary's arg parsing may
        // exit loudly, so P1 stops at main.rs.
        assert_eq!(
            rules_for("crates/net/src/coordinator.rs"),
            vec![Rule::D1, Rule::D2, Rule::P1]
        );
        assert_eq!(rules_for("crates/net/src/main.rs"), vec![Rule::D1, Rule::D2]);
        // The trace crate is a metrics auditor: determinism- and
        // panic-policed like the runtime, with the same main.rs carve-out
        // for the CLI's loud exits.
        assert_eq!(
            rules_for("crates/trace/src/audit.rs"),
            vec![Rule::D1, Rule::D2, Rule::P1]
        );
        assert_eq!(rules_for("crates/trace/src/main.rs"), vec![Rule::D1, Rule::D2]);
        // The explorer judges runs and minimizes schedules: ordered
        // containers and virtual time only, panic-policed library code,
        // with the usual main.rs carve-out for the CLI.
        assert_eq!(
            rules_for("crates/explore/src/campaign.rs"),
            vec![Rule::D1, Rule::D2, Rule::P1]
        );
        assert_eq!(
            rules_for("crates/explore/src/main.rs"),
            vec![Rule::D1, Rule::D2]
        );
        // The solve service's scheduler/session/table layers reason in
        // sweeps and virtual ticks: determinism- and panic-policed like
        // the runtime. The TCP shell and the load generator own the
        // sanctioned wall-clock sites (named D2 exemption), and the
        // binary keeps the usual main.rs P1 carve-out for loud exits.
        assert_eq!(
            rules_for("crates/service/src/service.rs"),
            vec![Rule::D1, Rule::D2, Rule::P1]
        );
        assert_eq!(
            rules_for("crates/service/src/session.rs"),
            vec![Rule::D1, Rule::D2, Rule::P1]
        );
        assert_eq!(
            rules_for("crates/service/src/server.rs"),
            vec![Rule::D1, Rule::P1]
        );
        assert_eq!(rules_for("crates/service/src/main.rs"), vec![Rule::D1]);
    }

    #[test]
    fn link_layer_is_exempt_from_d2_by_name_only() {
        // The virtual-tick clock lives in link.rs: D2 is lifted there —
        // and only there — while determinism and panic-safety still apply.
        assert_eq!(
            rules_for("crates/runtime/src/link.rs"),
            vec![Rule::D1, Rule::P1]
        );
        assert!(rules_for("crates/runtime/src/asynchronous.rs").contains(&Rule::D2));
    }

    #[test]
    fn net_transport_is_exempt_from_d2_by_name_only() {
        // Socket plumbing owns the crate's only sanctioned wall-clock
        // sites (accept deadline, connect backoff); D2 is lifted there —
        // and only there — while D1 and P1 still apply.
        assert_eq!(
            rules_for("crates/net/src/transport.rs"),
            vec![Rule::D1, Rule::P1]
        );
        for policed in ["coordinator.rs", "endpoint.rs", "frame.rs", "solve.rs", "lib.rs"] {
            let path = format!("crates/net/src/{policed}");
            assert!(rules_for(&path).contains(&Rule::D2), "{path} must keep D2");
        }
    }

    #[test]
    fn service_realtime_is_exempt_from_d2_by_name_only() {
        // The service's real-time shell (socket accept loop, response
        // timeouts) and the load generator's sessions/sec stopwatch are
        // the crate's only sanctioned wall-clock sites; D2 is lifted
        // there — and only there — while the scheduler underneath stays
        // on the virtual clock.
        assert_eq!(
            rules_for("crates/service/src/server.rs"),
            vec![Rule::D1, Rule::P1]
        );
        assert_eq!(rules_for("crates/service/src/main.rs"), vec![Rule::D1]);
        for policed in ["service.rs", "session.rs", "table.rs", "lib.rs"] {
            let path = format!("crates/service/src/{policed}");
            assert!(rules_for(&path).contains(&Rule::D2), "{path} must keep D2");
        }
    }

    #[test]
    fn test_attribute_skips_following_item_only() {
        let src = "#[test]\nfn t() { let x = v.unwrap(); }\n\
                   fn real() { let y = v.unwrap(); }\n";
        let fs = run(&[Rule::P1], src);
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].line, 3);
    }
}
