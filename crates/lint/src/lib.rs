//! `discsp-lint`: a workspace invariant analyzer for this repository.
//!
//! The paper this repo reproduces (Hirayama & Yokoo, ICDCS 2000)
//! measures algorithms in *cycles* and *constraint checks* — quantities
//! that are only meaningful if runs are bit-deterministic and every
//! constraint evaluation is metered. Ordinary compilers cannot enforce
//! either, so this crate does, with four token-level rules:
//!
//! - **D1** — no `HashMap`/`HashSet` in agent/solver/metric code
//!   (iteration order is randomized per process).
//! - **D2** — no `Instant::now`/`SystemTime`/`thread_rng` in simulator
//!   paths (cost is cycles and checks, never seconds).
//! - **M1** — nogood-store queries in AWC/DBA hot loops must be metered
//!   (via `IncrementalEval::eval` or a nearby `charge_checks`).
//! - **P1** — no panic paths in the runtime or agent step functions
//!   (one agent's failure must degrade into a reported error).
//!
//! Violations can be exempted inline
//! (`// lint: allow(<name>): <justification>`) or via the workspace
//! allowlist file `lint-allow.list`; both demand a justification and
//! both rot loudly (**A0**) when they stop matching anything.
//!
//! The crate deliberately has **zero dependencies**: it must build and
//! run in the offline environment before anything else does, so it can
//! gate the rest of the workspace.

pub mod allow;
pub mod diag;
pub mod lexer;
pub mod rules;
pub mod walk;

use std::fs;
use std::path::Path;

use allow::Allowlist;
use diag::{Finding, Severity};
use rules::{check_source, rules_for, Rule};

/// Result of analyzing a whole workspace.
#[derive(Debug)]
pub struct WorkspaceReport {
    /// All findings, in path order.
    pub findings: Vec<Finding>,
    /// How many files were scanned.
    pub files_scanned: usize,
}

impl WorkspaceReport {
    /// Whether any finding is an error (exit code 1).
    pub fn has_errors(&self) -> bool {
        self.findings.iter().any(|f| f.severity == Severity::Error)
    }
}

/// Analyzes one file's source with the given rules and allowlist.
/// `rel_path` is used for scope-independent reporting and allowlist
/// matching; pass the workspace-relative path when you have one.
pub fn analyze_source(
    rel_path: &str,
    src: &str,
    rules: &[Rule],
    allowlist: &Allowlist,
) -> Vec<Finding> {
    check_source(rel_path, src, rules)
        .into_iter()
        .filter(|f| !allowlist.covers(f))
        .collect()
}

/// Analyzes every lintable file under `root/crates/`, applying the
/// scope map and the `lint-allow.list` file at the root (if present).
pub fn analyze_workspace(root: &Path) -> WorkspaceReport {
    let allow_path = root.join("lint-allow.list");
    let (allowlist, mut findings) = match fs::read_to_string(&allow_path) {
        Ok(text) => Allowlist::parse("lint-allow.list", &text),
        Err(_) => (Allowlist::empty(), Vec::new()),
    };

    let files = walk::lintable_files(root);
    let files_scanned = files.len();
    for rel in &files {
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        let rules = rules_for(&rel_str);
        if rules.is_empty() {
            continue;
        }
        let Ok(src) = fs::read_to_string(root.join(rel)) else {
            continue;
        };
        findings.extend(analyze_source(&rel_str, &src, &rules, &allowlist));
    }
    findings.extend(allowlist.unused_entries());

    WorkspaceReport {
        findings,
        files_scanned,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allowlist_filters_findings_in_analyze_source() {
        let (al, errs) = Allowlist::parse(
            "lint-allow.list",
            "D1 | src/a.rs | HashMap | lookups only, order never observed\n",
        );
        assert!(errs.is_empty());
        let src = "struct S { m: HashMap<u64, u8> }\n";
        let fs = analyze_source("crates/x/src/a.rs", src, &[Rule::D1], &al);
        assert!(fs.is_empty());
        assert!(al.unused_entries().is_empty());
    }

    #[test]
    fn findings_survive_without_matching_entry() {
        let al = Allowlist::empty();
        let src = "struct S { m: HashMap<u64, u8> }\n";
        let fs = analyze_source("crates/x/src/a.rs", src, &[Rule::D1], &al);
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].rule, "D1");
    }
}
