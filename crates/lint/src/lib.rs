//! `discsp-lint`: a workspace invariant analyzer for this repository.
//!
//! The paper this repo reproduces (Hirayama & Yokoo, ICDCS 2000)
//! measures algorithms in *cycles* and *constraint checks* — quantities
//! that are only meaningful if runs are bit-deterministic and every
//! constraint evaluation is metered. Ordinary compilers cannot enforce
//! either, so this crate does, in two layers.
//!
//! Per-file token rules:
//!
//! - **D1** — no `HashMap`/`HashSet` in agent/solver/metric code
//!   (iteration order is randomized per process).
//! - **D2** — no `Instant::now`/`SystemTime`/`thread_rng` in simulator
//!   paths (cost is cycles and checks, never seconds).
//! - **M1** — nogood-store queries in AWC/DBA hot loops must be metered
//!   (via `IncrementalEval::eval` or a nearby `charge_checks`), and
//!   positional `0..store.len()` loops are banned outright.
//! - **P1** — no panic paths in the runtime or agent step functions
//!   (one agent's failure must degrade into a reported error).
//!
//! Workspace rules, running on a symbol table and call graph built by a
//! recursive-descent item parser ([`parser`], [`graph`]):
//!
//! - **P2** — no panic site transitively *reachable* from the P1 entry
//!   points, anywhere in the workspace, with per-edge blame chains.
//! - **D3** — no value derived from a D1/D2 forbidden source flowing
//!   through the call graph into determinism-policed code.
//! - **W1** — the `TraceEvent` schema stays in sync across its four
//!   hand-written codecs and the `Wire` codec property tests.
//!
//! Violations can be exempted inline
//! (`// lint: allow(<name>): <justification>`) or via the workspace
//! allowlist file `lint-allow.list`; both demand a justification and
//! both rot loudly (**A0**) when they stop matching anything.
//!
//! The crate deliberately has **zero dependencies**: it must build and
//! run in the offline environment before anything else does, so it can
//! gate the rest of the workspace.

pub mod allow;
pub mod diag;
pub mod graph;
pub mod lexer;
pub mod parser;
pub mod rules;
pub mod walk;
pub mod wrules;

use std::collections::BTreeMap;
use std::fs;
use std::path::Path;
use std::time::{Duration, Instant};

use allow::Allowlist;
use diag::{Finding, Severity};
use graph::CallGraph;
use rules::{check_source, check_tokens, rules_for, workspace_annotations, Rule};

/// Result of analyzing a whole workspace.
#[derive(Debug)]
pub struct WorkspaceReport {
    /// All findings, in path order.
    pub findings: Vec<Finding>,
    /// How many files were scanned.
    pub files_scanned: usize,
    /// How many functions the symbol table indexed.
    pub fns_indexed: usize,
    /// How many call edges were resolved.
    pub call_edges: usize,
    /// Analyzer malfunctions (unreadable files, missing sync inputs):
    /// these mean the verdict is incomplete and map to exit code 3, so
    /// CI can tell a broken lint from a dirty tree.
    pub internal_errors: Vec<String>,
    /// Wall time per phase, for `--timing` and the CI budget assertion.
    pub timings: Vec<(&'static str, Duration)>,
}

impl WorkspaceReport {
    /// Whether any finding is an error (exit code 1).
    pub fn has_errors(&self) -> bool {
        self.findings.iter().any(|f| f.severity == Severity::Error)
    }

    /// Total wall time across phases.
    pub fn total_time(&self) -> Duration {
        self.timings.iter().map(|(_, d)| *d).sum()
    }
}

/// Analyzes one file's source with the given rules and allowlist.
/// `rel_path` is used for scope-independent reporting and allowlist
/// matching; pass the workspace-relative path when you have one.
pub fn analyze_source(
    rel_path: &str,
    src: &str,
    rules: &[Rule],
    allowlist: &Allowlist,
) -> Vec<Finding> {
    check_source(rel_path, src, rules)
        .into_iter()
        .filter(|f| !allowlist.covers(f))
        .collect()
}

/// Analyzes every lintable file under `root/crates/`: the per-file
/// rules under the scope map, then the workspace rules (P2/D3/W1) over
/// the call graph, honoring `lint-allow.list` and inline annotations
/// throughout.
pub fn analyze_workspace(root: &Path) -> WorkspaceReport {
    let mut timings = Vec::new();
    let mut internal_errors = Vec::new();

    // Phase 1: read + lex every lintable file once; both the per-file
    // rules and the item parser run on the shared token streams.
    let t = Instant::now();
    let allow_path = root.join("lint-allow.list");
    let (allowlist, mut findings) = match fs::read_to_string(&allow_path) {
        Ok(text) => Allowlist::parse("lint-allow.list", &text),
        Err(_) => (Allowlist::empty(), Vec::new()),
    };
    let files = walk::lintable_files(root);
    let files_scanned = files.len();
    let mut sources: Vec<(String, String, Vec<lexer::Token>)> = Vec::with_capacity(files.len());
    for rel in &files {
        let rel_str = rel.to_string_lossy().replace('\\', "/");
        match fs::read_to_string(root.join(rel)) {
            Ok(src) => {
                let tokens = lexer::lex(&src);
                sources.push((rel_str, src, tokens));
            }
            Err(e) => internal_errors.push(format!("cannot read {rel_str}: {e}")),
        }
    }
    timings.push(("read + lex", t.elapsed()));

    // Phase 2: per-file token rules.
    let t = Instant::now();
    for (rel, src, tokens) in &sources {
        let rules = rules_for(rel);
        if rules.is_empty() {
            continue;
        }
        findings.extend(
            check_tokens(rel, src, tokens, &rules)
                .into_iter()
                .filter(|f| !allowlist.covers(f)),
        );
    }
    timings.push(("per-file rules", t.elapsed()));

    // Phase 3: item parse + call graph. The analyzer does not model
    // itself: `crates/lint` is a standalone CLI outside the simulator,
    // and indexing its method names (`parse`, `covers`, …) would only
    // add bogus CHA edges into runtime blame chains.
    let t = Instant::now();
    let parsed: Vec<parser::ParsedFile> = sources
        .iter()
        .filter(|(rel, _, _)| !rel.starts_with("crates/lint/"))
        .map(|(rel, _, tokens)| parser::parse_file(rel, tokens))
        .collect();
    let graph = CallGraph::build(&parsed);
    let call_edges = graph.calls.iter().map(Vec::len).sum();
    timings.push(("parse + call graph", t.elapsed()));

    // Phase 4: workspace rules, then annotation/allowlist suppression.
    let t = Instant::now();
    let lines: BTreeMap<String, Vec<String>> = sources
        .iter()
        .map(|(rel, src, _)| (rel.clone(), src.lines().map(str::to_string).collect()))
        .collect();
    let wire_props_path = root.join(wrules::WIRE_PROPS_FILE);
    let wire_props = match fs::read_to_string(&wire_props_path) {
        Ok(text) => Some(text),
        Err(_) if !wire_props_path.exists() => None,
        Err(e) => {
            internal_errors.push(format!(
                "cannot read {}: {e}",
                wrules::WIRE_PROPS_FILE
            ));
            None
        }
    };
    let input = wrules::WorkspaceInput {
        files: &parsed,
        graph: &graph,
        lines: &lines,
        wire_props: wire_props.as_deref(),
    };
    let (candidates, ws_internal) = wrules::check_workspace(&input);
    internal_errors.extend(ws_internal);

    let annotations: Vec<(String, rules::WsAnnotation)> = sources
        .iter()
        .flat_map(|(rel, _, tokens)| {
            workspace_annotations(tokens)
                .into_iter()
                .map(move |a| (rel.clone(), a))
        })
        .collect();
    let used: Vec<std::cell::Cell<bool>> =
        annotations.iter().map(|_| std::cell::Cell::new(false)).collect();
    for (rule, finding) in candidates {
        let exempted = annotations.iter().enumerate().find(|(_, (rel, a))| {
            a.rule == rule && *rel == finding.path && a.target_line == finding.line
        });
        match exempted {
            Some((i, _)) => used[i].set(true),
            None => {
                if !allowlist.covers(&finding) {
                    findings.push(finding);
                }
            }
        }
    }
    for (i, (rel, a)) in annotations.iter().enumerate() {
        if !used[i].get() {
            findings.push(Finding {
                rule: "A0",
                severity: Severity::Warning,
                path: rel.clone(),
                line: a.comment_line,
                col: 1,
                message: format!(
                    "unused `lint: allow({})` annotation: no {} finding on the line it covers",
                    a.rule.allow_name(),
                    a.rule.code()
                ),
                snippet: lines
                    .get(rel)
                    .and_then(|ls| ls.get(a.comment_line as usize - 1))
                    .cloned()
                    .unwrap_or_default(),
                help: "delete the annotation, or move it onto the violation it exempts",
            });
        }
    }
    findings.extend(allowlist.unused_entries());
    findings.sort_by(|a, b| (&a.path, a.line, a.col, a.rule).cmp(&(&b.path, b.line, b.col, b.rule)));
    timings.push(("workspace rules", t.elapsed()));

    WorkspaceReport {
        findings,
        files_scanned,
        fns_indexed: graph.fns.len(),
        call_edges,
        internal_errors,
        timings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allowlist_filters_findings_in_analyze_source() {
        let (al, errs) = Allowlist::parse(
            "lint-allow.list",
            "D1 | src/a.rs | HashMap | lookups only, order never observed\n",
        );
        assert!(errs.is_empty());
        let src = "struct S { m: HashMap<u64, u8> }\n";
        let fs = analyze_source("crates/x/src/a.rs", src, &[Rule::D1], &al);
        assert!(fs.is_empty());
        assert!(al.unused_entries().is_empty());
    }

    #[test]
    fn findings_survive_without_matching_entry() {
        let al = Allowlist::empty();
        let src = "struct S { m: HashMap<u64, u8> }\n";
        let fs = analyze_source("crates/x/src/a.rs", src, &[Rule::D1], &al);
        assert_eq!(fs.len(), 1);
        assert_eq!(fs[0].rule, "D1");
    }
}
