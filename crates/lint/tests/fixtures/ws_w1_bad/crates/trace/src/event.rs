//! Fixture trace schema: three variants, two codecs out of sync.

pub enum TraceEvent {
    AgentStep { cycle: u64, checks: u64 },
    NogoodLearned { cycle: u64, size: u64 },
    RunEnd { cycle: u64 },
}
