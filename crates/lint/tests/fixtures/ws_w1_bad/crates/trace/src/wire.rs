//! Fixture wire codec: `RunEnd` reuses `NogoodLearned`'s tag.

impl Wire for TraceEvent {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            TraceEvent::AgentStep { .. } => out.push(0),
            TraceEvent::NogoodLearned { .. } => out.push(1),
            TraceEvent::RunEnd { .. } => out.push(1),
        }
    }

    fn decode(reader: &mut Reader) -> Result<Self, Error> {
        match reader.tag() {
            0 => Ok(TraceEvent::AgentStep { cycle: 0, checks: 0 }),
            1 => Ok(TraceEvent::NogoodLearned { cycle: 0, size: 0 }),
            _ => Ok(TraceEvent::RunEnd { cycle: 0 }),
        }
    }
}
