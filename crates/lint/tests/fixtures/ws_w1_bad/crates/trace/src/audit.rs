//! Fixture auditor: every variant accounted for.

pub fn audit(event: &TraceEvent) -> u64 {
    match event {
        TraceEvent::AgentStep { checks, .. } => *checks,
        TraceEvent::NogoodLearned { size, .. } => *size,
        TraceEvent::RunEnd { cycle } => *cycle,
    }
}
