//! Fixture summarizer: every variant accounted for.

pub fn summarize(event: &TraceEvent) -> &'static str {
    match event {
        TraceEvent::AgentStep { .. } => "step",
        TraceEvent::NogoodLearned { .. } => "learned",
        TraceEvent::RunEnd { .. } => "end",
    }
}
