//! Fixture JSONL codec: the `NogoodLearned` decode arm was removed.

pub fn event_to_json(event: &TraceEvent) -> String {
    match event {
        TraceEvent::AgentStep { .. } => row("agent_step"),
        TraceEvent::NogoodLearned { .. } => row("nogood_learned"),
        TraceEvent::RunEnd { .. } => row("run_end"),
    }
}

pub fn event_from_object(kind: &str) -> Option<TraceEvent> {
    match kind {
        "agent_step" => Some(TraceEvent::AgentStep { cycle: 0, checks: 0 }),
        "run_end" => Some(TraceEvent::RunEnd { cycle: 0 }),
        _ => None,
    }
}
