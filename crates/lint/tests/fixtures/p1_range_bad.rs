//! P1 range-slice fixture: bounded slices panic when bounds lie outside
//! the buffer; only the full reslice `[..]` is total.

pub fn frame(buf: &[u8], a: usize, b: usize) -> (&[u8], &[u8], &[u8], &[u8]) {
    let head = &buf[..b];
    let tail = &buf[a..];
    let body = &buf[a..b];
    let fixed = &buf[4..=8];
    let whole = &buf[..];
    let _ = whole;
    (head, tail, body, fixed)
}
