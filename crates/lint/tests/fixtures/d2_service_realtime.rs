//! Shape of the sanctioned wall-clock sites in the solve service's
//! real-time shell: a non-blocking accept loop that sleeps between
//! polls and a sessions/sec stopwatch. Exempt from D2 at
//! `crates/service/src/server.rs` and `crates/service/src/main.rs` —
//! and only there.
use std::time::{Duration, Instant};

fn accept_loop(stop: &std::sync::atomic::AtomicBool) -> f64 {
    let started = Instant::now();
    let mut accepted = 0u64;
    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
        std::thread::sleep(Duration::from_millis(2));
        accepted += 1;
    }
    let wall = Instant::now().duration_since(started);
    accepted as f64 / wall.as_secs_f64()
}
