//! M1 positive fixture: a nogood-store query with no metering in sight.

pub fn consistent(&self, var: u32, val: i64) -> bool {
    for ng in self.store.for_variable(var) {
        if ng.binds(var, val) {
            return false;
        }
    }
    true
}

pub fn filter_unmetered(&self, val: i64) -> Vec<usize> {
    self.tracker.violated_among(&self.candidates, val)
}
