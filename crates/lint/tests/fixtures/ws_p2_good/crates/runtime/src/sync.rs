//! Fixture: the same call shape with the panic path designed out.

pub fn run_cycle(values: &[i64]) -> i64 {
    util::pick_first(values).unwrap_or(0)
}
