//! Fixture: helper that reports absence instead of panicking.

pub fn pick_first(values: &[i64]) -> Option<i64> {
    values.first().copied()
}
