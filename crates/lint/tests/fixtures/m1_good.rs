//! M1 negative fixture: both sanctioned metering shapes.

pub fn consistent_charged(&mut self, var: u32, val: i64) -> bool {
    self.metrics.charge_checks(self.store.len());
    for ng in self.store.for_variable(var) {
        if ng.binds(var, val) {
            return false;
        }
    }
    true
}

pub fn consistent_incremental(&mut self, var: u32, val: i64) -> bool {
    let violated = self.cache.eval(var, val);
    !violated && !self.extra.is_violated(var)
}

pub fn violated_charged(&mut self, val: i64) -> Vec<usize> {
    self.metrics.charge_checks(self.candidates.len() as u64);
    self.tracker.violated_among(&self.candidates, val)
}
