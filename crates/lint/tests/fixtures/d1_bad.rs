//! D1 positive fixture: unordered collections in non-test code.

use std::collections::{HashMap, HashSet};

pub struct AgentState {
    pub generated_before: HashSet<u64>,
    pub view: HashMap<u32, i64>,
}

pub fn tally(state: &AgentState) -> usize {
    state.generated_before.len() + state.view.len()
}
