//! Fixture: wall-clock seed in a crate the per-file D2 rule skips.

pub fn seed_from_clock() -> u64 {
    Instant::now().elapsed().as_nanos() as u64
}
