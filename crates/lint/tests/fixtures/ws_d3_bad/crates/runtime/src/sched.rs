//! Fixture: determinism-policed scheduler consuming the tainted seed.

pub fn reseed() -> u64 {
    seed::seed_from_clock()
}
