//! P1 positive fixture: the four panic shapes the rule knows.

pub fn step(values: &[i64], choice: Option<i64>) -> i64 {
    let first = values[0];
    let picked = choice.unwrap();
    let checked = choice.expect("a value");
    if first > picked + checked {
        panic!("inconsistent state");
    }
    first
}
