//! Fixture: runtime entry point whose helper panics one crate away.

pub fn run_cycle(values: &[i64]) -> i64 {
    util::pick_first(values)
}
