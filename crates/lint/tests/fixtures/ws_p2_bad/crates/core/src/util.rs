//! Fixture: helper outside the P1 scope with a panic path.

pub fn pick_first(values: &[i64]) -> i64 {
    values.first().copied().unwrap()
}
