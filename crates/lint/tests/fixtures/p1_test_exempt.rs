//! P1 negative fixture: panics in tests are fine; handled variants too.

pub fn step(values: &[i64], choice: Option<i64>) -> i64 {
    let first = values.first().copied().unwrap_or(0);
    choice.unwrap_or(first)
}

#[test]
fn unwrap_in_test_is_exempt() {
    let v = Some(3).unwrap();
    assert_eq!(v, 3);
}

#[cfg(test)]
mod tests {
    #[test]
    fn panics_in_test_modules_are_exempt() {
        let xs = [1, 2, 3];
        let _ = xs[0];
        Some(1).expect("present");
        if false {
            panic!("never");
        }
    }
}
