//! D2 positive fixture: wall-clock and entropy in simulator-style code.

use std::time::{Instant, SystemTime};

pub fn step_with_timing() -> u128 {
    let start = Instant::now();
    let _seed = SystemTime::now();
    let _r = thread_rng();
    start.elapsed().as_micros()
}
