//! M1 positional-loop fixture: indexing the store by raw position was
//! only valid before the arena gained holes; `entries()`/`indices()`
//! are the supported iteration surface, metered or not.

pub fn sweep(&mut self) -> u32 {
    let mut hits = 0;
    for i in 0..self.store.len() {
        self.charge_checks(1);
        if self.store.get(i).is_some() {
            hits += 1;
        }
    }
    hits
}

pub fn sweep_by_handle(&mut self) -> u32 {
    let mut hits = 0;
    for (_idx, ng) in self.store.entries() {
        self.charge_checks(1);
        hits += ng.len() as u32;
    }
    hits
}
