//! D1 negative fixture: annotated uses and test-only uses are exempt.

use std::collections::{HashMap, HashSet};

pub struct Index {
    // lint: allow(unordered): point lookups keyed by hash; buckets are
    // never iterated, so map order cannot reach any output.
    by_hash: HashMap<u64, Vec<u32>>,
    names: HashSet<String>, // lint: allow(unordered): membership tests only, never iterated
}

pub fn lookup(ix: &Index, h: u64) -> Option<&Vec<u32>> {
    let _ = ix.names.contains("x");
    ix.by_hash.get(&h)
}

#[cfg(test)]
mod tests {
    use std::collections::HashMap;

    #[test]
    fn test_code_is_exempt() {
        let m: HashMap<u8, u8> = HashMap::new();
        assert!(m.is_empty());
    }
}
