//! Shape of the sanctioned wall-clock sites in the net transport:
//! a socket accept loop with a real-time deadline. Exempt from D2 at
//! `crates/net/src/transport.rs` — and only there.
use std::time::{Duration, Instant};

fn accept_until(expected: usize) -> usize {
    let give_up = Instant::now() + Duration::from_secs(30);
    let mut accepted = 0;
    while accepted < expected {
        if Instant::now() >= give_up {
            break;
        }
        accepted += 1;
    }
    accepted
}
