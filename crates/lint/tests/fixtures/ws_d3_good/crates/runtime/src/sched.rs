//! Fixture: the policed caller is fine as long as nothing flows back.

pub fn reseed() {
    seed::warm_up();
}
