//! Fixture: wall clock bounding a wait; no value escapes to callers.

pub fn warm_up() {
    let _t = Instant::now();
}
