//! A0 fixture: broken suppression machinery must be loud.

// lint: allow(panic)
pub fn naked_allow(choice: Option<i64>) -> i64 {
    choice.unwrap()
}

// lint: allow(hashmaps): unknown rule name
pub fn unknown_name() {}

// lint: allow(unordered): this annotation covers nothing at all
pub fn unused_allow() {}
