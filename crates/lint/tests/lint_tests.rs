//! Fixture-based self-tests for every rule, plus the workspace
//! self-run: the tree that ships this analyzer must itself be clean.

use std::path::Path;
use std::process::Command;

use discsp_lint::allow::Allowlist;
use discsp_lint::diag::{render_json, Finding, Severity};
use discsp_lint::rules::ALL_RULES;
use discsp_lint::{analyze_source, analyze_workspace};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Runs all rules over a fixture with an empty allowlist, the same way
/// the binary's explicit-files mode does.
fn lint_fixture(name: &str) -> Vec<Finding> {
    analyze_source(
        &format!("crates/lint/tests/fixtures/{name}"),
        &fixture(name),
        &ALL_RULES,
        &Allowlist::empty(),
    )
}

fn rule_lines(findings: &[Finding], rule: &str) -> Vec<u32> {
    findings
        .iter()
        .filter(|f| f.rule == rule)
        .map(|f| f.line)
        .collect()
}

#[test]
fn d1_bad_flags_both_collections_at_their_lines() {
    let fs = lint_fixture("d1_bad.rs");
    assert_eq!(rule_lines(&fs, "D1"), vec![6, 7]);
    assert!(fs.iter().all(|f| f.severity == Severity::Error));
    let f = &fs[0];
    assert!(f.message.contains("HashSet"));
    assert!(f.snippet.contains("generated_before"));
}

#[test]
fn d1_allowed_is_clean() {
    assert!(lint_fixture("d1_allowed.rs").is_empty());
}

#[test]
fn d2_bad_flags_all_three_sources() {
    let fs = lint_fixture("d2_bad.rs");
    assert_eq!(rule_lines(&fs, "D2"), vec![6, 7, 8]);
}

#[test]
fn m1_bad_flags_unmetered_query() {
    let fs = lint_fixture("m1_bad.rs");
    assert_eq!(rule_lines(&fs, "M1"), vec![4, 13]);
    assert!(fs[0].message.contains("for_variable"));
    assert!(fs[1].message.contains("violated_among"));
}

#[test]
fn m1_good_is_clean() {
    assert!(lint_fixture("m1_good.rs").is_empty());
}

#[test]
fn p1_bad_flags_all_four_shapes() {
    let fs = lint_fixture("p1_bad.rs");
    assert_eq!(rule_lines(&fs, "P1"), vec![4, 5, 6, 8]);
}

#[test]
fn p1_test_exempt_is_clean() {
    assert!(lint_fixture("p1_test_exempt.rs").is_empty());
}

#[test]
fn net_transport_d2_exemption_is_path_scoped() {
    // The same wall-clock code is sanctioned at the transport path and a
    // violation anywhere else in the net crate: the exemption is by file
    // name, not by code shape.
    let src = fixture("d2_net_transport.rs");
    let allow = Allowlist::empty();
    let at = |path: &str| {
        analyze_source(path, &src, &discsp_lint::rules::rules_for(path), &allow)
    };
    let exempt = at("crates/net/src/transport.rs");
    assert!(
        rule_lines(&exempt, "D2").is_empty(),
        "transport.rs is D2-exempt by name: {exempt:?}"
    );
    let policed = at("crates/net/src/coordinator.rs");
    assert_eq!(
        rule_lines(&policed, "D2"),
        vec![7, 10],
        "the identical source is flagged at every other net path"
    );
}

#[test]
fn broken_annotations_are_a0() {
    let fs = lint_fixture("allow_bad.rs");
    let a0_errors: Vec<u32> = fs
        .iter()
        .filter(|f| f.rule == "A0" && f.severity == Severity::Error)
        .map(|f| f.line)
        .collect();
    // Missing justification (line 3) and unknown name (line 8).
    assert_eq!(a0_errors, vec![3, 8]);
    // The rejected allow(panic) must not suppress the unwrap.
    assert_eq!(rule_lines(&fs, "P1"), vec![5]);
    // The valid-but-pointless allow(unordered) is a warning.
    assert!(fs
        .iter()
        .any(|f| f.rule == "A0" && f.severity == Severity::Warning && f.line == 11));
}

#[test]
fn file_allowlist_suppresses_and_reports_stale_entries() {
    let (allow, errs) = Allowlist::parse(
        "lint-allow.list",
        "D1 | fixtures/d1_bad.rs | generated_before | membership set, iteration never observed\n\
         P1 | fixtures/nonexistent.rs | unwrap | stale entry that matches nothing anywhere\n",
    );
    assert!(errs.is_empty());
    let fs = analyze_source(
        "crates/lint/tests/fixtures/d1_bad.rs",
        &fixture("d1_bad.rs"),
        &ALL_RULES,
        &allow,
    );
    // The HashSet on line 6 is exempted; the HashMap on line 7 is not.
    assert_eq!(rule_lines(&fs, "D1"), vec![7]);
    let stale = allow.unused_entries();
    assert_eq!(stale.len(), 1);
    assert_eq!(stale[0].line, 2);
    assert_eq!(stale[0].severity, Severity::Warning);
}

#[test]
fn workspace_self_run_is_clean_at_head() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    let report = analyze_workspace(&root);
    assert!(report.files_scanned > 40, "walker should see the whole workspace");
    assert!(
        report.findings.is_empty(),
        "workspace must lint clean at HEAD, got:\n{}",
        report
            .findings
            .iter()
            .map(|f| format!("{}[{}] {}:{} {}", match f.severity {
                Severity::Error => "error",
                Severity::Warning => "warning",
            }, f.rule, f.path, f.line, f.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn binary_exits_nonzero_on_seeded_violations() {
    let fixture_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/p1_bad.rs");
    let output = Command::new(env!("CARGO_BIN_EXE_discsp-lint"))
        .arg(&fixture_path)
        .output()
        .expect("binary runs");
    assert_eq!(output.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("error[P1]"));
    assert!(stdout.contains("p1_bad.rs:4:"));
    assert!(stdout.contains("= help:"));
}

#[test]
fn binary_exits_zero_on_clean_workspace() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    let output = Command::new(env!("CARGO_BIN_EXE_discsp-lint"))
        .arg("--root")
        .arg(&root)
        .output()
        .expect("binary runs");
    assert_eq!(output.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("discsp-lint: clean"));
}

#[test]
fn binary_json_mode_emits_machine_readable_findings() {
    let fixture_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/d2_bad.rs");
    let output = Command::new(env!("CARGO_BIN_EXE_discsp-lint"))
        .arg("--json")
        .arg(&fixture_path)
        .output()
        .expect("binary runs");
    assert_eq!(output.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.trim_start().starts_with('['));
    assert!(stdout.contains(r#""rule":"D2""#));
    assert!(stdout.contains(r#""line":6"#));
    // The library renderer and the binary agree on shape.
    let fs = lint_fixture("d2_bad.rs");
    let rendered = render_json(&fs);
    assert!(rendered.contains(r#""rule":"D2""#));
}
