//! Fixture-based self-tests for every rule, plus the workspace
//! self-run: the tree that ships this analyzer must itself be clean.

use std::path::Path;
use std::process::Command;

use discsp_lint::allow::Allowlist;
use discsp_lint::diag::{render_json, Finding, Severity};
use discsp_lint::rules::ALL_RULES;
use discsp_lint::{analyze_source, analyze_workspace};

fn fixture(name: &str) -> String {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// Runs all rules over a fixture with an empty allowlist, the same way
/// the binary's explicit-files mode does.
fn lint_fixture(name: &str) -> Vec<Finding> {
    analyze_source(
        &format!("crates/lint/tests/fixtures/{name}"),
        &fixture(name),
        &ALL_RULES,
        &Allowlist::empty(),
    )
}

fn rule_lines(findings: &[Finding], rule: &str) -> Vec<u32> {
    findings
        .iter()
        .filter(|f| f.rule == rule)
        .map(|f| f.line)
        .collect()
}

#[test]
fn d1_bad_flags_both_collections_at_their_lines() {
    let fs = lint_fixture("d1_bad.rs");
    assert_eq!(rule_lines(&fs, "D1"), vec![6, 7]);
    assert!(fs.iter().all(|f| f.severity == Severity::Error));
    let f = &fs[0];
    assert!(f.message.contains("HashSet"));
    assert!(f.snippet.contains("generated_before"));
}

#[test]
fn d1_allowed_is_clean() {
    assert!(lint_fixture("d1_allowed.rs").is_empty());
}

#[test]
fn d2_bad_flags_all_three_sources() {
    let fs = lint_fixture("d2_bad.rs");
    assert_eq!(rule_lines(&fs, "D2"), vec![6, 7, 8]);
}

#[test]
fn m1_bad_flags_unmetered_query() {
    let fs = lint_fixture("m1_bad.rs");
    assert_eq!(rule_lines(&fs, "M1"), vec![4, 13]);
    assert!(fs[0].message.contains("for_variable"));
    assert!(fs[1].message.contains("violated_among"));
}

#[test]
fn m1_good_is_clean() {
    assert!(lint_fixture("m1_good.rs").is_empty());
}

#[test]
fn p1_bad_flags_all_four_shapes() {
    let fs = lint_fixture("p1_bad.rs");
    assert_eq!(rule_lines(&fs, "P1"), vec![4, 5, 6, 8]);
}

#[test]
fn p1_test_exempt_is_clean() {
    assert!(lint_fixture("p1_test_exempt.rs").is_empty());
}

#[test]
fn net_transport_d2_exemption_is_path_scoped() {
    // The same wall-clock code is sanctioned at the transport path and a
    // violation anywhere else in the net crate: the exemption is by file
    // name, not by code shape.
    let src = fixture("d2_net_transport.rs");
    let allow = Allowlist::empty();
    let at = |path: &str| {
        analyze_source(path, &src, &discsp_lint::rules::rules_for(path), &allow)
    };
    let exempt = at("crates/net/src/transport.rs");
    assert!(
        rule_lines(&exempt, "D2").is_empty(),
        "transport.rs is D2-exempt by name: {exempt:?}"
    );
    let policed = at("crates/net/src/coordinator.rs");
    assert_eq!(
        rule_lines(&policed, "D2"),
        vec![7, 10],
        "the identical source is flagged at every other net path"
    );
}

#[test]
fn service_realtime_d2_exemption_is_path_scoped() {
    // The service's accept loop and sessions/sec stopwatch are
    // sanctioned in the TCP shell and the load generator, and flagged
    // verbatim anywhere in the scheduler underneath: the exemption is
    // by file name, not by code shape.
    let src = fixture("d2_service_realtime.rs");
    let allow = Allowlist::empty();
    let at = |path: &str| {
        analyze_source(path, &src, &discsp_lint::rules::rules_for(path), &allow)
    };
    for exempt_path in ["crates/service/src/server.rs", "crates/service/src/main.rs"] {
        let exempt = at(exempt_path);
        assert!(
            rule_lines(&exempt, "D2").is_empty(),
            "{exempt_path} is D2-exempt by name: {exempt:?}"
        );
    }
    let policed = at("crates/service/src/service.rs");
    assert_eq!(
        rule_lines(&policed, "D2"),
        vec![9, 15],
        "the identical source is flagged in the scheduler layer"
    );
}

#[test]
fn broken_annotations_are_a0() {
    let fs = lint_fixture("allow_bad.rs");
    let a0_errors: Vec<u32> = fs
        .iter()
        .filter(|f| f.rule == "A0" && f.severity == Severity::Error)
        .map(|f| f.line)
        .collect();
    // Missing justification (line 3) and unknown name (line 8).
    assert_eq!(a0_errors, vec![3, 8]);
    // The rejected allow(panic) must not suppress the unwrap.
    assert_eq!(rule_lines(&fs, "P1"), vec![5]);
    // The valid-but-pointless allow(unordered) is a warning.
    assert!(fs
        .iter()
        .any(|f| f.rule == "A0" && f.severity == Severity::Warning && f.line == 11));
}

#[test]
fn file_allowlist_suppresses_and_reports_stale_entries() {
    let (allow, errs) = Allowlist::parse(
        "lint-allow.list",
        "D1 | fixtures/d1_bad.rs | generated_before | membership set, iteration never observed\n\
         P1 | fixtures/nonexistent.rs | unwrap | stale entry that matches nothing anywhere\n",
    );
    assert!(errs.is_empty());
    let fs = analyze_source(
        "crates/lint/tests/fixtures/d1_bad.rs",
        &fixture("d1_bad.rs"),
        &ALL_RULES,
        &allow,
    );
    // The HashSet on line 6 is exempted; the HashMap on line 7 is not.
    assert_eq!(rule_lines(&fs, "D1"), vec![7]);
    let stale = allow.unused_entries();
    assert_eq!(stale.len(), 1);
    assert_eq!(stale[0].line, 2);
    // A stale entry is dead suppression machinery: an error, not a nag.
    assert_eq!(stale[0].severity, Severity::Error);
}

#[test]
fn unknown_rule_code_in_allowlist_is_a_pointed_error() {
    let (_, errs) = Allowlist::parse(
        "lint-allow.list",
        "Q9 | crates/core/src/lib.rs | whatever | a rule code that does not exist\n",
    );
    assert_eq!(errs.len(), 1);
    assert_eq!(errs[0].rule, "A0");
    assert_eq!(errs[0].severity, Severity::Error);
    assert!(errs[0].message.contains("unknown rule code `Q9`"), "{}", errs[0].message);
    assert!(errs[0].message.contains("W1"), "message should list valid codes");
}

#[test]
fn p1_range_slice_fixture_flags_every_bounded_shape() {
    let fs = lint_fixture("p1_range_bad.rs");
    // `..b`, `a..`, `a..b`, `4..=8` — the full reslice on line 9 is total.
    assert_eq!(rule_lines(&fs, "P1"), vec![5, 6, 7, 8]);
    assert!(fs[0].message.contains("range-slicing"));
}

#[test]
fn m1_positional_loop_fixture_flags_indexed_iteration_only() {
    let fs = lint_fixture("m1_positional_bad.rs");
    // Metering does not excuse positional iteration: the handle-based
    // sweep below it is the sanctioned shape.
    assert_eq!(rule_lines(&fs, "M1"), vec![7]);
    assert!(fs[0].message.contains("positional"), "{}", fs[0].message);
}

fn fixture_workspace(name: &str) -> discsp_lint::WorkspaceReport {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    analyze_workspace(&root)
}

#[test]
fn ws_p2_bad_reports_the_reachable_panic_with_a_blame_chain() {
    let report = fixture_workspace("ws_p2_bad");
    assert!(report.internal_errors.is_empty(), "{:?}", report.internal_errors);
    assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
    let f = &report.findings[0];
    assert_eq!(f.rule, "P2");
    assert_eq!(f.path, "crates/core/src/util.rs");
    assert_eq!(f.line, 4);
    assert!(
        f.message.contains("`run_cycle` (crates/runtime/src/sync.rs:4)"),
        "blame chain names the entry point and call site: {}",
        f.message
    );
}

#[test]
fn ws_p2_good_is_clean_once_the_helper_returns_option() {
    let report = fixture_workspace("ws_p2_good");
    assert!(report.findings.is_empty(), "{:?}", report.findings);
    assert!(report.internal_errors.is_empty());
}

#[test]
fn ws_d3_bad_reports_the_tainted_seed_at_its_source() {
    let report = fixture_workspace("ws_d3_bad");
    assert_eq!(report.findings.len(), 1, "{:?}", report.findings);
    let f = &report.findings[0];
    assert_eq!(f.rule, "D3");
    assert_eq!(f.path, "crates/probgen/src/seed.rs");
    assert_eq!(f.line, 4);
    assert!(
        f.message.contains("`reseed` (crates/runtime/src/sched.rs:4)"),
        "chain names the policed consumer: {}",
        f.message
    );
}

#[test]
fn ws_d3_good_is_clean_when_no_value_escapes() {
    let report = fixture_workspace("ws_d3_good");
    assert!(report.findings.is_empty(), "{:?}", report.findings);
}

#[test]
fn ws_w1_bad_catches_the_removed_jsonl_arm_and_the_duplicate_wire_tag() {
    let report = fixture_workspace("ws_w1_bad");
    assert_eq!(report.findings.len(), 2, "{:?}", report.findings);
    let jsonl = &report.findings[0];
    assert_eq!(jsonl.rule, "W1");
    assert_eq!(jsonl.path, "crates/trace/src/jsonl.rs");
    assert!(
        jsonl.message.contains("`TraceEvent::NogoodLearned` has no JSONL decode arm"),
        "{}",
        jsonl.message
    );
    let tag = &report.findings[1];
    assert_eq!(tag.rule, "W1");
    assert_eq!(tag.path, "crates/trace/src/wire.rs");
    assert_eq!(tag.line, 8);
    assert!(tag.message.contains("wire tag 1 is pushed twice"), "{}", tag.message);
}

#[test]
fn workspace_self_run_is_clean_at_head() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    let report = analyze_workspace(&root);
    assert!(report.files_scanned > 40, "walker should see the whole workspace");
    assert!(
        report.findings.is_empty(),
        "workspace must lint clean at HEAD, got:\n{}",
        report
            .findings
            .iter()
            .map(|f| format!("{}[{}] {}:{} {}", match f.severity {
                Severity::Error => "error",
                Severity::Warning => "warning",
            }, f.rule, f.path, f.line, f.message))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

#[test]
fn binary_exits_nonzero_on_seeded_violations() {
    let fixture_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/p1_bad.rs");
    let output = Command::new(env!("CARGO_BIN_EXE_discsp-lint"))
        .arg(&fixture_path)
        .output()
        .expect("binary runs");
    assert_eq!(output.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("error[P1]"));
    assert!(stdout.contains("p1_bad.rs:4:"));
    assert!(stdout.contains("= help:"));
}

#[test]
fn binary_exits_zero_on_clean_workspace() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves");
    let output = Command::new(env!("CARGO_BIN_EXE_discsp-lint"))
        .arg("--root")
        .arg(&root)
        .output()
        .expect("binary runs");
    assert_eq!(output.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("discsp-lint: clean"));
}

#[test]
fn binary_json_workspace_output_matches_the_golden_snapshot() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws_p2_bad");
    let output = Command::new(env!("CARGO_BIN_EXE_discsp-lint"))
        .arg("--json")
        .arg("--root")
        .arg(&root)
        .output()
        .expect("binary runs");
    assert_eq!(output.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&output.stdout);
    let golden = fixture("ws_p2_bad.golden.json");
    assert_eq!(
        stdout.trim(),
        golden.trim(),
        "machine-readable output is part of the interface; if this change \
         is intentional, regenerate the golden file with \
         `discsp-lint --json --root crates/lint/tests/fixtures/ws_p2_bad`"
    );
}

#[test]
fn binary_timing_prints_the_phase_table() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws_p2_good");
    let output = Command::new(env!("CARGO_BIN_EXE_discsp-lint"))
        .arg("--timing")
        .arg("--root")
        .arg(&root)
        .output()
        .expect("binary runs");
    assert_eq!(output.status.code(), Some(0));
    let stdout = String::from_utf8_lossy(&output.stdout);
    for phase in ["read + lex", "per-file rules", "parse + call graph", "workspace rules", "total"] {
        assert!(stdout.contains(phase), "timing table lists `{phase}`:\n{stdout}");
    }
}

#[test]
fn binary_blown_budget_is_an_internal_error_with_exit_code_3() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws_p2_good");
    let output = Command::new(env!("CARGO_BIN_EXE_discsp-lint"))
        .arg("--max-millis")
        .arg("0")
        .arg("--root")
        .arg(&root)
        .output()
        .expect("binary runs");
    assert_eq!(
        output.status.code(),
        Some(3),
        "internal errors must be distinguishable from findings (1) and usage (2)"
    );
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("time budget"), "{stderr}");
}

#[test]
fn binary_json_mode_emits_machine_readable_findings() {
    let fixture_path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/d2_bad.rs");
    let output = Command::new(env!("CARGO_BIN_EXE_discsp-lint"))
        .arg("--json")
        .arg(&fixture_path)
        .output()
        .expect("binary runs");
    assert_eq!(output.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.trim_start().starts_with('['));
    assert!(stdout.contains(r#""rule":"D2""#));
    assert!(stdout.contains(r#""line":6"#));
    // The library renderer and the binary agree on shape.
    let fs = lint_fixture("d2_bad.rs");
    let rendered = render_json(&fs);
    assert!(rendered.contains(r#""rule":"D2""#));
}
