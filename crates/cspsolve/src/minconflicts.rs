//! Min-conflicts local search (Minton et al., AIJ'92).
//!
//! A non-systematic reference solver: validates that generated instances
//! are *easy enough* for local search where expected (plain planted
//! instances) and *hard* where expected (unique-solution instances — the
//! paper's §4 cites Richards & Richards showing these defeat
//! non-systematic search).

use discsp_core::{Assignment, DistributedCsp, Value, VariableId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

/// Result of a min-conflicts run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MinConflictsOutcome {
    /// The solution, if the search reached zero conflicts.
    pub solution: Option<Assignment>,
    /// Repair steps performed.
    pub steps: u64,
}

/// Min-conflicts hill-climbing with random restarts.
///
/// # Examples
///
/// ```
/// use discsp_core::{DistributedCsp, Domain};
/// use discsp_cspsolve::MinConflicts;
///
/// # fn main() -> Result<(), discsp_core::CoreError> {
/// let mut b = DistributedCsp::builder();
/// let x = b.variable(Domain::new(3));
/// let y = b.variable(Domain::new(3));
/// b.not_equal(x, y)?;
/// let problem = b.build()?;
/// let outcome = MinConflicts::new(42).max_steps(1_000).run(&problem);
/// assert!(outcome.solution.is_some());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MinConflicts {
    seed: u64,
    max_steps: u64,
    restart_every: u64,
}

impl MinConflicts {
    /// Creates a search with the given RNG seed.
    pub fn new(seed: u64) -> Self {
        MinConflicts {
            seed,
            max_steps: 100_000,
            restart_every: 10_000,
        }
    }

    /// Caps total repair steps across restarts.
    pub fn max_steps(mut self, steps: u64) -> Self {
        self.max_steps = steps;
        self
    }

    /// Restarts from a fresh random assignment every `steps` repairs.
    pub fn restart_every(mut self, steps: u64) -> Self {
        self.restart_every = steps;
        self
    }

    /// Runs the search on `problem`.
    pub fn run(&self, problem: &DistributedCsp) -> MinConflictsOutcome {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut steps = 0u64;
        while steps < self.max_steps {
            let budget = self.restart_every.min(self.max_steps - steps);
            let (solution, used) = self.episode(problem, &mut rng, budget);
            steps += used;
            if solution.is_some() {
                return MinConflictsOutcome { solution, steps };
            }
        }
        MinConflictsOutcome {
            solution: None,
            steps,
        }
    }

    fn episode(
        &self,
        problem: &DistributedCsp,
        rng: &mut StdRng,
        budget: u64,
    ) -> (Option<Assignment>, u64) {
        let mut assignment = random_assignment(problem, rng);
        for step in 0..budget {
            let conflicted: Vec<VariableId> = problem
                .vars()
                .filter(|&v| {
                    problem
                        .nogoods_of(v)
                        .any(|ng| ng.is_violated_by(assignment.lookup()))
                })
                .collect();
            let Some(&var) = conflicted.choose(rng) else {
                return (Some(assignment), step);
            };
            // Move `var` to the value with the fewest violated relevant
            // nogoods; random tie-break.
            let mut best: Vec<Value> = Vec::new();
            let mut best_cost = usize::MAX;
            for d in problem.domain(var).iter() {
                assignment.set(var, d);
                let cost = problem
                    .nogoods_of(var)
                    .filter(|ng| ng.is_violated_by(assignment.lookup()))
                    .count();
                if cost < best_cost {
                    best_cost = cost;
                    best.clear();
                    best.push(d);
                } else if cost == best_cost {
                    best.push(d);
                }
            }
            if let Some(&choice) = best.choose(rng) {
                assignment.set(var, choice);
            }
        }
        (None, budget)
    }
}

/// Draws a uniformly random total assignment, as the paper does for each
/// trial's initial values.
pub fn random_assignment<R: Rng>(problem: &DistributedCsp, rng: &mut R) -> Assignment {
    Assignment::total(
        problem
            .vars()
            .map(|v| Value::new(rng.gen_range(0..problem.domain(v).size()) as u16)),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use discsp_core::Domain;

    fn cycle(n: usize) -> DistributedCsp {
        let mut b = DistributedCsp::builder();
        let vars: Vec<_> = (0..n).map(|_| b.variable(Domain::new(3))).collect();
        for i in 0..n {
            b.not_equal(vars[i], vars[(i + 1) % n]).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn solves_even_cycle() {
        let p = cycle(10);
        let outcome = MinConflicts::new(1).run(&p);
        let s = outcome.solution.expect("10-cycle is 3-colorable");
        assert!(p.is_solution(&s));
    }

    #[test]
    fn fails_gracefully_on_insoluble() {
        let mut b = DistributedCsp::builder();
        let vars: Vec<_> = (0..4).map(|_| b.variable(Domain::new(3))).collect();
        for i in 0..4 {
            for j in (i + 1)..4 {
                b.not_equal(vars[i], vars[j]).unwrap();
            }
        }
        let p = b.build().unwrap();
        let outcome = MinConflicts::new(1).max_steps(2_000).run(&p);
        assert!(outcome.solution.is_none());
        assert_eq!(outcome.steps, 2_000);
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let p = cycle(8);
        let a = MinConflicts::new(7).run(&p);
        let b = MinConflicts::new(7).run(&p);
        assert_eq!(a, b);
    }

    #[test]
    fn random_assignment_is_total_and_in_domain() {
        let p = cycle(5);
        let mut rng = StdRng::seed_from_u64(3);
        let a = random_assignment(&p, &mut rng);
        assert!(a.is_total());
        for v in p.vars() {
            assert!(p.domain(v).contains(a.get(v).unwrap()));
        }
    }
}
