//! Centralized CSP solving substrate.
//!
//! The distributed algorithms in this workspace never rely on global
//! search, but the *experiments* do: benchmark generators must prove
//! their instances solvable (or uniquely solvable), and tests cross-check
//! distributed solutions. This crate provides:
//!
//! * [`Backtracker`] — chronological backtracking with forward checking
//!   and MRV over nogood constraints; supports model counting /
//!   enumeration, forbidden assignments, and value ordering away from a
//!   reference model (used to hunt for second models).
//! * [`MinConflicts`] — min-conflicts local search (Minton et al.), the
//!   non-systematic reference.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backtrack;
mod minconflicts;

pub use backtrack::{Backtracker, SolveResult};
pub use minconflicts::{random_assignment, MinConflicts, MinConflictsOutcome};
