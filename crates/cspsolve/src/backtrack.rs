//! Chronological backtracking with forward checking over nogood
//! constraints.
//!
//! This is the centralized substrate used to *validate* the distributed
//! algorithms and the benchmark generators: it confirms that generated
//! instances are solvable, hunts for second models when the unique-
//! solution SAT generator needs to eliminate them, and cross-checks
//! solutions returned by AWC/DB.

use std::collections::BTreeSet;

use discsp_core::{Assignment, DistributedCsp, Value, VariableId};

/// Outcome of a backtracking search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveResult {
    /// A solution was found.
    Solution(Assignment),
    /// The search space is exhausted: no solution exists (outside the
    /// forbidden set).
    Unsatisfiable,
    /// The node limit was reached before an answer was proven.
    LimitReached,
}

impl SolveResult {
    /// The solution, if one was found.
    pub fn solution(&self) -> Option<&Assignment> {
        match self {
            SolveResult::Solution(a) => Some(a),
            _ => None,
        }
    }
}

/// A configurable backtracking solver (MRV variable order, forward
/// checking on nogoods).
///
/// # Examples
///
/// ```
/// use discsp_core::{DistributedCsp, Domain};
/// use discsp_cspsolve::{Backtracker, SolveResult};
///
/// # fn main() -> Result<(), discsp_core::CoreError> {
/// let mut b = DistributedCsp::builder();
/// let x = b.variable(Domain::new(3));
/// let y = b.variable(Domain::new(3));
/// b.not_equal(x, y)?;
/// let problem = b.build()?;
/// let result = Backtracker::new(&problem).solve();
/// assert!(matches!(result, SolveResult::Solution(_)));
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Backtracker<'a> {
    problem: &'a DistributedCsp,
    node_limit: u64,
    away_from: Option<&'a Assignment>,
    forbidden: BTreeSet<Vec<Value>>,
}

impl<'a> Backtracker<'a> {
    /// Creates a solver with a generous default node limit.
    pub fn new(problem: &'a DistributedCsp) -> Self {
        Backtracker {
            problem,
            node_limit: 10_000_000,
            away_from: None,
            forbidden: BTreeSet::new(),
        }
    }

    /// Caps the number of assignment nodes explored.
    pub fn node_limit(mut self, limit: u64) -> Self {
        self.node_limit = limit;
        self
    }

    /// Orders values to *differ* from `reference` first — useful for
    /// finding a model far from (and other than) a known one.
    pub fn value_order_away_from(mut self, reference: &'a Assignment) -> Self {
        self.away_from = Some(reference);
        self
    }

    /// Excludes a specific total assignment from the solution set.
    pub fn forbid(mut self, assignment: &Assignment) -> Self {
        let key: Vec<Value> = self
            .problem
            .vars()
            .map(|v| {
                assignment
                    .get(v)
                    .expect("forbidden assignment must be total")
            })
            .collect();
        self.forbidden.insert(key);
        self
    }

    /// Runs the search for one solution.
    pub fn solve(&self) -> SolveResult {
        let mut search = Search::new(self);
        match search.run(1) {
            RunEnd::Exhausted => SolveResult::Unsatisfiable,
            RunEnd::Limit => SolveResult::LimitReached,
            RunEnd::Collected => {
                SolveResult::Solution(search.collected.pop().expect("one solution collected")) // lint: allow(panic-path): `Collected` is only returned after pushing a solution
            }
        }
    }

    /// Counts models up to `limit`.
    ///
    /// Returns `(count, complete)`: `complete` is `false` when either the
    /// model cap or the node limit stopped the search early.
    pub fn count_models(&self, limit: usize) -> (usize, bool) {
        let mut search = Search::new(self);
        match search.run(limit) {
            RunEnd::Exhausted => (search.collected.len(), true),
            RunEnd::Limit | RunEnd::Collected => (search.collected.len(), false),
        }
    }

    /// Enumerates up to `limit` models.
    pub fn enumerate(&self, limit: usize) -> Vec<Assignment> {
        let mut search = Search::new(self);
        let _ = search.run(limit);
        search.collected
    }
}

enum RunEnd {
    /// Search space exhausted.
    Exhausted,
    /// Node limit hit.
    Limit,
    /// Wanted number of solutions collected.
    Collected,
}

struct Search<'a, 'b> {
    cfg: &'b Backtracker<'a>,
    /// `domains[var][value]`: pruning depth + 1, or 0 when available.
    domains: Vec<Vec<u32>>,
    assignment: Vec<Option<Value>>,
    nodes: u64,
    collected: Vec<Assignment>,
}

impl<'a, 'b> Search<'a, 'b> {
    fn new(cfg: &'b Backtracker<'a>) -> Self {
        let problem = cfg.problem;
        let domains = problem
            .vars()
            .map(|v| vec![0u32; problem.domain(v).size()])
            .collect();
        Search {
            cfg,
            domains,
            assignment: vec![None; problem.num_vars()],
            nodes: 0,
            collected: Vec::new(),
        }
    }

    fn run(&mut self, want: usize) -> RunEnd {
        self.dfs(1, want)
    }

    /// Returns the run outcome; `depth` doubles as the pruning stamp.
    fn dfs(&mut self, depth: u32, want: usize) -> RunEnd {
        let problem = self.cfg.problem;
        // MRV: unassigned variable with fewest available values.
        let next = problem
            .vars()
            .filter(|&v| self.assignment[v.index()].is_none())
            .min_by_key(|&v| {
                self.domains[v.index()]
                    .iter()
                    .filter(|&&stamp| stamp == 0)
                    .count()
            });
        let Some(var) = next else {
            // Total assignment reached consistently (forward checking
            // guarantees no violated nogood); honor the forbidden set.
            let key: Vec<Value> = self
                .assignment
                .iter()
                .map(|v| v.expect("total assignment")) // lint: allow(panic-path): `next` returned None, so every stamp is set and the assignment is total
                .collect();
            if !self.cfg.forbidden.contains(&key) {
                self.collected.push(Assignment::total(key.iter().copied()));
                if self.collected.len() >= want {
                    return RunEnd::Collected;
                }
            }
            return RunEnd::Exhausted;
        };

        let mut order: Vec<Value> = problem
            .domain(var)
            .iter()
            .filter(|d| self.domains[var.index()][d.index()] == 0)
            .collect();
        if let Some(reference) = self.cfg.away_from {
            let preferred = reference.get(var);
            order.sort_by_key(|&d| (Some(d) == preferred, d));
        }

        for value in order {
            self.nodes += 1;
            if self.nodes > self.cfg.node_limit {
                return RunEnd::Limit;
            }
            self.assignment[var.index()] = Some(value);
            if self.forward_check(var, depth) {
                match self.dfs(depth + 1, want) {
                    RunEnd::Exhausted => {}
                    end => {
                        // Leave state dirty on early exit; the entry
                        // points never reuse a finished search.
                        return end;
                    }
                }
            }
            self.unstamp(depth);
            self.assignment[var.index()] = None;
        }
        RunEnd::Exhausted
    }

    /// Prunes neighbor domains implied by assigning `var`; returns
    /// `false` on a wipeout or a directly violated nogood.
    fn forward_check(&mut self, var: VariableId, depth: u32) -> bool {
        let problem = self.cfg.problem;
        for ng in problem.nogoods_of(var) {
            let mut unassigned: Option<(VariableId, Value)> = None;
            let mut all_match = true;
            for e in ng.elems() {
                match self.assignment[e.var.index()] {
                    Some(v) if v == e.value => {}
                    Some(_) => {
                        all_match = false;
                        break;
                    }
                    None => {
                        if unassigned.is_some() {
                            // Two or more free variables: no propagation.
                            all_match = false;
                            break;
                        }
                        unassigned = Some((e.var, e.value));
                    }
                }
            }
            if !all_match {
                continue;
            }
            match unassigned {
                // Every element assigned and matching: violated.
                None => return false,
                Some((free_var, banned)) => {
                    let cell = &mut self.domains[free_var.index()][banned.index()];
                    if *cell == 0 {
                        *cell = depth;
                        let empty = self.domains[free_var.index()]
                            .iter()
                            .all(|&stamp| stamp != 0);
                        if empty {
                            return false;
                        }
                    }
                }
            }
        }
        true
    }

    /// Undoes all prunings stamped at `depth`.
    fn unstamp(&mut self, depth: u32) {
        for row in &mut self.domains {
            for cell in row.iter_mut() {
                if *cell == depth {
                    *cell = 0;
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use discsp_core::Domain;

    fn triangle() -> DistributedCsp {
        let mut b = DistributedCsp::builder();
        let x = b.variable(Domain::new(3));
        let y = b.variable(Domain::new(3));
        let z = b.variable(Domain::new(3));
        b.not_equal(x, y).unwrap();
        b.not_equal(y, z).unwrap();
        b.not_equal(x, z).unwrap();
        b.build().unwrap()
    }

    fn k4() -> DistributedCsp {
        let mut b = DistributedCsp::builder();
        let vars: Vec<_> = (0..4).map(|_| b.variable(Domain::new(3))).collect();
        for i in 0..4 {
            for j in (i + 1)..4 {
                b.not_equal(vars[i], vars[j]).unwrap();
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn finds_triangle_coloring() {
        let p = triangle();
        let result = Backtracker::new(&p).solve();
        let solution = result.solution().expect("triangle is 3-colorable");
        assert!(p.is_solution(solution));
    }

    #[test]
    fn proves_k4_unsatisfiable() {
        let p = k4();
        assert_eq!(Backtracker::new(&p).solve(), SolveResult::Unsatisfiable);
    }

    #[test]
    fn counts_triangle_models_exactly() {
        // 3 colorings of a triangle = 3! = 6.
        let p = triangle();
        let (count, complete) = Backtracker::new(&p).count_models(100);
        assert!(complete);
        assert_eq!(count, 6);
    }

    #[test]
    fn count_cap_reports_incomplete() {
        let p = triangle();
        let (count, complete) = Backtracker::new(&p).count_models(2);
        assert_eq!(count, 2);
        assert!(!complete);
    }

    #[test]
    fn node_limit_reports_limit() {
        let p = k4();
        let result = Backtracker::new(&p).node_limit(2).solve();
        assert_eq!(result, SolveResult::LimitReached);
    }

    #[test]
    fn forbid_excludes_assignments() {
        let mut b = DistributedCsp::builder();
        let _x = b.variable(Domain::new(2));
        let p = b.build().unwrap();
        // Two trivial models; forbid both → unsatisfiable.
        let m0 = Assignment::total([Value::new(0)]);
        let m1 = Assignment::total([Value::new(1)]);
        let result = Backtracker::new(&p).forbid(&m0).forbid(&m1).solve();
        assert_eq!(result, SolveResult::Unsatisfiable);
        let result = Backtracker::new(&p).forbid(&m0).solve();
        assert_eq!(result.solution(), Some(&m1));
    }

    #[test]
    fn away_from_prefers_different_values() {
        let mut b = DistributedCsp::builder();
        let _x = b.variable(Domain::new(3));
        let p = b.build().unwrap();
        let reference = Assignment::total([Value::new(0)]);
        let result = Backtracker::new(&p)
            .value_order_away_from(&reference)
            .solve();
        // The first model found avoids the reference value.
        assert_ne!(
            result.solution().unwrap().get(VariableId::new(0)),
            Some(Value::new(0))
        );
    }

    #[test]
    fn enumerate_returns_distinct_models() {
        let p = triangle();
        let models = Backtracker::new(&p).enumerate(10);
        assert_eq!(models.len(), 6);
        for m in &models {
            assert!(p.is_solution(m));
        }
        let unique: std::collections::HashSet<String> =
            models.iter().map(|m| m.to_string()).collect();
        assert_eq!(unique.len(), 6);
    }
}
