//! Integration tests for the centralized substrate: agreement between
//! systematic and local search, and counting consistency.

use discsp_core::{Assignment, DistributedCsp, Domain, Nogood, Value, VariableId};
use discsp_cspsolve::{random_assignment, Backtracker, MinConflicts, SolveResult};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_problem(n: u32, nogoods: usize, seed: u64) -> DistributedCsp {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = DistributedCsp::builder();
    let vars: Vec<_> = (0..n).map(|_| b.variable(Domain::new(3))).collect();
    let mut added = 0;
    while added < nogoods {
        let i = rng.gen_range(0..n) as usize;
        let j = rng.gen_range(0..n) as usize;
        if i == j {
            continue;
        }
        let ng = Nogood::of([
            (vars[i], Value::new(rng.gen_range(0..3))),
            (vars[j], Value::new(rng.gen_range(0..3))),
        ]);
        if b.nogood(ng).is_ok() {
            added += 1;
        }
    }
    b.build().unwrap()
}

#[test]
fn backtracker_and_minconflicts_agree_on_satisfiable_instances() {
    for seed in 0..10 {
        let problem = random_problem(12, 20, seed);
        let bt = Backtracker::new(&problem).solve();
        match bt {
            SolveResult::Solution(model) => {
                assert!(problem.is_solution(&model));
                // Local search with a generous budget should also find
                // one on these loose instances.
                let mc = MinConflicts::new(seed).max_steps(50_000).run(&problem);
                let found = mc.solution.expect("loose instance solvable locally");
                assert!(problem.is_solution(&found));
            }
            SolveResult::Unsatisfiable => {
                let mc = MinConflicts::new(seed).max_steps(5_000).run(&problem);
                assert!(mc.solution.is_none());
            }
            SolveResult::LimitReached => panic!("tiny instance hit node limit"),
        }
    }
}

#[test]
fn count_models_agrees_with_enumerate() {
    for seed in 0..5 {
        let problem = random_problem(8, 10, seed);
        let (count, complete) = Backtracker::new(&problem).count_models(100_000);
        assert!(complete);
        let models = Backtracker::new(&problem).enumerate(100_000);
        assert_eq!(count, models.len());
        for m in &models {
            assert!(problem.is_solution(m));
        }
        // Models are pairwise distinct.
        let unique: std::collections::HashSet<String> =
            models.iter().map(|m| m.to_string()).collect();
        assert_eq!(unique.len(), models.len());
    }
}

#[test]
fn forbid_reduces_model_count_by_exactly_one() {
    let problem = random_problem(7, 6, 3);
    let models = Backtracker::new(&problem).enumerate(100_000);
    assert!(!models.is_empty());
    let (count, complete) = Backtracker::new(&problem)
        .forbid(&models[0])
        .count_models(100_000);
    assert!(complete);
    assert_eq!(count, models.len() - 1);
}

#[test]
fn unconstrained_problem_has_domain_product_models() {
    let mut b = DistributedCsp::builder();
    for _ in 0..4 {
        b.variable(Domain::new(3));
    }
    let problem = b.build().unwrap();
    let (count, complete) = Backtracker::new(&problem).count_models(1_000);
    assert!(complete);
    assert_eq!(count, 81);
}

#[test]
fn random_assignment_uniformity_rough_check() {
    let mut b = DistributedCsp::builder();
    let x = b.variable(Domain::new(4));
    let problem = b.build().unwrap();
    let mut rng = StdRng::seed_from_u64(1);
    let mut counts = [0u32; 4];
    for _ in 0..4_000 {
        let a = random_assignment(&problem, &mut rng);
        counts[a.get(x).unwrap().index()] += 1;
    }
    for &c in &counts {
        assert!(c > 800 && c < 1_200, "counts {counts:?}");
    }
}

#[test]
fn value_ordering_away_from_finds_distant_models() {
    // On an unconstrained Boolean problem, ordering away from all-false
    // must reach all-true first.
    let mut b = DistributedCsp::builder();
    for _ in 0..5 {
        b.variable(Domain::BOOL);
    }
    let problem = b.build().unwrap();
    let reference = Assignment::total(vec![Value::FALSE; 5]);
    let result = Backtracker::new(&problem)
        .value_order_away_from(&reference)
        .solve();
    let model = result.solution().unwrap();
    for i in 0..5 {
        assert_eq!(model.get(VariableId::new(i)), Some(Value::TRUE));
    }
}
