//! Instrumented per-agent nogood storage.
//!
//! Every nogood evaluation in the system is routed through a
//! [`NogoodStore`] (or metered explicitly), because the paper's `maxcck`
//! metric is defined in units of *nogood checks*. The store deduplicates
//! recorded nogoods through hash buckets over insertion indices (each
//! literal vector is held exactly once) and maintains a per-variable
//! index ([`NogoodStore::for_variable`]) so algorithms can iterate only
//! over potentially relevant nogoods. [`IncrementalEval`] builds on that
//! index: it caches each nogood's violation status against a view and
//! re-evaluates only the nogoods mentioning variables that actually
//! changed.
//!
//! **Metric fidelity.** The check *meter* is independent of the check
//! *mechanism*: algorithms charge exactly the checks the paper's naive
//! scanning algorithm would perform (via [`NogoodStore::eval`] or
//! [`NogoodStore::charge_checks`]) even when the cached path skips the
//! wall-clock re-evaluation. See DESIGN.md, "Store indexing and metric
//! fidelity".

use std::cell::Cell;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};

use crate::ids::VariableId;
use crate::nogood::Nogood;
use crate::value::Value;

/// Index of a nogood within its [`NogoodStore`] (insertion order).
pub type NogoodIdx = usize;

/// A deduplicating nogood set with an evaluation meter.
///
/// # Examples
///
/// ```
/// use discsp_core::{Nogood, NogoodStore, Value, VariableId};
///
/// let mut store = NogoodStore::new();
/// let ng = Nogood::of([(VariableId::new(0), Value::new(1))]);
/// assert!(store.insert(ng.clone()));
/// assert!(!store.insert(ng)); // duplicate
/// assert_eq!(store.len(), 1);
/// assert_eq!(store.for_variable(VariableId::new(0)).count(), 1);
/// ```
#[derive(Debug, Default)]
pub struct NogoodStore {
    nogoods: Vec<Nogood>,
    /// Dedupe buckets: canonical-literal hash -> indices into `nogoods`.
    /// Storing indices (not clones) keeps each literal vector resident
    /// once, which matters for stores with thousands of learned nogoods.
    // lint: allow(unordered): point lookups keyed by hash only; buckets
    // are never iterated, so map order cannot reach any output.
    by_hash: HashMap<u64, Vec<u32>>,
    /// Per-variable index: every nogood mentioning the variable, in
    /// insertion order.
    // lint: allow(unordered): point lookups keyed by variable; values are
    // insertion-ordered index vectors, so map order cannot reach output.
    var_index: HashMap<VariableId, Vec<u32>>,
    checks: Cell<u64>,
}

fn hash_nogood(nogood: &Nogood) -> u64 {
    let mut hasher = DefaultHasher::new();
    nogood.hash(&mut hasher);
    hasher.finish()
}

impl NogoodStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        NogoodStore::default()
    }

    /// Creates a store pre-populated with `nogoods` (duplicates merged).
    pub fn with_nogoods<I>(nogoods: I) -> Self
    where
        I: IntoIterator<Item = Nogood>,
    {
        let mut store = NogoodStore::new();
        for ng in nogoods {
            store.insert(ng);
        }
        store
    }

    /// Records `nogood`; returns `false` if it was already present.
    pub fn insert(&mut self, nogood: Nogood) -> bool {
        let bucket = self.by_hash.entry(hash_nogood(&nogood)).or_default();
        if bucket.iter().any(|&i| self.nogoods[i as usize] == nogood) {
            return false;
        }
        let idx = u32::try_from(self.nogoods.len()).expect("store holds < 2^32 nogoods");
        bucket.push(idx);
        for var in nogood.vars() {
            self.var_index.entry(var).or_default().push(idx);
        }
        self.nogoods.push(nogood);
        true
    }

    /// Whether `nogood` is recorded.
    pub fn contains(&self, nogood: &Nogood) -> bool {
        self.by_hash
            .get(&hash_nogood(nogood))
            .is_some_and(|bucket| bucket.iter().any(|&i| &self.nogoods[i as usize] == nogood))
    }

    /// Number of recorded nogoods.
    pub fn len(&self) -> usize {
        self.nogoods.len()
    }

    /// Whether the store holds no nogoods.
    pub fn is_empty(&self) -> bool {
        self.nogoods.is_empty()
    }

    /// Iterates over the recorded nogoods in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Nogood> {
        self.nogoods.iter()
    }

    /// The nogood at insertion index `index`.
    pub fn get(&self, index: NogoodIdx) -> Option<&Nogood> {
        self.nogoods.get(index)
    }

    /// Iterates (in insertion order) over the nogoods mentioning `var`,
    /// with their store indices. This is the index the incremental
    /// machinery uses: when a view changes by one assignment, only these
    /// nogoods can change violation status.
    pub fn for_variable(
        &self,
        var: VariableId,
    ) -> impl Iterator<Item = (NogoodIdx, &Nogood)> + '_ {
        self.var_index
            .get(&var)
            .map(|indices| indices.as_slice())
            .unwrap_or(&[])
            .iter()
            .map(move |&i| (i as NogoodIdx, &self.nogoods[i as usize]))
    }

    /// Evaluates one nogood against `lookup`, counting **one** nogood check.
    ///
    /// Returns whether the nogood is violated. This is the sole metered
    /// primitive; [`NogoodStore::violated`] and the algorithm crates build
    /// on it.
    pub fn eval<F>(&self, nogood: &Nogood, lookup: F) -> bool
    where
        F: Fn(VariableId) -> Option<Value>,
    {
        self.checks.set(self.checks.get() + 1);
        nogood.is_violated_by(lookup)
    }

    /// Meters `n` additional checks performed outside [`NogoodStore::eval`]
    /// (e.g. subset tests during mcs search, or cached evaluations that
    /// must still count as if performed naively).
    pub fn charge_checks(&self, n: u64) {
        self.checks.set(self.checks.get() + n);
    }

    /// Returns the violated nogoods under `lookup`, evaluating (and
    /// counting) every stored nogood.
    pub fn violated<F>(&self, lookup: F) -> Vec<&Nogood>
    where
        F: Fn(VariableId) -> Option<Value>,
    {
        self.nogoods
            .iter()
            .filter(|ng| self.eval(ng, &lookup))
            .collect()
    }

    /// Counts the violated nogoods under `lookup`, evaluating (and
    /// counting) every stored nogood.
    pub fn violation_count<F>(&self, lookup: F) -> usize
    where
        F: Fn(VariableId) -> Option<Value>,
    {
        self.nogoods
            .iter()
            .filter(|ng| self.eval(ng, &lookup))
            .count()
    }

    /// Total nogood checks performed since construction or the last
    /// [`NogoodStore::take_checks`].
    pub fn checks(&self) -> u64 {
        self.checks.get()
    }

    /// Returns the check count and resets it to zero (used by the
    /// synchronous simulator at every cycle boundary to build `maxcck`).
    pub fn take_checks(&self) -> u64 {
        self.checks.replace(0)
    }
}

impl fmt::Display for NogoodStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "store[{} nogoods, {} checks]", self.len(), self.checks())
    }
}

impl FromIterator<Nogood> for NogoodStore {
    fn from_iter<I: IntoIterator<Item = Nogood>>(iter: I) -> Self {
        NogoodStore::with_nogoods(iter)
    }
}

impl Extend<Nogood> for NogoodStore {
    fn extend<I: IntoIterator<Item = Nogood>>(&mut self, iter: I) {
        for ng in iter {
            self.insert(ng);
        }
    }
}

/// Incremental violation tracker for one agent's store and view.
///
/// Decomposes each nogood's violation into two factors:
///
/// - `foreign_sat`: every literal over a *foreign* variable matches the
///   view (cached, re-evaluated only when one of those variables
///   changes);
/// - the own-variable literal (if any) matches the queried value
///   (compared at query time in O(1); the prohibited value is a static
///   property of the nogood).
///
/// After a [`IncrementalEval::refresh`], [`IncrementalEval::is_violated`]
/// answers "is nogood `i` violated under the view with my variable at
/// `value`?" without touching the nogood's literals.
///
/// **This type never meters checks.** Callers on the algorithm hot paths
/// must charge the same number of checks the naive scan would have
/// performed (see [`NogoodStore::charge_checks`]); the golden
/// metric-fidelity tests in `crates/bench/tests/golden_metrics.rs` pin
/// that contract.
///
/// # Examples
///
/// ```
/// use discsp_core::{IncrementalEval, Nogood, NogoodStore, Value, VariableId};
///
/// let own = VariableId::new(0);
/// let foreign = VariableId::new(1);
/// let mut store = NogoodStore::new();
/// store.insert(Nogood::of([(own, Value::new(0)), (foreign, Value::new(1))]));
///
/// let mut eval = IncrementalEval::new(own);
/// eval.refresh(&store, [(foreign, Value::new(1))]);
/// assert!(eval.is_violated(0, Value::new(0)));
/// assert!(!eval.is_violated(0, Value::new(1)));
/// ```
#[derive(Debug)]
pub struct IncrementalEval {
    own_var: VariableId,
    /// Mirror of the last refreshed view, indexed densely by variable:
    /// value and the epoch at which the variable was last seen (stale
    /// epochs mark removed variables).
    shadow: Vec<Option<(Value, u64)>>,
    /// Variables currently present in `shadow` (the removal sweep only
    /// walks these, not the whole dense table).
    present: Vec<VariableId>,
    epoch: u64,
    /// Per nogood: the own-variable value it prohibits, if it mentions
    /// the own variable at all. Static — computed once at sync.
    own_prohibited: Vec<Option<Value>>,
    /// Bit `i`: every foreign literal of nogood `i` matches the view.
    foreign_sat: Vec<u64>,
    /// Bit `i`: nogood `i` has no own-variable literal (applies to every
    /// own value). Static.
    applies_always: Vec<u64>,
    /// `applies_by_value[v]` bit `i`: nogood `i` prohibits own value `v`.
    /// Static.
    applies_by_value: Vec<Vec<u64>>,
    /// How many store nogoods have been synced into the caches.
    synced_len: usize,
    /// View generation of the last [`IncrementalEval::refresh_view`]
    /// fast-path check.
    synced_generation: Option<u64>,
    /// Count of foreign-satisfied nogoods with no own-variable literal
    /// (violated regardless of the own value).
    sat_unconditional: usize,
    /// Count of foreign-satisfied nogoods prohibiting own value `v`,
    /// indexed by `v`.
    sat_by_value: Vec<usize>,
}

#[inline]
fn bit_get(bits: &[u64], idx: usize) -> bool {
    bits.get(idx / 64)
        .is_some_and(|word| word >> (idx % 64) & 1 == 1)
}

#[inline]
fn bit_set(bits: &mut [u64], idx: usize) {
    bits[idx / 64] |= 1 << (idx % 64);
}

#[inline]
fn bit_clear(bits: &mut [u64], idx: usize) {
    bits[idx / 64] &= !(1 << (idx % 64));
}

impl IncrementalEval {
    /// Creates an empty tracker for the agent owning `own_var`.
    pub fn new(own_var: VariableId) -> Self {
        IncrementalEval {
            own_var,
            shadow: Vec::new(),
            present: Vec::new(),
            epoch: 0,
            own_prohibited: Vec::new(),
            foreign_sat: Vec::new(),
            applies_always: Vec::new(),
            applies_by_value: Vec::new(),
            synced_len: 0,
            synced_generation: None,
            sat_unconditional: 0,
            sat_by_value: Vec::new(),
        }
    }

    /// The variable this tracker treats as the agent's own.
    pub fn own_var(&self) -> VariableId {
        self.own_var
    }

    /// Number of nogoods currently cached.
    pub fn synced_len(&self) -> usize {
        self.synced_len
    }

    /// Synchronizes the caches with `store` and `view`.
    ///
    /// `view` is the complete foreign assignment (it must never contain
    /// the own variable). Work done is proportional to the view size,
    /// the number of nogoods *appended* to the store since the last
    /// refresh, and the number of nogoods mentioning a variable whose
    /// value actually changed — not to the store size.
    pub fn refresh<I>(&mut self, store: &NogoodStore, view: I)
    where
        I: IntoIterator<Item = (VariableId, Value)>,
    {
        debug_assert!(
            store.len() >= self.synced_len,
            "NogoodStore is append-only; the tracked store shrank"
        );
        self.epoch += 1;
        let epoch = self.epoch;
        let mut changed: Vec<VariableId> = Vec::new();
        let mut seen: Vec<VariableId> = Vec::with_capacity(self.present.len());

        for (var, value) in view {
            debug_assert_ne!(
                var, self.own_var,
                "the view passed to IncrementalEval::refresh must not \
                 contain the own variable"
            );
            let slot_idx = var.index();
            if slot_idx >= self.shadow.len() {
                self.shadow.resize(slot_idx + 1, None);
            }
            match &mut self.shadow[slot_idx] {
                Some((stored, stamp)) => {
                    if *stored != value {
                        *stored = value;
                        changed.push(var);
                    }
                    *stamp = epoch;
                }
                slot @ None => {
                    *slot = Some((value, epoch));
                    changed.push(var);
                }
            }
            seen.push(var);
        }
        // Variables not seen this epoch were removed from the view.
        for &var in &self.present {
            if let Some((_, stamp)) = self.shadow[var.index()] {
                if stamp != epoch {
                    self.shadow[var.index()] = None;
                    changed.push(var);
                }
            }
        }
        self.present = seen;

        // Sync nogoods appended since the last refresh.
        let old_len = self.synced_len;
        if store.len() > old_len {
            let words = store.len().div_ceil(64);
            self.foreign_sat.resize(words, 0);
            self.applies_always.resize(words, 0);
            for mask in &mut self.applies_by_value {
                mask.resize(words, 0);
            }
            for idx in old_len..store.len() {
                let ng = store.get(idx).expect("index in range");
                let prohibited = ng.value_of(self.own_var);
                self.own_prohibited.push(prohibited);
                match prohibited {
                    None => bit_set(&mut self.applies_always, idx),
                    Some(value) => {
                        while self.applies_by_value.len() <= value.index() {
                            self.applies_by_value.push(vec![0; words]);
                        }
                        bit_set(&mut self.applies_by_value[value.index()], idx);
                    }
                }
                let sat = self.compute_foreign_sat(ng);
                self.set_foreign_sat(idx, sat);
            }
            self.synced_len = store.len();
        }

        // Re-evaluate only the nogoods touching a changed variable.
        for var in changed {
            for (idx, ng) in store.for_variable(var) {
                if idx >= old_len {
                    continue; // freshly synced above
                }
                let sat = self.compute_foreign_sat(ng);
                self.set_foreign_sat(idx, sat);
            }
        }
        self.synced_generation = None;
    }

    /// [`IncrementalEval::refresh`] against an [`crate::AgentView`], with
    /// a generation fast path: when neither the view generation nor the
    /// store length changed since the last call, returns immediately.
    pub fn refresh_view(&mut self, store: &NogoodStore, view: &crate::AgentView) {
        if self.synced_generation == Some(view.generation()) && self.synced_len == store.len() {
            return;
        }
        self.refresh(store, view.iter().map(|(var, entry)| (var, entry.value)));
        self.synced_generation = Some(view.generation());
    }

    fn compute_foreign_sat(&self, nogood: &Nogood) -> bool {
        nogood.elems().iter().all(|e| {
            e.var == self.own_var
                || self
                    .shadow
                    .get(e.var.index())
                    .copied()
                    .flatten()
                    .map(|(v, _)| v)
                    == Some(e.value)
        })
    }

    fn set_foreign_sat(&mut self, idx: NogoodIdx, sat: bool) {
        if bit_get(&self.foreign_sat, idx) == sat {
            return;
        }
        let delta: isize = if sat {
            bit_set(&mut self.foreign_sat, idx);
            1
        } else {
            bit_clear(&mut self.foreign_sat, idx);
            -1
        };
        match self.own_prohibited[idx] {
            None => {
                self.sat_unconditional = self.sat_unconditional.wrapping_add_signed(delta);
            }
            Some(value) => {
                let slot = value.index();
                if slot >= self.sat_by_value.len() {
                    self.sat_by_value.resize(slot + 1, 0);
                }
                self.sat_by_value[slot] = self.sat_by_value[slot].wrapping_add_signed(delta);
            }
        }
    }

    /// Whether nogood `idx` is violated under the refreshed view with the
    /// own variable at `own_value`. O(1); performs no literal scans and
    /// meters nothing.
    ///
    /// # Panics
    ///
    /// Panics if `idx` was appended to the store after the last refresh.
    pub fn is_violated(&self, idx: NogoodIdx, own_value: Value) -> bool {
        assert!(
            idx < self.synced_len,
            "nogood {idx} appended after the last refresh (synced {})",
            self.synced_len
        );
        bit_get(&self.foreign_sat, idx)
            && (bit_get(&self.applies_always, idx)
                || self
                    .applies_by_value
                    .get(own_value.index())
                    .is_some_and(|mask| bit_get(mask, idx)))
    }

    /// All violated nogood indices with the own variable at `own_value`
    /// (insertion order). Word-wise bitset AND over the synced nogoods —
    /// no literal work, ~n/64 word operations plus one push per violated
    /// nogood.
    pub fn violated_with(&self, own_value: Value) -> Vec<NogoodIdx> {
        let by_value = self.applies_by_value.get(own_value.index());
        let mut violated = Vec::new();
        for (w, &sat) in self.foreign_sat.iter().enumerate() {
            let applies =
                self.applies_always[w] | by_value.map(|mask| mask[w]).unwrap_or_default();
            let mut bits = sat & applies;
            while bits != 0 {
                violated.push(w * 64 + bits.trailing_zeros() as usize);
                bits &= bits - 1;
            }
        }
        violated
    }

    /// Number of violated nogoods with the own variable at `own_value`.
    /// O(1) via incrementally maintained counters.
    pub fn violation_count_with(&self, own_value: Value) -> usize {
        self.sat_unconditional
            + self
                .sat_by_value
                .get(own_value.index())
                .copied()
                .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x(i: u32) -> VariableId {
        VariableId::new(i)
    }
    fn v(i: u16) -> Value {
        Value::new(i)
    }

    fn pair(a: u32, av: u16, b: u32, bv: u16) -> Nogood {
        Nogood::of([(x(a), v(av)), (x(b), v(bv))])
    }

    #[test]
    fn insert_deduplicates() {
        let mut store = NogoodStore::new();
        assert!(store.insert(pair(0, 1, 1, 1)));
        assert!(!store.insert(pair(1, 1, 0, 1))); // same canonical nogood
        assert_eq!(store.len(), 1);
        assert!(store.contains(&pair(0, 1, 1, 1)));
    }

    #[test]
    fn eval_counts_checks() {
        let store = NogoodStore::new();
        let ng = pair(0, 1, 1, 1);
        assert_eq!(store.checks(), 0);
        let violated = store.eval(&ng, |var| if var.index() <= 1 { Some(v(1)) } else { None });
        assert!(violated);
        assert_eq!(store.checks(), 1);
        store.eval(&ng, |_| None);
        assert_eq!(store.checks(), 2);
    }

    #[test]
    fn take_checks_resets() {
        let store = NogoodStore::new();
        store.charge_checks(5);
        assert_eq!(store.take_checks(), 5);
        assert_eq!(store.checks(), 0);
    }

    #[test]
    fn violated_scans_everything_and_counts() {
        let store: NogoodStore = [pair(0, 0, 1, 0), pair(0, 1, 1, 1), pair(2, 0, 3, 0)]
            .into_iter()
            .collect();
        let lookup = |var: VariableId| if var.index() < 2 { Some(v(1)) } else { None };
        let violated = store.violated(lookup);
        assert_eq!(violated.len(), 1);
        assert_eq!(violated[0], &pair(0, 1, 1, 1));
        // All three nogoods were checked.
        assert_eq!(store.checks(), 3);
        assert_eq!(store.violation_count(lookup), 1);
        assert_eq!(store.checks(), 6);
    }

    #[test]
    fn extend_and_from_iterator() {
        let mut store = NogoodStore::new();
        store.extend([pair(0, 0, 1, 0), pair(0, 0, 1, 0)]);
        assert_eq!(store.len(), 1);
        assert!(!store.is_empty());
    }

    #[test]
    fn display_is_nonempty() {
        let store = NogoodStore::new();
        assert!(store.to_string().contains("store"));
    }

    #[test]
    fn for_variable_indexes_every_mention() {
        let store: NogoodStore = [pair(0, 0, 1, 0), pair(0, 1, 1, 1), pair(2, 0, 3, 0)]
            .into_iter()
            .collect();
        let of_x0: Vec<NogoodIdx> = store.for_variable(x(0)).map(|(i, _)| i).collect();
        assert_eq!(of_x0, vec![0, 1]);
        let of_x3: Vec<NogoodIdx> = store.for_variable(x(3)).map(|(i, _)| i).collect();
        assert_eq!(of_x3, vec![2]);
        assert_eq!(store.for_variable(x(9)).count(), 0);
        // Indices line up with `get`.
        for (i, ng) in store.for_variable(x(1)) {
            assert_eq!(store.get(i), Some(ng));
        }
    }

    #[test]
    fn for_variable_skips_duplicates() {
        let mut store = NogoodStore::new();
        store.insert(pair(0, 1, 1, 1));
        store.insert(pair(1, 1, 0, 1)); // canonical duplicate, rejected
        assert_eq!(store.for_variable(x(0)).count(), 1);
        assert_eq!(store.for_variable(x(1)).count(), 1);
    }

    #[test]
    fn incremental_matches_naive_on_changes() {
        let own = x(0);
        let mut store = NogoodStore::new();
        store.insert(pair(0, 0, 1, 0));
        store.insert(pair(0, 1, 1, 1));
        store.insert(pair(1, 0, 2, 1)); // foreign-only: violated for any own value
        store.insert(Nogood::of([(own, v(2))])); // unary own: always prohibits 2

        let mut eval = IncrementalEval::new(own);
        let views: Vec<Vec<(VariableId, Value)>> = vec![
            vec![(x(1), v(0)), (x(2), v(1))],
            vec![(x(1), v(1)), (x(2), v(1))],
            vec![(x(1), v(1))], // x2 removed
            vec![(x(1), v(0)), (x(2), v(0))],
        ];
        for view in views {
            eval.refresh(&store, view.clone());
            let lookup_base: HashMap<VariableId, Value> = view.into_iter().collect();
            for own_value in 0..3u16 {
                let lookup = |var: VariableId| {
                    if var == own {
                        Some(v(own_value))
                    } else {
                        lookup_base.get(&var).copied()
                    }
                };
                for idx in 0..store.len() {
                    let naive = store.get(idx).unwrap().is_violated_by(lookup);
                    assert_eq!(
                        eval.is_violated(idx, v(own_value)),
                        naive,
                        "idx {idx} own={own_value}"
                    );
                }
                let naive_violated: Vec<NogoodIdx> = (0..store.len())
                    .filter(|&i| store.get(i).unwrap().is_violated_by(lookup))
                    .collect();
                assert_eq!(eval.violated_with(v(own_value)), naive_violated);
                assert_eq!(
                    eval.violation_count_with(v(own_value)),
                    naive_violated.len()
                );
            }
        }
    }

    #[test]
    fn incremental_syncs_appended_nogoods() {
        let own = x(0);
        let mut store = NogoodStore::new();
        store.insert(pair(0, 0, 1, 0));
        let mut eval = IncrementalEval::new(own);
        eval.refresh(&store, [(x(1), v(0))]);
        assert_eq!(eval.synced_len(), 1);
        assert!(eval.is_violated(0, v(0)));

        store.insert(pair(0, 1, 1, 0));
        eval.refresh(&store, [(x(1), v(0))]);
        assert_eq!(eval.synced_len(), 2);
        assert!(eval.is_violated(1, v(1)));
        assert!(!eval.is_violated(1, v(0)));
    }

    #[test]
    fn incremental_empty_nogood_is_always_violated() {
        let own = x(0);
        let mut store = NogoodStore::new();
        store.insert(Nogood::empty());
        let mut eval = IncrementalEval::new(own);
        eval.refresh(&store, []);
        assert!(eval.is_violated(0, v(0)));
        assert_eq!(eval.violation_count_with(v(7)), 1);
    }

    #[test]
    fn incremental_meters_nothing() {
        let own = x(0);
        let mut store = NogoodStore::new();
        store.insert(pair(0, 0, 1, 0));
        let mut eval = IncrementalEval::new(own);
        eval.refresh(&store, [(x(1), v(0))]);
        let _ = eval.is_violated(0, v(0));
        let _ = eval.violated_with(v(0));
        let _ = eval.violation_count_with(v(0));
        assert_eq!(store.checks(), 0);
    }

    #[test]
    fn refresh_view_fast_path_tracks_generation() {
        use crate::ids::AgentId;
        use crate::priority::Priority;
        let own = x(0);
        let mut store = NogoodStore::new();
        store.insert(pair(0, 0, 1, 0));
        let mut view = crate::AgentView::new();
        view.update(x(1), AgentId::new(1), v(0), Priority::ZERO);

        let mut eval = IncrementalEval::new(own);
        eval.refresh_view(&store, &view);
        assert!(eval.is_violated(0, v(0)));

        // Unchanged view + store: fast path (observable via epoch not
        // advancing — exercised here just for coverage/no-panic).
        eval.refresh_view(&store, &view);
        assert!(eval.is_violated(0, v(0)));

        // A real change invalidates.
        view.update(x(1), AgentId::new(1), v(1), Priority::ZERO);
        eval.refresh_view(&store, &view);
        assert!(!eval.is_violated(0, v(0)));

        // Store growth alone also invalidates.
        store.insert(pair(0, 1, 1, 1));
        eval.refresh_view(&store, &view);
        assert!(eval.is_violated(1, v(1)));
    }
}
