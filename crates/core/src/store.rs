//! Instrumented per-agent nogood storage.
//!
//! Every nogood evaluation in the system is routed through a
//! [`NogoodStore`] (or metered explicitly), because the paper's `maxcck`
//! metric is defined in units of *nogood checks*. The store keeps all
//! literals in one flat arena (`Vec<VarValue>`) addressed by per-nogood
//! `(offset, len)` slot headers — no per-nogood heap allocation — with a
//! free list so forgetting a nogood recycles its slot without
//! invalidating other [`NogoodIdx`] values. Dedup goes through hash
//! buckets over slot ids, and a per-variable index
//! ([`NogoodStore::for_variable`]) supports the small-store evaluation
//! path.
//!
//! [`IncrementalEval`] caches each nogood's violation status against a
//! view. Small stores re-evaluate the nogoods mentioning changed
//! variables; past [`IncrementalEval::SMALL_STORE_LIMIT`] slots it
//! switches to *two watched literals* adapted to nogoods (conjunctions):
//! a foreign literal is **blocking** when the view does *not* match it,
//! an unsatisfied nogood always watches a blocking literal, and a view
//! change only visits nogoods whose watch fires instead of every nogood
//! mentioning the changed variable. See DESIGN.md §11 for the layout and
//! the watch invariants.
//!
//! Learned nogoods carry an activity score ([`NogoodStore::bump_activity`])
//! and can be evicted deterministically with [`NogoodStore::forget`];
//! initial constraints are never evicted.
//!
//! **Metric fidelity.** The check *meter* is independent of the check
//! *mechanism*: algorithms charge exactly the checks the paper's naive
//! scanning algorithm would perform (via [`NogoodStore::eval`] or
//! [`NogoodStore::charge_checks`]) even when the cached path skips the
//! wall-clock re-evaluation. See DESIGN.md, "Store indexing and metric
//! fidelity".

use std::cell::Cell;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::mem;

use crate::assignment::VarValue;
use crate::ids::VariableId;
use crate::nogood::{Nogood, NogoodLits, NogoodRef};
use crate::value::Value;

/// Index of a nogood within its [`NogoodStore`]: the id of the slot the
/// nogood occupies. Stable for the nogood's whole lifetime — forgetting
/// other nogoods never moves it. Slot ids are recycled, so after a
/// [`NogoodStore::forget`] a *new* nogood may occupy an old index.
pub type NogoodIdx = usize;

/// Slot header: where a nogood's literals live in the arena, plus the
/// bookkeeping forgetting needs.
#[derive(Debug, Clone, Copy)]
struct Slot {
    /// Start of the literal range in the arena.
    offset: u32,
    /// Number of literals currently stored.
    len: u32,
    /// Capacity of the arena range owned by this slot (`>= len`); slot
    /// reuse keeps the old range when the new nogood fits.
    cap: u32,
    /// Hash of the canonical literal slice (dedup bucket key).
    hash: u64,
    /// Insertion sequence number: the deterministic tie-break for
    /// forgetting (older = evicted first at equal activity).
    seq: u64,
    /// Activity score; bumped on violation hits, halved after each
    /// forget pass.
    activity: u64,
    /// Whether this nogood was learned (only learned nogoods are
    /// eligible for forgetting).
    learned: bool,
    /// Whether the slot currently holds a nogood.
    live: bool,
}

/// A deduplicating nogood set with an evaluation meter, flat literal
/// storage, and activity-based forgetting of learned nogoods.
///
/// # Examples
///
/// ```
/// use discsp_core::{Nogood, NogoodStore, Value, VariableId};
///
/// let mut store = NogoodStore::new();
/// let ng = Nogood::of([(VariableId::new(0), Value::new(1))]);
/// assert!(store.insert(ng.clone()));
/// assert!(!store.insert(ng)); // duplicate
/// assert_eq!(store.len(), 1);
/// assert_eq!(store.for_variable(VariableId::new(0)).count(), 1);
/// ```
///
/// Forgetting evicts only *learned* nogoods, coldest first:
///
/// ```
/// use discsp_core::{Nogood, NogoodStore, Value, VariableId};
///
/// let mut store = NogoodStore::new();
/// store.insert(Nogood::of([(VariableId::new(0), Value::new(0))])); // initial
/// store.insert_learned(Nogood::of([(VariableId::new(1), Value::new(0))]));
/// store.insert_learned(Nogood::of([(VariableId::new(2), Value::new(0))]));
/// let evicted = store.forget(1);
/// assert_eq!(evicted, vec![1]); // oldest learned nogood at equal activity
/// assert_eq!(store.len(), 2);
/// assert_eq!(store.learned_len(), 1);
/// ```
#[derive(Debug, Default)]
pub struct NogoodStore {
    /// All literals of all live nogoods, contiguous. Ranges of dead
    /// slots (and the tails of shrunk reused ranges) are garbage;
    /// `Slot::offset`/`len` is the only way in.
    lits: Vec<VarValue>,
    slots: Vec<Slot>,
    /// Dead slot ids available for reuse (LIFO).
    free: Vec<u32>,
    /// Number of live slots.
    live: usize,
    /// Number of live *learned* slots.
    learned_live: usize,
    next_seq: u64,
    /// Dedupe buckets: canonical-literal hash -> live slot ids.
    // lint: allow(unordered): point lookups keyed by hash only; buckets
    // are never iterated, so map order cannot reach any output.
    by_hash: HashMap<u64, Vec<u32>>,
    /// Per-variable index: every live nogood mentioning the variable, in
    /// recording order.
    // lint: allow(unordered): point lookups keyed by variable; values are
    // recording-ordered slot-id vectors, so map order cannot reach output.
    var_index: HashMap<VariableId, Vec<u32>>,
    /// Mutation log: the slot id of every content change (insert *and*
    /// removal), in order. [`IncrementalEval`] keeps a cursor into this
    /// log and re-syncs exactly the slots that changed; replaying an
    /// entry twice is harmless (re-sync is idempotent).
    log: Vec<u32>,
    checks: Cell<u64>,
}

fn hash_lits(lits: &[VarValue]) -> u64 {
    let mut hasher = DefaultHasher::new();
    lits.hash(&mut hasher);
    hasher.finish()
}

impl NogoodStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        NogoodStore::default()
    }

    /// Creates a store pre-populated with initial-constraint `nogoods`
    /// (duplicates merged). These are never evicted by forgetting.
    pub fn with_nogoods<I>(nogoods: I) -> Self
    where
        I: IntoIterator<Item = Nogood>,
    {
        let mut store = NogoodStore::new();
        for ng in nogoods {
            store.insert(ng);
        }
        store
    }

    /// Records `nogood` as an initial constraint (never forgotten);
    /// returns `false` if it was already present.
    pub fn insert(&mut self, nogood: Nogood) -> bool {
        self.insert_impl(nogood, false)
    }

    /// Records `nogood` as a *learned* nogood — eligible for
    /// [`NogoodStore::forget`] — starting at activity 1; returns `false`
    /// if it was already present.
    pub fn insert_learned(&mut self, nogood: Nogood) -> bool {
        self.insert_impl(nogood, true)
    }

    fn insert_impl(&mut self, nogood: Nogood, learned: bool) -> bool {
        let hash = hash_lits(nogood.elems());
        if let Some(bucket) = self.by_hash.get(&hash) {
            if bucket.iter().any(|&i| self.slot_ref(i as usize) == nogood) {
                return false;
            }
        }
        let n = nogood.len();
        // lint: allow(panic-path): capacity guard — nogoods are bounded by
        // the variable count, orders of magnitude below 2^32
        let n32 = u32::try_from(n).expect("nogood holds < 2^32 literals");
        let slot_id = match self.free.pop() {
            Some(id) => {
                let slot = &mut self.slots[id as usize];
                debug_assert!(!slot.live);
                if slot.cap >= n32 {
                    // Reuse the dead slot's arena range in place.
                    let off = slot.offset as usize;
                    self.lits[off..off + n].copy_from_slice(nogood.elems());
                } else {
                    // Too small: take a fresh range at the end. The old
                    // range is abandoned (arena growth stays bounded by
                    // the peak live footprint plus churn; see DESIGN §11).
                    slot.offset = u32::try_from(self.lits.len())
                        .expect("literal arena holds < 2^32 literals"); // lint: allow(panic-path): capacity guard; forgetting bounds the arena far below 2^32
                    slot.cap = n32;
                    self.lits.extend_from_slice(nogood.elems());
                }
                slot.len = n32;
                slot.hash = hash;
                slot.seq = self.next_seq;
                slot.activity = 1;
                slot.learned = learned;
                slot.live = true;
                id
            }
            None => {
                // lint: allow(panic-path): capacity guard — slot count is
                // bounded by the forgetting budget, far below 2^32
                let id = u32::try_from(self.slots.len()).expect("store holds < 2^32 slots");
                let offset = u32::try_from(self.lits.len())
                    .expect("literal arena holds < 2^32 literals"); // lint: allow(panic-path): capacity guard; forgetting bounds the arena far below 2^32
                self.lits.extend_from_slice(nogood.elems());
                self.slots.push(Slot {
                    offset,
                    len: n32,
                    cap: n32,
                    hash,
                    seq: self.next_seq,
                    activity: 1,
                    learned,
                    live: true,
                });
                id
            }
        };
        self.next_seq += 1;
        self.by_hash.entry(hash).or_default().push(slot_id);
        for var in nogood.vars() {
            self.var_index.entry(var).or_default().push(slot_id);
        }
        self.live += 1;
        if learned {
            self.learned_live += 1;
        }
        self.log.push(slot_id);
        true
    }

    /// Scrubs `slot_id` from every index and marks it dead/reusable.
    fn remove_slot(&mut self, slot_id: u32) {
        let idx = slot_id as usize;
        let (hash, learned, range) = {
            let s = &self.slots[idx];
            debug_assert!(s.live, "removing a dead slot");
            (s.hash, s.learned, s.offset as usize..(s.offset + s.len) as usize)
        };
        if let Some(bucket) = self.by_hash.get_mut(&hash) {
            bucket.retain(|&i| i != slot_id);
            if bucket.is_empty() {
                self.by_hash.remove(&hash);
            }
        }
        for li in range {
            let var = self.lits[li].var;
            if let Some(bucket) = self.var_index.get_mut(&var) {
                bucket.retain(|&i| i != slot_id);
                if bucket.is_empty() {
                    self.var_index.remove(&var);
                }
            }
        }
        self.slots[idx].live = false;
        self.live -= 1;
        if learned {
            self.learned_live -= 1;
        }
        self.free.push(slot_id);
        self.log.push(slot_id);
    }

    /// Evicts learned nogoods until at most `budget` remain, coldest
    /// first, and returns the evicted indices (ascending). Initial
    /// constraints are never evicted.
    ///
    /// Deterministic: eviction order is lowest `(activity, seq)` — at
    /// equal activity the *oldest* learned nogood goes first. After a
    /// pass, every surviving learned nogood's activity is halved so
    /// stale heat decays (fresh inserts restart at 1).
    pub fn forget(&mut self, budget: usize) -> Vec<NogoodIdx> {
        if self.learned_live <= budget {
            return Vec::new();
        }
        let mut candidates: Vec<(u64, u64, u32)> = self
            .slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.live && s.learned)
            .map(|(i, s)| (s.activity, s.seq, i as u32))
            .collect();
        candidates.sort_unstable();
        let evict = candidates.len() - budget;
        let mut evicted: Vec<NogoodIdx> = candidates[..evict]
            .iter()
            .map(|&(_, _, id)| id as usize)
            .collect();
        for &idx in &evicted {
            self.remove_slot(idx as u32);
        }
        for s in self.slots.iter_mut().filter(|s| s.live && s.learned) {
            s.activity /= 2;
        }
        evicted.sort_unstable();
        evicted
    }

    /// Bumps the activity of nogood `idx` (saturating). Call when the
    /// nogood participates in a violation so forgetting keeps hot
    /// nogoods. No-op on dead or out-of-range indices.
    pub fn bump_activity(&mut self, idx: NogoodIdx) {
        if let Some(s) = self.slots.get_mut(idx) {
            if s.live {
                s.activity = s.activity.saturating_add(1);
            }
        }
    }

    /// Whether `nogood` is recorded.
    pub fn contains(&self, nogood: &Nogood) -> bool {
        self.by_hash
            .get(&hash_lits(nogood.elems()))
            .is_some_and(|bucket| bucket.iter().any(|&i| self.slot_ref(i as usize) == *nogood))
    }

    /// Number of live nogoods.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Number of live *learned* nogoods (the population
    /// [`NogoodStore::forget`] draws from).
    pub fn learned_len(&self) -> usize {
        self.learned_live
    }

    /// Number of slots ever allocated (live + dead). Indices are always
    /// `< slot_count()`; [`IncrementalEval`] sizes its caches by this.
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Whether the store holds no nogoods.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// The append-only mutation log: the slot id of every insertion and
    /// removal, in order. Consumers that cache per-slot state keep a
    /// cursor into this log and re-read exactly the slots listed since.
    pub fn mutation_log(&self) -> &[u32] {
        &self.log
    }

    /// Borrowed view of the (live) slot `idx`'s literals.
    fn slot_ref(&self, idx: usize) -> NogoodRef<'_> {
        let s = &self.slots[idx];
        debug_assert!(s.live, "slot_ref on a dead slot");
        NogoodRef::from_canonical(&self.lits[s.offset as usize..(s.offset + s.len) as usize])
    }

    /// Iterates over the live nogoods in slot order.
    pub fn iter(&self) -> impl Iterator<Item = NogoodRef<'_>> {
        self.entries().map(|(_, ng)| ng)
    }

    /// Iterates over `(index, nogood)` for every live slot, ascending by
    /// index.
    pub fn entries(&self) -> impl Iterator<Item = (NogoodIdx, NogoodRef<'_>)> {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.live)
            .map(|(i, _)| (i, self.slot_ref(i)))
    }

    /// Iterates over the live slot indices, ascending.
    pub fn indices(&self) -> impl Iterator<Item = NogoodIdx> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter(|(_, s)| s.live)
            .map(|(i, _)| i)
    }

    /// The nogood in slot `index`, or `None` for dead/out-of-range slots.
    pub fn get(&self, index: NogoodIdx) -> Option<NogoodRef<'_>> {
        self.slots
            .get(index)
            .filter(|s| s.live)
            .map(|_| self.slot_ref(index))
    }

    /// Iterates (in recording order) over the live nogoods mentioning
    /// `var`, with their store indices. This is the index the small-store
    /// incremental path uses: when a view changes by one assignment, only
    /// these nogoods can change violation status.
    pub fn for_variable(
        &self,
        var: VariableId,
    ) -> impl Iterator<Item = (NogoodIdx, NogoodRef<'_>)> + '_ {
        self.var_index
            .get(&var)
            .map(|indices| indices.as_slice())
            .unwrap_or(&[])
            .iter()
            .map(move |&i| (i as NogoodIdx, self.slot_ref(i as usize)))
    }

    /// Evaluates one nogood against `lookup`, counting **one** nogood check.
    ///
    /// Returns whether the nogood is violated. This is the sole metered
    /// primitive; [`NogoodStore::violated`] and the algorithm crates build
    /// on it.
    pub fn eval<N, F>(&self, nogood: N, lookup: F) -> bool
    where
        N: NogoodLits,
        F: Fn(VariableId) -> Option<Value>,
    {
        self.checks.set(self.checks.get() + 1);
        nogood.violated_by(lookup)
    }

    /// Meters `n` additional checks performed outside [`NogoodStore::eval`]
    /// (e.g. subset tests during mcs search, or cached evaluations that
    /// must still count as if performed naively).
    pub fn charge_checks(&self, n: u64) {
        self.checks.set(self.checks.get() + n);
    }

    /// Returns the violated nogoods under `lookup`, evaluating (and
    /// counting) every stored nogood.
    pub fn violated<F>(&self, lookup: F) -> Vec<NogoodRef<'_>>
    where
        F: Fn(VariableId) -> Option<Value>,
    {
        self.iter().filter(|&ng| self.eval(ng, &lookup)).collect()
    }

    /// Counts the violated nogoods under `lookup`, evaluating (and
    /// counting) every stored nogood.
    pub fn violation_count<F>(&self, lookup: F) -> usize
    where
        F: Fn(VariableId) -> Option<Value>,
    {
        self.iter().filter(|&ng| self.eval(ng, &lookup)).count()
    }

    /// Total nogood checks performed since construction or the last
    /// [`NogoodStore::take_checks`].
    pub fn checks(&self) -> u64 {
        self.checks.get()
    }

    /// Returns the check count and resets it to zero (used by the
    /// synchronous simulator at every cycle boundary to build `maxcck`).
    pub fn take_checks(&self) -> u64 {
        self.checks.replace(0)
    }
}

impl fmt::Display for NogoodStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "store[{} nogoods, {} checks]", self.len(), self.checks())
    }
}

impl FromIterator<Nogood> for NogoodStore {
    fn from_iter<I: IntoIterator<Item = Nogood>>(iter: I) -> Self {
        NogoodStore::with_nogoods(iter)
    }
}

impl Extend<Nogood> for NogoodStore {
    fn extend<I: IntoIterator<Item = Nogood>>(&mut self, iter: I) {
        for ng in iter {
            self.insert(ng);
        }
    }
}

/// "No watch installed" sentinel for watch positions and watch variables.
const NO_WATCH: u32 = u32::MAX;

/// Incremental violation tracker for one agent's store and view.
///
/// Decomposes each nogood's violation into two factors:
///
/// - `foreign_sat`: every literal over a *foreign* variable matches the
///   view (cached);
/// - the own-variable literal (if any) matches the queried value
///   (compared at query time in O(1); the prohibited value is a static
///   property of the nogood).
///
/// After a [`IncrementalEval::refresh`], [`IncrementalEval::is_violated`]
/// answers "is nogood `i` violated under the view with my variable at
/// `value`?" without touching the nogood's literals.
///
/// Two maintenance strategies, switched adaptively:
///
/// - **Small stores** (at most [`IncrementalEval::SMALL_STORE_LIMIT`]
///   slots): a changed variable re-evaluates every nogood mentioning it
///   via [`NogoodStore::for_variable`]. No watch bookkeeping — below the
///   threshold the rescan is cheaper than maintaining watches.
/// - **Large stores**: *two watched literals*. A foreign literal is
///   *blocking* when the shadowed view does not match it; an unsatisfied
///   nogood watches up to two blocking literals, so a view change visits
///   only the nogoods whose watched variable fired, plus — for sat→unsat
///   transitions, which watches cannot signal — the satisfied slots on
///   the changed variable's mention list (a bit test each). The switch
///   is one-way and happens during the first
///   [`IncrementalEval::refresh`] that sees the store above the limit.
///
/// **This type never meters checks.** Callers on the algorithm hot paths
/// must charge the same number of checks the naive scan would have
/// performed (see [`NogoodStore::charge_checks`]); the golden
/// metric-fidelity tests in `crates/bench/tests/golden_metrics.rs` pin
/// that contract.
///
/// # Examples
///
/// ```
/// use discsp_core::{IncrementalEval, Nogood, NogoodStore, Value, VariableId};
///
/// let own = VariableId::new(0);
/// let foreign = VariableId::new(1);
/// let mut store = NogoodStore::new();
/// store.insert(Nogood::of([(own, Value::new(0)), (foreign, Value::new(1))]));
///
/// let mut eval = IncrementalEval::new(own);
/// eval.refresh(&store, [(foreign, Value::new(1))]);
/// assert!(eval.is_violated(0, Value::new(0)));
/// assert!(!eval.is_violated(0, Value::new(1)));
/// ```
#[derive(Debug)]
pub struct IncrementalEval {
    own_var: VariableId,
    /// Sorted `(global variable index, local slot)` pairs mapping every
    /// foreign variable this tracker has observed or watched to a dense
    /// local slot. `shadow` and `watchers` are indexed by local slot, so
    /// their size is proportional to the agent's *degree*, not to the
    /// largest foreign variable id — indexing them by global id made
    /// every agent carry an O(population) vector, which is quadratic
    /// total memory at 10^5+ agents.
    local_index: Vec<(u32, u32)>,
    /// Mirror of the last refreshed view, indexed by local slot:
    /// value and the epoch at which the variable was last seen (stale
    /// epochs mark removed variables).
    shadow: Vec<Option<(Value, u64)>>,
    /// Variables currently present in `shadow` (the removal sweep only
    /// walks these, not the whole dense table).
    present: Vec<VariableId>,
    epoch: u64,
    /// Per slot: the own-variable value it prohibits, if it mentions
    /// the own variable at all. Re-read whenever the slot mutates.
    own_prohibited: Vec<Option<Value>>,
    /// Bit `i`: every foreign literal of slot `i` matches the view
    /// (always clear for dead slots).
    foreign_sat: Vec<u64>,
    /// Bit `i`: slot `i` has no own-variable literal (applies to every
    /// own value).
    applies_always: Vec<u64>,
    /// `applies_by_value[v]` bit `i`: slot `i` prohibits own value `v`.
    applies_by_value: Vec<Vec<u64>>,
    /// How many store slots the per-slot caches cover.
    synced_slots: usize,
    /// Cursor into [`NogoodStore::mutation_log`]: entries before this
    /// are already reflected in the caches.
    synced_mutations: usize,
    /// View generation of the last [`IncrementalEval::refresh_view`]
    /// fast-path check.
    synced_generation: Option<u64>,
    /// Count of foreign-satisfied nogoods with no own-variable literal
    /// (violated regardless of the own value).
    sat_unconditional: usize,
    /// Count of foreign-satisfied nogoods prohibiting own value `v`,
    /// indexed by `v`.
    sat_by_value: Vec<usize>,
    /// Whether the two-watched-literal machinery is active (one-way
    /// switch once the store outgrows `SMALL_STORE_LIMIT`).
    watched_mode: bool,
    /// Per slot: up to two watched literal positions (indices into the
    /// slot's literal slice), `NO_WATCH` when absent. Satisfied and dead
    /// slots hold no watches.
    watches: Vec<[u32; 2]>,
    /// Per slot: the variable index each watch sits on (mirror of
    /// `watches`, so watcher lists can be maintained without re-reading
    /// possibly-overwritten literals).
    watch_vars: Vec<[u32; 2]>,
    /// `watchers[local slot of var]`: exactly the slots currently
    /// holding a watch on `var` (eagerly maintained — no stale entries).
    /// Always the same length as `shadow`.
    watchers: Vec<Vec<u32>>,
    /// Scratch buffers recycled across refreshes (per-refresh heap
    /// allocation was the small-store regression).
    changed_scratch: Vec<VariableId>,
    seen_scratch: Vec<VariableId>,
}

#[inline]
fn bit_get(bits: &[u64], idx: usize) -> bool {
    bits.get(idx / 64)
        .is_some_and(|word| word >> (idx % 64) & 1 == 1)
}

#[inline]
fn bit_set(bits: &mut [u64], idx: usize) {
    bits[idx / 64] |= 1 << (idx % 64);
}

#[inline]
fn bit_clear(bits: &mut [u64], idx: usize) {
    bits[idx / 64] &= !(1 << (idx % 64));
}

impl IncrementalEval {
    /// Store size (in slots) above which [`IncrementalEval`] switches
    /// from per-variable rescanning to two watched literals. Below this,
    /// rescan wins: watch maintenance costs more than it saves (the
    /// store benches pin the crossover).
    pub const SMALL_STORE_LIMIT: usize = 256;

    /// Creates an empty tracker for the agent owning `own_var`.
    pub fn new(own_var: VariableId) -> Self {
        IncrementalEval {
            own_var,
            local_index: Vec::new(),
            shadow: Vec::new(),
            present: Vec::new(),
            epoch: 0,
            own_prohibited: Vec::new(),
            foreign_sat: Vec::new(),
            applies_always: Vec::new(),
            applies_by_value: Vec::new(),
            synced_slots: 0,
            synced_mutations: 0,
            synced_generation: None,
            sat_unconditional: 0,
            sat_by_value: Vec::new(),
            watched_mode: false,
            watches: Vec::new(),
            watch_vars: Vec::new(),
            watchers: Vec::new(),
            changed_scratch: Vec::new(),
            seen_scratch: Vec::new(),
        }
    }

    /// The variable this tracker treats as the agent's own.
    pub fn own_var(&self) -> VariableId {
        self.own_var
    }

    /// Number of store slots currently covered by the caches.
    pub fn synced_len(&self) -> usize {
        self.synced_slots
    }

    /// Whether the two-watched-literal machinery is active.
    pub fn is_watched_mode(&self) -> bool {
        self.watched_mode
    }

    /// The local slot of global variable index `g`, if it was ever
    /// observed or watched.
    #[inline]
    fn local_of(&self, g: u32) -> Option<u32> {
        self.local_index
            .binary_search_by_key(&g, |&(gv, _)| gv)
            .ok()
            .map(|p| self.local_index[p].1)
    }

    /// The local slot of global variable index `g`, allocating the slot
    /// (and its `shadow`/`watchers` cells) on first touch. Slots are
    /// stable: once handed out, a slot never moves.
    fn local_or_insert(&mut self, g: u32) -> u32 {
        match self.local_index.binary_search_by_key(&g, |&(gv, _)| gv) {
            Ok(p) => self.local_index[p].1,
            Err(p) => {
                let local = self.shadow.len() as u32;
                self.local_index.insert(p, (g, local));
                self.shadow.push(None);
                self.watchers.push(Vec::new());
                local
            }
        }
    }

    /// Synchronizes the caches with `store` and `view`.
    ///
    /// `view` is the complete foreign assignment (it must never contain
    /// the own variable). Work done is proportional to the view size,
    /// the number of store mutations since the last refresh, and the
    /// nogoods actually affected by changed variables (all mentions in
    /// small-store mode; fired watches plus a bit test per mention in
    /// watched mode) — not to the store size.
    pub fn refresh<I>(&mut self, store: &NogoodStore, view: I)
    where
        I: IntoIterator<Item = (VariableId, Value)>,
    {
        self.epoch += 1;
        let epoch = self.epoch;
        let mut changed = mem::take(&mut self.changed_scratch);
        changed.clear();
        let mut seen = mem::take(&mut self.seen_scratch);
        seen.clear();

        for (var, value) in view {
            debug_assert_ne!(
                var, self.own_var,
                "the view passed to IncrementalEval::refresh must not \
                 contain the own variable"
            );
            let slot_idx = self.local_or_insert(var.index() as u32) as usize;
            match &mut self.shadow[slot_idx] {
                Some((stored, stamp)) => {
                    if *stored != value {
                        *stored = value;
                        changed.push(var);
                    }
                    *stamp = epoch;
                }
                slot @ None => {
                    *slot = Some((value, epoch));
                    changed.push(var);
                }
            }
            seen.push(var);
        }
        // Variables not seen this epoch were removed from the view.
        // Present variables always have a local slot (allocated when
        // they were first observed above).
        for &var in &self.present {
            let Some(local) = self.local_of(var.index() as u32) else {
                continue;
            };
            let li = local as usize;
            if let Some((_, stamp)) = self.shadow[li] {
                if stamp != epoch {
                    self.shadow[li] = None;
                    changed.push(var);
                }
            }
        }
        // `seen` becomes the new `present`; the old vector is recycled
        // as next refresh's scratch.
        self.seen_scratch = mem::replace(&mut self.present, seen);

        // The shadow is fully up to date before any per-slot processing,
        // so watch decisions below always see the final assignment.
        self.sync_store(store);

        if !changed.is_empty() {
            if self.watched_mode {
                self.process_changes_watched(store, &changed);
            } else {
                for &var in &changed {
                    for (idx, ng) in store.for_variable(var) {
                        let sat = self.compute_foreign_sat(ng);
                        self.set_foreign_sat(idx, sat);
                    }
                }
            }
        }
        self.changed_scratch = changed;
        self.synced_generation = None;
    }

    /// [`IncrementalEval::refresh`] against an [`crate::AgentView`], with
    /// a generation fast path: when neither the view generation nor the
    /// store mutation log advanced since the last call, returns
    /// immediately.
    pub fn refresh_view(&mut self, store: &NogoodStore, view: &crate::AgentView) {
        if self.synced_generation == Some(view.generation())
            && self.synced_mutations == store.mutation_log().len()
        {
            return;
        }
        self.refresh(store, view.iter().map(|(var, entry)| (var, entry.value)));
        self.synced_generation = Some(view.generation());
    }

    /// Grows per-slot caches, replays the store's mutation log, and
    /// flips to watched mode once the store outgrows the threshold.
    fn sync_store(&mut self, store: &NogoodStore) {
        let slot_count = store.slot_count();
        if slot_count > self.synced_slots {
            let words = slot_count.div_ceil(64);
            self.foreign_sat.resize(words, 0);
            self.applies_always.resize(words, 0);
            for mask in &mut self.applies_by_value {
                mask.resize(words, 0);
            }
            self.own_prohibited.resize(slot_count, None);
            self.watches.resize(slot_count, [NO_WATCH; 2]);
            self.watch_vars.resize(slot_count, [NO_WATCH; 2]);
            self.synced_slots = slot_count;
        }
        let log = store.mutation_log();
        debug_assert!(
            log.len() >= self.synced_mutations,
            "the tracked store's mutation log shrank"
        );
        for &slot in &log[self.synced_mutations..] {
            self.resync_slot(store, slot as usize);
        }
        self.synced_mutations = log.len();
        if !self.watched_mode && slot_count > Self::SMALL_STORE_LIMIT {
            self.enter_watched_mode(store);
        }
    }

    /// Rebuilds all cached state of one slot from the store. Idempotent
    /// (full undo, then redo from current content), so replaying a
    /// mutation-log entry more than once is harmless.
    fn resync_slot(&mut self, store: &NogoodStore, idx: usize) {
        // Undo. Counter adjustment must happen while `own_prohibited`
        // still describes the old content.
        if bit_get(&self.foreign_sat, idx) {
            self.set_foreign_sat(idx, false);
        }
        if self.watched_mode {
            for wi in 0..2 {
                if self.watches[idx][wi] != NO_WATCH {
                    let wvar = self.watch_vars[idx][wi];
                    self.remove_watcher(wvar, idx as u32);
                }
            }
            self.watches[idx] = [NO_WATCH; 2];
            self.watch_vars[idx] = [NO_WATCH; 2];
        }
        match self.own_prohibited[idx].take() {
            None => bit_clear(&mut self.applies_always, idx),
            Some(value) => {
                if let Some(mask) = self.applies_by_value.get_mut(value.index()) {
                    bit_clear(mask, idx);
                }
            }
        }
        // Redo from the slot's current content (dead slots stay cleared).
        let Some(ng) = store.get(idx) else { return };
        let prohibited = ng.value_of(self.own_var);
        self.own_prohibited[idx] = prohibited;
        match prohibited {
            None => bit_set(&mut self.applies_always, idx),
            Some(value) => {
                let words = self.foreign_sat.len();
                while self.applies_by_value.len() <= value.index() {
                    self.applies_by_value.push(vec![0; words]);
                }
                bit_set(&mut self.applies_by_value[value.index()], idx);
            }
        }
        if self.watched_mode {
            self.install_watch_state(idx, ng);
        } else {
            let sat = self.compute_foreign_sat(ng);
            self.set_foreign_sat(idx, sat);
        }
    }

    /// One-way switch into watched mode: installs watch state for every
    /// live slot. `install_watch_state`
    /// recomputes each slot's foreign status against the current shadow,
    /// so bits that were stale (changed variables not yet processed this
    /// refresh) come out correct; the subsequent changed-variable pass
    /// then finds nothing left to fix.
    fn enter_watched_mode(&mut self, store: &NogoodStore) {
        self.watched_mode = true;
        for (idx, ng) in store.entries() {
            self.install_watch_state(idx, ng);
        }
    }

    /// Whether the shadowed view matches literal `e` (same value
    /// assigned). Unassigned never matches — an unassigned foreign
    /// literal *blocks* the nogood.
    #[inline]
    fn matches_shadow(&self, e: &VarValue) -> bool {
        self.local_of(e.var.index() as u32)
            .and_then(|li| self.shadow[li as usize])
            .map(|(v, _)| v)
            == Some(e.value)
    }

    fn compute_foreign_sat<N: NogoodLits>(&self, nogood: N) -> bool {
        nogood
            .lits()
            .iter()
            .all(|e| e.var == self.own_var || self.matches_shadow(e))
    }

    /// Classifies slot `idx` against the current shadow and installs the
    /// matching watch state: satisfied (sat bit set, no watches) or
    /// unsatisfied (watching up to two blocking literals). Requires any
    /// previous watch state for the slot to have been torn down.
    fn install_watch_state(&mut self, idx: usize, ng: NogoodRef<'_>) {
        let mut nblock = 0usize;
        let mut positions = [NO_WATCH; 2];
        let mut vars = [NO_WATCH; 2];
        for (pos, e) in ng.lits().iter().enumerate() {
            if e.var == self.own_var {
                continue;
            }
            if nblock < 2 && !self.matches_shadow(e) {
                positions[nblock] = pos as u32;
                vars[nblock] = e.var.index() as u32;
                nblock += 1;
            }
        }
        if nblock == 0 {
            // Every foreign literal matches (vacuously so for own-only
            // nogoods). No watches — sat→unsat transitions are caught by
            // the per-variable pass of `process_changes_watched`.
            self.set_foreign_sat(idx, true);
        } else {
            self.set_foreign_sat(idx, false);
            self.watches[idx] = positions;
            self.watch_vars[idx] = vars;
            for &wvar in &vars[..nblock] {
                self.add_watcher(wvar, idx as u32);
            }
        }
    }

    /// Watched-mode handling of a batch of changed variables. The shadow
    /// already reflects the new view.
    fn process_changes_watched(&mut self, store: &NogoodStore, changed: &[VariableId]) {
        // Pass 1: sat → unsat. A satisfied nogood holds no watches
        // (every literal matches — nothing blocks), so watches cannot
        // signal its literals un-matching; instead each changed
        // variable's mention list is walked and the satisfied slots on
        // it (one bit test each) are re-checked directly. Work is
        // O(deg(var)) per changed variable — never proportional to the
        // total number of satisfied nogoods.
        for &var in changed {
            for (idx, ng) in store.for_variable(var) {
                if !bit_get(&self.foreign_sat, idx) {
                    continue; // unsatisfied: its watches cover it
                }
                if self.compute_foreign_sat(ng) {
                    continue; // still satisfied
                }
                // `install_watch_state` clears the sat bit and installs
                // watches on blocking literals of the new shadow.
                self.install_watch_state(idx, ng);
            }
        }

        // Pass 2: watch propagation. Only slots whose watched variable
        // fired are visited.
        for &var in changed {
            let vi32 = var.index() as u32;
            let Some(local) = self.local_of(vi32) else {
                continue;
            };
            let li = local as usize;
            let mut list = mem::take(&mut self.watchers[li]);
            let mut kept = 0usize;
            'entries: for e in 0..list.len() {
                let slot = list[e];
                let idx = slot as usize;
                let Some(ng) = store.get(idx) else {
                    continue 'entries; // dead slot: drop the entry
                };
                let mut fired = 2usize;
                for wi in 0..2 {
                    if self.watches[idx][wi] != NO_WATCH && self.watch_vars[idx][wi] == vi32 {
                        fired = wi;
                        break;
                    }
                }
                if fired == 2 {
                    // No current watch on this variable: stale entry.
                    // Eager maintenance should make this unreachable,
                    // but dropping it is always safe.
                    debug_assert!(false, "stale watcher entry for slot {idx}");
                    continue 'entries;
                }
                let lits = ng.lits();
                let p = self.watches[idx][fired] as usize;
                if !self.matches_shadow(&lits[p]) {
                    // Still blocking: nothing to do, keep watching.
                    list[kept] = slot;
                    kept += 1;
                    continue 'entries;
                }
                let other = self.watches[idx][1 - fired];
                // The watched literal now matches: search a replacement
                // blocking literal (any foreign literal except the two
                // watched positions).
                for (q, e2) in lits.iter().enumerate() {
                    if e2.var == self.own_var || q == p || q as u32 == other {
                        continue;
                    }
                    if !self.matches_shadow(e2) {
                        let wvar = e2.var.index() as u32;
                        self.watches[idx][fired] = q as u32;
                        self.watch_vars[idx][fired] = wvar;
                        // `e2.var != var` (one literal per variable), so
                        // this never touches the list being compacted.
                        self.add_watcher(wvar, slot);
                        continue 'entries; // moved: entry dropped here
                    }
                }
                if other != NO_WATCH && !self.matches_shadow(&lits[other as usize]) {
                    // Parked: no replacement exists, but the other watch
                    // still blocks. The fired watch stays on its (now
                    // matching) literal so a later change of this
                    // variable re-examines the slot.
                    list[kept] = slot;
                    kept += 1;
                    continue 'entries;
                }
                // Both watched literals match and no other foreign
                // literal blocks: the whole foreign part is satisfied.
                let other_var = (other != NO_WATCH).then(|| self.watch_vars[idx][1 - fired]);
                self.watches[idx] = [NO_WATCH; 2];
                self.watch_vars[idx] = [NO_WATCH; 2];
                if let Some(ov) = other_var {
                    // A different variable's list — safe to edit here.
                    self.remove_watcher(ov, slot);
                }
                self.set_foreign_sat(idx, true);
                // Fired entry dropped (not copied to the kept region).
            }
            list.truncate(kept);
            // Local slots are stable, so `li` still addresses `var`'s
            // list even if `add_watcher` allocated new slots above.
            self.watchers[li] = list;
        }
    }

    fn add_watcher(&mut self, var_index: u32, slot: u32) {
        let li = self.local_or_insert(var_index) as usize;
        self.watchers[li].push(slot);
    }

    fn remove_watcher(&mut self, var_index: u32, slot: u32) {
        let Some(local) = self.local_of(var_index) else {
            return;
        };
        let list = &mut self.watchers[local as usize];
        if let Some(pos) = list.iter().position(|&s| s == slot) {
            list.swap_remove(pos);
        }
    }

    fn set_foreign_sat(&mut self, idx: NogoodIdx, sat: bool) {
        if bit_get(&self.foreign_sat, idx) == sat {
            return;
        }
        let delta: isize = if sat {
            bit_set(&mut self.foreign_sat, idx);
            1
        } else {
            bit_clear(&mut self.foreign_sat, idx);
            -1
        };
        match self.own_prohibited[idx] {
            None => {
                self.sat_unconditional = self.sat_unconditional.wrapping_add_signed(delta);
            }
            Some(value) => {
                let slot = value.index();
                if slot >= self.sat_by_value.len() {
                    self.sat_by_value.resize(slot + 1, 0);
                }
                self.sat_by_value[slot] = self.sat_by_value[slot].wrapping_add_signed(delta);
            }
        }
    }

    /// Whether nogood `idx` is violated under the refreshed view with the
    /// own variable at `own_value`. O(1); performs no literal scans and
    /// meters nothing. Dead (forgotten) slots are never violated.
    ///
    /// # Panics
    ///
    /// Panics if slot `idx` was created after the last refresh.
    pub fn is_violated(&self, idx: NogoodIdx, own_value: Value) -> bool {
        assert!(
            idx < self.synced_slots,
            "slot {idx} created after the last refresh (synced {})",
            self.synced_slots
        );
        bit_get(&self.foreign_sat, idx)
            && (bit_get(&self.applies_always, idx)
                || self
                    .applies_by_value
                    .get(own_value.index())
                    .is_some_and(|mask| bit_get(mask, idx)))
    }

    /// Filters `indices` down to the nogoods violated with the own
    /// variable at `own_value`, preserving order. **Meters nothing** —
    /// hot-path callers must charge one check per candidate
    /// ([`NogoodStore::charge_checks`] with `indices.len()`), because
    /// that is exactly what the paper's naive evaluator would count.
    pub fn violated_among(&self, indices: &[NogoodIdx], own_value: Value) -> Vec<NogoodIdx> {
        indices
            .iter()
            .copied()
            .filter(|&idx| self.is_violated(idx, own_value))
            .collect()
    }

    /// All violated slot indices with the own variable at `own_value`
    /// (ascending). Word-wise bitset AND over the synced slots — no
    /// literal work, ~n/64 word operations plus one push per violated
    /// nogood.
    pub fn violated_with(&self, own_value: Value) -> Vec<NogoodIdx> {
        let by_value = self.applies_by_value.get(own_value.index());
        let mut violated = Vec::new();
        for (w, &sat) in self.foreign_sat.iter().enumerate() {
            let applies =
                self.applies_always[w] | by_value.map(|mask| mask[w]).unwrap_or_default();
            let mut bits = sat & applies;
            while bits != 0 {
                violated.push(w * 64 + bits.trailing_zeros() as usize);
                bits &= bits - 1;
            }
        }
        violated
    }

    /// Number of violated nogoods with the own variable at `own_value`.
    /// O(1) via incrementally maintained counters.
    pub fn violation_count_with(&self, own_value: Value) -> usize {
        self.sat_unconditional
            + self
                .sat_by_value
                .get(own_value.index())
                .copied()
                .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x(i: u32) -> VariableId {
        VariableId::new(i)
    }
    fn v(i: u16) -> Value {
        Value::new(i)
    }

    fn pair(a: u32, av: u16, b: u32, bv: u16) -> Nogood {
        Nogood::of([(x(a), v(av)), (x(b), v(bv))])
    }

    #[test]
    fn insert_deduplicates() {
        let mut store = NogoodStore::new();
        assert!(store.insert(pair(0, 1, 1, 1)));
        assert!(!store.insert(pair(1, 1, 0, 1))); // same canonical nogood
        assert_eq!(store.len(), 1);
        assert!(store.contains(&pair(0, 1, 1, 1)));
        // Learned/initial do not create distinct entries either.
        assert!(!store.insert_learned(pair(0, 1, 1, 1)));
    }

    #[test]
    fn eval_counts_checks() {
        let store = NogoodStore::new();
        let ng = pair(0, 1, 1, 1);
        assert_eq!(store.checks(), 0);
        let violated = store.eval(&ng, |var| if var.index() <= 1 { Some(v(1)) } else { None });
        assert!(violated);
        assert_eq!(store.checks(), 1);
        store.eval(&ng, |_| None);
        assert_eq!(store.checks(), 2);
    }

    #[test]
    fn take_checks_resets() {
        let store = NogoodStore::new();
        store.charge_checks(5);
        assert_eq!(store.take_checks(), 5);
        assert_eq!(store.checks(), 0);
    }

    #[test]
    fn violated_scans_everything_and_counts() {
        let store: NogoodStore = [pair(0, 0, 1, 0), pair(0, 1, 1, 1), pair(2, 0, 3, 0)]
            .into_iter()
            .collect();
        let lookup = |var: VariableId| if var.index() < 2 { Some(v(1)) } else { None };
        let violated = store.violated(lookup);
        assert_eq!(violated.len(), 1);
        assert_eq!(violated[0], pair(0, 1, 1, 1));
        // All three nogoods were checked.
        assert_eq!(store.checks(), 3);
        assert_eq!(store.violation_count(lookup), 1);
        assert_eq!(store.checks(), 6);
    }

    #[test]
    fn extend_and_from_iterator() {
        let mut store = NogoodStore::new();
        store.extend([pair(0, 0, 1, 0), pair(0, 0, 1, 0)]);
        assert_eq!(store.len(), 1);
        assert!(!store.is_empty());
    }

    #[test]
    fn display_is_nonempty() {
        let store = NogoodStore::new();
        assert!(store.to_string().contains("store"));
    }

    #[test]
    fn for_variable_indexes_every_mention() {
        let store: NogoodStore = [pair(0, 0, 1, 0), pair(0, 1, 1, 1), pair(2, 0, 3, 0)]
            .into_iter()
            .collect();
        let of_x0: Vec<NogoodIdx> = store.for_variable(x(0)).map(|(i, _)| i).collect();
        assert_eq!(of_x0, vec![0, 1]);
        let of_x3: Vec<NogoodIdx> = store.for_variable(x(3)).map(|(i, _)| i).collect();
        assert_eq!(of_x3, vec![2]);
        assert_eq!(store.for_variable(x(9)).count(), 0);
        // Indices line up with `get`.
        for (i, ng) in store.for_variable(x(1)) {
            assert_eq!(store.get(i), Some(ng));
        }
    }

    #[test]
    fn for_variable_skips_duplicates() {
        let mut store = NogoodStore::new();
        store.insert(pair(0, 1, 1, 1));
        store.insert(pair(1, 1, 0, 1)); // canonical duplicate, rejected
        assert_eq!(store.for_variable(x(0)).count(), 1);
        assert_eq!(store.for_variable(x(1)).count(), 1);
    }

    #[test]
    fn entries_and_indices_skip_dead_slots() {
        let mut store = NogoodStore::new();
        store.insert(pair(0, 0, 1, 0));
        store.insert_learned(pair(0, 1, 1, 1));
        store.insert_learned(pair(2, 0, 3, 0));
        assert_eq!(store.forget(1), vec![1]);
        let indices: Vec<NogoodIdx> = store.indices().collect();
        assert_eq!(indices, vec![0, 2]);
        let entries: Vec<NogoodIdx> = store.entries().map(|(i, _)| i).collect();
        assert_eq!(entries, vec![0, 2]);
        assert_eq!(store.iter().count(), 2);
        assert_eq!(store.get(1), None);
        assert!(!store.contains(&pair(0, 1, 1, 1)));
        assert_eq!(store.for_variable(x(1)).count(), 1);
    }

    #[test]
    fn forget_within_budget_is_a_noop() {
        let mut store = NogoodStore::new();
        store.insert_learned(pair(0, 0, 1, 0));
        assert!(store.forget(1).is_empty());
        assert!(store.forget(5).is_empty());
        assert_eq!(store.len(), 1);
        assert!(store.mutation_log().len() == 1); // only the insert
    }

    #[test]
    fn forget_never_evicts_initial_constraints() {
        let mut store = NogoodStore::new();
        store.insert(pair(0, 0, 1, 0));
        store.insert(pair(0, 1, 1, 1));
        store.insert_learned(pair(2, 0, 3, 0));
        assert_eq!(store.forget(0), vec![2]);
        assert_eq!(store.len(), 2);
        assert_eq!(store.learned_len(), 0);
        // Nothing learned left: a further pass is a no-op.
        assert!(store.forget(0).is_empty());
    }

    #[test]
    fn forget_evicts_coldest_first_with_seq_tiebreak() {
        let mut store = NogoodStore::new();
        store.insert_learned(pair(0, 0, 1, 0)); // slot 0, cold
        store.insert_learned(pair(0, 1, 1, 1)); // slot 1, hot
        store.insert_learned(pair(2, 0, 3, 0)); // slot 2, cold
        store.bump_activity(1);
        // Equal activity between slots 0 and 2: the older seq goes first.
        assert_eq!(store.forget(2), vec![0]);
        assert_eq!(store.forget(1), vec![2]);
        assert_eq!(store.len(), 1);
        assert!(store.contains(&pair(0, 1, 1, 1)));
    }

    #[test]
    fn forget_decays_surviving_activity() {
        let mut store = NogoodStore::new();
        store.insert_learned(pair(0, 0, 1, 0)); // slot 0
        store.insert_learned(pair(0, 1, 1, 1)); // slot 1
        store.bump_activity(0);
        store.bump_activity(0); // slot 0 activity 3, slot 1 activity 1
        store.insert_learned(pair(2, 0, 3, 0)); // slot 2, activity 1
        assert_eq!(store.forget(2), vec![1]); // coldest + oldest
        // Decay halved survivors (3 -> 1, 1 -> 0). A fresh insert at
        // activity 1 now outranks slot 2 (decayed to 0).
        store.insert_learned(pair(4, 0, 5, 0)); // reuses slot 1
        assert_eq!(store.forget(2), vec![2]);
    }

    #[test]
    fn slot_reuse_keeps_indices_stable() {
        let mut store = NogoodStore::new();
        store.insert(pair(0, 0, 1, 0)); // slot 0 (initial)
        store.insert_learned(pair(0, 1, 1, 1)); // slot 1
        store.insert_learned(Nogood::of([(x(2), v(0)), (x(3), v(0)), (x(4), v(0))])); // slot 2
        assert_eq!(store.slot_count(), 3);
        assert_eq!(store.forget(0), vec![1, 2]);
        assert_eq!(store.len(), 1);
        assert_eq!(store.slot_count(), 3);
        // Reinsertion reuses dead slots (LIFO: slot 2 first), and slot 0
        // is untouched throughout.
        assert!(store.insert_learned(pair(5, 0, 6, 0)));
        assert_eq!(store.get(2).unwrap(), pair(5, 0, 6, 0));
        // A wider nogood than slot 1's capacity still lands in slot 1
        // (fresh arena range).
        let wide = Nogood::of([(x(7), v(0)), (x(8), v(0)), (x(9), v(0)), (x(10), v(0))]);
        assert!(store.insert_learned(wide.clone()));
        assert_eq!(store.get(1).unwrap(), wide);
        assert_eq!(store.get(0).unwrap(), pair(0, 0, 1, 0));
        assert_eq!(store.len(), 3);
        assert_eq!(store.slot_count(), 3);
    }

    #[test]
    fn mutation_log_records_inserts_and_removals() {
        let mut store = NogoodStore::new();
        store.insert(pair(0, 0, 1, 0));
        store.insert_learned(pair(0, 1, 1, 1));
        assert_eq!(store.mutation_log(), &[0, 1]);
        store.insert(pair(0, 0, 1, 0)); // duplicate: not logged
        assert_eq!(store.mutation_log(), &[0, 1]);
        store.forget(0);
        assert_eq!(store.mutation_log(), &[0, 1, 1]);
        store.insert_learned(pair(2, 0, 3, 0)); // reuses slot 1
        assert_eq!(store.mutation_log(), &[0, 1, 1, 1]);
    }

    #[test]
    fn incremental_matches_naive_on_changes() {
        let own = x(0);
        let mut store = NogoodStore::new();
        store.insert(pair(0, 0, 1, 0));
        store.insert(pair(0, 1, 1, 1));
        store.insert(pair(1, 0, 2, 1)); // foreign-only: violated for any own value
        store.insert(Nogood::of([(own, v(2))])); // unary own: always prohibits 2

        let mut eval = IncrementalEval::new(own);
        let views: Vec<Vec<(VariableId, Value)>> = vec![
            vec![(x(1), v(0)), (x(2), v(1))],
            vec![(x(1), v(1)), (x(2), v(1))],
            vec![(x(1), v(1))], // x2 removed
            vec![(x(1), v(0)), (x(2), v(0))],
        ];
        for view in views {
            eval.refresh(&store, view.clone());
            let lookup_base: HashMap<VariableId, Value> = view.into_iter().collect();
            for own_value in 0..3u16 {
                let lookup = |var: VariableId| {
                    if var == own {
                        Some(v(own_value))
                    } else {
                        lookup_base.get(&var).copied()
                    }
                };
                for idx in 0..store.len() {
                    let naive = store.get(idx).unwrap().is_violated_by(lookup);
                    assert_eq!(
                        eval.is_violated(idx, v(own_value)),
                        naive,
                        "idx {idx} own={own_value}"
                    );
                }
                let naive_violated: Vec<NogoodIdx> = (0..store.len())
                    .filter(|&i| store.get(i).unwrap().is_violated_by(lookup))
                    .collect();
                assert_eq!(eval.violated_with(v(own_value)), naive_violated);
                assert_eq!(
                    eval.violation_count_with(v(own_value)),
                    naive_violated.len()
                );
                assert_eq!(
                    eval.violated_among(&naive_violated, v(own_value)),
                    naive_violated
                );
            }
        }
    }

    #[test]
    fn incremental_syncs_appended_nogoods() {
        let own = x(0);
        let mut store = NogoodStore::new();
        store.insert(pair(0, 0, 1, 0));
        let mut eval = IncrementalEval::new(own);
        eval.refresh(&store, [(x(1), v(0))]);
        assert_eq!(eval.synced_len(), 1);
        assert!(eval.is_violated(0, v(0)));

        store.insert(pair(0, 1, 1, 0));
        eval.refresh(&store, [(x(1), v(0))]);
        assert_eq!(eval.synced_len(), 2);
        assert!(eval.is_violated(1, v(1)));
        assert!(!eval.is_violated(1, v(0)));
    }

    #[test]
    fn incremental_tracks_forgetting_and_slot_reuse() {
        let own = x(0);
        let mut store = NogoodStore::new();
        store.insert(pair(0, 0, 1, 0)); // slot 0, initial
        store.insert_learned(pair(0, 1, 1, 0)); // slot 1
        let mut eval = IncrementalEval::new(own);
        eval.refresh(&store, [(x(1), v(0))]);
        assert!(eval.is_violated(0, v(0)));
        assert!(eval.is_violated(1, v(1)));
        assert_eq!(eval.violation_count_with(v(1)), 1);

        assert_eq!(store.forget(0), vec![1]);
        eval.refresh(&store, [(x(1), v(0))]);
        // The forgotten slot no longer registers as violated anywhere.
        assert!(!eval.is_violated(1, v(1)));
        assert_eq!(eval.violated_with(v(1)), Vec::<NogoodIdx>::new());
        assert_eq!(eval.violation_count_with(v(1)), 0);

        // A new nogood reusing slot 1 is tracked with its own semantics.
        store.insert_learned(pair(0, 2, 1, 0));
        eval.refresh(&store, [(x(1), v(0))]);
        assert!(eval.is_violated(1, v(2)));
        assert!(!eval.is_violated(1, v(1)));
        assert_eq!(eval.violated_with(v(2)), vec![1]);
    }

    #[test]
    fn incremental_empty_nogood_is_always_violated() {
        let own = x(0);
        let mut store = NogoodStore::new();
        store.insert(Nogood::empty());
        let mut eval = IncrementalEval::new(own);
        eval.refresh(&store, []);
        assert!(eval.is_violated(0, v(0)));
        assert_eq!(eval.violation_count_with(v(7)), 1);
    }

    #[test]
    fn incremental_meters_nothing() {
        let own = x(0);
        let mut store = NogoodStore::new();
        store.insert(pair(0, 0, 1, 0));
        let mut eval = IncrementalEval::new(own);
        eval.refresh(&store, [(x(1), v(0))]);
        let _ = eval.is_violated(0, v(0));
        let _ = eval.violated_with(v(0));
        let _ = eval.violated_among(&[0], v(0));
        let _ = eval.violation_count_with(v(0));
        assert_eq!(store.checks(), 0);
    }

    #[test]
    fn refresh_view_fast_path_tracks_generation() {
        use crate::ids::AgentId;
        use crate::priority::Priority;
        let own = x(0);
        let mut store = NogoodStore::new();
        store.insert(pair(0, 0, 1, 0));
        let mut view = crate::AgentView::new();
        view.update(x(1), AgentId::new(1), v(0), Priority::ZERO);

        let mut eval = IncrementalEval::new(own);
        eval.refresh_view(&store, &view);
        assert!(eval.is_violated(0, v(0)));

        // Unchanged view + store: fast path (observable via epoch not
        // advancing — exercised here just for coverage/no-panic).
        eval.refresh_view(&store, &view);
        assert!(eval.is_violated(0, v(0)));

        // A real change invalidates.
        view.update(x(1), AgentId::new(1), v(1), Priority::ZERO);
        eval.refresh_view(&store, &view);
        assert!(!eval.is_violated(0, v(0)));

        // Store growth alone also invalidates.
        store.insert(pair(0, 1, 1, 1));
        eval.refresh_view(&store, &view);
        assert!(eval.is_violated(1, v(1)));

        // Store *mutation* (forgetting) alone also invalidates.
        store.insert_learned(pair(0, 2, 1, 1));
        eval.refresh_view(&store, &view);
        assert!(eval.is_violated(2, v(2)));
        store.forget(0);
        eval.refresh_view(&store, &view);
        assert!(!eval.is_violated(2, v(2)));
    }

    /// Deterministic pseudo-random stream (SplitMix64) for the crossover
    /// stress test below — no external crates.
    struct Rng(u64);
    impl Rng {
        fn next(&mut self) -> u64 {
            self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = self.0;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        }
        fn below(&mut self, n: u64) -> u64 {
            self.next() % n
        }
    }

    /// Drives a store across the small→watched crossover with random
    /// view churn, inserts, and forgetting, comparing every query
    /// against a naive literal scan. This is the in-crate counterpart of
    /// the proptest in `tests/properties.rs`.
    #[test]
    fn watched_mode_matches_naive_under_churn() {
        const VARS: u32 = 24;
        const VALUES: u16 = 3;
        let own = x(0);
        let mut rng = Rng(0xd15c_5b00_c0ff_ee00);
        let mut store = NogoodStore::new();
        let mut eval = IncrementalEval::new(own);
        let mut view: HashMap<VariableId, Value> = HashMap::new();

        let random_nogood = |rng: &mut Rng| {
            let len = 1 + rng.below(3) as usize;
            let mut elems: Vec<(VariableId, Value)> = Vec::new();
            while elems.len() < len {
                let var = x(rng.below(VARS as u64) as u32);
                if elems.iter().all(|&(existing, _)| existing != var) {
                    elems.push((var, v(rng.below(VALUES as u64) as u16)));
                }
            }
            Nogood::of(elems)
        };

        for step in 0..600 {
            // Grow past the crossover, then keep churning.
            let inserts = if step < 40 { 12 } else { 1 };
            for _ in 0..inserts {
                store.insert_learned(random_nogood(&mut rng));
            }
            if step == 200 {
                assert!(eval.is_watched_mode(), "store should have crossed over");
                store.forget(store.learned_len() / 2);
            }
            // Mutate the view: a few assignments plus occasional removal.
            for _ in 0..1 + rng.below(3) {
                let var = x(1 + rng.below((VARS - 1) as u64) as u32);
                if rng.below(8) == 0 {
                    view.remove(&var);
                } else {
                    view.insert(var, v(rng.below(VALUES as u64) as u16));
                }
            }
            eval.refresh(&store, view.iter().map(|(&k, &val)| (k, val)));

            let own_value = v(rng.below(VALUES as u64) as u16);
            let lookup = |var: VariableId| {
                if var == own {
                    Some(own_value)
                } else {
                    view.get(&var).copied()
                }
            };
            let naive: Vec<NogoodIdx> = store
                .entries()
                .filter(|(_, ng)| ng.is_violated_by(lookup))
                .map(|(i, _)| i)
                .collect();
            assert_eq!(eval.violated_with(own_value), naive, "step {step}");
            assert_eq!(eval.violation_count_with(own_value), naive.len());
            for (idx, ng) in store.entries() {
                assert_eq!(
                    eval.is_violated(idx, own_value),
                    ng.is_violated_by(lookup),
                    "step {step} idx {idx}"
                );
            }
        }
        assert!(store.slot_count() > IncrementalEval::SMALL_STORE_LIMIT);
        assert_eq!(store.checks(), 0, "incremental machinery must not meter");
    }
}
