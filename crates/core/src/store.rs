//! Instrumented per-agent nogood storage.
//!
//! Every nogood evaluation in the system is routed through a
//! [`NogoodStore`] (or metered explicitly), because the paper's `maxcck`
//! metric is defined in units of *nogood checks*. The store deduplicates
//! recorded nogoods and maintains a per-variable index so algorithms can
//! iterate only over potentially relevant nogoods without distorting the
//! check counts (a check is only counted when a nogood is actually
//! evaluated against a view).

use std::cell::Cell;
use std::collections::HashSet;
use std::fmt;

use crate::ids::VariableId;
use crate::nogood::Nogood;
use crate::value::Value;

/// A deduplicating nogood set with an evaluation meter.
///
/// # Examples
///
/// ```
/// use discsp_core::{Nogood, NogoodStore, Value, VariableId};
///
/// let mut store = NogoodStore::new();
/// let ng = Nogood::of([(VariableId::new(0), Value::new(1))]);
/// assert!(store.insert(ng.clone()));
/// assert!(!store.insert(ng)); // duplicate
/// assert_eq!(store.len(), 1);
/// ```
#[derive(Debug, Default)]
pub struct NogoodStore {
    nogoods: Vec<Nogood>,
    seen: HashSet<Nogood>,
    checks: Cell<u64>,
}

impl NogoodStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        NogoodStore::default()
    }

    /// Creates a store pre-populated with `nogoods` (duplicates merged).
    pub fn with_nogoods<I>(nogoods: I) -> Self
    where
        I: IntoIterator<Item = Nogood>,
    {
        let mut store = NogoodStore::new();
        for ng in nogoods {
            store.insert(ng);
        }
        store
    }

    /// Records `nogood`; returns `false` if it was already present.
    pub fn insert(&mut self, nogood: Nogood) -> bool {
        if self.seen.contains(&nogood) {
            return false;
        }
        self.seen.insert(nogood.clone());
        self.nogoods.push(nogood);
        true
    }

    /// Whether `nogood` is recorded.
    pub fn contains(&self, nogood: &Nogood) -> bool {
        self.seen.contains(nogood)
    }

    /// Number of recorded nogoods.
    pub fn len(&self) -> usize {
        self.nogoods.len()
    }

    /// Whether the store holds no nogoods.
    pub fn is_empty(&self) -> bool {
        self.nogoods.is_empty()
    }

    /// Iterates over the recorded nogoods in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Nogood> {
        self.nogoods.iter()
    }

    /// The nogood at insertion index `index`.
    pub fn get(&self, index: usize) -> Option<&Nogood> {
        self.nogoods.get(index)
    }

    /// Evaluates one nogood against `lookup`, counting **one** nogood check.
    ///
    /// Returns whether the nogood is violated. This is the sole metered
    /// primitive; [`NogoodStore::violated`] and the algorithm crates build
    /// on it.
    pub fn eval<F>(&self, nogood: &Nogood, lookup: F) -> bool
    where
        F: Fn(VariableId) -> Option<Value>,
    {
        self.checks.set(self.checks.get() + 1);
        nogood.is_violated_by(lookup)
    }

    /// Meters `n` additional checks performed outside [`NogoodStore::eval`]
    /// (e.g. subset tests during mcs search).
    pub fn charge_checks(&self, n: u64) {
        self.checks.set(self.checks.get() + n);
    }

    /// Returns the violated nogoods under `lookup`, evaluating (and
    /// counting) every stored nogood.
    pub fn violated<F>(&self, lookup: F) -> Vec<&Nogood>
    where
        F: Fn(VariableId) -> Option<Value>,
    {
        self.nogoods
            .iter()
            .filter(|ng| self.eval(ng, &lookup))
            .collect()
    }

    /// Counts the violated nogoods under `lookup`, evaluating (and
    /// counting) every stored nogood.
    pub fn violation_count<F>(&self, lookup: F) -> usize
    where
        F: Fn(VariableId) -> Option<Value>,
    {
        self.nogoods
            .iter()
            .filter(|ng| self.eval(ng, &lookup))
            .count()
    }

    /// Total nogood checks performed since construction or the last
    /// [`NogoodStore::take_checks`].
    pub fn checks(&self) -> u64 {
        self.checks.get()
    }

    /// Returns the check count and resets it to zero (used by the
    /// synchronous simulator at every cycle boundary to build `maxcck`).
    pub fn take_checks(&self) -> u64 {
        self.checks.replace(0)
    }
}

impl fmt::Display for NogoodStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "store[{} nogoods, {} checks]", self.len(), self.checks())
    }
}

impl FromIterator<Nogood> for NogoodStore {
    fn from_iter<I: IntoIterator<Item = Nogood>>(iter: I) -> Self {
        NogoodStore::with_nogoods(iter)
    }
}

impl Extend<Nogood> for NogoodStore {
    fn extend<I: IntoIterator<Item = Nogood>>(&mut self, iter: I) {
        for ng in iter {
            self.insert(ng);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x(i: u32) -> VariableId {
        VariableId::new(i)
    }
    fn v(i: u16) -> Value {
        Value::new(i)
    }

    fn pair(a: u32, av: u16, b: u32, bv: u16) -> Nogood {
        Nogood::of([(x(a), v(av)), (x(b), v(bv))])
    }

    #[test]
    fn insert_deduplicates() {
        let mut store = NogoodStore::new();
        assert!(store.insert(pair(0, 1, 1, 1)));
        assert!(!store.insert(pair(1, 1, 0, 1))); // same canonical nogood
        assert_eq!(store.len(), 1);
        assert!(store.contains(&pair(0, 1, 1, 1)));
    }

    #[test]
    fn eval_counts_checks() {
        let store = NogoodStore::new();
        let ng = pair(0, 1, 1, 1);
        assert_eq!(store.checks(), 0);
        let violated = store.eval(&ng, |var| if var.index() <= 1 { Some(v(1)) } else { None });
        assert!(violated);
        assert_eq!(store.checks(), 1);
        store.eval(&ng, |_| None);
        assert_eq!(store.checks(), 2);
    }

    #[test]
    fn take_checks_resets() {
        let store = NogoodStore::new();
        store.charge_checks(5);
        assert_eq!(store.take_checks(), 5);
        assert_eq!(store.checks(), 0);
    }

    #[test]
    fn violated_scans_everything_and_counts() {
        let store: NogoodStore = [pair(0, 0, 1, 0), pair(0, 1, 1, 1), pair(2, 0, 3, 0)]
            .into_iter()
            .collect();
        let lookup = |var: VariableId| if var.index() < 2 { Some(v(1)) } else { None };
        let violated = store.violated(lookup);
        assert_eq!(violated.len(), 1);
        assert_eq!(violated[0], &pair(0, 1, 1, 1));
        // All three nogoods were checked.
        assert_eq!(store.checks(), 3);
        assert_eq!(store.violation_count(lookup), 1);
        assert_eq!(store.checks(), 6);
    }

    #[test]
    fn extend_and_from_iterator() {
        let mut store = NogoodStore::new();
        store.extend([pair(0, 0, 1, 0), pair(0, 0, 1, 0)]);
        assert_eq!(store.len(), 1);
        assert!(!store.is_empty());
    }

    #[test]
    fn display_is_nonempty() {
        let store = NogoodStore::new();
        assert!(store.to_string().contains("store"));
    }
}
