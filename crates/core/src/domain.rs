//! Finite, discrete variable domains.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::value::Value;

/// The finite, ordered set of values a variable may take.
///
/// Domains in the paper's benchmarks are tiny (3 colors, 2 Boolean
/// polarities), so a domain is represented as the dense range `0..size`.
/// The iteration order is the deterministic value order used for all
/// tie-breaking in the algorithms.
///
/// # Examples
///
/// ```
/// use discsp_core::{Domain, Value};
///
/// let d = Domain::new(3);
/// assert_eq!(d.size(), 3);
/// assert!(d.contains(Value::new(2)));
/// assert!(!d.contains(Value::new(3)));
/// let all: Vec<_> = d.iter().collect();
/// assert_eq!(all, vec![Value::new(0), Value::new(1), Value::new(2)]);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Domain {
    size: u16,
}

impl Domain {
    /// A Boolean domain (`false`, `true`).
    pub const BOOL: Domain = Domain { size: 2 };

    /// Creates a domain with values `0..size`.
    ///
    /// # Panics
    ///
    /// Panics if `size` is zero: a CSP variable always has at least one
    /// candidate value.
    pub fn new(size: u16) -> Self {
        assert!(size > 0, "domain must contain at least one value");
        Domain { size }
    }

    /// Number of values in the domain.
    pub fn size(self) -> usize {
        self.size as usize
    }

    /// Whether `value` belongs to this domain.
    pub fn contains(self, value: Value) -> bool {
        value.index() < self.size as usize
    }

    /// Iterates over the domain's values in the canonical order.
    pub fn iter(self) -> DomainIter {
        DomainIter {
            next: 0,
            size: self.size,
        }
    }

    /// The first (lowest-index) value.
    pub fn first(self) -> Value {
        Value::new(0)
    }
}

impl fmt::Display for Domain {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{0..{}}}", self.size)
    }
}

impl IntoIterator for Domain {
    type Item = Value;
    type IntoIter = DomainIter;

    fn into_iter(self) -> DomainIter {
        self.iter()
    }
}

/// Iterator over a [`Domain`]'s values, produced by [`Domain::iter`].
#[derive(Debug, Clone)]
pub struct DomainIter {
    next: u16,
    size: u16,
}

impl Iterator for DomainIter {
    type Item = Value;

    fn next(&mut self) -> Option<Value> {
        if self.next < self.size {
            let v = Value::new(self.next);
            self.next += 1;
            Some(v)
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = (self.size - self.next) as usize;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for DomainIter {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn domain_membership() {
        let d = Domain::new(4);
        assert_eq!(d.size(), 4);
        assert!(d.contains(Value::new(0)));
        assert!(d.contains(Value::new(3)));
        assert!(!d.contains(Value::new(4)));
    }

    #[test]
    #[should_panic(expected = "at least one value")]
    fn empty_domain_rejected() {
        let _ = Domain::new(0);
    }

    #[test]
    fn iteration_is_ordered_and_sized() {
        let d = Domain::new(3);
        let it = d.iter();
        assert_eq!(it.len(), 3);
        let all: Vec<_> = d.into_iter().collect();
        assert_eq!(all, vec![Value::new(0), Value::new(1), Value::new(2)]);
    }

    #[test]
    fn bool_domain() {
        assert_eq!(Domain::BOOL.size(), 2);
        assert!(Domain::BOOL.contains(Value::TRUE));
        assert_eq!(Domain::BOOL.first(), Value::FALSE);
    }

    #[test]
    fn display_shows_range() {
        assert_eq!(Domain::new(3).to_string(), "{0..3}");
    }
}
