//! Nogoods — the constraint representation used throughout the paper.
//!
//! A *nogood* is a set of variable/value pairs stating that the combination
//! is prohibited. Original problem constraints are given as nogoods, and
//! learning adds new (logically implied) nogoods discovered at deadends.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::assignment::VarValue;
use crate::error::CoreError;
use crate::ids::VariableId;
use crate::value::Value;

/// A prohibited combination of variable/value pairs, stored in canonical
/// (variable-id sorted, deduplicated) form.
///
/// Two nogoods are equal iff they prohibit the same combination, regardless
/// of the order their elements were supplied in. The *empty* nogood
/// prohibits the empty combination — i.e. it is violated by everything and
/// proves the problem insoluble.
///
/// # Examples
///
/// ```
/// use discsp_core::{Nogood, Value, VariableId};
///
/// // "x1 and x5 must not both be red (value 0)."
/// let ng = Nogood::of([(VariableId::new(5), Value::new(0)),
///                      (VariableId::new(1), Value::new(0))]);
/// assert_eq!(ng.len(), 2);
/// assert!(ng.contains_var(VariableId::new(1)));
/// assert_eq!(ng.value_of(VariableId::new(5)), Some(Value::new(0)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Nogood {
    /// Elements sorted by variable id; at most one element per variable.
    elems: Vec<VarValue>,
}

impl Nogood {
    /// Creates a nogood from elements, canonicalizing their order.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ConflictingNogoodElements`] if the same variable
    /// appears twice with *different* values (such a "nogood" could never be
    /// violated and is always a construction bug). Duplicate identical
    /// elements are merged silently.
    pub fn try_new<I>(elems: I) -> Result<Self, CoreError>
    where
        I: IntoIterator<Item = VarValue>,
    {
        let mut elems: Vec<VarValue> = elems.into_iter().collect();
        elems.sort();
        elems.dedup();
        for pair in elems.windows(2) {
            if pair[0].var == pair[1].var {
                return Err(CoreError::ConflictingNogoodElements { var: pair[0].var });
            }
        }
        Ok(Nogood { elems })
    }

    /// Creates a nogood from elements, canonicalizing their order.
    ///
    /// # Panics
    ///
    /// Panics when the same variable appears with two different values; use
    /// [`Nogood::try_new`] to handle that case as an error.
    pub fn new<I>(elems: I) -> Self
    where
        I: IntoIterator<Item = VarValue>,
    {
        Nogood::try_new(elems).expect("conflicting nogood elements")
    }

    /// Convenience constructor from `(variable, value)` tuples.
    ///
    /// # Panics
    ///
    /// Panics when the same variable appears with two different values.
    pub fn of<I>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (VariableId, Value)>,
    {
        Nogood::new(pairs.into_iter().map(VarValue::from))
    }

    /// The empty nogood, violated by every assignment (proof of
    /// insolubility).
    pub fn empty() -> Self {
        Nogood { elems: Vec::new() }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.elems.len()
    }

    /// Whether this is the empty nogood.
    pub fn is_empty(&self) -> bool {
        self.elems.is_empty()
    }

    /// The elements in canonical (variable-id) order.
    pub fn elems(&self) -> &[VarValue] {
        &self.elems
    }

    /// Whether `var` appears in this nogood.
    pub fn contains_var(&self, var: VariableId) -> bool {
        self.elems.binary_search_by_key(&var, |e| e.var).is_ok()
    }

    /// The value this nogood prohibits for `var`, if `var` appears.
    pub fn value_of(&self, var: VariableId) -> Option<Value> {
        self.elems
            .binary_search_by_key(&var, |e| e.var)
            .ok()
            .map(|i| self.elems[i].value)
    }

    /// Iterates over the variables mentioned, in id order.
    pub fn vars(&self) -> impl Iterator<Item = VariableId> + '_ {
        self.elems.iter().map(|e| e.var)
    }

    /// Returns a copy with every element of `var` removed.
    pub fn without_var(&self, var: VariableId) -> Nogood {
        Nogood {
            elems: self
                .elems
                .iter()
                .copied()
                .filter(|e| e.var != var)
                .collect(),
        }
    }

    /// Whether every element of `self` also appears in `other`.
    pub fn is_subset_of(&self, other: &Nogood) -> bool {
        self.elems
            .iter()
            .all(|e| other.value_of(e.var) == Some(e.value))
    }

    /// Evaluates this nogood against a partial assignment given as a lookup
    /// function: the nogood is **violated** iff every element's variable is
    /// assigned exactly the prohibited value.
    ///
    /// This is the single primitive the paper's `maxcck` metric counts; all
    /// instrumented call sites route through
    /// [`NogoodStore::eval`](crate::store::NogoodStore::eval) or meter the
    /// call themselves.
    pub fn is_violated_by<F>(&self, lookup: F) -> bool
    where
        F: Fn(VariableId) -> Option<Value>,
    {
        self.elems.iter().all(|e| lookup(e.var) == Some(e.value))
    }
}

impl fmt::Display for Nogood {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "¬(")?;
        let mut first = true;
        for e in &self.elems {
            if !first {
                write!(f, " ")?;
            }
            first = false;
            write!(f, "{e}")?;
        }
        write!(f, ")")
    }
}

impl FromIterator<VarValue> for Nogood {
    /// Builds a nogood, panicking on conflicting elements; prefer
    /// [`Nogood::try_new`] when the input is untrusted.
    fn from_iter<I: IntoIterator<Item = VarValue>>(iter: I) -> Self {
        Nogood::new(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x(i: u32) -> VariableId {
        VariableId::new(i)
    }
    fn v(i: u16) -> Value {
        Value::new(i)
    }

    #[test]
    fn canonical_order_and_equality() {
        let a = Nogood::of([(x(5), v(0)), (x(1), v(2))]);
        let b = Nogood::of([(x(1), v(2)), (x(5), v(0))]);
        assert_eq!(a, b);
        assert_eq!(a.elems()[0].var, x(1));
    }

    #[test]
    fn duplicate_identical_elements_merge() {
        let a = Nogood::of([(x(1), v(2)), (x(1), v(2))]);
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn conflicting_elements_rejected() {
        let err =
            Nogood::try_new([VarValue::new(x(1), v(0)), VarValue::new(x(1), v(1))]).unwrap_err();
        assert!(matches!(
            err,
            CoreError::ConflictingNogoodElements { var } if var == x(1)
        ));
    }

    #[test]
    #[should_panic(expected = "conflicting nogood elements")]
    fn new_panics_on_conflict() {
        let _ = Nogood::of([(x(1), v(0)), (x(1), v(1))]);
    }

    #[test]
    fn empty_nogood_is_always_violated() {
        let ng = Nogood::empty();
        assert!(ng.is_empty());
        assert!(ng.is_violated_by(|_| None));
    }

    #[test]
    fn violation_requires_all_elements_assigned() {
        let ng = Nogood::of([(x(0), v(1)), (x(1), v(0))]);
        // Fully matching assignment: violated.
        assert!(ng.is_violated_by(|var| match var.index() {
            0 => Some(v(1)),
            1 => Some(v(0)),
            _ => None,
        }));
        // One variable unassigned: not violated.
        assert!(!ng.is_violated_by(|var| match var.index() {
            0 => Some(v(1)),
            _ => None,
        }));
        // One variable with a different value: not violated.
        assert!(!ng.is_violated_by(|var| match var.index() {
            0 => Some(v(1)),
            1 => Some(v(1)),
            _ => None,
        }));
    }

    #[test]
    fn membership_and_lookup() {
        let ng = Nogood::of([(x(2), v(1)), (x(7), v(0))]);
        assert!(ng.contains_var(x(2)));
        assert!(!ng.contains_var(x(3)));
        assert_eq!(ng.value_of(x(7)), Some(v(0)));
        assert_eq!(ng.value_of(x(3)), None);
        assert_eq!(ng.vars().collect::<Vec<_>>(), vec![x(2), x(7)]);
    }

    #[test]
    fn without_var_strips_all_occurrences() {
        let ng = Nogood::of([(x(2), v(1)), (x(7), v(0))]);
        let stripped = ng.without_var(x(2));
        assert_eq!(stripped, Nogood::of([(x(7), v(0))]));
        // Removing an absent variable is a no-op copy.
        assert_eq!(ng.without_var(x(9)), ng);
    }

    #[test]
    fn subset_relation() {
        let small = Nogood::of([(x(1), v(0))]);
        let big = Nogood::of([(x(1), v(0)), (x(2), v(1))]);
        assert!(small.is_subset_of(&big));
        assert!(!big.is_subset_of(&small));
        assert!(Nogood::empty().is_subset_of(&small));
        // Same variable, different value: not a subset.
        let other = Nogood::of([(x(1), v(1))]);
        assert!(!other.is_subset_of(&big));
    }

    #[test]
    fn display_form() {
        let ng = Nogood::of([(x(5), v(0)), (x(1), v(2))]);
        assert_eq!(ng.to_string(), "¬((x1=2) (x5=0))");
        assert_eq!(Nogood::empty().to_string(), "¬()");
    }

    #[test]
    fn from_iterator_collects() {
        let ng: Nogood = [VarValue::new(x(3), v(1))].into_iter().collect();
        assert_eq!(ng.len(), 1);
    }
}
