//! Nogoods — the constraint representation used throughout the paper.
//!
//! A *nogood* is a set of variable/value pairs stating that the combination
//! is prohibited. Original problem constraints are given as nogoods, and
//! learning adds new (logically implied) nogoods discovered at deadends.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::assignment::VarValue;
use crate::error::CoreError;
use crate::ids::VariableId;
use crate::value::Value;

/// A prohibited combination of variable/value pairs, stored in canonical
/// (variable-id sorted, deduplicated) form.
///
/// Two nogoods are equal iff they prohibit the same combination, regardless
/// of the order their elements were supplied in. The *empty* nogood
/// prohibits the empty combination — i.e. it is violated by everything and
/// proves the problem insoluble.
///
/// # Examples
///
/// ```
/// use discsp_core::{Nogood, Value, VariableId};
///
/// // "x1 and x5 must not both be red (value 0)."
/// let ng = Nogood::of([(VariableId::new(5), Value::new(0)),
///                      (VariableId::new(1), Value::new(0))]);
/// assert_eq!(ng.len(), 2);
/// assert!(ng.contains_var(VariableId::new(1)));
/// assert_eq!(ng.value_of(VariableId::new(5)), Some(Value::new(0)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Nogood {
    /// Elements sorted by variable id; at most one element per variable.
    elems: Vec<VarValue>,
}

impl Nogood {
    /// Creates a nogood from elements, canonicalizing their order.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::ConflictingNogoodElements`] if the same variable
    /// appears twice with *different* values (such a "nogood" could never be
    /// violated and is always a construction bug). Duplicate identical
    /// elements are merged silently.
    pub fn try_new<I>(elems: I) -> Result<Self, CoreError>
    where
        I: IntoIterator<Item = VarValue>,
    {
        let mut elems: Vec<VarValue> = elems.into_iter().collect();
        elems.sort();
        elems.dedup();
        for pair in elems.windows(2) {
            if let [a, b] = pair {
                if a.var == b.var {
                    return Err(CoreError::ConflictingNogoodElements { var: a.var });
                }
            }
        }
        Ok(Nogood { elems })
    }

    /// Creates a nogood from elements, canonicalizing their order.
    ///
    /// # Panics
    ///
    /// Panics when the same variable appears with two different values; use
    /// [`Nogood::try_new`] to handle that case as an error.
    pub fn new<I>(elems: I) -> Self
    where
        I: IntoIterator<Item = VarValue>,
    {
        // lint: allow(panic-path): documented panicking constructor; the
        // runtime path (resolvent) feeds literals from one consistent
        // agent view, where a variable cannot carry two values
        Nogood::try_new(elems).expect("conflicting nogood elements")
    }

    /// Convenience constructor from `(variable, value)` tuples.
    ///
    /// # Panics
    ///
    /// Panics when the same variable appears with two different values.
    pub fn of<I>(pairs: I) -> Self
    where
        I: IntoIterator<Item = (VariableId, Value)>,
    {
        Nogood::new(pairs.into_iter().map(VarValue::from))
    }

    /// The empty nogood, violated by every assignment (proof of
    /// insolubility).
    pub fn empty() -> Self {
        Nogood { elems: Vec::new() }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.elems.len()
    }

    /// Whether this is the empty nogood.
    pub fn is_empty(&self) -> bool {
        self.elems.is_empty()
    }

    /// The elements in canonical (variable-id) order.
    pub fn elems(&self) -> &[VarValue] {
        &self.elems
    }

    /// Whether `var` appears in this nogood.
    pub fn contains_var(&self, var: VariableId) -> bool {
        self.elems.binary_search_by_key(&var, |e| e.var).is_ok()
    }

    /// The value this nogood prohibits for `var`, if `var` appears.
    pub fn value_of(&self, var: VariableId) -> Option<Value> {
        self.elems
            .binary_search_by_key(&var, |e| e.var)
            .ok()
            .map(|i| self.elems[i].value)
    }

    /// Iterates over the variables mentioned, in id order.
    pub fn vars(&self) -> impl Iterator<Item = VariableId> + '_ {
        self.elems.iter().map(|e| e.var)
    }

    /// Returns a copy with every element of `var` removed.
    pub fn without_var(&self, var: VariableId) -> Nogood {
        Nogood {
            elems: self
                .elems
                .iter()
                .copied()
                .filter(|e| e.var != var)
                .collect(),
        }
    }

    /// Whether every element of `self` also appears in `other`.
    pub fn is_subset_of(&self, other: &Nogood) -> bool {
        self.elems
            .iter()
            .all(|e| other.value_of(e.var) == Some(e.value))
    }

    /// Evaluates this nogood against a partial assignment given as a lookup
    /// function: the nogood is **violated** iff every element's variable is
    /// assigned exactly the prohibited value.
    ///
    /// This is the single primitive the paper's `maxcck` metric counts; all
    /// instrumented call sites route through
    /// [`NogoodStore::eval`](crate::store::NogoodStore::eval) or meter the
    /// call themselves.
    pub fn is_violated_by<F>(&self, lookup: F) -> bool
    where
        F: Fn(VariableId) -> Option<Value>,
    {
        self.elems.iter().all(|e| lookup(e.var) == Some(e.value))
    }
}

/// Read access to a nogood's canonical literal slice, implemented by both
/// the owned [`Nogood`] and the borrowed [`NogoodRef`].
///
/// The arena-backed [`NogoodStore`](crate::NogoodStore) hands out
/// [`NogoodRef`]s (slices into its literal arena) instead of `&Nogood`, so
/// every consumer of "something nogood-shaped" — rank computations,
/// violation tests, the store's own metered `eval` — is generic over this
/// trait. The slice is guaranteed canonical: sorted by variable id, at
/// most one literal per variable.
pub trait NogoodLits {
    /// The literals in canonical (variable-id sorted) order.
    fn lits(&self) -> &[VarValue];

    /// Number of literals.
    fn size(&self) -> usize {
        self.lits().len()
    }

    /// The value prohibited for `var`, if `var` appears.
    fn prohibited_value(&self, var: VariableId) -> Option<Value> {
        let lits = self.lits();
        lits.binary_search_by_key(&var, |e| e.var)
            .ok()
            .map(|i| lits[i].value)
    }

    /// Evaluates against a partial assignment: violated iff every literal's
    /// variable is assigned exactly the prohibited value. Unmetered — call
    /// sites must route through the store's meter.
    fn violated_by<F>(&self, lookup: F) -> bool
    where
        F: Fn(VariableId) -> Option<Value>,
    {
        self.lits().iter().all(|e| lookup(e.var) == Some(e.value))
    }
}

impl NogoodLits for Nogood {
    fn lits(&self) -> &[VarValue] {
        &self.elems
    }
}

impl<T: NogoodLits + ?Sized> NogoodLits for &T {
    fn lits(&self) -> &[VarValue] {
        (**self).lits()
    }
}

/// A borrowed nogood: a view into a canonical literal slice owned by
/// someone else (typically a [`NogoodStore`](crate::NogoodStore) arena).
///
/// `Copy` and pointer-sized-ish, so hot loops can pass it by value without
/// touching the literal data. Mirrors the read API of [`Nogood`];
/// materialize with [`NogoodRef::to_nogood`] when an owned value is needed
/// (e.g. to send in a message).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NogoodRef<'a> {
    elems: &'a [VarValue],
}

impl<'a> NogoodRef<'a> {
    /// Wraps a slice that is already canonical (sorted by variable id,
    /// deduplicated, one literal per variable). Callers inside this crate
    /// only ever wrap slices taken from a canonical [`Nogood`].
    pub(crate) fn from_canonical(elems: &'a [VarValue]) -> Self {
        debug_assert!(
            elems.windows(2).all(|w| matches!(w, [a, b] if a.var < b.var)),
            "NogoodRef slice must be canonical"
        );
        NogoodRef { elems }
    }

    /// Number of elements.
    pub fn len(self) -> usize {
        self.elems.len()
    }

    /// Whether this is the empty nogood.
    pub fn is_empty(self) -> bool {
        self.elems.is_empty()
    }

    /// The elements in canonical (variable-id) order.
    pub fn elems(self) -> &'a [VarValue] {
        self.elems
    }

    /// Whether `var` appears in this nogood.
    pub fn contains_var(self, var: VariableId) -> bool {
        self.elems.binary_search_by_key(&var, |e| e.var).is_ok()
    }

    /// The value this nogood prohibits for `var`, if `var` appears.
    pub fn value_of(self, var: VariableId) -> Option<Value> {
        self.prohibited_value(var)
    }

    /// Iterates over the variables mentioned, in id order.
    pub fn vars(self) -> impl Iterator<Item = VariableId> + 'a {
        self.elems.iter().map(|e| e.var)
    }

    /// Unmetered violation test; see [`Nogood::is_violated_by`] for the
    /// metering contract.
    pub fn is_violated_by<F>(self, lookup: F) -> bool
    where
        F: Fn(VariableId) -> Option<Value>,
    {
        self.violated_by(lookup)
    }

    /// Whether every element of `self` also appears in `other`.
    pub fn is_subset_of(self, other: &Nogood) -> bool {
        self.elems
            .iter()
            .all(|e| other.value_of(e.var) == Some(e.value))
    }

    /// Materializes an owned [`Nogood`]. The slice is already canonical,
    /// so this is a plain copy, not a re-sort.
    pub fn to_nogood(self) -> Nogood {
        Nogood {
            elems: self.elems.to_vec(),
        }
    }
}

impl NogoodLits for NogoodRef<'_> {
    fn lits(&self) -> &[VarValue] {
        self.elems
    }
}

impl PartialEq<Nogood> for NogoodRef<'_> {
    fn eq(&self, other: &Nogood) -> bool {
        self.elems == other.elems()
    }
}

impl PartialEq<NogoodRef<'_>> for Nogood {
    fn eq(&self, other: &NogoodRef<'_>) -> bool {
        self.elems() == other.elems
    }
}

impl fmt::Display for NogoodRef<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_literals(self.elems, f)
    }
}

fn fmt_literals(elems: &[VarValue], f: &mut fmt::Formatter<'_>) -> fmt::Result {
    write!(f, "¬(")?;
    let mut first = true;
    for e in elems {
        if !first {
            write!(f, " ")?;
        }
        first = false;
        write!(f, "{e}")?;
    }
    write!(f, ")")
}

impl fmt::Display for Nogood {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_literals(&self.elems, f)
    }
}

impl FromIterator<VarValue> for Nogood {
    /// Builds a nogood, panicking on conflicting elements; prefer
    /// [`Nogood::try_new`] when the input is untrusted.
    fn from_iter<I: IntoIterator<Item = VarValue>>(iter: I) -> Self {
        Nogood::new(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x(i: u32) -> VariableId {
        VariableId::new(i)
    }
    fn v(i: u16) -> Value {
        Value::new(i)
    }

    #[test]
    fn canonical_order_and_equality() {
        let a = Nogood::of([(x(5), v(0)), (x(1), v(2))]);
        let b = Nogood::of([(x(1), v(2)), (x(5), v(0))]);
        assert_eq!(a, b);
        assert_eq!(a.elems()[0].var, x(1));
    }

    #[test]
    fn duplicate_identical_elements_merge() {
        let a = Nogood::of([(x(1), v(2)), (x(1), v(2))]);
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn conflicting_elements_rejected() {
        let err =
            Nogood::try_new([VarValue::new(x(1), v(0)), VarValue::new(x(1), v(1))]).unwrap_err();
        assert!(matches!(
            err,
            CoreError::ConflictingNogoodElements { var } if var == x(1)
        ));
    }

    #[test]
    #[should_panic(expected = "conflicting nogood elements")]
    fn new_panics_on_conflict() {
        let _ = Nogood::of([(x(1), v(0)), (x(1), v(1))]);
    }

    #[test]
    fn empty_nogood_is_always_violated() {
        let ng = Nogood::empty();
        assert!(ng.is_empty());
        assert!(ng.is_violated_by(|_| None));
    }

    #[test]
    fn violation_requires_all_elements_assigned() {
        let ng = Nogood::of([(x(0), v(1)), (x(1), v(0))]);
        // Fully matching assignment: violated.
        assert!(ng.is_violated_by(|var| match var.index() {
            0 => Some(v(1)),
            1 => Some(v(0)),
            _ => None,
        }));
        // One variable unassigned: not violated.
        assert!(!ng.is_violated_by(|var| match var.index() {
            0 => Some(v(1)),
            _ => None,
        }));
        // One variable with a different value: not violated.
        assert!(!ng.is_violated_by(|var| match var.index() {
            0 => Some(v(1)),
            1 => Some(v(1)),
            _ => None,
        }));
    }

    #[test]
    fn membership_and_lookup() {
        let ng = Nogood::of([(x(2), v(1)), (x(7), v(0))]);
        assert!(ng.contains_var(x(2)));
        assert!(!ng.contains_var(x(3)));
        assert_eq!(ng.value_of(x(7)), Some(v(0)));
        assert_eq!(ng.value_of(x(3)), None);
        assert_eq!(ng.vars().collect::<Vec<_>>(), vec![x(2), x(7)]);
    }

    #[test]
    fn without_var_strips_all_occurrences() {
        let ng = Nogood::of([(x(2), v(1)), (x(7), v(0))]);
        let stripped = ng.without_var(x(2));
        assert_eq!(stripped, Nogood::of([(x(7), v(0))]));
        // Removing an absent variable is a no-op copy.
        assert_eq!(ng.without_var(x(9)), ng);
    }

    #[test]
    fn subset_relation() {
        let small = Nogood::of([(x(1), v(0))]);
        let big = Nogood::of([(x(1), v(0)), (x(2), v(1))]);
        assert!(small.is_subset_of(&big));
        assert!(!big.is_subset_of(&small));
        assert!(Nogood::empty().is_subset_of(&small));
        // Same variable, different value: not a subset.
        let other = Nogood::of([(x(1), v(1))]);
        assert!(!other.is_subset_of(&big));
    }

    #[test]
    fn display_form() {
        let ng = Nogood::of([(x(5), v(0)), (x(1), v(2))]);
        assert_eq!(ng.to_string(), "¬((x1=2) (x5=0))");
        assert_eq!(Nogood::empty().to_string(), "¬()");
    }

    #[test]
    fn from_iterator_collects() {
        let ng: Nogood = [VarValue::new(x(3), v(1))].into_iter().collect();
        assert_eq!(ng.len(), 1);
    }
}
