//! Variable priorities and the paper's total rank order.
//!
//! In the AWC every variable carries a non-negative integer *priority*,
//! initially zero, raised when its agent breaks a deadend. All comparisons
//! between variables use the total order of [`Rank`]: higher priority wins,
//! and ties are broken "due to the alphabetical order of variables' ids"
//! (§2.2) — i.e. the variable with the *smaller* id outranks the other.

use std::cmp::Ordering;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::ids::VariableId;

/// A variable's priority value.
///
/// # Examples
///
/// ```
/// use discsp_core::Priority;
///
/// let p = Priority::ZERO;
/// assert_eq!(p.raise_to(Priority::new(4)).get(), 4);
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Priority(u64);

impl Priority {
    /// The initial priority of every variable.
    pub const ZERO: Priority = Priority(0);

    /// Creates a priority from a raw value.
    pub const fn new(value: u64) -> Self {
        Priority(value)
    }

    /// Returns the raw priority value.
    pub const fn get(self) -> u64 {
        self.0
    }

    /// Returns the priority one above this one.
    pub const fn next(self) -> Priority {
        Priority(self.0 + 1)
    }

    /// Returns the larger of `self` and `other`.
    pub fn raise_to(self, other: Priority) -> Priority {
        Priority(self.0.max(other.0))
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u64> for Priority {
    fn from(value: u64) -> Self {
        Priority(value)
    }
}

/// The total order on variables induced by (priority, id).
///
/// `Rank` pairs a variable with its current priority. A rank is *higher*
/// (it "outranks") when its priority is numerically greater, with priority
/// ties broken toward the smaller [`VariableId`]. `Ord` is implemented so
/// that `a > b` means "a outranks b", which lets ranks be compared with the
/// ordinary comparison operators and aggregated with `Iterator::max` /
/// `Iterator::min`.
///
/// # Examples
///
/// ```
/// use discsp_core::{Priority, Rank, VariableId};
///
/// let a = Rank::new(VariableId::new(1), Priority::new(2));
/// let b = Rank::new(VariableId::new(0), Priority::new(1));
/// assert!(a > b); // higher priority wins
///
/// let c = Rank::new(VariableId::new(0), Priority::new(2));
/// assert!(c > a); // equal priority: smaller id wins
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Rank {
    var: VariableId,
    priority: Priority,
}

impl Rank {
    /// Creates the rank of `var` at `priority`.
    pub const fn new(var: VariableId, priority: Priority) -> Self {
        Rank { var, priority }
    }

    /// The ranked variable.
    pub const fn var(self) -> VariableId {
        self.var
    }

    /// The variable's priority.
    pub const fn priority(self) -> Priority {
        self.priority
    }

    /// Whether `self` outranks `other` (strictly higher in the total order).
    pub fn outranks(self, other: Rank) -> bool {
        self > other
    }
}

impl Ord for Rank {
    fn cmp(&self, other: &Self) -> Ordering {
        self.priority
            .cmp(&other.priority)
            // Smaller id outranks: reverse the id comparison.
            .then_with(|| other.var.cmp(&self.var))
    }
}

impl PartialOrd for Rank {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for Rank {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}@{}", self.var, self.priority)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rank(var: u32, prio: u64) -> Rank {
        Rank::new(VariableId::new(var), Priority::new(prio))
    }

    #[test]
    fn priority_arithmetic() {
        assert_eq!(Priority::ZERO.next(), Priority::new(1));
        assert_eq!(
            Priority::new(3).raise_to(Priority::new(1)),
            Priority::new(3)
        );
        assert_eq!(
            Priority::new(1).raise_to(Priority::new(3)),
            Priority::new(3)
        );
        assert_eq!(Priority::from(5u64).get(), 5);
    }

    #[test]
    fn higher_priority_outranks() {
        assert!(rank(9, 2).outranks(rank(0, 1)));
        assert!(!rank(0, 1).outranks(rank(9, 2)));
    }

    #[test]
    fn ties_break_toward_smaller_id() {
        assert!(rank(0, 1).outranks(rank(1, 1)));
        assert!(!rank(1, 1).outranks(rank(0, 1)));
    }

    #[test]
    fn rank_is_a_total_order() {
        let mut ranks = vec![rank(2, 0), rank(0, 1), rank(1, 1), rank(3, 2)];
        ranks.sort();
        // Ascending order: lowest rank first.
        assert_eq!(ranks, vec![rank(2, 0), rank(1, 1), rank(0, 1), rank(3, 2)]);
    }

    #[test]
    fn equal_ranks_compare_equal() {
        assert_eq!(rank(1, 1), rank(1, 1));
        assert!(!rank(1, 1).outranks(rank(1, 1)));
    }

    #[test]
    fn min_by_rank_finds_lowest() {
        let ranks = [rank(0, 3), rank(5, 1), rank(2, 1)];
        let lowest = ranks.iter().copied().min().unwrap();
        // Priority 1 is lowest; id 5 loses the tie-break to id 2, so x5 is
        // the *lowest* ranked.
        assert_eq!(lowest, rank(5, 1));
    }

    #[test]
    fn display_forms() {
        assert_eq!(rank(3, 7).to_string(), "x3@7");
        assert_eq!(Priority::new(7).to_string(), "7");
    }
}
