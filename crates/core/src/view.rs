//! Agent views — an agent's local knowledge of other agents' variables.
//!
//! In the AWC an *agent_view* is "a list of 3-tuples (agent's id, variable's
//! id, variable's value)" (§1), extended here with each variable's last
//! known priority, which the AWC transmits inside `ok?` messages.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::ids::{AgentId, VariableId};
#[cfg(test)]
use crate::nogood::Nogood;
use crate::nogood::NogoodLits;
use crate::priority::{Priority, Rank};
use crate::value::Value;

/// One entry of an [`AgentView`]: what the agent last heard about a
/// variable owned elsewhere.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ViewEntry {
    /// The agent owning the variable.
    pub agent: AgentId,
    /// The variable's value as last announced.
    pub value: Value,
    /// The variable's priority as last announced.
    pub priority: Priority,
}

/// An agent's current knowledge of other variables' values and priorities.
///
/// The view is keyed by variable id (deterministic iteration order). The
/// owner's own variable is deliberately *not* stored here — algorithms keep
/// their own assignment separately and combine the two with
/// [`AgentView::lookup_with`].
///
/// The view carries a *generation counter* bumped on every observable
/// change ([`AgentView::update`] that alters an entry, or a successful
/// [`AgentView::remove`]). Incremental machinery such as
/// [`IncrementalEval`](crate::IncrementalEval) uses it to skip
/// re-synchronization when nothing changed. The counter is not part of
/// a view's identity: equality compares entries only.
///
/// # Examples
///
/// ```
/// use discsp_core::{AgentId, AgentView, Priority, Value, VariableId};
///
/// let mut view = AgentView::new();
/// view.update(VariableId::new(1), AgentId::new(1), Value::new(0), Priority::ZERO);
/// assert_eq!(view.value_of(VariableId::new(1)), Some(Value::new(0)));
/// assert_eq!(view.generation(), 1);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AgentView {
    entries: BTreeMap<VariableId, ViewEntry>,
    generation: u64,
}

impl PartialEq for AgentView {
    fn eq(&self, other: &Self) -> bool {
        self.entries == other.entries
    }
}

impl Eq for AgentView {}

impl AgentView {
    /// Creates an empty view.
    pub fn new() -> Self {
        AgentView::default()
    }

    /// Records (or refreshes) knowledge about `var`.
    ///
    /// Returns `true` when this changed the stored value or priority —
    /// i.e. when re-evaluation of nogoods may be warranted.
    pub fn update(
        &mut self,
        var: VariableId,
        agent: AgentId,
        value: Value,
        priority: Priority,
    ) -> bool {
        let entry = ViewEntry {
            agent,
            value,
            priority,
        };
        let changed = self.entries.insert(var, entry) != Some(entry);
        if changed {
            self.generation += 1;
        }
        changed
    }

    /// Forgets everything about `var`.
    pub fn remove(&mut self, var: VariableId) -> Option<ViewEntry> {
        let removed = self.entries.remove(&var);
        if removed.is_some() {
            self.generation += 1;
        }
        removed
    }

    /// Counter bumped on every observable change; equal generations on
    /// the same view guarantee identical contents (the converse need not
    /// hold).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// The full entry for `var`, if known.
    pub fn entry(&self, var: VariableId) -> Option<ViewEntry> {
        self.entries.get(&var).copied()
    }

    /// The last known value of `var`.
    pub fn value_of(&self, var: VariableId) -> Option<Value> {
        self.entries.get(&var).map(|e| e.value)
    }

    /// The last known priority of `var`; unknown variables default to
    /// [`Priority::ZERO`], matching the paper's initialization.
    pub fn priority_of(&self, var: VariableId) -> Priority {
        self.entries
            .get(&var)
            .map(|e| e.priority)
            .unwrap_or(Priority::ZERO)
    }

    /// The current [`Rank`] of `var` as seen from this view.
    pub fn rank_of(&self, var: VariableId) -> Rank {
        Rank::new(var, self.priority_of(var))
    }

    /// Whether `var` is known.
    pub fn knows(&self, var: VariableId) -> bool {
        self.entries.contains_key(&var)
    }

    /// Number of known variables.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the view is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(variable, entry)` pairs in variable-id order.
    pub fn iter(&self) -> impl Iterator<Item = (VariableId, ViewEntry)> + '_ {
        self.entries.iter().map(|(k, v)| (*k, *v))
    }

    /// A nogood-evaluation lookup over this view alone.
    pub fn lookup(&self) -> impl Fn(VariableId) -> Option<Value> + '_ {
        move |var| self.value_of(var)
    }

    /// A nogood-evaluation lookup over this view with the owner's variable
    /// hypothetically set to `own_value`.
    ///
    /// This is the combination used throughout the AWC: "violated under the
    /// current agent_view and `x_i = d`" (§3.1).
    pub fn lookup_with(
        &self,
        own_var: VariableId,
        own_value: Value,
    ) -> impl Fn(VariableId) -> Option<Value> + '_ {
        move |var| {
            if var == own_var {
                Some(own_value)
            } else {
                self.value_of(var)
            }
        }
    }

    /// The rank of a nogood relative to the owner's variable: the rank of
    /// the *lowest-ranked* variable among the nogood's elements excluding
    /// `own_var` (§2.2). Returns `None` for nogoods containing no foreign
    /// variable (their violation depends on the owner alone).
    pub fn nogood_rank<N: NogoodLits>(&self, nogood: N, own_var: VariableId) -> Option<Rank> {
        nogood
            .lits()
            .iter()
            .map(|e| e.var)
            .filter(|&v| v != own_var)
            .map(|v| self.rank_of(v))
            .min()
    }

    /// Whether `nogood` is a *higher* nogood for an owner whose variable
    /// currently holds `own_rank`: its [`AgentView::nogood_rank`] outranks
    /// the owner (§2.2). Nogoods mentioning only the owner's variable count
    /// as higher — they prohibit values unconditionally.
    pub fn is_higher_nogood<N: NogoodLits>(&self, nogood: N, own_rank: Rank) -> bool {
        match self.nogood_rank(nogood, own_rank.var()) {
            Some(rank) => rank.outranks(own_rank),
            None => true,
        }
    }
}

impl fmt::Display for AgentView {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "view{{")?;
        let mut first = true;
        for (var, e) in self.iter() {
            if !first {
                write!(f, " ")?;
            }
            first = false;
            write!(f, "{}:{}={}@{}", e.agent, var, e.value, e.priority)?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x(i: u32) -> VariableId {
        VariableId::new(i)
    }
    fn a(i: u32) -> AgentId {
        AgentId::new(i)
    }
    fn v(i: u16) -> Value {
        Value::new(i)
    }
    fn p(i: u64) -> Priority {
        Priority::new(i)
    }

    #[test]
    fn update_reports_changes() {
        let mut view = AgentView::new();
        assert!(view.update(x(1), a(1), v(0), p(0)));
        // Identical refresh: no change.
        assert!(!view.update(x(1), a(1), v(0), p(0)));
        // Value change.
        assert!(view.update(x(1), a(1), v(1), p(0)));
        // Priority change.
        assert!(view.update(x(1), a(1), v(1), p(2)));
        assert_eq!(view.len(), 1);
    }

    #[test]
    fn unknown_priority_defaults_to_zero() {
        let view = AgentView::new();
        assert_eq!(view.priority_of(x(9)), Priority::ZERO);
        assert_eq!(view.rank_of(x(9)), Rank::new(x(9), Priority::ZERO));
        assert!(!view.knows(x(9)));
    }

    #[test]
    fn lookup_with_overrides_own_variable() {
        let mut view = AgentView::new();
        view.update(x(1), a(1), v(0), p(0));
        let look = view.lookup_with(x(5), v(2));
        assert_eq!(look(x(5)), Some(v(2)));
        assert_eq!(look(x(1)), Some(v(0)));
        assert_eq!(look(x(3)), None);
    }

    #[test]
    fn nogood_rank_is_lowest_foreign_rank() {
        // Paper §2.2 example: nogood over x1 (prio 2), x2 (prio 1), x5 (prio
        // 0, the owner). The nogood's priority is 1 (from x2).
        let mut view = AgentView::new();
        view.update(x(1), a(1), v(0), p(2));
        view.update(x(2), a(2), v(1), p(1));
        let ng = Nogood::of([(x(1), v(0)), (x(2), v(1)), (x(5), v(2))]);
        let rank = view.nogood_rank(&ng, x(5)).unwrap();
        assert_eq!(rank, Rank::new(x(2), p(1)));
        // x5 has priority 0, so the nogood is higher.
        assert!(view.is_higher_nogood(&ng, Rank::new(x(5), p(0))));
        // Raise x5 above: no longer higher.
        assert!(!view.is_higher_nogood(&ng, Rank::new(x(5), p(3))));
    }

    #[test]
    fn own_only_nogood_counts_as_higher() {
        let view = AgentView::new();
        let ng = Nogood::of([(x(5), v(1))]);
        assert!(view.is_higher_nogood(&ng, Rank::new(x(5), p(10))));
        assert_eq!(view.nogood_rank(&ng, x(5)), None);
    }

    #[test]
    fn rank_tie_breaks_by_id_in_nogood_rank() {
        let mut view = AgentView::new();
        view.update(x(1), a(1), v(0), p(1));
        view.update(x(2), a(2), v(0), p(1));
        let ng = Nogood::of([(x(1), v(0)), (x(2), v(0)), (x(9), v(0))]);
        // Equal priorities: the larger id (x2) is the lower rank.
        assert_eq!(view.nogood_rank(&ng, x(9)).unwrap(), Rank::new(x(2), p(1)));
    }

    #[test]
    fn remove_forgets() {
        let mut view = AgentView::new();
        view.update(x(1), a(1), v(0), p(0));
        assert!(view.remove(x(1)).is_some());
        assert!(view.is_empty());
        assert!(view.remove(x(1)).is_none());
    }

    #[test]
    fn generation_tracks_observable_changes() {
        let mut view = AgentView::new();
        assert_eq!(view.generation(), 0);
        view.update(x(1), a(1), v(0), p(0));
        assert_eq!(view.generation(), 1);
        // No-op refresh: generation untouched.
        view.update(x(1), a(1), v(0), p(0));
        assert_eq!(view.generation(), 1);
        view.update(x(1), a(1), v(1), p(0));
        assert_eq!(view.generation(), 2);
        view.remove(x(1));
        assert_eq!(view.generation(), 3);
        // Removing an unknown variable is not a change.
        view.remove(x(1));
        assert_eq!(view.generation(), 3);
        // Generation is excluded from equality.
        assert_eq!(view, AgentView::new());
    }

    #[test]
    fn display_lists_entries() {
        let mut view = AgentView::new();
        view.update(x(2), a(2), v(1), p(3));
        assert_eq!(view.to_string(), "view{a2:x2=1@3}");
    }
}
