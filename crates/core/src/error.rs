//! Error types for the problem model.

use std::error::Error;
use std::fmt;

use crate::ids::{AgentId, VariableId};
use crate::value::Value;

/// Errors arising while building or validating problems and nogoods.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum CoreError {
    /// A nogood was constructed with the same variable bound to two
    /// different values.
    ConflictingNogoodElements {
        /// The variable that appeared twice.
        var: VariableId,
    },
    /// A nogood or query referenced a variable the problem does not define.
    UnknownVariable {
        /// The offending variable.
        var: VariableId,
    },
    /// An agent id outside the problem's agent set was referenced.
    UnknownAgent {
        /// The offending agent.
        agent: AgentId,
    },
    /// A nogood prohibits a value outside the variable's domain.
    ValueOutOfDomain {
        /// The variable whose domain was exceeded.
        var: VariableId,
        /// The out-of-range value.
        value: Value,
    },
    /// A problem was finalized with no variables.
    EmptyProblem,
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::ConflictingNogoodElements { var } => {
                write!(f, "nogood binds variable {var} to two different values")
            }
            CoreError::UnknownVariable { var } => {
                write!(f, "variable {var} is not defined by the problem")
            }
            CoreError::UnknownAgent { agent } => {
                write!(f, "agent {agent} is not part of the problem")
            }
            CoreError::ValueOutOfDomain { var, value } => {
                write!(f, "value {value} is outside the domain of {var}")
            }
            CoreError::EmptyProblem => write!(f, "problem defines no variables"),
        }
    }
}

impl Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_and_informative() {
        let errors: Vec<CoreError> = vec![
            CoreError::ConflictingNogoodElements {
                var: VariableId::new(1),
            },
            CoreError::UnknownVariable {
                var: VariableId::new(2),
            },
            CoreError::UnknownAgent {
                agent: AgentId::new(3),
            },
            CoreError::ValueOutOfDomain {
                var: VariableId::new(4),
                value: Value::new(9),
            },
            CoreError::EmptyProblem,
        ];
        for e in errors {
            let msg = e.to_string();
            assert!(!msg.is_empty());
            assert!(msg.chars().next().unwrap().is_lowercase());
            assert!(!msg.ends_with('.'));
        }
    }

    #[test]
    fn error_is_send_sync_static() {
        fn check<T: std::error::Error + Send + Sync + 'static>() {}
        check::<CoreError>();
    }
}
