//! Variable/value pairs and (partial) assignments.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::ids::VariableId;
use crate::value::Value;

/// A single variable/value pair — the element type of nogoods and the unit
/// of information carried by `ok?` messages.
///
/// # Examples
///
/// ```
/// use discsp_core::{Value, VarValue, VariableId};
///
/// let e = VarValue::new(VariableId::new(5), Value::new(1));
/// assert_eq!(e.to_string(), "(x5=1)");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VarValue {
    /// The variable.
    pub var: VariableId,
    /// The value assigned to (or prohibited for) the variable.
    pub value: Value,
}

impl VarValue {
    /// Creates a variable/value pair.
    pub const fn new(var: VariableId, value: Value) -> Self {
        VarValue { var, value }
    }
}

impl fmt::Display for VarValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}={})", self.var, self.value)
    }
}

impl From<(VariableId, Value)> for VarValue {
    fn from((var, value): (VariableId, Value)) -> Self {
        VarValue::new(var, value)
    }
}

/// A partial assignment of values to a dense set of variables.
///
/// Used by the simulator's omniscient observer (to detect solutions), by the
/// centralized solver substrate, and as the representation of returned
/// solutions.
///
/// # Examples
///
/// ```
/// use discsp_core::{Assignment, Value, VariableId};
///
/// let mut a = Assignment::empty(3);
/// a.set(VariableId::new(0), Value::new(2));
/// assert_eq!(a.get(VariableId::new(0)), Some(Value::new(2)));
/// assert!(!a.is_total());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Assignment {
    values: Vec<Option<Value>>,
}

impl Assignment {
    /// Creates an empty assignment over `num_vars` variables.
    pub fn empty(num_vars: usize) -> Self {
        Assignment {
            values: vec![None; num_vars],
        }
    }

    /// Creates a total assignment from one value per variable, in id order.
    pub fn total<I>(values: I) -> Self
    where
        I: IntoIterator<Item = Value>,
    {
        Assignment {
            values: values.into_iter().map(Some).collect(),
        }
    }

    /// Number of variables this assignment ranges over.
    pub fn num_vars(&self) -> usize {
        self.values.len()
    }

    /// The value assigned to `var`, if any.
    ///
    /// Variables outside the assignment's range are unassigned.
    pub fn get(&self, var: VariableId) -> Option<Value> {
        self.values.get(var.index()).copied().flatten()
    }

    /// Assigns `value` to `var`, returning the previous value.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn set(&mut self, var: VariableId, value: Value) -> Option<Value> {
        self.values[var.index()].replace(value)
    }

    /// Removes the assignment of `var`, returning the previous value.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn unset(&mut self, var: VariableId) -> Option<Value> {
        self.values[var.index()].take()
    }

    /// Whether every variable is assigned.
    pub fn is_total(&self) -> bool {
        self.values.iter().all(Option::is_some)
    }

    /// Number of assigned variables.
    pub fn assigned_count(&self) -> usize {
        self.values.iter().filter(|v| v.is_some()).count()
    }

    /// Iterates over the assigned `(variable, value)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = VarValue> + '_ {
        self.values
            .iter()
            .enumerate()
            .filter_map(|(i, v)| v.map(|value| VarValue::new(VariableId::new(i as u32), value)))
    }

    /// A lookup closure suitable for nogood evaluation.
    pub fn lookup(&self) -> impl Fn(VariableId) -> Option<Value> + '_ {
        move |var| self.get(var)
    }
}

impl fmt::Display for Assignment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        let mut first = true;
        for vv in self.iter() {
            if !first {
                write!(f, " ")?;
            }
            first = false;
            write!(f, "{vv}")?;
        }
        write!(f, "}}")
    }
}

impl FromIterator<VarValue> for Assignment {
    /// Builds an assignment sized to the largest mentioned variable.
    fn from_iter<I: IntoIterator<Item = VarValue>>(iter: I) -> Self {
        let pairs: Vec<VarValue> = iter.into_iter().collect();
        let n = pairs.iter().map(|vv| vv.var.index() + 1).max().unwrap_or(0);
        let mut a = Assignment::empty(n);
        for vv in pairs {
            a.set(vv.var, vv.value);
        }
        a
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x(i: u32) -> VariableId {
        VariableId::new(i)
    }
    fn v(i: u16) -> Value {
        Value::new(i)
    }

    #[test]
    fn set_get_unset() {
        let mut a = Assignment::empty(2);
        assert_eq!(a.get(x(0)), None);
        assert_eq!(a.set(x(0), v(1)), None);
        assert_eq!(a.set(x(0), v(2)), Some(v(1)));
        assert_eq!(a.get(x(0)), Some(v(2)));
        assert_eq!(a.unset(x(0)), Some(v(2)));
        assert_eq!(a.get(x(0)), None);
    }

    #[test]
    fn out_of_range_get_is_none() {
        let a = Assignment::empty(1);
        assert_eq!(a.get(x(10)), None);
    }

    #[test]
    fn totality() {
        let mut a = Assignment::empty(2);
        assert!(!a.is_total());
        a.set(x(0), v(0));
        assert_eq!(a.assigned_count(), 1);
        a.set(x(1), v(1));
        assert!(a.is_total());
        assert_eq!(a.assigned_count(), 2);
    }

    #[test]
    fn total_constructor() {
        let a = Assignment::total([v(0), v(1), v(2)]);
        assert!(a.is_total());
        assert_eq!(a.num_vars(), 3);
        assert_eq!(a.get(x(2)), Some(v(2)));
    }

    #[test]
    fn iteration_in_id_order() {
        let mut a = Assignment::empty(3);
        a.set(x(2), v(0));
        a.set(x(0), v(1));
        let pairs: Vec<_> = a.iter().collect();
        assert_eq!(
            pairs,
            vec![VarValue::new(x(0), v(1)), VarValue::new(x(2), v(0))]
        );
    }

    #[test]
    fn from_iterator_sizes_to_max_var() {
        let a: Assignment = [VarValue::new(x(4), v(1))].into_iter().collect();
        assert_eq!(a.num_vars(), 5);
        assert_eq!(a.get(x(4)), Some(v(1)));
    }

    #[test]
    fn display_forms() {
        let mut a = Assignment::empty(2);
        a.set(x(0), v(1));
        a.set(x(1), v(0));
        assert_eq!(a.to_string(), "{(x0=1) (x1=0)}");
        assert_eq!(Assignment::empty(0).to_string(), "{}");
    }

    #[test]
    fn lookup_closure_matches_get() {
        let mut a = Assignment::empty(2);
        a.set(x(1), v(1));
        let look = a.lookup();
        assert_eq!(look(x(1)), Some(v(1)));
        assert_eq!(look(x(0)), None);
    }
}
