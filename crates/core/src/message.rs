//! Message classification shared by every runtime and the trace layer.
//!
//! Lives in `discsp-core` (rather than `discsp-runtime`, where the
//! envelopes are) because trace events carry a [`MessageClass`] and the
//! trace crate must not depend on any particular runtime.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Broad message classes, used by the runtimes to attribute message counts
/// to the paper's categories (`ok?`, `nogood`, everything else).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MessageClass {
    /// An `ok?` message announcing a value (and priority).
    Ok,
    /// A `nogood` message carrying a learned nogood.
    Nogood,
    /// Any other algorithm message (`improve`, add-link requests, …).
    Other,
}

impl fmt::Display for MessageClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MessageClass::Ok => "ok?",
            MessageClass::Nogood => "nogood",
            MessageClass::Other => "other",
        };
        f.write_str(s)
    }
}

/// Implemented by algorithm message types so runtimes can meter traffic
/// without knowing the concrete protocol.
pub trait Classify {
    /// The broad class of this message.
    fn class(&self) -> MessageClass;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_display() {
        assert_eq!(MessageClass::Ok.to_string(), "ok?");
        assert_eq!(MessageClass::Nogood.to_string(), "nogood");
        assert_eq!(MessageClass::Other.to_string(), "other");
    }
}
