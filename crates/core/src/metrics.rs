//! Run metrics: the paper's `cycle` and `maxcck` measures plus supporting
//! counters, and their aggregation over trials.
//!
//! §4 of the paper: "For each trial, we measure *cycle* (cycles consumed
//! until a solution is found) and *maxcck* (sum of the maximal number of
//! nogood checks performed by agents at each cycle)." Trials are cut off at
//! 10 000 cycles and cut-off trials contribute their at-cutoff data.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::assignment::Assignment;

/// The paper's cycle cutoff: trials beyond this many cycles are abandoned
/// and measured as-is.
pub const PAPER_CYCLE_LIMIT: u64 = 10_000;

/// How a trial ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Termination {
    /// A solution was reached.
    Solved,
    /// The cycle limit was hit first.
    CutOff,
    /// The empty nogood was derived: the instance is insoluble.
    Insoluble,
}

impl Termination {
    /// Whether the trial found a solution.
    pub fn is_solved(self) -> bool {
        matches!(self, Termination::Solved)
    }
}

impl fmt::Display for Termination {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Termination::Solved => "solved",
            Termination::CutOff => "cut off",
            Termination::Insoluble => "insoluble",
        };
        f.write_str(s)
    }
}

/// Measurements collected over one run of a distributed algorithm.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunMetrics {
    /// How the run ended.
    pub termination: Termination,
    /// Cycles consumed (synchronous simulator steps).
    pub cycles: u64,
    /// Σ over cycles of the per-cycle maximum nogood checks by any agent.
    pub maxcck: u64,
    /// Total nogood checks summed over all agents and cycles.
    pub total_checks: u64,
    /// `ok?` messages sent.
    pub ok_messages: u64,
    /// `nogood` messages sent.
    pub nogood_messages: u64,
    /// Other messages sent (`improve`, add-link requests, …).
    pub other_messages: u64,
    /// Nogoods generated at deadends (before deduplication).
    pub nogoods_generated: u64,
    /// Generated nogoods identical to one the same agent generated before
    /// (the Table 4 redundancy measure).
    pub redundant_nogoods: u64,
    /// The largest nogood generated during the run (0 when none).
    pub largest_nogood: u64,
    /// Messages handed to the link layer by agents (before any injected
    /// fault). With perfect links this equals
    /// [`RunMetrics::total_messages`].
    pub messages_sent: u64,
    /// Messages dropped by an injected link fault (later retransmitted by
    /// the link layer's recovery pass, so protocols keep their
    /// eventual-delivery guarantee).
    pub messages_dropped: u64,
    /// Extra copies created by an injected duplication fault.
    pub messages_duplicated: u64,
    /// Messages whose assigned delivery tick overtakes an earlier message
    /// on the same link (injected reordering).
    pub messages_reordered: u64,
    /// Dropped messages re-enqueued by the link layer's stall-triggered
    /// recovery pass.
    pub messages_retransmitted: u64,
    /// Largest delivery delay assigned to any single message, in virtual
    /// ticks (0 with perfect links).
    pub max_delivery_delay: u64,
}

impl RunMetrics {
    /// A zeroed metrics record with the given termination.
    pub fn new(termination: Termination) -> Self {
        RunMetrics {
            termination,
            cycles: 0,
            maxcck: 0,
            total_checks: 0,
            ok_messages: 0,
            nogood_messages: 0,
            other_messages: 0,
            nogoods_generated: 0,
            redundant_nogoods: 0,
            largest_nogood: 0,
            messages_sent: 0,
            messages_dropped: 0,
            messages_duplicated: 0,
            messages_reordered: 0,
            messages_retransmitted: 0,
            max_delivery_delay: 0,
        }
    }

    /// Total messages of all kinds. Classes are counted per enqueued
    /// copy, so this equals
    /// `messages_sent - messages_dropped + messages_duplicated +
    /// messages_retransmitted` exactly on every runtime: the threaded
    /// runtime holds each worker's receiver open until all workers stop
    /// dispatching, so no counted send is ever discarded at shutdown.
    pub fn total_messages(&self) -> u64 {
        self.ok_messages + self.nogood_messages + self.other_messages
    }
}

/// The result of one trial: metrics plus the solution when one was found.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrialOutcome {
    /// The measurements.
    pub metrics: RunMetrics,
    /// The solution assignment, present iff `metrics.termination` is
    /// [`Termination::Solved`].
    pub solution: Option<Assignment>,
}

/// Aggregated measurements over a batch of trials — one row of the paper's
/// tables.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Aggregate {
    /// Number of trials aggregated.
    pub trials: usize,
    /// Mean cycles (cut-off trials contribute the cutoff value, as in §4).
    pub mean_cycles: f64,
    /// Mean maxcck.
    pub mean_maxcck: f64,
    /// Percentage of trials solved within the cycle limit (the tables' `%`).
    pub percent_solved: f64,
    /// Mean redundant nogood generations (Table 4's measure).
    pub mean_redundant: f64,
    /// Mean total messages.
    pub mean_messages: f64,
}

impl Aggregate {
    /// Aggregates a batch of per-trial metrics.
    ///
    /// Returns a zeroed aggregate when `metrics` is empty (mirrors the
    /// paper's "-" entries for 0 %-solved rows, which still averaged over
    /// zero solved trials).
    pub fn from_metrics<'a, I>(metrics: I) -> Self
    where
        I: IntoIterator<Item = &'a RunMetrics>,
    {
        let mut trials = 0usize;
        let mut cycles = 0u64;
        let mut maxcck = 0u64;
        let mut solved = 0usize;
        let mut redundant = 0u64;
        let mut messages = 0u64;
        for m in metrics {
            trials += 1;
            cycles += m.cycles;
            maxcck += m.maxcck;
            redundant += m.redundant_nogoods;
            messages += m.total_messages();
            if m.termination.is_solved() {
                solved += 1;
            }
        }
        if trials == 0 {
            return Aggregate {
                trials: 0,
                mean_cycles: 0.0,
                mean_maxcck: 0.0,
                percent_solved: 0.0,
                mean_redundant: 0.0,
                mean_messages: 0.0,
            };
        }
        let n = trials as f64;
        Aggregate {
            trials,
            mean_cycles: cycles as f64 / n,
            mean_maxcck: maxcck as f64 / n,
            percent_solved: 100.0 * solved as f64 / n,
            mean_redundant: redundant as f64 / n,
            mean_messages: messages as f64 / n,
        }
    }
}

impl fmt::Display for Aggregate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cycle {:.1}  maxcck {:.1}  {:.0}% ({} trials)",
            self.mean_cycles, self.mean_maxcck, self.percent_solved, self.trials
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solved(cycles: u64, maxcck: u64) -> RunMetrics {
        RunMetrics {
            cycles,
            maxcck,
            ..RunMetrics::new(Termination::Solved)
        }
    }

    #[test]
    fn termination_predicates() {
        assert!(Termination::Solved.is_solved());
        assert!(!Termination::CutOff.is_solved());
        assert!(!Termination::Insoluble.is_solved());
        assert_eq!(Termination::CutOff.to_string(), "cut off");
    }

    #[test]
    fn total_messages_sums_kinds() {
        let mut m = RunMetrics::new(Termination::Solved);
        m.ok_messages = 3;
        m.nogood_messages = 2;
        m.other_messages = 1;
        assert_eq!(m.total_messages(), 6);
    }

    #[test]
    fn aggregate_means_and_percent() {
        let mut cut = RunMetrics::new(Termination::CutOff);
        cut.cycles = PAPER_CYCLE_LIMIT;
        cut.maxcck = 100;
        let batch = [solved(100, 50), solved(200, 150), cut];
        let agg = Aggregate::from_metrics(batch.iter());
        assert_eq!(agg.trials, 3);
        assert!((agg.mean_cycles - (100.0 + 200.0 + 10_000.0) / 3.0).abs() < 1e-9);
        assert!((agg.mean_maxcck - 100.0).abs() < 1e-9);
        assert!((agg.percent_solved - 200.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn aggregate_of_empty_batch_is_zero() {
        let agg = Aggregate::from_metrics(std::iter::empty());
        assert_eq!(agg.trials, 0);
        assert_eq!(agg.mean_cycles, 0.0);
        assert_eq!(agg.percent_solved, 0.0);
    }

    #[test]
    fn aggregate_display_is_readable() {
        let agg = Aggregate::from_metrics([solved(10, 20)].iter());
        let text = agg.to_string();
        assert!(text.contains("cycle 10.0"));
        assert!(text.contains("100%"));
    }

    #[test]
    fn paper_cycle_limit_constant() {
        assert_eq!(PAPER_CYCLE_LIMIT, 10_000);
    }
}
