//! Problem model for distributed constraint satisfaction.
//!
//! This crate provides the vocabulary shared by every other crate in the
//! workspace: identifiers, values, domains, **nogoods** (the paper's
//! constraint representation), agent views with the AWC priority order,
//! instrumented nogood stores, the [`DistributedCsp`] problem type, and
//! run metrics (`cycle`, `maxcck`).
//!
//! It contains no algorithms and no runtime — see `discsp-awc`,
//! `discsp-dba`, and `discsp-runtime` for those.
//!
//! # Examples
//!
//! Build the paper's Figure 1 neighborhood and check a nogood:
//!
//! ```
//! use discsp_core::{DistributedCsp, Domain, Nogood, Value, VariableId};
//!
//! # fn main() -> Result<(), discsp_core::CoreError> {
//! let mut b = DistributedCsp::builder();
//! let vars: Vec<_> = (0..5).map(|_| b.variable(Domain::new(3))).collect();
//! for &v in &vars[..4] {
//!     b.not_equal(v, vars[4])?; // x5's four neighbors
//! }
//! let problem = b.build()?;
//! assert_eq!(problem.nogoods_of(vars[4]).count(), 12);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod assignment;
mod domain;
mod error;
mod ids;
mod message;
mod metrics;
mod nogood;
mod priority;
mod problem;
mod store;
mod value;
mod view;
mod wire;

pub use assignment::{Assignment, VarValue};
pub use domain::{Domain, DomainIter};
pub use error::CoreError;
pub use ids::{AgentId, VariableId};
pub use message::{Classify, MessageClass};
pub use metrics::{Aggregate, RunMetrics, Termination, TrialOutcome, PAPER_CYCLE_LIMIT};
pub use nogood::{Nogood, NogoodLits, NogoodRef};
pub use priority::{Priority, Rank};
pub use problem::{DistributedCsp, DistributedCspBuilder};
pub use store::{IncrementalEval, NogoodIdx, NogoodStore};
pub use value::{Value, ValueLabels};
pub use view::{AgentView, ViewEntry};
pub use wire::{Wire, WireError, WireReader};
