//! Distributed constraint satisfaction problems.
//!
//! A distributed CSP (§2.1) distributes variables and nogoods among agents;
//! each agent's local CSP contains its variables and *all* nogoods relevant
//! to them (including inter-agent nogoods). The paper's benchmarks assign
//! exactly one variable per agent; the model supports any assignment.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::assignment::Assignment;
use crate::domain::Domain;
use crate::error::CoreError;
use crate::ids::{AgentId, VariableId};
use crate::nogood::Nogood;
use crate::value::Value;

/// An immutable distributed CSP: variables with domains and owners, plus
/// the original constraint nogoods.
///
/// Construct with [`DistributedCsp::builder`]. The structure is validated
/// once at build time; accessors never fail afterwards.
///
/// # Examples
///
/// A two-node, two-color "not equal" problem:
///
/// ```
/// use discsp_core::{Assignment, DistributedCsp, Domain, Value};
///
/// # fn main() -> Result<(), discsp_core::CoreError> {
/// let mut b = DistributedCsp::builder();
/// let x = b.variable(Domain::new(2));
/// let y = b.variable(Domain::new(2));
/// b.not_equal(x, y)?;
/// let problem = b.build()?;
///
/// let good = Assignment::total([Value::new(0), Value::new(1)]);
/// assert!(problem.is_solution(&good));
/// let bad = Assignment::total([Value::new(1), Value::new(1)]);
/// assert!(!problem.is_solution(&bad));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DistributedCsp {
    domains: Vec<Domain>,
    owners: Vec<AgentId>,
    num_agents: usize,
    nogoods: Vec<Nogood>,
    /// Per-variable indices into `nogoods` (the variable's *relevant*
    /// nogoods).
    relevant: Vec<Vec<usize>>,
    /// Per-variable sorted list of variables sharing at least one nogood.
    neighbors: Vec<Vec<VariableId>>,
    /// Per-agent list of owned variables, in id order. Precomputed at
    /// build time so `vars_of_agent` is O(own variables) — scanning all
    /// variables per call made building n agents O(n²).
    vars_of: Vec<Vec<VariableId>>,
}

impl DistributedCsp {
    /// Starts building a problem.
    pub fn builder() -> DistributedCspBuilder {
        DistributedCspBuilder::new()
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.domains.len()
    }

    /// Number of agents (the densely numbered agent set `0..num_agents`).
    pub fn num_agents(&self) -> usize {
        self.num_agents
    }

    /// Iterates over all variable ids.
    pub fn vars(&self) -> impl Iterator<Item = VariableId> {
        (0..self.domains.len() as u32).map(VariableId::new)
    }

    /// The domain of `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn domain(&self, var: VariableId) -> Domain {
        self.domains[var.index()]
    }

    /// The agent owning `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn owner(&self, var: VariableId) -> AgentId {
        self.owners[var.index()]
    }

    /// The variables owned by `agent`, in id order. Unknown agents own
    /// nothing.
    pub fn vars_of_agent(&self, agent: AgentId) -> Vec<VariableId> {
        self.vars_of.get(agent.index()).cloned().unwrap_or_default()
    }

    /// All original constraint nogoods.
    pub fn nogoods(&self) -> &[Nogood] {
        &self.nogoods
    }

    /// The nogoods relevant to `var` (those mentioning it) — the contents
    /// of the owning agent's initial nogood set.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn nogoods_of(&self, var: VariableId) -> impl Iterator<Item = &Nogood> {
        self.relevant[var.index()].iter().map(|&i| &self.nogoods[i])
    }

    /// Variables sharing at least one nogood with `var`, sorted by id.
    ///
    /// # Panics
    ///
    /// Panics if `var` is out of range.
    pub fn neighbors(&self, var: VariableId) -> &[VariableId] {
        &self.neighbors[var.index()]
    }

    /// Whether the total assignment `assignment` violates no nogood.
    ///
    /// Returns `false` for partial assignments (every variable must be
    /// assigned).
    pub fn is_solution(&self, assignment: &Assignment) -> bool {
        if assignment.num_vars() < self.num_vars() || !assignment.is_total() {
            return false;
        }
        self.nogoods
            .iter()
            .all(|ng| !ng.is_violated_by(assignment.lookup()))
    }

    /// Counts the nogoods violated under a (possibly partial) lookup.
    pub fn violation_count<F>(&self, lookup: F) -> usize
    where
        F: Fn(VariableId) -> Option<Value>,
    {
        self.nogoods
            .iter()
            .filter(|ng| ng.is_violated_by(&lookup))
            .count()
    }

    /// Mean number of nogoods per variable — a density measure used by
    /// reports.
    pub fn mean_relevant_nogoods(&self) -> f64 {
        if self.relevant.is_empty() {
            return 0.0;
        }
        let total: usize = self.relevant.iter().map(Vec::len).sum();
        total as f64 / self.relevant.len() as f64
    }
}

impl fmt::Display for DistributedCsp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "discsp[{} vars, {} agents, {} nogoods]",
            self.num_vars(),
            self.num_agents(),
            self.nogoods.len()
        )
    }
}

/// Incremental builder for [`DistributedCsp`], returned by
/// [`DistributedCsp::builder`].
#[derive(Debug, Default)]
pub struct DistributedCspBuilder {
    domains: Vec<Domain>,
    owners: Vec<AgentId>,
    explicit_agents: Option<u32>,
    nogoods: Vec<Nogood>,
}

impl DistributedCspBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        DistributedCspBuilder::default()
    }

    /// Adds a variable owned by a fresh agent (the paper's one-variable-
    /// per-agent arrangement). Returns the new variable's id.
    pub fn variable(&mut self, domain: Domain) -> VariableId {
        let var = VariableId::new(self.domains.len() as u32);
        let agent = AgentId::new(self.owners.len() as u32);
        self.domains.push(domain);
        self.owners.push(agent);
        var
    }

    /// Adds a variable owned by a specific agent (multi-variable-per-agent
    /// problems). Returns the new variable's id.
    pub fn variable_owned_by(&mut self, domain: Domain, agent: AgentId) -> VariableId {
        let var = VariableId::new(self.domains.len() as u32);
        self.domains.push(domain);
        self.owners.push(agent);
        let max = self.explicit_agents.unwrap_or(0).max(agent.raw() + 1);
        self.explicit_agents = Some(max);
        var
    }

    /// Adds a constraint nogood.
    ///
    /// # Errors
    ///
    /// Returns an error if the nogood mentions an unknown variable or a
    /// value outside that variable's domain.
    pub fn nogood(&mut self, nogood: Nogood) -> Result<&mut Self, CoreError> {
        for e in nogood.elems() {
            let Some(domain) = self.domains.get(e.var.index()) else {
                return Err(CoreError::UnknownVariable { var: e.var });
            };
            if !domain.contains(e.value) {
                return Err(CoreError::ValueOutOfDomain {
                    var: e.var,
                    value: e.value,
                });
            }
        }
        self.nogoods.push(nogood);
        Ok(self)
    }

    /// Adds the pairwise nogoods of a graph-coloring arc: for every common
    /// value `v`, prohibits `x = v ∧ y = v`.
    ///
    /// # Errors
    ///
    /// Returns an error if either variable is unknown.
    pub fn not_equal(&mut self, x: VariableId, y: VariableId) -> Result<&mut Self, CoreError> {
        let dx = *self
            .domains
            .get(x.index())
            .ok_or(CoreError::UnknownVariable { var: x })?;
        let dy = *self
            .domains
            .get(y.index())
            .ok_or(CoreError::UnknownVariable { var: y })?;
        let shared = dx.size().min(dy.size()) as u16;
        for v in 0..shared {
            let value = Value::new(v);
            self.nogood(Nogood::of([(x, value), (y, value)]))?;
        }
        Ok(self)
    }

    /// Adds a SAT clause over Boolean variables: the clause
    /// `l₁ ∨ l₂ ∨ …` (each literal a `(variable, polarity)` pair) becomes
    /// the nogood prohibiting *every literal false simultaneously*.
    ///
    /// # Errors
    ///
    /// Returns an error if a variable is unknown or non-Boolean, or if the
    /// clause contains complementary literals on the same variable (such a
    /// clause is a tautology and cannot be represented as a nogood).
    pub fn clause(&mut self, literals: &[(VariableId, bool)]) -> Result<&mut Self, CoreError> {
        let elems = literals
            .iter()
            .map(|&(var, polarity)| (var, Value::from_bool(!polarity)));
        let nogood = Nogood::try_new(elems.map(Into::into))?;
        self.nogood(nogood)
    }

    /// Finalizes the problem.
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::EmptyProblem`] if no variable was added.
    pub fn build(&mut self) -> Result<DistributedCsp, CoreError> {
        if self.domains.is_empty() {
            return Err(CoreError::EmptyProblem);
        }
        let num_vars = self.domains.len();
        let num_agents = self
            .explicit_agents
            .map(|n| n as usize)
            .unwrap_or(0)
            .max(self.owners.iter().map(|a| a.index() + 1).max().unwrap_or(0));

        let mut relevant = vec![Vec::new(); num_vars];
        let mut neighbors: Vec<Vec<VariableId>> = vec![Vec::new(); num_vars];
        for (i, ng) in self.nogoods.iter().enumerate() {
            for e in ng.elems() {
                relevant[e.var.index()].push(i);
                for other in ng.elems() {
                    if other.var != e.var {
                        neighbors[e.var.index()].push(other.var);
                    }
                }
            }
        }
        for list in &mut neighbors {
            list.sort();
            list.dedup();
        }
        // Owners iterate in variable-id order, so each list comes out
        // already sorted.
        let mut vars_of: Vec<Vec<VariableId>> = vec![Vec::new(); num_agents];
        for (i, agent) in self.owners.iter().enumerate() {
            vars_of[agent.index()].push(VariableId::new(i as u32));
        }

        Ok(DistributedCsp {
            domains: std::mem::take(&mut self.domains),
            owners: std::mem::take(&mut self.owners),
            num_agents,
            nogoods: std::mem::take(&mut self.nogoods),
            relevant,
            neighbors,
            vars_of,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn v(i: u16) -> Value {
        Value::new(i)
    }

    fn triangle() -> DistributedCsp {
        let mut b = DistributedCsp::builder();
        let x = b.variable(Domain::new(3));
        let y = b.variable(Domain::new(3));
        let z = b.variable(Domain::new(3));
        b.not_equal(x, y).unwrap();
        b.not_equal(y, z).unwrap();
        b.not_equal(x, z).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn builder_assigns_one_agent_per_variable() {
        let p = triangle();
        assert_eq!(p.num_vars(), 3);
        assert_eq!(p.num_agents(), 3);
        assert_eq!(p.owner(VariableId::new(2)), AgentId::new(2));
        assert_eq!(p.vars_of_agent(AgentId::new(1)), vec![VariableId::new(1)]);
    }

    #[test]
    fn not_equal_expands_to_pairwise_nogoods() {
        let p = triangle();
        // 3 arcs × 3 colors.
        assert_eq!(p.nogoods().len(), 9);
        assert_eq!(p.nogoods_of(VariableId::new(0)).count(), 6);
        assert_eq!(
            p.neighbors(VariableId::new(0)),
            &[VariableId::new(1), VariableId::new(2)]
        );
    }

    #[test]
    fn solution_detection() {
        let p = triangle();
        assert!(p.is_solution(&Assignment::total([v(0), v(1), v(2)])));
        assert!(!p.is_solution(&Assignment::total([v(0), v(0), v(2)])));
        // Partial assignments are never solutions.
        let mut partial = Assignment::empty(3);
        partial.set(VariableId::new(0), v(0));
        assert!(!p.is_solution(&partial));
        // Too-small assignments are never solutions.
        assert!(!p.is_solution(&Assignment::total([v(0), v(1)])));
    }

    #[test]
    fn violation_count_over_partial_lookup() {
        let p = triangle();
        // x0 = x1 = 0 violates exactly one nogood; x2 unassigned.
        let count = p.violation_count(|var| if var.index() < 2 { Some(v(0)) } else { None });
        assert_eq!(count, 1);
    }

    #[test]
    fn clause_encoding_negates_literals() {
        let mut b = DistributedCsp::builder();
        let p = b.variable(Domain::BOOL);
        let q = b.variable(Domain::BOOL);
        // p ∨ ¬q  ⇒  prohibit p=false ∧ q=true.
        b.clause(&[(p, true), (q, false)]).unwrap();
        let problem = b.build().unwrap();
        assert_eq!(
            problem.nogoods()[0],
            Nogood::of([(p, Value::FALSE), (q, Value::TRUE)])
        );
    }

    #[test]
    fn tautological_clause_rejected() {
        let mut b = DistributedCsp::builder();
        let p = b.variable(Domain::BOOL);
        let err = b.clause(&[(p, true), (p, false)]).unwrap_err();
        assert!(matches!(err, CoreError::ConflictingNogoodElements { .. }));
    }

    #[test]
    fn unknown_variable_rejected() {
        let mut b = DistributedCsp::builder();
        let _ = b.variable(Domain::new(3));
        let err = b
            .nogood(Nogood::of([(VariableId::new(9), v(0))]))
            .unwrap_err();
        assert!(matches!(err, CoreError::UnknownVariable { .. }));
    }

    #[test]
    fn out_of_domain_value_rejected() {
        let mut b = DistributedCsp::builder();
        let x = b.variable(Domain::new(2));
        let err = b.nogood(Nogood::of([(x, v(5))])).unwrap_err();
        assert!(matches!(err, CoreError::ValueOutOfDomain { .. }));
    }

    #[test]
    fn empty_problem_rejected() {
        let err = DistributedCsp::builder().build().unwrap_err();
        assert_eq!(err, CoreError::EmptyProblem);
    }

    #[test]
    fn explicit_ownership_and_agent_count() {
        let mut b = DistributedCsp::builder();
        let agent = AgentId::new(0);
        let x = b.variable_owned_by(Domain::new(2), agent);
        let y = b.variable_owned_by(Domain::new(2), agent);
        b.not_equal(x, y).unwrap();
        let p = b.build().unwrap();
        assert_eq!(p.num_agents(), 1);
        assert_eq!(p.vars_of_agent(agent).len(), 2);
    }

    #[test]
    fn density_measure() {
        let p = triangle();
        // Each variable is relevant to 6 of the 9 nogoods.
        assert!((p.mean_relevant_nogoods() - 6.0).abs() < 1e-9);
    }

    #[test]
    fn display_summarizes() {
        assert_eq!(
            triangle().to_string(),
            "discsp[3 vars, 3 agents, 9 nogoods]"
        );
    }
}
