//! Hand-rolled binary wire codec for the core vocabulary.
//!
//! `discsp-net` runs solve sessions across OS processes, so every type
//! that crosses a socket needs a stable byte representation. This module
//! defines the [`Wire`] trait (little-endian, length-prefixed
//! collections, no serde) plus implementations for the core types that
//! appear in protocol frames: ids, values, priorities, nogoods,
//! assignments, domains, and run metrics.
//!
//! Decoding is total: malformed input yields a typed [`WireError`], never
//! a panic, so a corrupted or truncated frame cannot take down a
//! coordinator or agent process. Collection length prefixes are checked
//! against the bytes actually remaining before any allocation, so a
//! corrupt length cannot trigger an oversized allocation either.

use std::fmt;

use crate::assignment::{Assignment, VarValue};
use crate::domain::Domain;
use crate::ids::{AgentId, VariableId};
use crate::message::MessageClass;
use crate::metrics::{RunMetrics, Termination};
use crate::nogood::Nogood;
use crate::priority::Priority;
use crate::value::Value;

/// Ways a byte buffer can fail to decode.
///
/// Every variant carries a static `context` naming the type or field
/// being decoded when the failure was detected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireError {
    /// The buffer ended before the value was complete.
    Truncated {
        /// Type or field being decoded.
        context: &'static str,
        /// Bytes the decoder needed.
        needed: usize,
        /// Bytes that were left.
        have: usize,
    },
    /// An enum discriminant byte had no corresponding variant.
    BadTag {
        /// Type being decoded.
        context: &'static str,
        /// The offending discriminant.
        tag: u8,
    },
    /// The bytes decoded structurally but violate a domain invariant
    /// (empty domain, conflicting nogood elements, …).
    Invalid {
        /// Type or invariant that was violated.
        context: &'static str,
    },
    /// A complete value was decoded but bytes were left over.
    Trailing {
        /// Leftover byte count.
        remaining: usize,
    },
    /// A frame announced a protocol version this build does not speak.
    BadVersion {
        /// Version byte found on the wire.
        got: u8,
        /// Version this build implements.
        expected: u8,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated {
                context,
                needed,
                have,
            } => write!(
                f,
                "truncated while decoding {context}: needed {needed} bytes, have {have}"
            ),
            WireError::BadTag { context, tag } => {
                write!(f, "bad tag {tag} while decoding {context}")
            }
            WireError::Invalid { context } => write!(f, "invalid encoding of {context}"),
            WireError::Trailing { remaining } => {
                write!(f, "{remaining} trailing bytes after a complete value")
            }
            WireError::BadVersion { got, expected } => {
                write!(f, "wire version {got} not supported (this build speaks {expected})")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// A cursor over a byte buffer being decoded.
#[derive(Debug)]
pub struct WireReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> WireReader<'a> {
    /// Starts reading at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        WireReader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Consumes exactly `n` bytes, or reports truncation against `context`.
    pub fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], WireError> {
        let have = self.remaining();
        if have < n {
            return Err(WireError::Truncated {
                context,
                needed: n,
                have,
            });
        }
        let start = self.pos;
        self.pos += n;
        Ok(&self.buf[start..self.pos])
    }

    /// Consumes exactly `N` bytes into an array, or reports truncation.
    fn take_array<const N: usize>(
        &mut self,
        context: &'static str,
    ) -> Result<[u8; N], WireError> {
        let bytes = self.take(N, context)?;
        let mut out = [0u8; N];
        for (dst, src) in out.iter_mut().zip(bytes) {
            *dst = *src;
        }
        Ok(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self, context: &'static str) -> Result<u8, WireError> {
        let [b] = self.take_array(context)?;
        Ok(b)
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self, context: &'static str) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take_array(context)?))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self, context: &'static str) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take_array(context)?))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self, context: &'static str) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take_array(context)?))
    }

    /// Reads a collection length prefix and bounds-checks it against the
    /// bytes remaining (every element encodes to at least one byte, so a
    /// length exceeding `remaining()` is unsatisfiable — rejecting it
    /// here keeps a corrupt prefix from provoking a huge allocation).
    pub fn len_prefix(&mut self, context: &'static str) -> Result<usize, WireError> {
        let len = self.u32(context)? as usize;
        let have = self.remaining();
        if len > have {
            return Err(WireError::Truncated {
                context,
                needed: len,
                have,
            });
        }
        Ok(len)
    }

    /// Asserts the buffer was fully consumed.
    pub fn finish(self) -> Result<(), WireError> {
        let remaining = self.remaining();
        if remaining > 0 {
            return Err(WireError::Trailing { remaining });
        }
        Ok(())
    }
}

/// A type with a stable binary encoding.
///
/// Encodings are little-endian and self-delimiting: `decode` consumes
/// exactly the bytes `encode` produced, so values concatenate without
/// separators. `decode(encode(x)) == x` for every valid value (this is
/// property-tested in `discsp-net`).
pub trait Wire: Sized {
    /// Appends this value's encoding to `out`.
    fn encode(&self, out: &mut Vec<u8>);

    /// Decodes one value, advancing the reader past it.
    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError>;

    /// Encodes into a fresh buffer.
    fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode(&mut out);
        out
    }

    /// Decodes a value that must span the whole buffer.
    fn from_bytes(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = WireReader::new(bytes);
        let value = Self::decode(&mut r)?;
        r.finish()?;
        Ok(value)
    }
}

impl Wire for u8 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(*self);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.u8("u8")
    }
}

impl Wire for u16 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.u16("u16")
    }
}

impl Wire for u32 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.u32("u32")
    }
}

impl Wire for u64 {
    fn encode(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.to_le_bytes());
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        r.u64("u64")
    }
}

impl Wire for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.u8("bool")? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(WireError::BadTag {
                context: "bool",
                tag,
            }),
        }
    }
}

impl<T: Wire> Wire for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.u8("Option")? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            tag => Err(WireError::BadTag {
                context: "Option",
                tag,
            }),
        }
    }
}

impl<T: Wire> Wire for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u32).encode(out);
        for item in self {
            item.encode(out);
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let len = r.len_prefix("Vec")?;
        let mut items = Vec::with_capacity(len);
        for _ in 0..len {
            items.push(T::decode(r)?);
        }
        Ok(items)
    }
}

impl<A: Wire, B: Wire> Wire for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let a = A::decode(r)?;
        let b = B::decode(r)?;
        Ok((a, b))
    }
}

impl Wire for AgentId {
    fn encode(&self, out: &mut Vec<u8>) {
        self.raw().encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(AgentId::new(r.u32("AgentId")?))
    }
}

impl Wire for VariableId {
    fn encode(&self, out: &mut Vec<u8>) {
        self.raw().encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(VariableId::new(r.u32("VariableId")?))
    }
}

impl Wire for Value {
    fn encode(&self, out: &mut Vec<u8>) {
        self.raw().encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Value::new(r.u16("Value")?))
    }
}

impl Wire for Priority {
    fn encode(&self, out: &mut Vec<u8>) {
        self.get().encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(Priority::new(r.u64("Priority")?))
    }
}

impl Wire for VarValue {
    fn encode(&self, out: &mut Vec<u8>) {
        self.var.encode(out);
        self.value.encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let var = VariableId::decode(r)?;
        let value = Value::decode(r)?;
        Ok(VarValue { var, value })
    }
}

impl Wire for Domain {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.size() as u16).encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let size = r.u16("Domain")?;
        if size == 0 {
            return Err(WireError::Invalid { context: "Domain" });
        }
        Ok(Domain::new(size))
    }
}

impl Wire for Nogood {
    fn encode(&self, out: &mut Vec<u8>) {
        self.elems().to_vec().encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let elems = Vec::<VarValue>::decode(r)?;
        Nogood::try_new(elems).map_err(|_| WireError::Invalid { context: "Nogood" })
    }
}

impl Wire for Assignment {
    fn encode(&self, out: &mut Vec<u8>) {
        let n = self.num_vars();
        (n as u32).encode(out);
        for index in 0..n {
            self.get(VariableId::new(index as u32)).encode(out);
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let n = r.len_prefix("Assignment")?;
        let mut assignment = Assignment::empty(n);
        for index in 0..n {
            if let Some(value) = Option::<Value>::decode(r)? {
                assignment.set(VariableId::new(index as u32), value);
            }
        }
        Ok(assignment)
    }
}

impl Wire for MessageClass {
    fn encode(&self, out: &mut Vec<u8>) {
        let tag: u8 = match self {
            MessageClass::Ok => 0,
            MessageClass::Nogood => 1,
            MessageClass::Other => 2,
        };
        out.push(tag);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.u8("MessageClass")? {
            0 => Ok(MessageClass::Ok),
            1 => Ok(MessageClass::Nogood),
            2 => Ok(MessageClass::Other),
            tag => Err(WireError::BadTag {
                context: "MessageClass",
                tag,
            }),
        }
    }
}

impl Wire for Termination {
    fn encode(&self, out: &mut Vec<u8>) {
        let tag: u8 = match self {
            Termination::Solved => 0,
            Termination::CutOff => 1,
            Termination::Insoluble => 2,
        };
        out.push(tag);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.u8("Termination")? {
            0 => Ok(Termination::Solved),
            1 => Ok(Termination::CutOff),
            2 => Ok(Termination::Insoluble),
            tag => Err(WireError::BadTag {
                context: "Termination",
                tag,
            }),
        }
    }
}

impl Wire for RunMetrics {
    fn encode(&self, out: &mut Vec<u8>) {
        self.termination.encode(out);
        self.cycles.encode(out);
        self.maxcck.encode(out);
        self.total_checks.encode(out);
        self.ok_messages.encode(out);
        self.nogood_messages.encode(out);
        self.other_messages.encode(out);
        self.nogoods_generated.encode(out);
        self.redundant_nogoods.encode(out);
        self.largest_nogood.encode(out);
        self.messages_sent.encode(out);
        self.messages_dropped.encode(out);
        self.messages_duplicated.encode(out);
        self.messages_reordered.encode(out);
        self.messages_retransmitted.encode(out);
        self.max_delivery_delay.encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let mut metrics = RunMetrics::new(Termination::decode(r)?);
        metrics.cycles = r.u64("RunMetrics.cycles")?;
        metrics.maxcck = r.u64("RunMetrics.maxcck")?;
        metrics.total_checks = r.u64("RunMetrics.total_checks")?;
        metrics.ok_messages = r.u64("RunMetrics.ok_messages")?;
        metrics.nogood_messages = r.u64("RunMetrics.nogood_messages")?;
        metrics.other_messages = r.u64("RunMetrics.other_messages")?;
        metrics.nogoods_generated = r.u64("RunMetrics.nogoods_generated")?;
        metrics.redundant_nogoods = r.u64("RunMetrics.redundant_nogoods")?;
        metrics.largest_nogood = r.u64("RunMetrics.largest_nogood")?;
        metrics.messages_sent = r.u64("RunMetrics.messages_sent")?;
        metrics.messages_dropped = r.u64("RunMetrics.messages_dropped")?;
        metrics.messages_duplicated = r.u64("RunMetrics.messages_duplicated")?;
        metrics.messages_reordered = r.u64("RunMetrics.messages_reordered")?;
        metrics.messages_retransmitted = r.u64("RunMetrics.messages_retransmitted")?;
        metrics.max_delivery_delay = r.u64("RunMetrics.max_delivery_delay")?;
        Ok(metrics)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Wire + PartialEq + std::fmt::Debug>(value: T) {
        let bytes = value.to_bytes();
        assert_eq!(T::from_bytes(&bytes).as_ref(), Ok(&value));
        // Every strict prefix of an exact encoding must fail cleanly.
        for cut in 0..bytes.len() {
            assert!(T::from_bytes(&bytes[..cut]).is_err(), "prefix {cut} decoded");
        }
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(0xABu8);
        roundtrip(0xAB_CDu16);
        roundtrip(0xAB_CD_EF_01u32);
        roundtrip(u64::MAX - 7);
        roundtrip(true);
        roundtrip(false);
        roundtrip(Some(Value::new(3)));
        roundtrip(Option::<Value>::None);
        roundtrip(vec![1u32, 2, 3]);
        roundtrip((AgentId::new(4), VariableId::new(9)));
    }

    #[test]
    fn core_types_roundtrip() {
        roundtrip(AgentId::new(17));
        roundtrip(VariableId::new(0));
        roundtrip(Value::new(2));
        roundtrip(Priority::new(99));
        roundtrip(VarValue {
            var: VariableId::new(3),
            value: Value::new(1),
        });
        roundtrip(Domain::new(3));
        roundtrip(Nogood::of([(0u32, 1u16), (2, 0)].map(|(v, x)| {
            (VariableId::new(v), Value::new(x))
        })));
        roundtrip(Nogood::empty());
        let mut partial = Assignment::empty(3);
        partial.set(VariableId::new(1), Value::new(2));
        roundtrip(partial);
        roundtrip(Assignment::total([Value::new(0), Value::new(2)]));
        roundtrip(Termination::Insoluble);
        roundtrip(MessageClass::Ok);
        roundtrip(MessageClass::Nogood);
        roundtrip(MessageClass::Other);
        let mut metrics = RunMetrics::new(Termination::Solved);
        metrics.cycles = 42;
        metrics.messages_dropped = 7;
        metrics.max_delivery_delay = 3;
        roundtrip(metrics);
    }

    #[test]
    fn bad_tags_are_typed_errors() {
        assert_eq!(
            bool::from_bytes(&[2]),
            Err(WireError::BadTag {
                context: "bool",
                tag: 2
            })
        );
        assert_eq!(
            Termination::from_bytes(&[9]),
            Err(WireError::BadTag {
                context: "Termination",
                tag: 9
            })
        );
        assert!(matches!(
            Option::<u8>::from_bytes(&[7, 0]),
            Err(WireError::BadTag { .. })
        ));
    }

    #[test]
    fn invalid_values_are_typed_errors() {
        // Zero-sized domain.
        assert_eq!(
            Domain::from_bytes(&[0, 0]),
            Err(WireError::Invalid { context: "Domain" })
        );
        // Nogood with two values for the same variable.
        let conflicting = vec![
            VarValue {
                var: VariableId::new(1),
                value: Value::new(0),
            },
            VarValue {
                var: VariableId::new(1),
                value: Value::new(1),
            },
        ];
        let bytes = conflicting.to_bytes();
        assert_eq!(
            Nogood::from_bytes(&bytes),
            Err(WireError::Invalid { context: "Nogood" })
        );
    }

    #[test]
    fn corrupt_length_prefix_is_rejected_before_allocation() {
        // Announces u32::MAX elements with a 0-byte body.
        let bytes = u32::MAX.to_bytes();
        assert!(matches!(
            Vec::<u64>::from_bytes(&bytes),
            Err(WireError::Truncated { .. })
        ));
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = Value::new(1).to_bytes();
        bytes.push(0);
        assert_eq!(
            Value::from_bytes(&bytes),
            Err(WireError::Trailing { remaining: 1 })
        );
    }

    #[test]
    fn errors_display_their_context() {
        let text = WireError::Truncated {
            context: "Nogood",
            needed: 8,
            have: 3,
        }
        .to_string();
        assert!(text.contains("Nogood"));
        let text = WireError::BadVersion { got: 9, expected: 1 }.to_string();
        assert!(text.contains('9'));
    }
}
