//! Values that variables may take.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A single value from a variable's domain.
///
/// Values are small dense integers. Domain-specific meaning (a color, a
/// Boolean polarity, a time slot) is attached via [`ValueLabels`] when
/// rendering, never inside the solver hot paths.
///
/// # Examples
///
/// ```
/// use discsp_core::Value;
///
/// let red = Value::new(0);
/// assert_eq!(red.index(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Value(u16);

impl Value {
    /// The conventional encoding of Boolean `false`.
    pub const FALSE: Value = Value(0);
    /// The conventional encoding of Boolean `true`.
    pub const TRUE: Value = Value(1);

    /// Creates a value from its dense index within a domain.
    pub const fn new(index: u16) -> Self {
        Value(index)
    }

    /// Creates a value from a Boolean polarity (`false → 0`, `true → 1`).
    pub const fn from_bool(b: bool) -> Self {
        if b {
            Value::TRUE
        } else {
            Value::FALSE
        }
    }

    /// Returns the dense index backing this value.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw numeric value.
    pub const fn raw(self) -> u16 {
        self.0
    }

    /// Interprets this value as a Boolean (`0 → false`, anything else → true).
    pub const fn as_bool(self) -> bool {
        self.0 != 0
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u16> for Value {
    fn from(index: u16) -> Self {
        Value(index)
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::from_bool(b)
    }
}

/// Human-readable labels for the values of a domain, used by examples and
/// trace output.
///
/// # Examples
///
/// ```
/// use discsp_core::{Value, ValueLabels};
///
/// let colors = ValueLabels::colors3();
/// assert_eq!(colors.label(Value::new(0)), "red");
/// assert_eq!(colors.label(Value::new(9)), "?");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ValueLabels {
    labels: Vec<String>,
}

impl ValueLabels {
    /// Creates labels from an ordered list of names.
    pub fn new<I, S>(labels: I) -> Self
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        ValueLabels {
            labels: labels.into_iter().map(Into::into).collect(),
        }
    }

    /// The classic three colors used by the paper's Figure 1:
    /// `red`, `yellow`, `green` (indices 0, 1, 2).
    pub fn colors3() -> Self {
        ValueLabels::new(["red", "yellow", "green"])
    }

    /// Boolean labels: `false`, `true` (indices 0, 1).
    pub fn booleans() -> Self {
        ValueLabels::new(["false", "true"])
    }

    /// Returns the label for `value`, or `"?"` if out of range.
    pub fn label(&self, value: Value) -> &str {
        self.labels
            .get(value.index())
            .map(String::as_str)
            .unwrap_or("?")
    }

    /// Number of labeled values.
    pub fn len(&self) -> usize {
        self.labels.len()
    }

    /// Whether no labels are present.
    pub fn is_empty(&self) -> bool {
        self.labels.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_roundtrip() {
        let v = Value::new(3);
        assert_eq!(v.index(), 3);
        assert_eq!(v.raw(), 3);
        assert_eq!(Value::from(3u16), v);
        assert_eq!(v.to_string(), "3");
    }

    #[test]
    fn boolean_values() {
        assert_eq!(Value::from_bool(true), Value::TRUE);
        assert_eq!(Value::from_bool(false), Value::FALSE);
        assert!(Value::TRUE.as_bool());
        assert!(!Value::FALSE.as_bool());
        assert_eq!(Value::from(true), Value::TRUE);
    }

    #[test]
    fn color_labels() {
        let labels = ValueLabels::colors3();
        assert_eq!(labels.len(), 3);
        assert!(!labels.is_empty());
        assert_eq!(labels.label(Value::new(0)), "red");
        assert_eq!(labels.label(Value::new(1)), "yellow");
        assert_eq!(labels.label(Value::new(2)), "green");
        assert_eq!(labels.label(Value::new(3)), "?");
    }

    #[test]
    fn boolean_labels() {
        let labels = ValueLabels::booleans();
        assert_eq!(labels.label(Value::FALSE), "false");
        assert_eq!(labels.label(Value::TRUE), "true");
    }
}
