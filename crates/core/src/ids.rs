//! Identifier newtypes for agents and variables.
//!
//! The paper's problems assign exactly one variable to each agent, but the
//! model keeps the two identifier spaces distinct so that multi-variable
//! extensions (Yokoo & Hirayama, ICMAS'98) stay representable.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of an agent participating in a distributed CSP.
///
/// Agents are numbered densely from zero; the paper's tie-breaking rules
/// ("alphabetical order of ids") map onto the numeric order of these ids.
///
/// # Examples
///
/// ```
/// use discsp_core::AgentId;
///
/// let a = AgentId::new(3);
/// assert_eq!(a.index(), 3);
/// assert!(AgentId::new(1) < a);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AgentId(u32);

impl AgentId {
    /// Creates an agent id from its dense index.
    pub const fn new(index: u32) -> Self {
        AgentId(index)
    }

    /// Returns the dense index backing this id.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw numeric value.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for AgentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "a{}", self.0)
    }
}

impl From<u32> for AgentId {
    fn from(index: u32) -> Self {
        AgentId(index)
    }
}

/// Identifier of a variable in a (distributed) CSP.
///
/// The ordering of `VariableId`s is the paper's "alphabetical order of
/// variables' ids": a *smaller* id wins priority ties (see
/// [`Rank`](crate::Rank)).
///
/// # Examples
///
/// ```
/// use discsp_core::VariableId;
///
/// let x5 = VariableId::new(5);
/// assert_eq!(x5.to_string(), "x5");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct VariableId(u32);

impl VariableId {
    /// Creates a variable id from its dense index.
    pub const fn new(index: u32) -> Self {
        VariableId(index)
    }

    /// Returns the dense index backing this id.
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns the raw numeric value.
    pub const fn raw(self) -> u32 {
        self.0
    }
}

impl fmt::Display for VariableId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

impl From<u32> for VariableId {
    fn from(index: u32) -> Self {
        VariableId(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agent_id_roundtrip() {
        let a = AgentId::new(7);
        assert_eq!(a.index(), 7);
        assert_eq!(a.raw(), 7);
        assert_eq!(AgentId::from(7), a);
        assert_eq!(a.to_string(), "a7");
    }

    #[test]
    fn variable_id_roundtrip() {
        let x = VariableId::new(42);
        assert_eq!(x.index(), 42);
        assert_eq!(x.raw(), 42);
        assert_eq!(VariableId::from(42), x);
        assert_eq!(x.to_string(), "x42");
    }

    #[test]
    fn ids_order_numerically() {
        assert!(VariableId::new(2) < VariableId::new(10));
        assert!(AgentId::new(0) < AgentId::new(1));
    }

    #[test]
    fn ids_usable_as_map_keys() {
        use std::collections::HashMap;
        let mut m = HashMap::new();
        m.insert(VariableId::new(1), "one");
        assert_eq!(m[&VariableId::new(1)], "one");
    }
}
