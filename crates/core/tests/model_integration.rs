//! Integration tests for the problem model: builder workflows, trait
//! conformance, and cross-type interactions.

use discsp_core::{
    AgentId, AgentView, Assignment, CoreError, DistributedCsp, Domain, Nogood, NogoodStore,
    Priority, Rank, Value, VarValue, VariableId,
};

#[test]
fn key_types_are_send_sync_clone_debug() {
    fn check<T: Send + Sync + Clone + std::fmt::Debug>() {}
    check::<AgentId>();
    check::<VariableId>();
    check::<Value>();
    check::<Domain>();
    check::<Nogood>();
    check::<Assignment>();
    check::<AgentView>();
    check::<DistributedCsp>();
    check::<Priority>();
    check::<Rank>();
    check::<VarValue>();
}

#[test]
fn key_types_are_serde_serializable() {
    fn check<T: serde::Serialize + serde::de::DeserializeOwned>() {}
    check::<AgentId>();
    check::<VariableId>();
    check::<Value>();
    check::<Nogood>();
    check::<Assignment>();
    check::<DistributedCsp>();
}

#[test]
fn building_a_mixed_domain_problem() {
    // Three slots for a meeting, Boolean attendance flags, and a
    // coupling constraint — exercises heterogeneous domains.
    let mut b = DistributedCsp::builder();
    let slot = b.variable(Domain::new(3));
    let alice = b.variable(Domain::BOOL);
    let bob = b.variable(Domain::BOOL);
    // Alice can't do slot 2; if the meeting is in slot 0, Bob attends.
    b.nogood(Nogood::of([(slot, Value::new(2)), (alice, Value::TRUE)]))
        .unwrap();
    b.nogood(Nogood::of([(slot, Value::new(0)), (bob, Value::FALSE)]))
        .unwrap();
    let p = b.build().unwrap();
    assert_eq!(p.num_vars(), 3);
    assert_eq!(p.neighbors(slot), &[alice, bob]);
    assert_eq!(p.neighbors(alice), &[slot]);

    let good = Assignment::total([Value::new(0), Value::TRUE, Value::TRUE]);
    assert!(p.is_solution(&good));
    let bad = Assignment::total([Value::new(2), Value::TRUE, Value::TRUE]);
    assert!(!p.is_solution(&bad));
}

#[test]
fn builder_error_paths_are_stable() {
    let mut b = DistributedCsp::builder();
    let x = b.variable(Domain::new(2));
    assert!(matches!(
        b.nogood(Nogood::of([(VariableId::new(5), Value::new(0))])),
        Err(CoreError::UnknownVariable { .. })
    ));
    assert!(matches!(
        b.nogood(Nogood::of([(x, Value::new(7))])),
        Err(CoreError::ValueOutOfDomain { .. })
    ));
    assert!(matches!(
        b.not_equal(x, VariableId::new(9)),
        Err(CoreError::UnknownVariable { .. })
    ));
    // The builder survives errors: valid additions still work.
    let y = b.variable(Domain::new(2));
    b.not_equal(x, y).unwrap();
    let p = b.build().unwrap();
    assert_eq!(p.nogoods().len(), 2);
}

#[test]
fn store_and_view_interact_like_an_agent_turn() {
    // Simulate one AWC-style evaluation by hand: a store of constraint
    // nogoods, a view of neighbors, metered higher-nogood checks.
    let x = |i: u32| VariableId::new(i);
    let v = |i: u16| Value::new(i);
    let own = x(2);
    let own_rank = Rank::new(own, Priority::ZERO);

    let mut view = AgentView::new();
    view.update(x(0), AgentId::new(0), v(1), Priority::new(2));
    view.update(x(1), AgentId::new(1), v(0), Priority::ZERO);

    let store = NogoodStore::with_nogoods([
        Nogood::of([(x(0), v(1)), (own, v(1))]), // higher (x0@2 outranks)
        Nogood::of([(x(1), v(0)), (own, v(0))]), // higher (x1@0, id 1 < 2)
        Nogood::of([(x(3), v(0)), (own, v(0))]), // x3 unknown: rank 0@x3, id 3 > 2 → lower
    ]);

    let higher: Vec<_> = store
        .iter()
        .filter(|&ng| view.is_higher_nogood(ng, own_rank))
        .collect();
    assert_eq!(higher.len(), 2);

    // Evaluate value 1 against higher nogoods only.
    let lookup = view.lookup_with(own, v(1));
    let violated: Vec<_> = higher.iter().filter(|&&ng| store.eval(ng, &lookup)).collect();
    assert_eq!(violated.len(), 1);
    assert_eq!(store.take_checks(), 2);
}

#[test]
fn nogood_store_growth_and_dedup_under_churn() {
    let mut store = NogoodStore::new();
    let mut inserted = 0;
    for round in 0..3 {
        for i in 0..50u32 {
            let ng = Nogood::of([
                (VariableId::new(i), Value::new((i % 3) as u16)),
                (VariableId::new(i + 1), Value::new(((i + round) % 3) as u16)),
            ]);
            if store.insert(ng) {
                inserted += 1;
            }
        }
    }
    assert_eq!(store.len(), inserted);
    // Second pass inserted only the round-shifted variants.
    assert!(store.len() > 50 && store.len() <= 150);
}

#[test]
fn aggregate_percent_tracks_cutoffs() {
    use discsp_core::{Aggregate, RunMetrics, Termination};
    let mut batch = Vec::new();
    for i in 0..10u64 {
        let term = if i < 7 {
            Termination::Solved
        } else {
            Termination::CutOff
        };
        let mut m = RunMetrics::new(term);
        m.cycles = if term.is_solved() { 100 } else { 10_000 };
        batch.push(m);
    }
    let agg = Aggregate::from_metrics(batch.iter());
    assert!((agg.percent_solved - 70.0).abs() < 1e-9);
    assert!((agg.mean_cycles - (7.0 * 100.0 + 3.0 * 10_000.0) / 10.0).abs() < 1e-9);
}

#[test]
fn display_round_trip_sanity() {
    // Display implementations are stable and parseable by eye; pin a
    // few formats used in logs and examples.
    let ng = Nogood::of([
        (VariableId::new(1), Value::new(0)),
        (VariableId::new(5), Value::new(2)),
    ]);
    assert_eq!(format!("{ng}"), "¬((x1=0) (x5=2))");
    assert_eq!(
        format!("{}", Rank::new(VariableId::new(3), Priority::new(4))),
        "x3@4"
    );
    let mut view = AgentView::new();
    view.update(
        VariableId::new(2),
        AgentId::new(2),
        Value::new(1),
        Priority::new(3),
    );
    assert_eq!(view.to_string(), "view{a2:x2=1@3}");
}
