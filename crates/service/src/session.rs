//! One session as a resumable state machine.
//!
//! [`Driver`] is `run_virtual` unrolled: instead of looping to
//! termination it executes exactly **one wave per [`Pump::poll`]** —
//! the tick-0 start wave, a delivery wave, or a stall-recovery nudge
//! wave — in the same order, with the same maxcck wave accounting, the
//! same barrier events, and the same teardown as the in-process
//! executor. A session polled to completion therefore produces metrics
//! and a trace **bit-identical** to `solve_virtual` on the same
//! `(seed, policy)` (modulo the `RunEnd` runtime stamp), which is the
//! property the service's interleaving tests pin.
//!
//! Backpressure lives here too: each session has a bounded in-flight
//! message budget. Sends past it spill to a deterministic FIFO parking
//! queue ([`Pump::overflow_len`]) drained back into the router as its
//! queue empties, so a hostile or chatty session has bounded router
//! state no matter how much it sends per wave.

use std::collections::VecDeque;

use discsp_awc::AwcSolver;
use discsp_core::{Assignment, DistributedCsp, RunMetrics, Termination, TrialOutcome};
use discsp_dba::DbaSolver;
use discsp_net::AlgoSpec;
use discsp_runtime::{
    AgentStats, DistributedAgent, Envelope, Outbox, Router, RuntimeError, StepRecorder,
    TraceEvent, TraceSink, VirtualConfig, VirtualReport,
};
use discsp_trace::RuntimeKind;

use crate::ServiceError;

/// Everything that defines one session: the problem, the seed/policy
/// (inside the [`VirtualConfig`]), and the algorithm.
#[derive(Debug, Clone)]
pub struct SessionSpec {
    /// The problem to solve.
    pub problem: DistributedCsp,
    /// The initial assignment (total, in-domain).
    pub init: Assignment,
    /// The algorithm to run.
    pub algo: AlgoSpec,
    /// Seed, link policy, budgets, trace recording. For distributed
    /// breakout `stop_on_first_solution` is forced on (its waves never
    /// go quiet), mirroring the net runtime.
    pub config: VirtualConfig,
}

/// What one poll did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionPoll {
    /// The session advanced one wave and has more work.
    Running,
    /// The session has terminated; its report is ready.
    Finished,
}

/// A pollable session, type-erased over the algorithm's agent type so
/// the session table can hold AWC and DBA sessions side by side.
pub trait Pump: Send {
    /// Advances the session by one wave.
    ///
    /// # Errors
    ///
    /// [`RuntimeError`] if the session's router rejects a message; the
    /// session is dead afterwards.
    fn poll(&mut self) -> Result<SessionPoll, RuntimeError>;

    /// Whether the session has terminated.
    fn finished(&self) -> bool;

    /// The session's report, once finished (consumes it).
    fn take_report(&mut self) -> Option<VirtualReport>;

    /// Waves executed so far (the snapshot fast-forward count).
    fn waves(&self) -> u64;

    /// Messages currently parked by the in-flight budget.
    fn overflow_len(&self) -> usize;

    /// High-water mark of the parking queue over the session's life.
    fn overflow_peak(&self) -> usize;

    /// The events recorded so far, without draining the live sink
    /// (empty unless the spec requested tracing).
    fn trace_so_far(&mut self) -> Vec<TraceEvent>;
}

/// A point-in-time capture of a live (or cancelled) session: its spec,
/// how many waves it had executed, and the event log it had produced.
/// [`SolveService::restore`](crate::SolveService) rebuilds the driver
/// from the spec, fast-forwards `waves` polls, and verifies the
/// replayed log equals `events` bit-for-bit before resuming — the
/// trace pipeline *is* the snapshot format.
#[derive(Debug, Clone)]
pub struct SessionSnapshot {
    /// The session's defining spec.
    pub spec: SessionSpec,
    /// The in-flight budget the session ran under.
    pub budget: u64,
    /// Waves executed at capture time.
    pub waves: u64,
    /// The event log at capture time (empty unless tracing was on).
    pub events: Vec<TraceEvent>,
}

enum Phase {
    NotStarted,
    Running,
    Finished,
}

/// The resumable `run_virtual` state machine, generic over the agent
/// type. See the module docs for the exact correspondence.
pub struct Driver<A: DistributedAgent> {
    agents: Vec<A>,
    problem: DistributedCsp,
    config: VirtualConfig,
    budget: u64,
    net: Router<A::Message>,
    overflow: VecDeque<Envelope<A::Message>>,
    overflow_peak: usize,
    parked_any: bool,
    faults_enabled: bool,
    recorder: StepRecorder,
    metrics: RunMetrics,
    snapshot: Assignment,
    activations: u64,
    nudges: u64,
    tick: u64,
    insoluble: bool,
    waves: u64,
    phase: Phase,
    report: Option<VirtualReport>,
}

impl<A: DistributedAgent> Driver<A> {
    /// Builds a driver in the not-started state. `budget` bounds the
    /// router's in-flight queue (clamped to at least 1); `u64::MAX`
    /// disables backpressure, making the session step-for-step
    /// identical to `run_virtual`.
    ///
    /// # Errors
    ///
    /// [`RuntimeError::NonDenseAgentIds`] unless agent *i* reports
    /// id *i* — the same up-front check as the in-process executor.
    pub fn new(
        agents: Vec<A>,
        problem: DistributedCsp,
        config: VirtualConfig,
        budget: u64,
    ) -> Result<Self, RuntimeError> {
        for (position, agent) in agents.iter().enumerate() {
            if agent.id().index() != position {
                return Err(RuntimeError::NonDenseAgentIds {
                    position,
                    found: agent.id(),
                });
            }
        }
        let n = agents.len();
        let net = match &config.schedule {
            Some(schedule) => Router::scripted(n, schedule, config.seed, config.record_trace),
            None => Router::new(n, config.link, config.seed, config.record_trace),
        };
        let faults_enabled = config.schedule.is_some() || !config.link.is_perfect();
        let num_vars = problem.num_vars();
        Ok(Driver {
            agents,
            problem,
            budget: budget.max(1),
            net,
            overflow: VecDeque::new(),
            overflow_peak: 0,
            parked_any: false,
            faults_enabled,
            recorder: StepRecorder::new(),
            metrics: RunMetrics::new(Termination::CutOff),
            snapshot: Assignment::empty(num_vars),
            activations: 0,
            nudges: 0,
            tick: 0,
            insoluble: false,
            waves: 0,
            phase: Phase::NotStarted,
            report: None,
            config,
        })
    }

    /// Routes now if the in-flight budget allows, else parks. Once
    /// anything is parked, everything parks behind it: releases happen
    /// strictly in send order, so backpressure delays messages but
    /// never reorders one send past a later one.
    fn route_budgeted(&mut self, now: u64, env: Envelope<A::Message>) -> Result<(), RuntimeError> {
        if self.overflow.is_empty() && self.net.queued() < self.budget {
            self.net.route(now, env)
        } else {
            self.parked_any = true;
            self.overflow.push_back(env);
            self.overflow_peak = self.overflow_peak.max(self.overflow.len());
            Ok(())
        }
    }

    /// Tick 0: every agent announces its initial state (one maxcck wave).
    fn start_wave(&mut self) -> Result<(), RuntimeError> {
        let mut start_max: u64 = 0;
        for i in 0..self.agents.len() {
            let agent = &mut self.agents[i];
            let mut out = Outbox::new(agent.id());
            agent.on_start(&mut out);
            self.activations += 1;
            let checks = agent.take_checks();
            self.metrics.total_checks += checks;
            start_max = start_max.max(checks);
            self.recorder.record_step(agent, 0, checks, self.net.sink());
            for env in out.drain() {
                self.route_budgeted(0, env)?;
            }
        }
        self.metrics.maxcck += start_max;
        self.net.sink().record(TraceEvent::CycleBarrier { cycle: 0 });
        self.insoluble = self.agents.iter().any(|a| a.detected_insoluble());
        for agent in self.agents.iter() {
            for vv in agent.assignments() {
                self.snapshot.set(vv.var, vv.value);
            }
        }
        Ok(())
    }

    /// A recovery pass: flush parked drops, ask agents to re-announce.
    fn nudge_wave(&mut self) -> Result<(), RuntimeError> {
        self.nudges += 1;
        self.tick += 1;
        self.net.flush_parked(self.tick);
        let tick = self.tick;
        let mut wave_max: u64 = 0;
        for i in 0..self.agents.len() {
            let agent = &mut self.agents[i];
            let mut out = Outbox::new(agent.id());
            agent.on_nudge(&mut out);
            let checks = agent.take_checks();
            self.metrics.total_checks += checks;
            wave_max = wave_max.max(checks);
            self.recorder.record_step(agent, tick, checks, self.net.sink());
            for env in out.drain() {
                self.route_budgeted(tick, env)?;
            }
        }
        self.metrics.maxcck += wave_max;
        self.net.sink().record(TraceEvent::CycleBarrier { cycle: tick });
        Ok(())
    }

    /// Delivers every batch due this tick (one maxcck wave).
    fn delivery_wave(&mut self, due: u64) -> Result<(), RuntimeError> {
        self.tick = self.tick.max(due);
        let tick = self.tick;
        let mut wave_max: u64 = 0;
        for (recipient, inbox) in self.net.take_due(due, tick) {
            let Some(agent) = self.agents.get_mut(recipient) else {
                continue;
            };
            let mut out = Outbox::new(agent.id());
            agent.on_batch(inbox, &mut out);
            self.activations += 1;
            let checks = agent.take_checks();
            self.metrics.total_checks += checks;
            wave_max = wave_max.max(checks);
            for vv in agent.assignments() {
                self.snapshot.set(vv.var, vv.value);
            }
            self.insoluble |= agent.detected_insoluble();
            self.recorder.record_step(agent, tick, checks, self.net.sink());
            for env in out.drain() {
                self.route_budgeted(tick, env)?;
            }
        }
        self.metrics.maxcck += wave_max;
        self.net.sink().record(TraceEvent::CycleBarrier { cycle: tick });
        Ok(())
    }

    /// The teardown from `run_virtual`: leftover checks, stats
    /// aggregation, the terminal `RunEnd` event, and the report.
    fn finish(&mut self, termination: Termination) {
        self.metrics.termination = termination;
        self.metrics.cycles = self.tick;
        let (ok, nogood, other) = self.net.class_counts();
        self.metrics.ok_messages = ok;
        self.metrics.nogood_messages = nogood;
        self.metrics.other_messages = other;
        let mut stats = AgentStats::default();
        let tick = self.tick;
        for i in 0..self.agents.len() {
            let agent = &mut self.agents[i];
            let leftover = agent.take_checks();
            if leftover > 0 {
                self.metrics.total_checks += leftover;
                let id = agent.id();
                self.net.sink().record(TraceEvent::AgentStep {
                    cycle: tick,
                    agent: id,
                    checks: leftover,
                });
            }
            stats.absorb(agent.stats());
        }
        self.net.link_totals().fold_into(&mut stats);
        self.metrics.nogoods_generated = stats.nogoods_generated;
        self.metrics.redundant_nogoods = stats.redundant_nogoods;
        self.metrics.largest_nogood = stats.largest_nogood;
        self.metrics.messages_sent = stats.messages_sent;
        self.metrics.messages_dropped = stats.messages_dropped;
        self.metrics.messages_duplicated = stats.messages_duplicated;
        self.metrics.messages_reordered = stats.messages_reordered;
        self.metrics.messages_retransmitted = stats.messages_retransmitted;
        self.metrics.max_delivery_delay = stats.max_delivery_delay;

        let in_flight = self.net.queued();
        self.net.sink().record(TraceEvent::RunEnd {
            cycle: self.metrics.cycles,
            runtime: RuntimeKind::Service,
            in_flight,
            metrics: self.metrics.clone(),
        });

        let solution = if termination == Termination::Solved {
            Some(self.snapshot.clone())
        } else {
            None
        };
        self.report = Some(VirtualReport {
            outcome: TrialOutcome {
                metrics: self.metrics.clone(),
                solution,
            },
            ticks: self.tick,
            activations: self.activations,
            nudges: self.nudges,
            fault_log: self.net.fault_log(),
            trace: self.net.take_trace(),
        });
        self.phase = Phase::Finished;
    }
}

impl<A: DistributedAgent + Send> Pump for Driver<A> {
    fn poll(&mut self) -> Result<SessionPoll, RuntimeError> {
        match self.phase {
            Phase::Finished => return Ok(SessionPoll::Finished),
            Phase::NotStarted => {
                self.start_wave()?;
                self.phase = Phase::Running;
                self.waves += 1;
                return Ok(SessionPoll::Running);
            }
            Phase::Running => {}
        }

        // Budget headroom freed by earlier deliveries re-admits parked
        // sends first, in FIFO order, before this wave routes anything.
        while self.net.queued() < self.budget {
            let Some(env) = self.overflow.pop_front() else {
                break;
            };
            self.net.route(self.tick, env)?;
        }

        if self.insoluble {
            self.finish(Termination::Insoluble);
            return Ok(SessionPoll::Finished);
        }
        if self.config.stop_on_first_solution && self.problem.is_solution(&self.snapshot) {
            self.finish(Termination::Solved);
            return Ok(SessionPoll::Finished);
        }
        let Some(due) = self.net.next_due() else {
            // Quiescent (the overflow drain above guarantees the parking
            // queue is empty whenever the router is): stable snapshot.
            if self.problem.is_solution(&self.snapshot) {
                self.finish(Termination::Solved);
                return Ok(SessionPoll::Finished);
            }
            // Backpressure delays messages like a faulty link delays
            // them, so a session that ever parked gets the same
            // stall-recovery nudges a lossy link would.
            let recoverable = self.faults_enabled || self.parked_any;
            if !recoverable || self.nudges >= self.config.max_nudges {
                self.finish(Termination::CutOff);
                return Ok(SessionPoll::Finished);
            }
            self.nudge_wave()?;
            self.waves += 1;
            if self.net.is_quiescent() && self.overflow.is_empty() {
                // Nothing retransmitted and nobody re-announced: the
                // stall is permanent.
                self.finish(Termination::CutOff);
                return Ok(SessionPoll::Finished);
            }
            return Ok(SessionPoll::Running);
        };
        if due > self.config.max_ticks {
            self.finish(Termination::CutOff);
            return Ok(SessionPoll::Finished);
        }
        self.delivery_wave(due)?;
        self.waves += 1;
        Ok(SessionPoll::Running)
    }

    fn finished(&self) -> bool {
        matches!(self.phase, Phase::Finished)
    }

    fn take_report(&mut self) -> Option<VirtualReport> {
        self.report.take()
    }

    fn waves(&self) -> u64 {
        self.waves
    }

    fn overflow_len(&self) -> usize {
        self.overflow.len()
    }

    fn overflow_peak(&self) -> usize {
        self.overflow_peak
    }

    fn trace_so_far(&mut self) -> Vec<TraceEvent> {
        self.net.sink().iter().cloned().collect()
    }
}

/// Builds the type-erased session state machine for a spec: validates
/// the problem through the same `build_agents` path as every in-process
/// solver and instantiates the matching [`Driver`]. Distributed
/// breakout gets `stop_on_first_solution` forced on, mirroring the net
/// runtime.
///
/// # Errors
///
/// [`ServiceError::BadSpec`] when the solver rejects the problem or
/// initial assignment; [`ServiceError::Runtime`] on non-dense agent ids.
pub fn build_pump(spec: &SessionSpec, budget: u64) -> Result<Box<dyn Pump>, ServiceError> {
    match spec.algo {
        AlgoSpec::Awc(awc_config) => {
            let solver = AwcSolver::new(awc_config);
            let agents = solver
                .build_agents(&spec.problem, &spec.init)
                .map_err(|e| ServiceError::BadSpec {
                    detail: e.to_string(),
                })?;
            let driver = Driver::new(agents, spec.problem.clone(), spec.config.clone(), budget)?;
            Ok(Box::new(driver))
        }
        AlgoSpec::Dba(mode) => {
            let solver = DbaSolver::new().weight_mode(mode);
            let agents = solver
                .build_agents(&spec.problem, &spec.init)
                .map_err(|e| ServiceError::BadSpec {
                    detail: e.to_string(),
                })?;
            let mut config = spec.config.clone();
            config.stop_on_first_solution = true;
            let driver = Driver::new(agents, spec.problem.clone(), config, budget)?;
            Ok(Box::new(driver))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use discsp_awc::AwcConfig;
    use discsp_core::{Domain, Value};

    fn ring_spec(n: usize, seed: u64) -> SessionSpec {
        let mut b = DistributedCsp::builder();
        let vars: Vec<_> = (0..n).map(|_| b.variable(Domain::new(3))).collect();
        for i in 0..n {
            let (x, y) = (vars[i], vars[(i + 1) % n]);
            if x != y {
                b.not_equal(x, y).expect("edge");
            }
        }
        SessionSpec {
            problem: b.build().expect("ring"),
            init: Assignment::total((0..n).map(|_| Value::new(0))),
            algo: AlgoSpec::Awc(AwcConfig::resolvent()),
            config: VirtualConfig {
                seed,
                ..VirtualConfig::default()
            },
        }
    }

    #[test]
    fn polled_session_matches_solve_virtual_field_by_field() {
        let spec = ring_spec(6, 11);
        let mut pump = build_pump(&spec, u64::MAX).expect("pump");
        while pump.poll().expect("poll") == SessionPoll::Running {}
        let report = pump.take_report().expect("report");

        let solver = AwcSolver::new(AwcConfig::resolvent());
        let virt = solver
            .solve_virtual(&spec.problem, &spec.init, &spec.config)
            .expect("virtual");
        assert_eq!(report.outcome.metrics, virt.outcome.metrics);
        assert_eq!(report.outcome.solution, virt.outcome.solution);
        assert_eq!(report.ticks, virt.ticks);
        assert_eq!(report.activations, virt.activations);
        assert_eq!(report.nudges, virt.nudges);
    }

    #[test]
    fn bad_spec_is_rejected_before_any_wave() {
        let mut spec = ring_spec(3, 1);
        // Out-of-domain initial value: the solver's validation must fire.
        spec.init = Assignment::total((0..3).map(|_| Value::new(99)));
        assert!(matches!(
            build_pump(&spec, u64::MAX),
            Err(ServiceError::BadSpec { .. })
        ));
    }

    #[test]
    fn tiny_budget_parks_and_still_solves() {
        let spec = ring_spec(6, 11);
        let mut pump = build_pump(&spec, 2).expect("pump");
        while pump.poll().expect("poll") == SessionPoll::Running {}
        let report = pump.take_report().expect("report");
        assert_eq!(
            report.outcome.metrics.termination,
            discsp_core::Termination::Solved
        );
        assert!(
            pump.overflow_peak() > 0,
            "a 2-message budget on a 6-ring must actually park"
        );
        assert_eq!(pump.overflow_len(), 0, "overflow drains by termination");

        // And the budgeted run is itself deterministic: same spec, same
        // budget, same everything.
        let mut again = build_pump(&spec, 2).expect("pump");
        while again.poll().expect("poll") == SessionPoll::Running {}
        let second = again.take_report().expect("report");
        assert_eq!(report.outcome.metrics, second.outcome.metrics);
        assert_eq!(report.outcome.solution, second.outcome.solution);
    }
}
