//! `discsp-load`: the solve-service load generator.
//!
//! Builds a mixed workload — AWC (resolvent and mcs learning) and
//! distributed breakout over planted 3-colorings, on perfect and lossy
//! links — submits every session to one in-process [`SolveService`],
//! sweeps the scheduler until the table drains, and reports throughput
//! (sessions/sec, the one wall-clock number) plus p50/p99/max latency
//! measured in **sweeps** of the deterministic virtual clock, so the
//! latency distribution is a pure function of `(--sessions, --seed,
//! --active, --budget)` and bit-stable across machines and `--workers`
//! settings.
//!
//! With `--trace-dir` every session records its trace and dumps it as
//! JSONL for `discsp-trace audit` — the CI smoke job re-audits every
//! dumped trace as a hard gate.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use discsp_awc::AwcConfig;
use discsp_core::{Assignment, Termination, Value};
use discsp_dba::WeightMode;
use discsp_net::AlgoSpec;
use discsp_probgen::{coloring_to_discsp, paper_coloring};
use discsp_runtime::{LinkPolicy, VirtualConfig};
use discsp_service::{ServiceConfig, SessionSpec, SolveService};
use discsp_trace::event_to_json;

struct Args {
    sessions: u64,
    vars: u32,
    seed: u64,
    workers: usize,
    active: usize,
    budget: u64,
    trace_dir: Option<PathBuf>,
    bench_out: Option<PathBuf>,
}

impl Default for Args {
    fn default() -> Self {
        Args {
            sessions: 1000,
            vars: 10,
            seed: 1,
            workers: 4,
            active: 64,
            budget: 0,
            trace_dir: None,
            bench_out: None,
        }
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: discsp-load [--sessions N] [--vars N] [--seed S] [--workers W] \
         [--active A] [--budget B] [--trace-dir DIR] [--bench-out FILE]\n\
         \n\
         Hammers one SolveService with a mixed AWC/DBA coloring workload and\n\
         reports sessions/sec and p50/p99 latency in scheduler sweeps.\n\
         --budget 0 (the default) disables per-session backpressure."
    );
    std::process::exit(2)
}

fn parse_args() -> Args {
    let mut args = Args::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| -> String {
            match it.next() {
                Some(v) => v,
                None => {
                    eprintln!("discsp-load: {name} needs a value");
                    usage()
                }
            }
        };
        match flag.as_str() {
            "--sessions" => args.sessions = parse_num(&value("--sessions"), "--sessions"),
            "--vars" => args.vars = parse_num(&value("--vars"), "--vars") as u32,
            "--seed" => args.seed = parse_num(&value("--seed"), "--seed"),
            "--workers" => args.workers = parse_num(&value("--workers"), "--workers") as usize,
            "--active" => args.active = parse_num(&value("--active"), "--active") as usize,
            "--budget" => args.budget = parse_num(&value("--budget"), "--budget"),
            "--trace-dir" => args.trace_dir = Some(PathBuf::from(value("--trace-dir"))),
            "--bench-out" => args.bench_out = Some(PathBuf::from(value("--bench-out"))),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("discsp-load: unknown flag {other}");
                usage()
            }
        }
    }
    if args.vars < 9 {
        // Below 9 nodes the paper's 2.7n edge density exceeds the
        // available cross-class pairs of a balanced 3-coloring.
        eprintln!("discsp-load: --vars must be at least 9");
        usage()
    }
    if args.sessions == 0 {
        eprintln!("discsp-load: --sessions must be positive");
        usage()
    }
    args
}

fn parse_num(text: &str, flag: &str) -> u64 {
    match text.parse() {
        Ok(n) => n,
        Err(_) => {
            eprintln!("discsp-load: {flag} expects a number, got {text:?}");
            usage()
        }
    }
}

/// The four-way workload mix, by session index.
fn mix_of(index: u64) -> (&'static str, AlgoSpec, LinkPolicy) {
    match index % 4 {
        0 => (
            "awc_resolvent",
            AlgoSpec::Awc(AwcConfig::resolvent()),
            LinkPolicy::perfect(),
        ),
        1 => (
            "awc_mcs",
            AlgoSpec::Awc(AwcConfig::mcs()),
            LinkPolicy::perfect(),
        ),
        2 => (
            "dba_per_nogood",
            AlgoSpec::Dba(WeightMode::PerNogood),
            LinkPolicy::perfect(),
        ),
        _ => (
            "awc_resolvent_lossy",
            AlgoSpec::Awc(AwcConfig::resolvent()),
            // 2% drops: enough to exercise retransmission and nudges in
            // every fourth session without stalling the benchmark.
            LinkPolicy::lossy(20_000),
        ),
    }
}

fn build_spec(args: &Args, index: u64) -> Result<SessionSpec, String> {
    let (_, algo, link) = mix_of(index);
    let instance = paper_coloring(args.vars, args.seed.wrapping_add(index));
    let problem =
        coloring_to_discsp(&instance).map_err(|e| format!("session {index}: {e}"))?;
    let init = Assignment::total((0..args.vars).map(|_| Value::new(0)));
    Ok(SessionSpec {
        problem,
        init,
        algo,
        config: VirtualConfig {
            seed: args.seed.wrapping_mul(0x9e37).wrapping_add(index),
            link,
            record_trace: args.trace_dir.is_some(),
            ..VirtualConfig::default()
        },
    })
}

fn percentile(sorted: &[u64], p: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (sorted.len() as u64 - 1) * p / 100;
    sorted[rank as usize]
}

fn run() -> Result<String, String> {
    let args = parse_args();
    let budget = if args.budget == 0 { u64::MAX } else { args.budget };
    let mut service = SolveService::new(ServiceConfig {
        max_active: args.active.max(1),
        max_pending: args.sessions as usize,
        session_budget: budget,
        workers: args.workers.max(1),
    });

    if let Some(dir) = &args.trace_dir {
        std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
    }

    // Submit everything up front (admission is FIFO; queueing shows up
    // as latency), then sweep the scheduler dry. Wall time measures the
    // whole thing: that is what a sessions/sec number should charge for.
    let started = Instant::now();
    for index in 0..args.sessions {
        let id = index + 1;
        let spec = build_spec(&args, index)?;
        service
            .submit(id, spec)
            .map_err(|e| format!("submitting session {id}: {e}"))?;
    }
    let sweeps = service.run_until_idle();
    let wall = started.elapsed();

    let results = service.take_completed();
    let failed = service.failed().len() as u64;
    if results.len() as u64 + failed != args.sessions {
        return Err(format!(
            "lost sessions: {} submitted, {} completed, {failed} failed",
            args.sessions,
            results.len()
        ));
    }

    let mut latencies: Vec<u64> = results.values().map(|r| r.latency_sweeps()).collect();
    latencies.sort_unstable();
    let (mut solved, mut cutoff, mut insoluble) = (0u64, 0u64, 0u64);
    for result in results.values() {
        match result.report.outcome.metrics.termination {
            Termination::Solved => solved += 1,
            Termination::CutOff => cutoff += 1,
            Termination::Insoluble => insoluble += 1,
        }
    }

    if let Some(dir) = &args.trace_dir {
        for (id, result) in &results {
            let mut text = String::new();
            for event in &result.report.trace {
                text.push_str(&event_to_json(event));
                text.push('\n');
            }
            let path = dir.join(format!("session_{id}.jsonl"));
            std::fs::write(&path, text).map_err(|e| format!("writing {}: {e}", path.display()))?;
        }
    }

    let wall_seconds = wall.as_secs_f64();
    let per_sec = if wall_seconds > 0.0 {
        args.sessions as f64 / wall_seconds
    } else {
        0.0
    };
    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(json, "  \"bench\": \"service_load\",");
    let _ = writeln!(json, "  \"unit\": \"sweeps\",");
    let _ = writeln!(
        json,
        "  \"config\": {{\"sessions\": {}, \"vars\": {}, \"seed\": {}, \"workers\": {}, \
         \"max_active\": {}, \"session_budget\": {}}},",
        args.sessions,
        args.vars,
        args.seed,
        args.workers.max(1),
        args.active.max(1),
        args.budget
    );
    let _ = writeln!(
        json,
        "  \"mix\": [\"awc_resolvent\", \"awc_mcs\", \"dba_per_nogood\", \"awc_resolvent_lossy\"],"
    );
    let _ = writeln!(json, "  \"results\": {{");
    let _ = writeln!(json, "    \"total_sweeps\": {sweeps},");
    let _ = writeln!(
        json,
        "    \"latency_sweeps_p50\": {},",
        percentile(&latencies, 50)
    );
    let _ = writeln!(
        json,
        "    \"latency_sweeps_p99\": {},",
        percentile(&latencies, 99)
    );
    let _ = writeln!(
        json,
        "    \"latency_sweeps_max\": {},",
        latencies.last().copied().unwrap_or(0)
    );
    let _ = writeln!(json, "    \"wall_seconds\": {wall_seconds:.3},");
    let _ = writeln!(json, "    \"sessions_per_sec\": {per_sec:.1},");
    let _ = writeln!(
        json,
        "    \"solved\": {solved}, \"cutoff\": {cutoff}, \"insoluble\": {insoluble}, \
         \"failed\": {failed}"
    );
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");

    if let Some(path) = &args.bench_out {
        std::fs::write(path, &json).map_err(|e| format!("writing {}: {e}", path.display()))?;
    }
    Ok(json)
}

fn main() -> ExitCode {
    match run() {
        Ok(json) => {
            print!("{json}");
            ExitCode::SUCCESS
        }
        Err(message) => {
            eprintln!("discsp-load: {message}");
            ExitCode::FAILURE
        }
    }
}
