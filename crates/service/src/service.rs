//! The scheduler: one [`SolveService`] multiplexing many sessions.
//!
//! Each [`SolveService::sweep`] promotes parked sessions into free
//! active slots (FIFO), then advances every active session exactly one
//! wave, then reaps the finished ones. The sweep counter is the
//! service's virtual clock: a session's latency is
//! `completed_sweep - submitted_sweep`, which makes every latency
//! number a pure function of the workload — independent of wall time
//! *and* of how many worker threads polled the table, because sessions
//! share no state and completions are recorded in ascending-id order.

use std::collections::BTreeMap;

use discsp_runtime::{RuntimeError, VirtualReport};

use crate::session::{build_pump, SessionPoll, SessionSnapshot, SessionSpec};
use crate::table::{SessionTable, Slot};
use crate::{ServiceError, SessionId};

/// Admission and scheduling knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Sessions polled concurrently. Admissions beyond this park in the
    /// FIFO pending queue.
    pub max_active: usize,
    /// Parked admissions beyond which submits are refused with
    /// [`ServiceError::Overloaded`]. The global budget is
    /// `max_active + max_pending`.
    pub max_pending: usize,
    /// Per-session in-flight message budget. Sends past it spill to the
    /// session's deterministic parking queue. The default (`u64::MAX`)
    /// disables backpressure, making every session step-for-step
    /// identical to `solve_virtual`.
    pub session_budget: u64,
    /// Worker threads polling the active table each sweep. Results are
    /// identical for any value; this is purely a throughput knob.
    pub workers: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            max_active: 64,
            max_pending: 4096,
            session_budget: u64::MAX,
            workers: 1,
        }
    }
}

/// A finished session's report plus its service-clock timestamps.
#[derive(Debug, Clone)]
pub struct SessionResult {
    /// The full report, field-identical to what `solve_virtual` would
    /// have produced for the same `(spec, budget)`.
    pub report: VirtualReport,
    /// Sweep at which the session was admitted.
    pub submitted_sweep: u64,
    /// Sweep at which it finished.
    pub completed_sweep: u64,
}

impl SessionResult {
    /// Queueing + solve latency in sweeps (the deterministic latency
    /// unit reported by `discsp-load`).
    pub fn latency_sweeps(&self) -> u64 {
        self.completed_sweep - self.submitted_sweep
    }
}

/// The multi-session scheduler. See the crate docs for the big picture.
pub struct SolveService {
    config: ServiceConfig,
    table: SessionTable,
    sweep: u64,
    completed: BTreeMap<SessionId, SessionResult>,
    failed: BTreeMap<SessionId, ServiceError>,
}

impl SolveService {
    /// A fresh service with no sessions.
    pub fn new(config: ServiceConfig) -> Self {
        SolveService {
            config,
            table: SessionTable::new(),
            sweep: 0,
            completed: BTreeMap::new(),
            failed: BTreeMap::new(),
        }
    }

    /// The scheduler's virtual clock: sweeps executed so far.
    pub fn sweeps(&self) -> u64 {
        self.sweep
    }

    /// Sessions currently polled each sweep.
    pub fn active_sessions(&self) -> usize {
        self.table.active_len()
    }

    /// Admitted sessions waiting for an active slot.
    pub fn pending_sessions(&self) -> usize {
        self.table.pending_len()
    }

    /// Whether the service holds no live sessions.
    pub fn is_idle(&self) -> bool {
        self.table.is_empty()
    }

    /// Whether a drain has been requested and everything in flight has
    /// finished.
    pub fn is_drained(&self) -> bool {
        self.table.draining() && self.table.is_empty()
    }

    /// Admits a session. If an active slot is free the session occupies
    /// it immediately; otherwise it parks in the FIFO pending queue.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Draining`] after [`Self::begin_drain`];
    /// [`ServiceError::DuplicateSession`] while `id` is live or its
    /// result is still unclaimed; [`ServiceError::Overloaded`] past the
    /// global budget; [`ServiceError::BadSpec`] when the solver rejects
    /// the spec.
    pub fn submit(&mut self, id: SessionId, spec: SessionSpec) -> Result<(), ServiceError> {
        self.admit(id, spec, 0)
    }

    fn admit(
        &mut self,
        id: SessionId,
        spec: SessionSpec,
        fast_forward: u64,
    ) -> Result<(), ServiceError> {
        if self.table.draining() {
            return Err(ServiceError::Draining);
        }
        if self.table.contains(id) || self.completed.contains_key(&id) || self.failed.contains_key(&id)
        {
            return Err(ServiceError::DuplicateSession { id });
        }
        let admitted = self.table.active_len() + self.table.pending_len();
        if admitted >= self.config.max_active + self.config.max_pending {
            return Err(ServiceError::Overloaded);
        }
        let budget = self.config.session_budget;
        let mut pump = build_pump(&spec, budget)?;
        for _ in 0..fast_forward {
            pump.poll()?;
        }
        let slot = Slot {
            spec,
            pump,
            budget,
            submitted_sweep: self.sweep,
        };
        if self.table.active_len() < self.config.max_active {
            self.table.insert_active(id, slot);
        } else {
            self.table.park(id, slot);
        }
        Ok(())
    }

    /// Stops admitting new sessions. Everything already admitted keeps
    /// running to completion; nothing in flight is lost.
    pub fn begin_drain(&mut self) {
        self.table.begin_drain();
    }

    /// [`Self::begin_drain`] followed by sweeping until idle. Returns
    /// the number of sweeps it took.
    pub fn drain(&mut self) -> u64 {
        self.begin_drain();
        self.run_until_idle()
    }

    /// Sweeps until no live session remains. Returns the sweep count.
    pub fn run_until_idle(&mut self) -> u64 {
        let mut sweeps = 0;
        while !self.is_idle() {
            self.sweep();
            sweeps += 1;
        }
        sweeps
    }

    /// Cancels a live session, returning a snapshot from which
    /// [`Self::restore`] (on this or any other service) can resume it.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownSession`] when `id` is not live.
    pub fn cancel(&mut self, id: SessionId) -> Result<SessionSnapshot, ServiceError> {
        let Some(mut slot) = self.table.remove(id) else {
            return Err(ServiceError::UnknownSession { id });
        };
        Ok(SessionSnapshot {
            spec: slot.spec.clone(),
            budget: slot.budget,
            waves: slot.pump.waves(),
            events: slot.pump.trace_so_far(),
        })
    }

    /// Captures a live session without disturbing it.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownSession`] when `id` is not live.
    pub fn snapshot(&mut self, id: SessionId) -> Result<SessionSnapshot, ServiceError> {
        let Some(slot) = self.table.get_mut(id) else {
            return Err(ServiceError::UnknownSession { id });
        };
        Ok(SessionSnapshot {
            spec: slot.spec.clone(),
            budget: slot.budget,
            waves: slot.pump.waves(),
            events: slot.pump.trace_so_far(),
        })
    }

    /// Resumes a snapshotted session on this service: rebuilds the
    /// driver from the spec, fast-forwards it by the snapshot's wave
    /// count, and — when the spec recorded a trace — verifies the
    /// replayed event log equals the snapshot's bit-for-bit before
    /// admitting the session. Determinism makes this sound: the same
    /// `(spec, budget)` replays the same waves everywhere.
    ///
    /// # Errors
    ///
    /// The admission errors of [`Self::submit`], plus
    /// [`ServiceError::RestoreDiverged`] when the replayed log differs
    /// from the recorded one.
    pub fn restore(&mut self, id: SessionId, snapshot: &SessionSnapshot) -> Result<(), ServiceError> {
        if self.table.draining() {
            return Err(ServiceError::Draining);
        }
        if self.table.contains(id) || self.completed.contains_key(&id) || self.failed.contains_key(&id)
        {
            return Err(ServiceError::DuplicateSession { id });
        }
        let admitted = self.table.active_len() + self.table.pending_len();
        if admitted >= self.config.max_active + self.config.max_pending {
            return Err(ServiceError::Overloaded);
        }
        let verify = snapshot.spec.config.record_trace;
        let mut pump = build_pump(&snapshot.spec, snapshot.budget)?;
        let mut verified = 0usize;
        for wave in 0..snapshot.waves {
            pump.poll()?;
            if verify {
                let replayed = pump.trace_so_far();
                let matches = snapshot
                    .events
                    .get(verified..replayed.len())
                    .zip(replayed.get(verified..))
                    .is_some_and(|(expected, got)| expected == got);
                if !matches {
                    return Err(ServiceError::RestoreDiverged { wave: wave + 1 });
                }
                verified = replayed.len();
            }
        }
        if verify && verified != snapshot.events.len() {
            return Err(ServiceError::RestoreDiverged {
                wave: snapshot.waves,
            });
        }
        let slot = Slot {
            spec: snapshot.spec.clone(),
            pump,
            budget: snapshot.budget,
            submitted_sweep: self.sweep,
        };
        if self.table.active_len() < self.config.max_active {
            self.table.insert_active(id, slot);
        } else {
            self.table.park(id, slot);
        }
        Ok(())
    }

    /// One scheduler step: promote parked sessions into free active
    /// slots (FIFO), advance every active session one wave (sharded
    /// across [`ServiceConfig::workers`] threads), reap completions.
    pub fn sweep(&mut self) {
        self.sweep += 1;
        let now = self.sweep;
        while self.table.active_len() < self.config.max_active {
            let Some((id, slot)) = self.table.promote() else {
                break;
            };
            self.table.insert_active(id, slot);
        }

        let workers = self.config.workers.max(1);
        let mut outcomes: Vec<(SessionId, Result<SessionPoll, RuntimeError>)> = Vec::new();
        if workers == 1 {
            for (id, slot) in self.table.active_iter_mut() {
                outcomes.push((id, slot.pump.poll()));
            }
        } else {
            // Shard by table position over the ascending-id order. Each
            // worker owns disjoint slots (sessions share no state), and
            // the ascending-id sort below erases the sharding from the
            // observable outcome.
            let mut shards: Vec<Vec<(SessionId, &mut Slot)>> =
                (0..workers).map(|_| Vec::new()).collect();
            for (position, entry) in self.table.active_iter_mut().enumerate() {
                shards[position % workers].push(entry);
            }
            let collected: Vec<Vec<(SessionId, Result<SessionPoll, RuntimeError>)>> =
                std::thread::scope(|scope| {
                    let handles: Vec<_> = shards
                        .into_iter()
                        .map(|shard| {
                            scope.spawn(move || {
                                shard
                                    .into_iter()
                                    .map(|(id, slot)| (id, slot.pump.poll()))
                                    .collect::<Vec<_>>()
                            })
                        })
                        .collect();
                    handles
                        .into_iter()
                        .map(|handle| match handle.join() {
                            Ok(results) => results,
                            Err(payload) => std::panic::resume_unwind(payload),
                        })
                        .collect()
                });
            for mut shard in collected {
                outcomes.append(&mut shard);
            }
            outcomes.sort_by_key(|(id, _)| *id);
        }

        for (id, outcome) in outcomes {
            match outcome {
                Ok(SessionPoll::Running) => {}
                Ok(SessionPoll::Finished) => {
                    if let Some(mut slot) = self.table.remove_active(id) {
                        if let Some(report) = slot.pump.take_report() {
                            self.completed.insert(
                                id,
                                SessionResult {
                                    report,
                                    submitted_sweep: slot.submitted_sweep,
                                    completed_sweep: now,
                                },
                            );
                        }
                    }
                }
                Err(e) => {
                    self.table.remove_active(id);
                    self.failed.insert(id, ServiceError::Runtime(e));
                }
            }
        }
    }

    /// Finished sessions whose results have not been claimed yet.
    pub fn completed(&self) -> &BTreeMap<SessionId, SessionResult> {
        &self.completed
    }

    /// Claims one session's result, freeing its id for reuse.
    pub fn take_result(&mut self, id: SessionId) -> Option<SessionResult> {
        self.completed.remove(&id)
    }

    /// Claims every finished session's result at once.
    pub fn take_completed(&mut self) -> BTreeMap<SessionId, SessionResult> {
        std::mem::take(&mut self.completed)
    }

    /// Sessions that died on a runtime error, with the error.
    pub fn failed(&self) -> &BTreeMap<SessionId, ServiceError> {
        &self.failed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use discsp_awc::AwcConfig;
    use discsp_core::{Assignment, Domain, Value};

    fn spec(seed: u64) -> SessionSpec {
        let mut b = discsp_core::DistributedCsp::builder();
        let vars: Vec<_> = (0..4).map(|_| b.variable(Domain::new(3))).collect();
        for i in 0..4 {
            let (x, y) = (vars[i], vars[(i + 1) % 4]);
            b.not_equal(x, y).expect("edge");
        }
        SessionSpec {
            problem: b.build().expect("ring"),
            init: Assignment::total((0..4).map(|_| Value::new(0))),
            algo: discsp_net::AlgoSpec::Awc(AwcConfig::resolvent()),
            config: discsp_runtime::VirtualConfig {
                seed,
                ..Default::default()
            },
        }
    }

    #[test]
    fn admission_parks_beyond_active_and_refuses_beyond_global() {
        let mut service = SolveService::new(ServiceConfig {
            max_active: 2,
            max_pending: 1,
            ..Default::default()
        });
        service.submit(1, spec(1)).expect("active 1");
        service.submit(2, spec(2)).expect("active 2");
        service.submit(3, spec(3)).expect("parked");
        assert_eq!(service.active_sessions(), 2);
        assert_eq!(service.pending_sessions(), 1);
        assert!(matches!(
            service.submit(4, spec(4)),
            Err(ServiceError::Overloaded)
        ));
        assert!(matches!(
            service.submit(2, spec(5)),
            Err(ServiceError::DuplicateSession { id: 2 })
        ));
        service.run_until_idle();
        assert_eq!(service.completed().len(), 3);
    }

    #[test]
    fn drain_refuses_new_sessions_and_loses_nothing() {
        let mut service = SolveService::new(ServiceConfig::default());
        for id in 1..=5 {
            service.submit(id, spec(id)).expect("submit");
        }
        service.begin_drain();
        assert!(matches!(
            service.submit(99, spec(99)),
            Err(ServiceError::Draining)
        ));
        service.run_until_idle();
        assert!(service.is_drained());
        assert_eq!(service.completed().len(), 5, "zero sessions lost");
    }
}
