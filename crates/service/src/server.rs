//! TCP front-end: [`serve`] exposes a [`SolveService`] over the v3
//! multiplexed wire protocol, and [`ServiceClient`] drives it.
//!
//! Threading model: one **scheduler thread** owns the service and every
//! connection's write half, so all scheduling and all responses are
//! single-threaded and deterministic with respect to command arrival
//! order. Each connection gets a **reader thread** that decodes
//! [`Mux<ServiceFrame>`] frames and forwards them over a channel; an
//! **accept thread** admits connections until drain. Session results
//! are routed back to the connection that submitted the session; a
//! dropped connection cancels its in-flight sessions to free capacity.
//!
//! This is the one real-time module of the crate (sockets, timeouts,
//! thread sleeps) — everything it wraps stays on the virtual clock.

use std::collections::BTreeMap;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

use discsp_core::DistributedCsp;
use discsp_net::{
    FrameConn, Mux, NetError, RejectReason, ServiceFrame, SessionOutcome, SubmitSpec,
    SESSION_NONE,
};
use discsp_runtime::VirtualConfig;

use crate::service::{ServiceConfig, SolveService};
use crate::session::SessionSpec;
use crate::{ServiceError, SessionId};

/// Knobs for [`serve`].
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Scheduler configuration for the underlying [`SolveService`].
    pub service: ServiceConfig,
    /// I/O timeout applied to response writes (`ZERO` blocks forever).
    /// A client that stops reading fails its own connection instead of
    /// wedging the scheduler.
    pub io_timeout: Duration,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            service: ServiceConfig::default(),
            io_timeout: Duration::from_secs(5),
        }
    }
}

/// A handle on a running service: its bound address and its scheduler
/// thread. The thread exits after a drain completes.
pub struct ServiceHandle {
    addr: SocketAddr,
    thread: JoinHandle<()>,
}

impl ServiceHandle {
    /// The address clients should connect to.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Waits for the scheduler to exit (it does after a client-issued
    /// drain finishes).
    pub fn join(self) {
        let _ = self.thread.join();
    }
}

/// What reader threads feed the scheduler.
enum Cmd {
    /// A new connection's write half.
    Conn { conn: u64, writer: FrameConn },
    /// A decoded frame from a connection. Boxed: a `Submit` carries the
    /// whole problem, dwarfing the other variants.
    Frame {
        conn: u64,
        session: u64,
        frame: Box<ServiceFrame>,
    },
    /// A connection's read half died (closed or garbage).
    Gone { conn: u64 },
}

/// Builds the in-process [`SessionSpec`] a wire [`SubmitSpec`] denotes.
///
/// # Errors
///
/// [`ServiceError::BadSpec`] when the problem fails to build (owner /
/// domain mismatch, malformed nogood, out-of-domain initial value is
/// caught later by the solver).
fn session_spec(spec: &SubmitSpec) -> Result<SessionSpec, ServiceError> {
    if spec.domains.len() != spec.owners.len() {
        return Err(ServiceError::BadSpec {
            detail: format!(
                "{} domains but {} owners",
                spec.domains.len(),
                spec.owners.len()
            ),
        });
    }
    let mut builder = DistributedCsp::builder();
    for (domain, owner) in spec.domains.iter().zip(&spec.owners) {
        builder.variable_owned_by(*domain, *owner);
    }
    for nogood in &spec.nogoods {
        builder
            .nogood(nogood.clone())
            .map_err(|e| ServiceError::BadSpec {
                detail: e.to_string(),
            })?;
    }
    let problem = builder.build().map_err(|e| ServiceError::BadSpec {
        detail: e.to_string(),
    })?;
    Ok(SessionSpec {
        problem,
        init: spec.init.clone(),
        algo: spec.algo,
        config: VirtualConfig {
            seed: spec.seed,
            link: spec.link,
            schedule: None,
            max_ticks: spec.max_ticks,
            max_nudges: spec.max_nudges,
            // Mirror the in-process runtimes: AWC terminates on
            // quiescence; `build_pump` forces this on for breakout.
            stop_on_first_solution: false,
            record_trace: spec.record_trace,
        },
    })
}

fn reject_reason(err: &ServiceError) -> RejectReason {
    match err {
        ServiceError::Overloaded => RejectReason::Overloaded,
        ServiceError::Draining => RejectReason::Draining,
        ServiceError::DuplicateSession { .. } => RejectReason::DuplicateSession,
        _ => RejectReason::BadSpec,
    }
}

/// Serves a [`SolveService`] on `listener` until a client drains it.
/// Returns immediately; the returned handle's thread runs the
/// scheduler.
///
/// # Errors
///
/// [`ServiceError::Net`] if the listener's address cannot be read or it
/// cannot be switched to non-blocking accepts.
pub fn serve(listener: TcpListener, options: ServeOptions) -> Result<ServiceHandle, ServiceError> {
    let addr = listener.local_addr().map_err(|error| NetError::Io {
        context: "reading the service listener address",
        error,
    })?;
    listener
        .set_nonblocking(true)
        .map_err(|error| NetError::Io {
            context: "switching the service listener to non-blocking accepts",
            error,
        })?;

    let (tx, rx) = mpsc::channel::<Cmd>();
    let stop = Arc::new(AtomicBool::new(false));

    let accept_stop = Arc::clone(&stop);
    let accept_tx = tx.clone();
    let io_timeout = options.io_timeout;
    thread::spawn(move || {
        let mut next_conn: u64 = 0;
        while !accept_stop.load(Ordering::SeqCst) {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    let conn = next_conn;
                    next_conn += 1;
                    let Ok(read_half) = stream.try_clone() else {
                        continue;
                    };
                    let Ok(writer) = FrameConn::new(stream, io_timeout) else {
                        continue;
                    };
                    // Reads block until the client sends or hangs up.
                    let Ok(mut reader) = FrameConn::new(read_half, Duration::ZERO) else {
                        continue;
                    };
                    if accept_tx.send(Cmd::Conn { conn, writer }).is_err() {
                        return;
                    }
                    let reader_tx = accept_tx.clone();
                    thread::spawn(move || loop {
                        match reader.recv::<Mux<ServiceFrame>>() {
                            Ok(mux) => {
                                if reader_tx
                                    .send(Cmd::Frame {
                                        conn,
                                        session: mux.session,
                                        frame: Box::new(mux.frame),
                                    })
                                    .is_err()
                                {
                                    return;
                                }
                            }
                            Err(_) => {
                                let _ = reader_tx.send(Cmd::Gone { conn });
                                return;
                            }
                        }
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    thread::sleep(Duration::from_millis(2));
                }
                Err(_) => return,
            }
        }
    });

    let service_config = options.service.clone();
    let scheduler = thread::spawn(move || {
        run_scheduler(SolveService::new(service_config), rx, &stop);
    });

    Ok(ServiceHandle {
        addr,
        thread: scheduler,
    })
}

/// The scheduler loop: ingest commands, sweep, deliver, drain.
fn run_scheduler(mut service: SolveService, rx: mpsc::Receiver<Cmd>, stop: &AtomicBool) {
    let mut writers: BTreeMap<u64, FrameConn> = BTreeMap::new();
    let mut owners: BTreeMap<SessionId, u64> = BTreeMap::new();
    let mut drainers: Vec<(u64, u64)> = Vec::new();

    loop {
        // Block briefly when idle instead of spinning; ingest
        // everything queued either way.
        if service.is_idle() && !service.is_drained() {
            match rx.recv_timeout(Duration::from_millis(10)) {
                Ok(cmd) => handle(cmd, &mut service, &mut writers, &mut owners, &mut drainers),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        while let Ok(cmd) = rx.try_recv() {
            handle(cmd, &mut service, &mut writers, &mut owners, &mut drainers);
        }

        if !service.is_idle() {
            service.sweep();
        }

        for (id, result) in service.take_completed() {
            let Some(conn) = owners.remove(&id) else {
                continue;
            };
            let outcome = SessionOutcome {
                metrics: result.report.outcome.metrics,
                solution: result.report.outcome.solution,
                ticks: result.report.ticks,
                activations: result.report.activations,
                nudges: result.report.nudges,
                trace: result.report.trace,
            };
            send_to(
                &mut writers,
                conn,
                &Mux::new(id, ServiceFrame::Done { outcome }),
            );
        }

        if service.is_drained() {
            for (conn, token) in drainers.drain(..) {
                send_to(&mut writers, conn, &Mux::new(token, ServiceFrame::Drained));
            }
            stop.store(true, Ordering::SeqCst);
            break;
        }
    }
    stop.store(true, Ordering::SeqCst);
}

fn send_to(writers: &mut BTreeMap<u64, FrameConn>, conn: u64, frame: &Mux<ServiceFrame>) {
    let Some(writer) = writers.get_mut(&conn) else {
        return;
    };
    if writer.send(frame).is_err() {
        writers.remove(&conn);
    }
}

fn handle(
    cmd: Cmd,
    service: &mut SolveService,
    writers: &mut BTreeMap<u64, FrameConn>,
    owners: &mut BTreeMap<SessionId, u64>,
    drainers: &mut Vec<(u64, u64)>,
) {
    match cmd {
        Cmd::Conn { conn, writer } => {
            writers.insert(conn, writer);
        }
        Cmd::Gone { conn } => {
            writers.remove(&conn);
            // Cancel the dead connection's sessions: nobody is left to
            // claim their results, and capacity matters under load.
            let orphaned: Vec<SessionId> = owners
                .iter()
                .filter(|(_, c)| **c == conn)
                .map(|(id, _)| *id)
                .collect();
            for id in orphaned {
                owners.remove(&id);
                let _ = service.cancel(id);
            }
        }
        Cmd::Frame {
            conn,
            session,
            frame,
        } => match *frame {
            ServiceFrame::Submit { spec } => {
                if session == SESSION_NONE {
                    // 0 marks a non-multiplexed v2 peer; it cannot name
                    // a session.
                    send_to(
                        writers,
                        conn,
                        &Mux::new(
                            session,
                            ServiceFrame::Rejected {
                                reason: RejectReason::BadSpec,
                            },
                        ),
                    );
                    return;
                }
                let admitted = session_spec(&spec)
                    .and_then(|session_spec| service.submit(session, session_spec));
                let reply = match admitted {
                    Ok(()) => {
                        owners.insert(session, conn);
                        ServiceFrame::Accepted
                    }
                    Err(e) => ServiceFrame::Rejected {
                        reason: reject_reason(&e),
                    },
                };
                send_to(writers, conn, &Mux::new(session, reply));
            }
            ServiceFrame::Cancel => {
                let reply = match service.cancel(session) {
                    Ok(_snapshot) => {
                        owners.remove(&session);
                        ServiceFrame::Cancelled
                    }
                    Err(_) => ServiceFrame::Rejected {
                        reason: RejectReason::BadSpec,
                    },
                };
                send_to(writers, conn, &Mux::new(session, reply));
            }
            ServiceFrame::Drain => {
                service.begin_drain();
                drainers.push((conn, session));
            }
            // Response frames from a client are protocol noise.
            ServiceFrame::Accepted
            | ServiceFrame::Rejected { .. }
            | ServiceFrame::Done { .. }
            | ServiceFrame::Cancelled
            | ServiceFrame::Drained => {}
        },
    }
}

/// A blocking client for a served [`SolveService`]. One TCP connection
/// multiplexes any number of sessions; out-of-order [`ServiceFrame::Done`]
/// results are stashed until [`ServiceClient::wait`] claims them.
pub struct ServiceClient {
    conn: FrameConn,
    done: BTreeMap<u64, SessionOutcome>,
}

impl ServiceClient {
    /// Connects to a served address. Reads block until the service
    /// responds.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Net`] on connect or socket-option failure.
    pub fn connect(addr: SocketAddr) -> Result<Self, ServiceError> {
        let stream = TcpStream::connect(addr).map_err(|error| NetError::Io {
            context: "connecting to the solve service",
            error,
        })?;
        Ok(ServiceClient {
            conn: FrameConn::new(stream, Duration::ZERO)?,
            done: BTreeMap::new(),
        })
    }

    fn recv(&mut self) -> Result<Mux<ServiceFrame>, ServiceError> {
        Ok(self.conn.recv::<Mux<ServiceFrame>>()?)
    }

    fn stash(&mut self, session: u64, frame: ServiceFrame) {
        if let ServiceFrame::Done { outcome } = frame {
            self.done.insert(session, outcome);
        }
    }

    /// Submits a session and waits for its admission verdict.
    ///
    /// # Errors
    ///
    /// The service's rejection mapped back to a [`ServiceError`]
    /// (`Overloaded`, `Draining`, `DuplicateSession`, `BadSpec`), or
    /// [`ServiceError::Net`] on transport failure.
    pub fn submit(&mut self, session: u64, spec: &SubmitSpec) -> Result<(), ServiceError> {
        self.conn.send(&Mux::new(
            session,
            ServiceFrame::Submit { spec: spec.clone() },
        ))?;
        loop {
            let mux = self.recv()?;
            match mux.frame {
                ServiceFrame::Accepted if mux.session == session => return Ok(()),
                ServiceFrame::Rejected { reason } if mux.session == session => {
                    return Err(match reason {
                        RejectReason::Overloaded => ServiceError::Overloaded,
                        RejectReason::Draining => ServiceError::Draining,
                        RejectReason::DuplicateSession => {
                            ServiceError::DuplicateSession { id: session }
                        }
                        RejectReason::BadSpec => ServiceError::BadSpec {
                            detail: "rejected by the service".into(),
                        },
                    });
                }
                frame => self.stash(mux.session, frame),
            }
        }
    }

    /// Waits for a submitted session's result.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Net`] on transport failure (including the
    /// service hanging up before the result arrives).
    pub fn wait(&mut self, session: u64) -> Result<SessionOutcome, ServiceError> {
        loop {
            if let Some(outcome) = self.done.remove(&session) {
                return Ok(outcome);
            }
            let mux = self.recv()?;
            let frame_session = mux.session;
            self.stash(frame_session, mux.frame);
        }
    }

    /// Cancels a live session.
    ///
    /// # Errors
    ///
    /// [`ServiceError::UnknownSession`] when the service does not know
    /// it; [`ServiceError::Net`] on transport failure.
    pub fn cancel(&mut self, session: u64) -> Result<(), ServiceError> {
        self.conn.send(&Mux::new(session, ServiceFrame::Cancel))?;
        loop {
            let mux = self.recv()?;
            match mux.frame {
                ServiceFrame::Cancelled if mux.session == session => return Ok(()),
                ServiceFrame::Rejected { .. } if mux.session == session => {
                    return Err(ServiceError::UnknownSession { id: session });
                }
                frame => self.stash(mux.session, frame),
            }
        }
    }

    /// Asks the service to drain and waits until it has: every
    /// in-flight session finishes (their results are stashed for
    /// [`ServiceClient::wait`]), then the service confirms and shuts
    /// down. `token` correlates the confirmation; any value works.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Net`] on transport failure.
    pub fn drain(&mut self, token: u64) -> Result<(), ServiceError> {
        self.conn.send(&Mux::new(token, ServiceFrame::Drain))?;
        loop {
            let mux = self.recv()?;
            match mux.frame {
                ServiceFrame::Drained if mux.session == token => return Ok(()),
                frame => self.stash(mux.session, frame),
            }
        }
    }
}
