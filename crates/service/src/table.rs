//! Session slot bookkeeping: who is active, who is parked, and in what
//! order parked sessions get promoted.
//!
//! The table is pure data structure — admission *policy* (budgets,
//! drain refusal, duplicate detection) lives in
//! [`SolveService`](crate::SolveService). Everything here is ordered:
//! active sessions sit in a `BTreeMap` (ascending-id iteration gives
//! the scheduler a deterministic poll order) and parked sessions in a
//! FIFO `VecDeque` (first admitted, first promoted).

use std::collections::{BTreeMap, VecDeque};

use crate::session::{Pump, SessionSpec};
use crate::SessionId;

/// One admitted session: its defining spec (kept for snapshots), its
/// pollable state machine, and the sweep at which it was submitted.
pub(crate) struct Slot {
    pub spec: SessionSpec,
    pub pump: Box<dyn Pump>,
    pub budget: u64,
    pub submitted_sweep: u64,
}

/// The session table. See the module docs for the ordering contract.
#[derive(Default)]
pub(crate) struct SessionTable {
    active: BTreeMap<SessionId, Slot>,
    pending: VecDeque<(SessionId, Slot)>,
    draining: bool,
}

impl SessionTable {
    pub fn new() -> Self {
        SessionTable::default()
    }

    /// Whether `id` names a live (active or parked) session.
    pub fn contains(&self, id: SessionId) -> bool {
        self.active.contains_key(&id) || self.pending.iter().any(|(pid, _)| *pid == id)
    }

    pub fn active_len(&self) -> usize {
        self.active.len()
    }

    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    pub fn is_empty(&self) -> bool {
        self.active.is_empty() && self.pending.is_empty()
    }

    pub fn draining(&self) -> bool {
        self.draining
    }

    pub fn begin_drain(&mut self) {
        self.draining = true;
    }

    pub fn insert_active(&mut self, id: SessionId, slot: Slot) {
        self.active.insert(id, slot);
    }

    pub fn park(&mut self, id: SessionId, slot: Slot) {
        self.pending.push_back((id, slot));
    }

    /// Promotes the oldest parked session, if any.
    pub fn promote(&mut self) -> Option<(SessionId, Slot)> {
        self.pending.pop_front()
    }

    /// Removes a session wherever it lives (active slot or parking
    /// queue). Returns `None` for unknown ids.
    pub fn remove(&mut self, id: SessionId) -> Option<Slot> {
        if let Some(slot) = self.active.remove(&id) {
            return Some(slot);
        }
        let position = self.pending.iter().position(|(pid, _)| *pid == id)?;
        self.pending.remove(position).map(|(_, slot)| slot)
    }

    pub fn get_mut(&mut self, id: SessionId) -> Option<&mut Slot> {
        if let Some(slot) = self.active.get_mut(&id) {
            return Some(slot);
        }
        self.pending
            .iter_mut()
            .find(|(pid, _)| *pid == id)
            .map(|(_, slot)| slot)
    }

    /// Mutable access to every active slot, ascending by session id —
    /// the scheduler's deterministic poll order.
    pub fn active_iter_mut(&mut self) -> impl Iterator<Item = (SessionId, &mut Slot)> {
        self.active.iter_mut().map(|(id, slot)| (*id, slot))
    }

    pub fn remove_active(&mut self, id: SessionId) -> Option<Slot> {
        self.active.remove(&id)
    }
}
