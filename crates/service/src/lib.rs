//! Multi-session DisCSP solve service.
//!
//! Every other runtime in this workspace runs **one** solve per
//! executor. This crate turns the deterministic virtual executor into a
//! long-running **service**: a [`SolveService`] owns a table of
//! concurrent sessions — each with its own
//! [`Router`](discsp_runtime::Router), seed,
//! [`LinkPolicy`](discsp_runtime::LinkPolicy), and trace sink — and a
//! poll-based scheduler advances every session one wave per sweep, so
//! one coordinator thread-pool serves thousands of interleaved sessions
//! without ever mixing their state (proved bit-for-bit against
//! `solve_virtual` in the crate's tests).
//!
//! * **Admission control and backpressure.** A bounded number of
//!   sessions run concurrently; admitted sessions beyond that park in a
//!   deterministic FIFO queue, and submits past the global budget are
//!   refused with [`ServiceError::Overloaded`]. Inside a session, a
//!   bounded in-flight message budget spills excess sends to a parking
//!   queue drained as the router's queue empties.
//! * **Lifecycle.** Graceful [`SolveService::drain`] stops admitting
//!   and finishes everything in flight (losing nothing), sessions can
//!   be cancelled mid-run, and a cancelled or live session yields a
//!   [`SessionSnapshot`] that [`SolveService::restore`] replays onto
//!   another coordinator — verifying the replayed event log prefix
//!   bit-for-bit before resuming.
//! * **Serving.** [`serve`] exposes the whole thing over TCP using the
//!   v3 multiplexed wire frames from `discsp-net`
//!   ([`ServiceFrame`](discsp_net::ServiceFrame)); `discsp-load` (this
//!   crate's binary) hammers a service with a mixed workload and
//!   reports sessions/sec and p50/p99 latency.
//!
//! The scheduler's sweep counter is the service's **virtual clock**:
//! session latency is measured in sweeps, which makes every latency
//! number in `BENCH_service.json` deterministic for a fixed workload.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

use discsp_runtime::RuntimeError;

mod server;
mod service;
mod session;
mod table;

pub use server::{serve, ServeOptions, ServiceClient, ServiceHandle};
pub use service::{ServiceConfig, SessionResult, SolveService};
pub use session::{build_pump, Pump, SessionPoll, SessionSnapshot, SessionSpec};

/// Identifies one session inside a service. `0` is reserved on the wire
/// (it marks a non-multiplexed v2 peer), so the TCP server rejects it;
/// in-process users may pick any value.
pub type SessionId = u64;

/// Everything that can go wrong inside the solve service.
#[derive(Debug)]
pub enum ServiceError {
    /// The global session budget (active + parked admissions) is
    /// exhausted. Backpressure: retry after completions free capacity.
    Overloaded,
    /// The service is draining and admits no new sessions.
    Draining,
    /// A submit reused a session ID that is still live.
    DuplicateSession {
        /// The contested ID.
        id: SessionId,
    },
    /// The session ID names no live session.
    UnknownSession {
        /// The unknown ID.
        id: SessionId,
    },
    /// The submitted spec failed validation.
    BadSpec {
        /// What was wrong with it.
        detail: String,
    },
    /// A snapshot failed to replay onto the restoring coordinator: the
    /// replayed event log diverged from the recorded one.
    RestoreDiverged {
        /// The first replayed wave at which the logs disagreed, or the
        /// wave count if the replayed log was a different length.
        wave: u64,
    },
    /// The session's routing machinery failed mid-run.
    Runtime(RuntimeError),
    /// A client-side transport failure talking to a remote service.
    Net(discsp_net::NetError),
}

impl fmt::Display for ServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceError::Overloaded => f.write_str("service overloaded: global session budget exhausted"),
            ServiceError::Draining => f.write_str("service draining: no new sessions admitted"),
            ServiceError::DuplicateSession { id } => {
                write!(f, "session {id} is already live")
            }
            ServiceError::UnknownSession { id } => write!(f, "no live session {id}"),
            ServiceError::BadSpec { detail } => write!(f, "bad session spec: {detail}"),
            ServiceError::RestoreDiverged { wave } => {
                write!(f, "snapshot replay diverged from the recorded log at wave {wave}")
            }
            ServiceError::Runtime(e) => write!(f, "session runtime error: {e}"),
            ServiceError::Net(e) => write!(f, "service transport error: {e}"),
        }
    }
}

impl std::error::Error for ServiceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServiceError::Runtime(e) => Some(e),
            ServiceError::Net(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RuntimeError> for ServiceError {
    fn from(e: RuntimeError) -> Self {
        ServiceError::Runtime(e)
    }
}

impl From<discsp_net::NetError> for ServiceError {
    fn from(e: discsp_net::NetError) -> Self {
        ServiceError::Net(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_their_context() {
        assert!(ServiceError::Overloaded.to_string().contains("budget"));
        let e = ServiceError::DuplicateSession { id: 7 };
        assert!(e.to_string().contains('7'));
        let e = ServiceError::BadSpec {
            detail: "empty problem".into(),
        };
        assert!(e.to_string().contains("empty problem"));
        let e = ServiceError::RestoreDiverged { wave: 3 };
        assert!(e.to_string().contains('3'));
    }
}
