//! The served stack over real sockets: many sessions multiplexed on
//! ONE TCP connection, results matched back by session id, rejections
//! typed, and drain over the wire finishing everything in flight.

use std::net::TcpListener;

use discsp_awc::AwcConfig;
use discsp_core::{Assignment, Termination, Value};
use discsp_dba::WeightMode;
use discsp_net::{AlgoSpec, SubmitSpec};
use discsp_probgen::{coloring_to_discsp, paper_coloring};
use discsp_runtime::LinkPolicy;
use discsp_service::{serve, ServeOptions, ServiceClient, ServiceError};

/// The wire-level spec for session `index`, mirroring the in-process
/// mixed workload.
fn submit_spec(index: u64) -> SubmitSpec {
    let (algo, link) = match index % 3 {
        0 => (
            AlgoSpec::Awc(AwcConfig::resolvent()),
            LinkPolicy::perfect(),
        ),
        1 => (
            AlgoSpec::Dba(WeightMode::PerNogood),
            LinkPolicy::perfect(),
        ),
        _ => (
            AlgoSpec::Awc(AwcConfig::mcs()),
            LinkPolicy::lossy(20_000),
        ),
    };
    let instance = paper_coloring(10, 500 + index);
    let problem = coloring_to_discsp(&instance).expect("coloring encodes");
    SubmitSpec {
        domains: problem.vars().map(|v| problem.domain(v)).collect(),
        owners: problem.vars().map(|v| problem.owner(v)).collect(),
        nogoods: problem.nogoods().to_vec(),
        init: Assignment::total((0..10).map(|_| Value::new(0))),
        algo,
        seed: 0xFACE ^ index,
        link,
        max_ticks: 1_000_000,
        max_nudges: 64,
        record_trace: false,
    }
}

#[test]
fn many_sessions_multiplex_over_one_connection_and_drain_cleanly() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let handle = serve(listener, ServeOptions::default()).expect("serve");
    let mut client = ServiceClient::connect(handle.addr()).expect("connect");

    // Submit a batch of sessions up front on the single connection.
    const SESSIONS: u64 = 9;
    for index in 0..SESSIONS {
        client.submit(index + 1, &submit_spec(index)).expect("submit accepted");
    }

    // Drain over the wire: the service finishes every in-flight session
    // first, so every result is claimable afterwards.
    client.drain(0xD8A1).expect("drained");
    for index in 0..SESSIONS {
        let outcome = client.wait(index + 1).expect("result delivered");
        assert_eq!(
            outcome.metrics.termination,
            Termination::Solved,
            "session {} should solve its planted coloring",
            index + 1
        );
        let solution = outcome.solution.as_ref().expect("solved carries solution");
        assert_eq!(solution.num_vars(), 10);
    }

    // After the drain confirmation the scheduler shuts down.
    handle.join();
}

#[test]
fn duplicate_and_reserved_ids_are_refused_with_typed_errors() {
    // Freeze the scheduler (zero active slots: every admission parks
    // forever) so admission checks are deterministic — no race against
    // sessions completing and freeing their ids.
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let options = ServeOptions {
        service: discsp_service::ServiceConfig {
            max_active: 0,
            ..Default::default()
        },
        ..Default::default()
    };
    let handle = serve(listener, options).expect("serve");
    let mut client = ServiceClient::connect(handle.addr()).expect("connect");

    client.submit(1, &submit_spec(0)).expect("first submit parks");
    assert!(matches!(
        client.submit(1, &submit_spec(1)),
        Err(ServiceError::DuplicateSession { id: 1 })
    ));
    // 0 marks a non-multiplexed v2 peer on the wire; it cannot name a
    // session.
    assert!(matches!(
        client.submit(0, &submit_spec(0)),
        Err(ServiceError::BadSpec { .. })
    ));

    // Free the parked session so the drain is instant.
    client.cancel(1).expect("cancel the parked session");
    client.drain(3).expect("drained");
    handle.join();
}

#[test]
fn results_can_be_claimed_out_of_submission_order() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let handle = serve(listener, ServeOptions::default()).expect("serve");
    let mut client = ServiceClient::connect(handle.addr()).expect("connect");

    for index in 0..4u64 {
        client.submit(index + 1, &submit_spec(index)).expect("submit");
    }
    // Claim in reverse: the client stashes whatever arrives first.
    for id in (1..=4u64).rev() {
        let outcome = client.wait(id).expect("result");
        assert_eq!(outcome.metrics.termination, Termination::Solved);
    }
    client.drain(1).expect("drained");
    handle.join();
}

#[test]
fn cancel_over_the_wire_frees_the_session() {
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let handle = serve(listener, ServeOptions::default()).expect("serve");
    let mut client = ServiceClient::connect(handle.addr()).expect("connect");

    // A session with a hopeless tick budget would run a long time;
    // cancel it instead and verify the id is freed and the drain is
    // instant.
    client.submit(5, &submit_spec(0)).expect("submit");
    match client.cancel(5) {
        Ok(()) => {}
        // The scheduler may have finished it before the cancel arrived;
        // that race is inherent and fine.
        Err(ServiceError::UnknownSession { id: 5 }) => {}
        Err(other) => panic!("unexpected cancel error: {other}"),
    }
    assert!(matches!(
        client.cancel(77),
        Err(ServiceError::UnknownSession { id: 77 })
    ));
    client.drain(2).expect("drained");
    handle.join();
}
