//! The tentpole's central claim: a session multiplexed among many on
//! one service is **bit-identical** to the same `(seed, policy)` run
//! alone on `solve_virtual` — metrics, solution, tick counts, and trace
//! all match field-for-field, no matter how many sessions interleave,
//! how they are ordered, or how many worker threads poll the table.
//! Plus lifecycle: drain loses nothing, cancel/snapshot/restore resumes
//! exactly, and tampered snapshots are refused.

use discsp_awc::AwcConfig;
use discsp_core::{Assignment, Termination, Value};
use discsp_dba::WeightMode;
use discsp_net::AlgoSpec;
use discsp_probgen::{coloring_to_discsp, paper_coloring};
use discsp_runtime::{LinkPolicy, TraceEvent, VirtualConfig, VirtualReport};
use discsp_service::{
    ServiceConfig, ServiceError, SessionSpec, SolveService,
};
use discsp_trace::RuntimeKind;

/// A mixed-workload spec: algorithm, link policy, and seed all vary by
/// index — the same mix `discsp-load` generates.
fn spec(index: u64) -> SessionSpec {
    let (algo, link) = match index % 4 {
        0 => (
            AlgoSpec::Awc(AwcConfig::resolvent()),
            LinkPolicy::perfect(),
        ),
        1 => (AlgoSpec::Awc(AwcConfig::mcs()), LinkPolicy::perfect()),
        2 => (
            AlgoSpec::Dba(WeightMode::PerNogood),
            LinkPolicy::perfect(),
        ),
        _ => (
            AlgoSpec::Awc(AwcConfig::resolvent()),
            LinkPolicy::lossy(30_000),
        ),
    };
    let instance = paper_coloring(10, 100 + index);
    SessionSpec {
        problem: coloring_to_discsp(&instance).expect("coloring encodes"),
        init: Assignment::total((0..10).map(|_| Value::new(0))),
        algo,
        config: VirtualConfig {
            seed: 0x5EED ^ index,
            link,
            record_trace: true,
            ..VirtualConfig::default()
        },
    }
}

/// The uninterrupted in-process reference run for a spec.
fn solo(spec: &SessionSpec) -> VirtualReport {
    match spec.algo {
        AlgoSpec::Awc(config) => discsp_awc::AwcSolver::new(config)
            .solve_virtual(&spec.problem, &spec.init, &spec.config)
            .expect("solo awc run"),
        AlgoSpec::Dba(mode) => {
            let mut config = spec.config.clone();
            config.stop_on_first_solution = true;
            discsp_dba::DbaSolver::new()
                .weight_mode(mode)
                .solve_virtual(&spec.problem, &spec.init, &config)
                .expect("solo dba run")
        }
    }
}

/// Strips the runtime stamp from `RunEnd` — the one field that
/// legitimately differs between the service and `run_virtual`.
fn normalize(trace: &[TraceEvent]) -> Vec<TraceEvent> {
    trace
        .iter()
        .cloned()
        .map(|event| match event {
            TraceEvent::RunEnd {
                cycle,
                runtime: _,
                in_flight,
                metrics,
            } => TraceEvent::RunEnd {
                cycle,
                runtime: RuntimeKind::Virtual,
                in_flight,
                metrics,
            },
            other => other,
        })
        .collect()
}

fn assert_reports_match(context: &str, service: &VirtualReport, reference: &VirtualReport) {
    assert_eq!(
        service.outcome.metrics, reference.outcome.metrics,
        "{context}: metrics diverged"
    );
    assert_eq!(
        service.outcome.solution, reference.outcome.solution,
        "{context}: solution diverged"
    );
    assert_eq!(service.ticks, reference.ticks, "{context}: ticks diverged");
    assert_eq!(
        service.activations, reference.activations,
        "{context}: activations diverged"
    );
    assert_eq!(
        service.nudges, reference.nudges,
        "{context}: nudges diverged"
    );
    assert_eq!(
        normalize(&service.trace),
        normalize(&reference.trace),
        "{context}: trace diverged"
    );
}

#[test]
fn interleaved_sessions_are_bit_identical_to_solo_runs() {
    // 12 mixed sessions forced through 3 active slots: heavy
    // interleaving, promotions mid-flight, different algorithms and
    // lossy links side by side. Every one must match its solo run.
    let mut service = SolveService::new(ServiceConfig {
        max_active: 3,
        ..ServiceConfig::default()
    });
    for index in 0..12u64 {
        service.submit(index + 1, spec(index)).expect("submit");
    }
    service.run_until_idle();
    let results = service.take_completed();
    assert_eq!(results.len(), 12);
    for index in 0..12u64 {
        let result = &results[&(index + 1)];
        let reference = solo(&spec(index));
        assert_reports_match(&format!("session {}", index + 1), &result.report, &reference);
    }
}

#[test]
fn session_results_are_independent_of_company_and_order() {
    // The same session id/spec, run (a) alone, (b) among 7 others
    // submitted before it, must produce the same result — no
    // cross-session state leaks through the scheduler.
    let target = spec(0);

    let mut alone = SolveService::new(ServiceConfig::default());
    alone.submit(42, target.clone()).expect("submit");
    alone.run_until_idle();
    let alone_result = alone.take_result(42).expect("alone result");

    let mut crowded = SolveService::new(ServiceConfig {
        max_active: 2,
        ..ServiceConfig::default()
    });
    for index in 1..8u64 {
        crowded.submit(index, spec(index)).expect("submit filler");
    }
    crowded.submit(42, target).expect("submit target");
    crowded.run_until_idle();
    let crowded_result = crowded.take_result(42).expect("crowded result");

    assert_reports_match("crowded vs alone", &crowded_result.report, &alone_result.report);
}

#[test]
fn worker_count_does_not_change_any_result() {
    let run = |workers: usize| {
        let mut service = SolveService::new(ServiceConfig {
            max_active: 4,
            workers,
            ..ServiceConfig::default()
        });
        for index in 0..8u64 {
            service.submit(index + 1, spec(index)).expect("submit");
        }
        let sweeps = service.run_until_idle();
        (sweeps, service.take_completed())
    };
    let (sweeps_1, results_1) = run(1);
    let (sweeps_8, results_8) = run(8);
    assert_eq!(sweeps_1, sweeps_8, "sweep count must not depend on workers");
    assert_eq!(results_1.len(), results_8.len());
    for (id, result) in &results_1 {
        let other = &results_8[id];
        assert_reports_match(&format!("session {id} across worker counts"), &result.report, &other.report);
        assert_eq!(result.submitted_sweep, other.submitted_sweep);
        assert_eq!(result.completed_sweep, other.completed_sweep);
    }
}

#[test]
fn graceful_drain_finishes_every_inflight_session() {
    let mut service = SolveService::new(ServiceConfig {
        max_active: 2,
        ..ServiceConfig::default()
    });
    for index in 0..6u64 {
        service.submit(index + 1, spec(index)).expect("submit");
    }
    // Let some sessions make partial progress before draining.
    for _ in 0..3 {
        service.sweep();
    }
    service.begin_drain();
    assert!(matches!(
        service.submit(99, spec(0)),
        Err(ServiceError::Draining)
    ));
    service.run_until_idle();
    assert!(service.is_drained());
    let results = service.take_completed();
    assert_eq!(results.len(), 6, "zero in-flight sessions lost on drain");
    for index in 0..6u64 {
        let reference = solo(&spec(index));
        assert_reports_match(
            &format!("drained session {}", index + 1),
            &results[&(index + 1)].report,
            &reference,
        );
    }
}

#[test]
fn cancel_snapshot_restore_resumes_exactly() {
    // Run the target partway on service A, cancel it (yielding a
    // snapshot), restore onto a fresh service B, finish there. The
    // stitched-together run must equal the uninterrupted solo run
    // field by field.
    let target = spec(1);
    let mut a = SolveService::new(ServiceConfig::default());
    a.submit(7, target.clone()).expect("submit");
    for _ in 0..5 {
        a.sweep();
    }
    let snapshot = a.cancel(7).expect("cancel yields a snapshot");
    assert!(snapshot.waves > 0, "the session had made progress");
    assert!(a.is_idle(), "cancelled session left the table");

    let mut b = SolveService::new(ServiceConfig::default());
    b.restore(7, &snapshot).expect("restore verifies and admits");
    b.run_until_idle();
    let resumed = b.take_result(7).expect("resumed result");

    let reference = solo(&target);
    assert_reports_match("resumed session", &resumed.report, &reference);
}

#[test]
fn tampered_snapshots_are_refused() {
    let target = spec(0);
    let mut a = SolveService::new(ServiceConfig::default());
    a.submit(7, target).expect("submit");
    for _ in 0..4 {
        a.sweep();
    }
    let mut snapshot = a.cancel(7).expect("snapshot");
    // Corrupt one recorded event: the replay must notice.
    let tampered = snapshot.events.iter().position(|e| {
        matches!(e, TraceEvent::AgentStep { .. })
    });
    let index = tampered.expect("a partial run has agent steps");
    if let TraceEvent::AgentStep { checks, .. } = &mut snapshot.events[index] {
        *checks += 1;
    }
    let mut b = SolveService::new(ServiceConfig::default());
    assert!(matches!(
        b.restore(7, &snapshot),
        Err(ServiceError::RestoreDiverged { .. })
    ));
}

#[test]
fn overload_rejects_with_a_typed_error_and_recovers() {
    let mut service = SolveService::new(ServiceConfig {
        max_active: 1,
        max_pending: 2,
        ..ServiceConfig::default()
    });
    service.submit(1, spec(0)).expect("active");
    service.submit(2, spec(1)).expect("parked 1");
    service.submit(3, spec(2)).expect("parked 2");
    assert!(matches!(
        service.submit(4, spec(3)),
        Err(ServiceError::Overloaded)
    ));
    // Capacity frees as sessions finish: the same submit succeeds later.
    service.run_until_idle();
    service.submit(4, spec(3)).expect("admitted after the rush");
    service.run_until_idle();
    assert_eq!(service.completed().len(), 4);
}

#[test]
fn solved_sessions_actually_solve_their_instances() {
    // Sanity net under all the bit-exactness: solutions are solutions.
    let mut service = SolveService::new(ServiceConfig::default());
    for index in 0..8u64 {
        service.submit(index + 1, spec(index)).expect("submit");
    }
    service.run_until_idle();
    for (id, result) in service.take_completed() {
        if result.report.outcome.metrics.termination == Termination::Solved {
            let solution = result
                .report
                .outcome
                .solution
                .as_ref()
                .expect("solved sessions carry a solution");
            assert!(
                spec(id - 1).problem.is_solution(solution),
                "session {id} returned a non-solution"
            );
        }
    }
}
