//! Solvable random graph-coloring instances (the paper's distributed
//! 3-coloring benchmark).
//!
//! §4: "We generate a solvable problem instance with m = 2.7n using the
//! method in [Minton et al.]" — nodes are partitioned into k balanced
//! color classes (a planted solution) and m distinct edges are drawn
//! uniformly among pairs in *different* classes, so the planted coloring
//! always remains a solution. m = 2.7n with k = 3 sits in the hard
//! region identified by Cheeseman et al.

use discsp_core::{Assignment, Value};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::graph::Graph;

/// A generated coloring instance: the graph, the number of colors, and
/// the planted solution that witnesses solvability.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColoringInstance {
    /// The constraint graph.
    pub graph: Graph,
    /// Number of colors.
    pub colors: u16,
    /// The planted coloring (one value per node).
    pub planted: Vec<u16>,
}

impl ColoringInstance {
    /// The planted solution as an [`Assignment`].
    pub fn planted_assignment(&self) -> Assignment {
        Assignment::total(self.planted.iter().map(|&c| Value::new(c)))
    }
}

/// Generates a solvable `colors`-coloring instance over `n` nodes with
/// `m` edges (planted-solution method).
///
/// # Panics
///
/// Panics when the parameters are degenerate: fewer nodes than colors,
/// zero colors, or more edges than exist between distinct color classes.
///
/// # Examples
///
/// ```
/// use discsp_probgen::generate_coloring;
///
/// let inst = generate_coloring(30, 81, 3, 42); // m = 2.7 n
/// assert_eq!(inst.graph.num_nodes(), 30);
/// assert_eq!(inst.graph.num_edges(), 81);
/// // The planted coloring is a proper coloring.
/// for (u, w) in inst.graph.edges() {
///     assert_ne!(inst.planted[u as usize], inst.planted[w as usize]);
/// }
/// ```
pub fn generate_coloring(n: u32, m: usize, colors: u16, seed: u64) -> ColoringInstance {
    assert!(colors > 0, "at least one color required");
    assert!(
        n as usize >= colors as usize,
        "need at least one node per color"
    );
    let mut rng = StdRng::seed_from_u64(seed);

    // Balanced planted classes: shuffle nodes, deal them round-robin.
    let mut order: Vec<u32> = (0..n).collect();
    order.shuffle(&mut rng);
    let mut planted = vec![0u16; n as usize];
    for (i, &node) in order.iter().enumerate() {
        planted[node as usize] = (i % colors as usize) as u16;
    }

    // Count available cross-class pairs to validate m.
    let mut class_size = vec![0usize; colors as usize];
    for &c in &planted {
        class_size[c as usize] += 1;
    }
    let total_pairs = n as usize * (n as usize - 1) / 2;
    let same_class_pairs: usize = class_size.iter().map(|&s| s * (s - 1) / 2).sum();
    let cross_pairs = total_pairs - same_class_pairs;
    assert!(
        m <= cross_pairs,
        "requested {m} edges but only {cross_pairs} cross-class pairs exist"
    );

    let mut graph = Graph::new(n);
    while graph.num_edges() < m {
        let u = rng.gen_range(0..n);
        let w = rng.gen_range(0..n);
        if u == w || planted[u as usize] == planted[w as usize] {
            continue;
        }
        graph.add_edge(u, w);
    }

    ColoringInstance {
        graph,
        colors,
        planted,
    }
}

/// The paper's distributed 3-coloring parameters: `m = 2.7 n`, 3 colors.
pub fn paper_coloring(n: u32, seed: u64) -> ColoringInstance {
    let m = (2.7 * n as f64).round() as usize;
    generate_coloring(n, m, 3, seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn planted_solution_is_proper() {
        let inst = generate_coloring(60, 162, 3, 7);
        assert_eq!(inst.graph.num_edges(), 162);
        for (u, w) in inst.graph.edges() {
            assert_ne!(
                inst.planted[u as usize], inst.planted[w as usize],
                "edge ({u},{w}) joins same-colored nodes"
            );
        }
    }

    #[test]
    fn classes_are_balanced() {
        let inst = generate_coloring(61, 100, 3, 1);
        let mut counts = [0usize; 3];
        for &c in &inst.planted {
            counts[c as usize] += 1;
        }
        let max = counts.iter().max().unwrap();
        let min = counts.iter().min().unwrap();
        assert!(max - min <= 1, "counts {counts:?} unbalanced");
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let a = generate_coloring(30, 81, 3, 5);
        let b = generate_coloring(30, 81, 3, 5);
        assert_eq!(a, b);
        let c = generate_coloring(30, 81, 3, 6);
        assert_ne!(a, c);
    }

    #[test]
    fn paper_parameters() {
        let inst = paper_coloring(60, 3);
        assert_eq!(inst.graph.num_edges(), 162);
        assert_eq!(inst.colors, 3);
    }

    #[test]
    fn planted_assignment_matches_vector() {
        let inst = generate_coloring(10, 12, 3, 9);
        let a = inst.planted_assignment();
        for (i, &c) in inst.planted.iter().enumerate() {
            assert_eq!(
                a.get(discsp_core::VariableId::new(i as u32)),
                Some(Value::new(c))
            );
        }
    }

    #[test]
    #[should_panic(expected = "cross-class pairs")]
    fn too_many_edges_rejected() {
        // 3 nodes, 3 colors → 3 cross pairs; ask for 4.
        generate_coloring(3, 4, 3, 0);
    }
}
