//! DIMACS graph (`.col`) reading and writing.
//!
//! The standard exchange format of the DIMACS graph-coloring challenge:
//! a `p edge <nodes> <edges>` header followed by `e <u> <v>` lines
//! (1-based endpoints). Provided so externally published coloring
//! benchmarks can be run through the distributed solvers.

use std::io::{BufRead, Write};

use crate::dimacs::DimacsError;
use crate::graph::Graph;

/// Parses a DIMACS `.col` graph document.
///
/// Comment lines (`c …`) are ignored; duplicate edges are merged;
/// self-loops are rejected.
///
/// # Errors
///
/// Returns a [`DimacsError`] describing the first problem encountered.
///
/// # Examples
///
/// ```
/// use discsp_probgen::read_col;
///
/// let text = "c triangle\np edge 3 3\ne 1 2\ne 2 3\ne 1 3\n";
/// let graph = read_col(text.as_bytes())?;
/// assert_eq!(graph.num_nodes(), 3);
/// assert_eq!(graph.num_edges(), 3);
/// # Ok::<(), discsp_probgen::DimacsError>(())
/// ```
pub fn read_col<R: BufRead>(reader: R) -> Result<Graph, DimacsError> {
    let mut graph: Option<Graph> = None;
    for line in reader.lines() {
        let line = line.map_err(|e| DimacsError::Io(e.to_string()))?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('c') {
            continue;
        }
        if let Some(rest) = trimmed.strip_prefix('p') {
            let fields: Vec<&str> = rest.split_whitespace().collect();
            if fields.len() != 3 || (fields[0] != "edge" && fields[0] != "edges") {
                return Err(DimacsError::BadHeader(trimmed.to_string()));
            }
            let nodes: u32 = fields[1]
                .parse()
                .map_err(|_| DimacsError::BadHeader(trimmed.to_string()))?;
            graph = Some(Graph::new(nodes));
            continue;
        }
        if let Some(rest) = trimmed.strip_prefix('e') {
            let Some(graph) = graph.as_mut() else {
                return Err(DimacsError::BadHeader(trimmed.to_string()));
            };
            let fields: Vec<&str> = rest.split_whitespace().collect();
            if fields.len() != 2 {
                return Err(DimacsError::BadLiteral(trimmed.to_string()));
            }
            let u: i64 = fields[0]
                .parse()
                .map_err(|_| DimacsError::BadLiteral(fields[0].to_string()))?;
            let w: i64 = fields[1]
                .parse()
                .map_err(|_| DimacsError::BadLiteral(fields[1].to_string()))?;
            if u < 1
                || w < 1
                || u as u64 > graph.num_nodes() as u64
                || w as u64 > graph.num_nodes() as u64
            {
                return Err(DimacsError::VariableOutOfRange(u.min(w)));
            }
            if u == w {
                return Err(DimacsError::RepeatedVariable(u as u32 - 1));
            }
            graph.add_edge(u as u32 - 1, w as u32 - 1);
            continue;
        }
        return Err(DimacsError::BadLiteral(trimmed.to_string()));
    }
    graph.ok_or_else(|| DimacsError::BadHeader("<missing>".to_string()))
}

/// Writes `graph` in DIMACS `.col` format.
///
/// # Errors
///
/// Propagates I/O failures from `writer`.
pub fn write_col<W: Write>(graph: &Graph, mut writer: W) -> std::io::Result<()> {
    writeln!(writer, "p edge {} {}", graph.num_nodes(), graph.num_edges())?;
    for (u, w) in graph.edges() {
        writeln!(writer, "e {} {}", u + 1, w + 1)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::coloring::generate_coloring;

    #[test]
    fn roundtrip_preserves_graph() {
        let inst = generate_coloring(20, 40, 3, 5);
        let mut buf = Vec::new();
        write_col(&inst.graph, &mut buf).unwrap();
        let parsed = read_col(buf.as_slice()).unwrap();
        assert_eq!(parsed, inst.graph);
    }

    #[test]
    fn parses_comments_and_both_header_spellings() {
        for header in ["p edge 2 1", "p edges 2 1"] {
            let text = format!("c hello\n{header}\ne 1 2\n");
            let graph = read_col(text.as_bytes()).unwrap();
            assert!(graph.has_edge(0, 1));
        }
    }

    #[test]
    fn rejects_missing_header() {
        assert!(matches!(
            read_col("e 1 2\n".as_bytes()),
            Err(DimacsError::BadHeader(_))
        ));
        assert!(matches!(
            read_col("".as_bytes()),
            Err(DimacsError::BadHeader(_))
        ));
    }

    #[test]
    fn rejects_bad_edges() {
        assert!(matches!(
            read_col("p edge 2 1\ne 1 5\n".as_bytes()),
            Err(DimacsError::VariableOutOfRange(_))
        ));
        assert!(matches!(
            read_col("p edge 2 1\ne 1 1\n".as_bytes()),
            Err(DimacsError::RepeatedVariable(0))
        ));
        assert!(matches!(
            read_col("p edge 2 1\ne 1\n".as_bytes()),
            Err(DimacsError::BadLiteral(_))
        ));
        assert!(matches!(
            read_col("p edge 2 1\nx 1 2\n".as_bytes()),
            Err(DimacsError::BadLiteral(_))
        ));
    }

    #[test]
    fn duplicate_edges_merge() {
        let text = "p edge 3 2\ne 1 2\ne 2 1\n";
        let graph = read_col(text.as_bytes()).unwrap();
        assert_eq!(graph.num_edges(), 1);
    }
}
