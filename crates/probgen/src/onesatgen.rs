//! Unique-solution 3SAT instances in the style of Cha & Iwama's
//! 3ONESAT-GEN (the AIM `yes1` family).
//!
//! The paper's hardest benchmark: "satisfiable 3SAT instances that have
//! exactly one solution with a specified clause/variable ratio"
//! (m = 3.4n), which Richards & Richards showed to be very hard for
//! non-systematic search. The DIMACS AIM files are reimplemented by
//! their construction principle — a *forcing chain* plus random fill:
//!
//! 1. Plant a random model `M` and a random variable order `v₁ … vₙ`.
//! 2. Anchor `v₁` with the four clauses `('v₁ ∨ ±'v₂ ∨ ±'v₃)` covering
//!    every polarity pattern of `v₂, v₃` (where `'x` denotes the literal
//!    of `x` that is true under `M`): any assignment disagreeing with `M`
//!    on `v₁` falsifies exactly one of them.
//! 3. Anchor `v₂` with the two clauses `(¬'v₁ ∨ 'v₂ ∨ ±'v₃)`.
//! 4. For each later `vᵢ`, add one implication clause
//!    `(¬'a ∨ ¬'b ∨ 'vᵢ)` with distinct random sources `a, b` earlier in
//!    the order: agreement on `a` and `b` forces agreement on `vᵢ`.
//! 5. Fill with distinct random `M`-satisfied 3-clauses to the target
//!    `m`, and shuffle.
//!
//! By induction over the order, `M` is the **only** model — uniqueness
//! holds by construction (and is re-verified by the centralized solver in
//! tests), while the instance keeps the target ratio exactly. Local and
//! distributed hill-climbing see a large, deceptive space of near-models,
//! reproducing the family's signature hardness for non-systematic search.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};

use crate::cnf::{Clause, Cnf, Lit};
use crate::satgen::{random_satisfied_clause, SatInstance};

/// The literal of `var` that is true under `model`.
fn agree(var: u32, model: &[bool]) -> Lit {
    Lit::new(var, model[var as usize])
}

/// The literal of `var` that is false under `model`.
fn disagree(var: u32, model: &[bool]) -> Lit {
    Lit::new(var, !model[var as usize])
}

/// Generates a 3SAT instance over `n` variables with exactly `m` clauses
/// and exactly one model (unique by construction).
///
/// # Panics
///
/// Panics when `n < 3`, when `m < n + 4` (the forcing chain alone needs
/// that many clauses), or when `m` exceeds the number of distinct
/// 3-clauses satisfiable by a fixed model.
///
/// # Examples
///
/// ```
/// use discsp_probgen::generate_one_sat3;
///
/// let inst = generate_one_sat3(12, 41, 7); // m ≈ 3.4 n
/// assert!(inst.verified_unique);
/// assert_eq!(inst.cnf.num_clauses(), 41);
/// assert!(inst.cnf.eval(&inst.planted));
/// ```
pub fn generate_one_sat3(n: u32, m: usize, seed: u64) -> SatInstance {
    assert!(n >= 3, "3SAT needs at least three variables");
    assert!(
        m >= n as usize + 4,
        "m = {m} is below the n + 4 = {} clauses of the forcing chain",
        n + 4
    );
    let choose3 = (n as usize) * (n as usize - 1) * (n as usize - 2) / 6;
    assert!(
        m <= 6 * choose3,
        "requested {m} clauses but only about {} fill clauses exist",
        6 * choose3
    );

    let mut rng = StdRng::seed_from_u64(seed);
    let planted: Vec<bool> = (0..n).map(|_| rng.gen()).collect();
    let mut order: Vec<u32> = (0..n).collect();
    order.shuffle(&mut rng);
    let (v1, v2, v3) = (order[0], order[1], order[2]);

    let mut cnf = Cnf::new(n);
    // Anchor v1: all four (v2, v3) polarity patterns.
    for pattern in 0..4u8 {
        let l2 = if pattern & 1 == 0 {
            agree(v2, &planted)
        } else {
            disagree(v2, &planted)
        };
        let l3 = if pattern & 2 == 0 {
            agree(v3, &planted)
        } else {
            disagree(v3, &planted)
        };
        cnf.push(Clause::new([agree(v1, &planted), l2, l3]));
    }
    // Anchor v2 given v1: both v3 polarities.
    for pattern in 0..2u8 {
        let l3 = if pattern == 0 {
            agree(v3, &planted)
        } else {
            disagree(v3, &planted)
        };
        cnf.push(Clause::new([
            disagree(v1, &planted),
            agree(v2, &planted),
            l3,
        ]));
    }
    // Chain: each later variable forced by two random predecessors.
    for i in 2..order.len() {
        let target = order[i];
        loop {
            let a = order[rng.gen_range(0..i)];
            let b = order[rng.gen_range(0..i)];
            if a == b {
                continue;
            }
            let clause = Clause::new([
                disagree(a, &planted),
                disagree(b, &planted),
                agree(target, &planted),
            ]);
            // Rare collision with an anchor clause: redraw sources.
            if cnf.push(clause) {
                break;
            }
        }
    }
    debug_assert_eq!(cnf.num_clauses(), n as usize + 4);

    // Random fill up to the target ratio.
    while cnf.num_clauses() < m {
        let clause = random_satisfied_clause(n, &planted, &mut rng);
        cnf.push(clause);
    }

    // Hide the construction order.
    let mut clauses: Vec<Clause> = cnf.clauses().to_vec();
    clauses.shuffle(&mut rng);
    let mut shuffled = Cnf::new(n);
    for c in clauses {
        shuffled.push(c);
    }

    SatInstance {
        cnf: shuffled,
        planted,
        verified_unique: true,
    }
}

/// The paper's 3ONESAT-GEN parameters: `m = 3.4 n`.
pub fn paper_one_sat3(n: u32, seed: u64) -> SatInstance {
    let m = (3.4 * n as f64).round() as usize;
    generate_one_sat3(n, m, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::{cnf_to_discsp, model_to_assignment};
    use discsp_cspsolve::Backtracker;

    #[test]
    fn instance_has_exactly_one_model() {
        for seed in 0..5 {
            let inst = generate_one_sat3(12, 41, seed);
            assert!(inst.verified_unique);
            assert!(inst.cnf.eval(&inst.planted));
            let problem = cnf_to_discsp(&inst.cnf).unwrap();
            let models = Backtracker::new(&problem).enumerate(3);
            assert_eq!(models.len(), 1, "seed {seed} not unique");
            assert_eq!(models[0], model_to_assignment(&inst.planted));
        }
    }

    #[test]
    fn clause_count_is_exact() {
        let inst = generate_one_sat3(20, 68, 3);
        assert_eq!(inst.cnf.num_clauses(), 68);
        assert!((inst.cnf.ratio() - 3.4).abs() < 0.01);
    }

    #[test]
    fn all_clauses_are_ternary() {
        let inst = generate_one_sat3(15, 55, 9);
        for c in inst.cnf.clauses() {
            assert_eq!(c.len(), 3);
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        assert_eq!(generate_one_sat3(10, 34, 5), generate_one_sat3(10, 34, 5));
        assert_ne!(generate_one_sat3(10, 34, 5), generate_one_sat3(10, 34, 6));
    }

    #[test]
    fn paper_parameters_scale() {
        let inst = paper_one_sat3(50, 2);
        assert_eq!(inst.cnf.num_clauses(), 170);
        assert!(inst.verified_unique);
    }

    #[test]
    fn uniqueness_holds_at_paper_sizes() {
        // The n = 50 instance must still be provably unique for the
        // centralized solver (fast thanks to the forcing chain).
        let inst = paper_one_sat3(50, 4);
        let problem = cnf_to_discsp(&inst.cnf).unwrap();
        let (count, complete) = Backtracker::new(&problem).count_models(2);
        assert!(complete);
        assert_eq!(count, 1);
    }

    #[test]
    #[should_panic(expected = "forcing chain")]
    fn too_few_clauses_rejected() {
        generate_one_sat3(10, 10, 0);
    }

    #[test]
    fn helper_literals() {
        let model = [true, false];
        assert_eq!(agree(0, &model), Lit::new(0, true));
        assert_eq!(agree(1, &model), Lit::new(1, false));
        assert_eq!(disagree(0, &model), Lit::new(0, false));
        assert_eq!(disagree(1, &model), Lit::new(1, true));
    }
}
