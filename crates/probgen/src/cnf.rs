//! Propositional CNF formulas for the 3SAT benchmarks.

use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};

/// A literal: a Boolean variable with a polarity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Lit {
    /// Variable index (0-based).
    pub var: u32,
    /// `true` for the positive literal, `false` for the negation.
    pub positive: bool,
}

impl Lit {
    /// Creates a literal.
    pub const fn new(var: u32, positive: bool) -> Self {
        Lit { var, positive }
    }

    /// Whether the literal is true under `model`.
    pub fn eval(self, model: &[bool]) -> bool {
        model[self.var as usize] == self.positive
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.positive {
            write!(f, "x{}", self.var)
        } else {
            write!(f, "¬x{}", self.var)
        }
    }
}

/// A disjunctive clause in canonical form (sorted, distinct variables).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Clause {
    lits: Vec<Lit>,
}

impl Clause {
    /// Creates a clause from literals.
    ///
    /// # Panics
    ///
    /// Panics when two literals mention the same variable (duplicated or
    /// complementary literals are construction bugs in the generators).
    pub fn new<I: IntoIterator<Item = Lit>>(lits: I) -> Self {
        let mut lits: Vec<Lit> = lits.into_iter().collect();
        lits.sort();
        for pair in lits.windows(2) {
            assert!(
                pair[0].var != pair[1].var,
                "clause mentions variable x{} twice",
                pair[0].var
            );
        }
        Clause { lits }
    }

    /// The literals in variable order.
    pub fn lits(&self) -> &[Lit] {
        &self.lits
    }

    /// Number of literals.
    pub fn len(&self) -> usize {
        self.lits.len()
    }

    /// Whether the clause is empty (unsatisfiable).
    pub fn is_empty(&self) -> bool {
        self.lits.is_empty()
    }

    /// Whether the clause is satisfied by `model`.
    pub fn eval(&self, model: &[bool]) -> bool {
        self.lits.iter().any(|l| l.eval(model))
    }
}

impl fmt::Display for Clause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, l) in self.lits.iter().enumerate() {
            if i > 0 {
                write!(f, " ∨ ")?;
            }
            write!(f, "{l}")?;
        }
        write!(f, ")")
    }
}

/// A CNF formula.
///
/// # Examples
///
/// ```
/// use discsp_probgen::{Clause, Cnf, Lit};
///
/// let mut cnf = Cnf::new(2);
/// cnf.push(Clause::new([Lit::new(0, true), Lit::new(1, false)]));
/// assert!(cnf.eval(&[true, true]));
/// assert!(!cnf.eval(&[false, true]));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Cnf {
    num_vars: u32,
    clauses: Vec<Clause>,
    seen: BTreeSet<Clause>,
}

impl Cnf {
    /// Creates an empty formula over `num_vars` variables.
    pub fn new(num_vars: u32) -> Self {
        Cnf {
            num_vars,
            clauses: Vec::new(),
            seen: BTreeSet::new(),
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    /// Number of clauses.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Appends `clause`; returns `false` if an identical clause is
    /// already present (the formula is unchanged).
    ///
    /// # Panics
    ///
    /// Panics when the clause mentions an out-of-range variable.
    pub fn push(&mut self, clause: Clause) -> bool {
        for l in clause.lits() {
            assert!(l.var < self.num_vars, "literal variable out of range");
        }
        if self.seen.contains(&clause) {
            return false;
        }
        self.seen.insert(clause.clone());
        self.clauses.push(clause);
        true
    }

    /// Whether an identical clause is present.
    pub fn contains(&self, clause: &Clause) -> bool {
        self.seen.contains(clause)
    }

    /// The clauses in insertion order.
    pub fn clauses(&self) -> &[Clause] {
        &self.clauses
    }

    /// Whether `model` satisfies every clause.
    pub fn eval(&self, model: &[bool]) -> bool {
        self.clauses.iter().all(|c| c.eval(model))
    }

    /// Clause/variable ratio `m / n`.
    pub fn ratio(&self) -> f64 {
        self.clauses.len() as f64 / self.num_vars as f64
    }
}

impl fmt::Display for Cnf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "cnf[{} vars, {} clauses]",
            self.num_vars,
            self.clauses.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_evaluation() {
        let model = [true, false];
        assert!(Lit::new(0, true).eval(&model));
        assert!(!Lit::new(0, false).eval(&model));
        assert!(Lit::new(1, false).eval(&model));
        assert_eq!(Lit::new(1, false).to_string(), "¬x1");
    }

    #[test]
    fn clause_canonicalizes_and_evaluates() {
        let c = Clause::new([Lit::new(2, true), Lit::new(0, false)]);
        assert_eq!(c.lits()[0].var, 0);
        assert_eq!(c.len(), 2);
        assert!(c.eval(&[false, true, false]));
        assert!(!c.eval(&[true, true, false]));
        assert_eq!(c.to_string(), "(¬x0 ∨ x2)");
    }

    #[test]
    #[should_panic(expected = "twice")]
    fn duplicate_variable_rejected() {
        Clause::new([Lit::new(0, true), Lit::new(0, false)]);
    }

    #[test]
    fn empty_clause_is_falsum() {
        let c = Clause::new([]);
        assert!(c.is_empty());
        assert!(!c.eval(&[true]));
    }

    #[test]
    fn cnf_deduplicates() {
        let mut cnf = Cnf::new(3);
        let c = Clause::new([Lit::new(0, true), Lit::new(1, true)]);
        assert!(cnf.push(c.clone()));
        assert!(!cnf.push(c.clone()));
        assert!(cnf.contains(&c));
        assert_eq!(cnf.num_clauses(), 1);
        assert!((cnf.ratio() - 1.0 / 3.0).abs() < 1e-9);
        assert_eq!(cnf.to_string(), "cnf[3 vars, 1 clauses]");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_literal_rejected() {
        let mut cnf = Cnf::new(1);
        cnf.push(Clause::new([Lit::new(5, true)]));
    }
}
