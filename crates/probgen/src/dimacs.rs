//! DIMACS CNF reading and writing.
//!
//! Provided so the genuine AIM benchmark files (when available) can be
//! dropped into the experiment harness in place of the reimplemented
//! generators.

use std::error::Error;
use std::fmt;
use std::io::{BufRead, Write};

use crate::cnf::{Clause, Cnf, Lit};

/// Errors raised while parsing DIMACS CNF input.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum DimacsError {
    /// The `p cnf <vars> <clauses>` header is missing or malformed.
    BadHeader(String),
    /// A token could not be parsed as a literal.
    BadLiteral(String),
    /// A literal references a variable beyond the header's count.
    VariableOutOfRange(i64),
    /// A clause repeats a variable (possibly with opposite polarity).
    RepeatedVariable(u32),
    /// The clause count in the header disagrees with the body.
    ClauseCountMismatch {
        /// Count declared in the header.
        declared: usize,
        /// Count actually parsed.
        parsed: usize,
    },
    /// An underlying I/O failure.
    Io(String),
}

impl fmt::Display for DimacsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DimacsError::BadHeader(line) => write!(f, "malformed dimacs header: {line:?}"),
            DimacsError::BadLiteral(tok) => write!(f, "malformed literal token: {tok:?}"),
            DimacsError::VariableOutOfRange(v) => {
                write!(f, "literal {v} exceeds the declared variable count")
            }
            DimacsError::RepeatedVariable(v) => {
                write!(f, "clause repeats variable {}", v + 1)
            }
            DimacsError::ClauseCountMismatch { declared, parsed } => write!(
                f,
                "header declares {declared} clauses but {parsed} were parsed"
            ),
            DimacsError::Io(msg) => write!(f, "i/o failure: {msg}"),
        }
    }
}

impl Error for DimacsError {}

/// Parses a DIMACS CNF document.
///
/// Comment lines (`c …`) and the `%`/`0` trailer emitted by some
/// generators are ignored. Duplicate clauses are merged (the paper's
/// generators never emit duplicates).
///
/// # Errors
///
/// Returns a [`DimacsError`] describing the first problem encountered.
///
/// # Examples
///
/// ```
/// use discsp_probgen::read_dimacs;
///
/// let text = "c tiny\np cnf 3 2\n1 -2 3 0\n-1 2 -3 0\n";
/// let cnf = read_dimacs(text.as_bytes())?;
/// assert_eq!(cnf.num_vars(), 3);
/// assert_eq!(cnf.num_clauses(), 2);
/// # Ok::<(), discsp_probgen::DimacsError>(())
/// ```
pub fn read_dimacs<R: BufRead>(reader: R) -> Result<Cnf, DimacsError> {
    let mut cnf: Option<Cnf> = None;
    let mut declared = 0usize;
    let mut current: Vec<Lit> = Vec::new();
    let mut parsed = 0usize;

    for line in reader.lines() {
        let line = line.map_err(|e| DimacsError::Io(e.to_string()))?;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('c') || trimmed.starts_with('%') {
            continue;
        }
        if trimmed.starts_with('p') {
            let fields: Vec<&str> = trimmed.split_whitespace().collect();
            if fields.len() != 4 || fields[1] != "cnf" {
                return Err(DimacsError::BadHeader(trimmed.to_string()));
            }
            let vars: u32 = fields[2]
                .parse()
                .map_err(|_| DimacsError::BadHeader(trimmed.to_string()))?;
            declared = fields[3]
                .parse()
                .map_err(|_| DimacsError::BadHeader(trimmed.to_string()))?;
            cnf = Some(Cnf::new(vars));
            continue;
        }
        let Some(cnf) = cnf.as_mut() else {
            return Err(DimacsError::BadHeader(trimmed.to_string()));
        };
        for tok in trimmed.split_whitespace() {
            let value: i64 = tok
                .parse()
                .map_err(|_| DimacsError::BadLiteral(tok.to_string()))?;
            if value == 0 {
                if current.is_empty() {
                    // Lenient handling of the "%\n0" trailer some
                    // generators emit: a terminator with no pending
                    // literals is not a clause.
                    continue;
                }
                let lits = std::mem::take(&mut current);
                for pair in {
                    let mut sorted = lits.clone();
                    sorted.sort();
                    sorted
                }
                .windows(2)
                {
                    if pair[0].var == pair[1].var {
                        return Err(DimacsError::RepeatedVariable(pair[0].var));
                    }
                }
                cnf.push(Clause::new(lits));
                parsed += 1;
                continue;
            }
            let var = value.unsigned_abs() - 1;
            if var >= cnf.num_vars() as u64 {
                return Err(DimacsError::VariableOutOfRange(value));
            }
            current.push(Lit::new(var as u32, value > 0));
        }
    }
    let Some(cnf) = cnf else {
        return Err(DimacsError::BadHeader("<missing>".to_string()));
    };
    if parsed != declared {
        return Err(DimacsError::ClauseCountMismatch { declared, parsed });
    }
    Ok(cnf)
}

/// Writes `cnf` in DIMACS format.
///
/// # Errors
///
/// Propagates I/O failures from `writer`.
pub fn write_dimacs<W: Write>(cnf: &Cnf, mut writer: W) -> std::io::Result<()> {
    writeln!(writer, "p cnf {} {}", cnf.num_vars(), cnf.num_clauses())?;
    for clause in cnf.clauses() {
        for lit in clause.lits() {
            let v = lit.var as i64 + 1;
            write!(writer, "{} ", if lit.positive { v } else { -v })?;
        }
        writeln!(writer, "0")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::satgen::generate_sat3;

    #[test]
    fn roundtrip_preserves_formula() {
        let inst = generate_sat3(12, 40, 3);
        let mut buf = Vec::new();
        write_dimacs(&inst.cnf, &mut buf).unwrap();
        let parsed = read_dimacs(buf.as_slice()).unwrap();
        assert_eq!(parsed.num_vars(), inst.cnf.num_vars());
        assert_eq!(parsed.clauses(), inst.cnf.clauses());
    }

    #[test]
    fn parses_comments_and_whitespace() {
        let text = "c comment\n\np cnf 2 1\n  1   -2  0\n%\n0\n";
        let cnf = read_dimacs(text.as_bytes()).unwrap();
        assert_eq!(cnf.num_clauses(), 1);
        assert_eq!(
            cnf.clauses()[0].lits(),
            &[Lit::new(0, true), Lit::new(1, false)]
        );
    }

    #[test]
    fn clause_spanning_lines() {
        let text = "p cnf 3 1\n1 2\n3 0\n";
        let cnf = read_dimacs(text.as_bytes()).unwrap();
        assert_eq!(cnf.num_clauses(), 1);
        assert_eq!(cnf.clauses()[0].len(), 3);
    }

    #[test]
    fn rejects_missing_header() {
        let err = read_dimacs("1 2 0\n".as_bytes()).unwrap_err();
        assert!(matches!(err, DimacsError::BadHeader(_)));
    }

    #[test]
    fn rejects_malformed_header() {
        let err = read_dimacs("p cnf x y\n".as_bytes()).unwrap_err();
        assert!(matches!(err, DimacsError::BadHeader(_)));
    }

    #[test]
    fn rejects_out_of_range_variable() {
        let err = read_dimacs("p cnf 2 1\n5 0\n".as_bytes()).unwrap_err();
        assert_eq!(err, DimacsError::VariableOutOfRange(5));
    }

    #[test]
    fn rejects_bad_literal() {
        let err = read_dimacs("p cnf 2 1\nfoo 0\n".as_bytes()).unwrap_err();
        assert!(matches!(err, DimacsError::BadLiteral(_)));
    }

    #[test]
    fn rejects_repeated_variable() {
        let err = read_dimacs("p cnf 2 1\n1 -1 0\n".as_bytes()).unwrap_err();
        assert_eq!(err, DimacsError::RepeatedVariable(0));
    }

    #[test]
    fn rejects_count_mismatch() {
        let err = read_dimacs("p cnf 2 3\n1 0\n".as_bytes()).unwrap_err();
        assert_eq!(
            err,
            DimacsError::ClauseCountMismatch {
                declared: 3,
                parsed: 1
            }
        );
    }

    #[test]
    fn error_messages_are_informative() {
        let e = DimacsError::ClauseCountMismatch {
            declared: 2,
            parsed: 1,
        };
        assert!(e.to_string().contains("declares 2"));
    }
}
