//! Benchmark instance generators for the paper's evaluation (§4).
//!
//! Three problem families, each generated from scratch with the
//! documented substitutions for the unavailable DIMACS AIM files:
//!
//! * [`generate_coloring`] / [`paper_coloring`] — solvable distributed
//!   3-coloring at m = 2.7n (planted-solution method of Minton et al.);
//! * [`generate_sat3`] / [`paper_sat3`] — satisfiable distributed 3SAT
//!   at m = 4.3n (3SAT-GEN-style planted generation);
//! * [`generate_one_sat3`] / [`paper_one_sat3`] — *unique-solution*
//!   distributed 3SAT at m = 3.4n (3ONESAT-GEN-style, uniqueness
//!   verified by the centralized backtracker);
//!
//! plus DIMACS CNF I/O ([`read_dimacs`], [`write_dimacs`]) and DIMACS
//! graph I/O ([`read_col`], [`write_col`]) for swapping
//! in the genuine AIM instances, and encoders to [`DistributedCsp`]
//! problems with one variable per agent.
//!
//! [`DistributedCsp`]: discsp_core::DistributedCsp

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cnf;
mod col;
mod coloring;
mod dimacs;
mod encode;
mod graph;
mod onesatgen;
mod satgen;

pub use cnf::{Clause, Cnf, Lit};
pub use col::{read_col, write_col};
pub use coloring::{generate_coloring, paper_coloring, ColoringInstance};
pub use dimacs::{read_dimacs, write_dimacs, DimacsError};
pub use encode::{cnf_to_discsp, coloring_to_discsp, graph_to_discsp, model_to_assignment};
pub use graph::Graph;
pub use onesatgen::{generate_one_sat3, paper_one_sat3};
pub use satgen::{generate_sat3, paper_sat3, random_models, SatInstance};
