//! Simple undirected graphs for coloring benchmarks.

use std::collections::BTreeSet;
use std::fmt;

use serde::{Deserialize, Serialize};

/// An undirected graph over nodes `0..n` with deduplicated edges.
///
/// # Examples
///
/// ```
/// use discsp_probgen::Graph;
///
/// let mut g = Graph::new(3);
/// assert!(g.add_edge(0, 1));
/// assert!(!g.add_edge(1, 0)); // same edge
/// assert_eq!(g.num_edges(), 1);
/// assert_eq!(g.degree(0), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Graph {
    num_nodes: u32,
    edges: BTreeSet<(u32, u32)>,
}

impl Graph {
    /// Creates an edgeless graph over `num_nodes` nodes.
    pub fn new(num_nodes: u32) -> Self {
        Graph {
            num_nodes,
            edges: BTreeSet::new(),
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> u32 {
        self.num_nodes
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Adds the edge `{u, w}`. Returns `false` when the edge already
    /// exists.
    ///
    /// # Panics
    ///
    /// Panics on self-loops or out-of-range endpoints.
    pub fn add_edge(&mut self, u: u32, w: u32) -> bool {
        assert!(u != w, "self-loops are not allowed");
        assert!(
            u < self.num_nodes && w < self.num_nodes,
            "edge endpoint out of range"
        );
        self.edges.insert((u.min(w), u.max(w)))
    }

    /// Whether the edge `{u, w}` exists.
    pub fn has_edge(&self, u: u32, w: u32) -> bool {
        self.edges.contains(&(u.min(w), u.max(w)))
    }

    /// Iterates over edges as `(low, high)` pairs in lexicographic order.
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.edges.iter().copied()
    }

    /// Degree of node `u`.
    pub fn degree(&self, u: u32) -> usize {
        self.edges
            .iter()
            .filter(|&&(a, b)| a == u || b == u)
            .count()
    }
}

impl fmt::Display for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "graph[{} nodes, {} edges]",
            self.num_nodes,
            self.edges.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edges_are_undirected_and_deduplicated() {
        let mut g = Graph::new(4);
        assert!(g.add_edge(2, 1));
        assert!(!g.add_edge(1, 2));
        assert!(g.has_edge(1, 2));
        assert!(g.has_edge(2, 1));
        assert!(!g.has_edge(0, 3));
        assert_eq!(g.edges().collect::<Vec<_>>(), vec![(1, 2)]);
    }

    #[test]
    #[should_panic(expected = "self-loops")]
    fn self_loops_rejected() {
        Graph::new(2).add_edge(1, 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_rejected() {
        Graph::new(2).add_edge(0, 5);
    }

    #[test]
    fn degree_counts_incident_edges() {
        let mut g = Graph::new(4);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        g.add_edge(1, 2);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(3), 0);
        assert_eq!(g.to_string(), "graph[4 nodes, 3 edges]");
    }
}
