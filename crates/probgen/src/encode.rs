//! Encoders from benchmark instances to [`DistributedCsp`] problems, one
//! variable per agent (the paper's arrangement).

use discsp_core::{CoreError, DistributedCsp, Domain};

use crate::cnf::Cnf;
use crate::coloring::ColoringInstance;
use crate::graph::Graph;

/// Encodes a coloring instance as a distributed CSP: one node per agent,
/// each arc expanded into the pairwise equal-color nogoods.
///
/// # Errors
///
/// Propagates builder validation errors (cannot occur for instances
/// produced by [`crate::generate_coloring`]).
pub fn coloring_to_discsp(instance: &ColoringInstance) -> Result<DistributedCsp, CoreError> {
    let mut b = DistributedCsp::builder();
    let vars: Vec<_> = (0..instance.graph.num_nodes())
        .map(|_| b.variable(Domain::new(instance.colors)))
        .collect();
    for (u, w) in instance.graph.edges() {
        b.not_equal(vars[u as usize], vars[w as usize])?;
    }
    b.build()
}

/// Encodes a bare graph as a distributed `colors`-coloring CSP (one node
/// per agent) — the entry point for externally supplied `.col` files.
///
/// # Errors
///
/// Propagates builder validation errors (cannot occur for well-formed
/// [`Graph`] values).
pub fn graph_to_discsp(graph: &Graph, colors: u16) -> Result<DistributedCsp, CoreError> {
    let mut b = DistributedCsp::builder();
    let vars: Vec<_> = (0..graph.num_nodes())
        .map(|_| b.variable(Domain::new(colors)))
        .collect();
    for (u, w) in graph.edges() {
        b.not_equal(vars[u as usize], vars[w as usize])?;
    }
    b.build()
}

/// Encodes a CNF formula as a distributed CSP: one Boolean variable per
/// agent, each clause becoming the nogood that prohibits all its literals
/// being false simultaneously.
///
/// # Errors
///
/// Fails on tautological clauses (cannot occur for [`crate::Clause`]
/// values, whose constructor rejects duplicate variables) or empty
/// formulas.
pub fn cnf_to_discsp(cnf: &Cnf) -> Result<DistributedCsp, CoreError> {
    let mut b = DistributedCsp::builder();
    let vars: Vec<_> = (0..cnf.num_vars())
        .map(|_| b.variable(Domain::BOOL))
        .collect();
    for clause in cnf.clauses() {
        let literals: Vec<_> = clause
            .lits()
            .iter()
            .map(|l| (vars[l.var as usize], l.positive))
            .collect();
        b.clause(&literals)?;
    }
    b.build()
}

/// Converts a Boolean model to an [`discsp_core::Assignment`] over the
/// encoded problem.
pub fn model_to_assignment(model: &[bool]) -> discsp_core::Assignment {
    discsp_core::Assignment::total(model.iter().map(|&b| discsp_core::Value::from_bool(b)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cnf::{Clause, Lit};
    use crate::coloring::generate_coloring;
    use crate::satgen::generate_sat3;

    #[test]
    fn coloring_encoding_matches_structure() {
        let inst = generate_coloring(12, 20, 3, 1);
        let p = coloring_to_discsp(&inst).unwrap();
        assert_eq!(p.num_vars(), 12);
        assert_eq!(p.num_agents(), 12);
        // 20 arcs × 3 colors.
        assert_eq!(p.nogoods().len(), 60);
        // The planted coloring solves the encoded problem.
        assert!(p.is_solution(&inst.planted_assignment()));
    }

    #[test]
    fn cnf_encoding_matches_semantics() {
        let inst = generate_sat3(10, 43, 2);
        let p = cnf_to_discsp(&inst.cnf).unwrap();
        assert_eq!(p.num_vars(), 10);
        assert_eq!(p.nogoods().len(), 43);
        let planted = model_to_assignment(&inst.planted);
        assert!(p.is_solution(&planted));
        // Semantics agree on random models.
        let models = crate::satgen::random_models(10, 20, 7);
        for m in models {
            let a = model_to_assignment(&m);
            assert_eq!(inst.cnf.eval(&m), p.is_solution(&a));
        }
    }

    #[test]
    fn graph_encoding_matches_coloring_encoding() {
        let inst = generate_coloring(10, 15, 3, 2);
        let via_instance = coloring_to_discsp(&inst).unwrap();
        let via_graph = graph_to_discsp(&inst.graph, 3).unwrap();
        assert_eq!(via_instance, via_graph);
    }

    #[test]
    fn unit_clause_encodes_as_unary_nogood() {
        let mut cnf = Cnf::new(2);
        cnf.push(Clause::new([Lit::new(0, true)]));
        let p = cnf_to_discsp(&cnf).unwrap();
        assert_eq!(p.nogoods().len(), 1);
        assert_eq!(p.nogoods()[0].len(), 1);
        // x0 must be true.
        assert!(!p.is_solution(&model_to_assignment(&[false, true])));
        assert!(p.is_solution(&model_to_assignment(&[true, true])));
    }
}
