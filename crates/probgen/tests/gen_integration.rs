//! Integration tests for the benchmark generators: statistical sanity,
//! file round trips, and hardness contrasts.

use discsp_cspsolve::{Backtracker, MinConflicts, SolveResult};
use discsp_probgen::{
    cnf_to_discsp, coloring_to_discsp, generate_coloring, generate_one_sat3, generate_sat3,
    paper_coloring, paper_one_sat3, paper_sat3, read_dimacs, write_dimacs,
};

#[test]
fn coloring_instances_are_connected_enough() {
    // At m = 2.7n the giant component should cover nearly everything;
    // sanity-check that no more than a handful of nodes are isolated
    // (isolated nodes are legal — the algorithms must cope — but a
    // generator bug could silently disconnect everything).
    let inst = paper_coloring(120, 5);
    let isolated = (0..120).filter(|&u| inst.graph.degree(u) == 0).count();
    assert!(isolated <= 3, "{isolated} isolated nodes");
    let mean_degree = 2.0 * inst.graph.num_edges() as f64 / inst.graph.num_nodes() as f64;
    assert!((mean_degree - 5.4).abs() < 0.01); // 2 × 2.7
}

#[test]
fn coloring_instances_are_solvable_beyond_the_planted_witness() {
    // The backtracker should find a proper coloring (not necessarily
    // the planted one).
    let inst = generate_coloring(40, 108, 3, 9);
    let problem = coloring_to_discsp(&inst).unwrap();
    let result = Backtracker::new(&problem).solve();
    let solution = result.solution().expect("planted instances are solvable");
    assert!(problem.is_solution(solution));
}

#[test]
fn sat_instances_have_many_models_but_onesat_exactly_one() {
    let plain = generate_sat3(20, 60, 3);
    let plain_problem = cnf_to_discsp(&plain.cnf).unwrap();
    let (count, _) = Backtracker::new(&plain_problem).count_models(50);
    assert!(count > 1, "plain planted 3SAT at low ratio has many models");

    let unique = generate_one_sat3(20, 68, 3);
    let unique_problem = cnf_to_discsp(&unique.cnf).unwrap();
    let (count, complete) = Backtracker::new(&unique_problem).count_models(50);
    assert!(complete);
    assert_eq!(count, 1);
}

#[test]
fn paper_parameterizations_hit_exact_ratios() {
    assert_eq!(paper_coloring(90, 1).graph.num_edges(), 243);
    assert_eq!(paper_sat3(100, 1).cnf.num_clauses(), 430);
    assert_eq!(paper_one_sat3(100, 1).cnf.num_clauses(), 340);
    assert_eq!(paper_one_sat3(200, 1).cnf.num_clauses(), 680);
}

#[test]
fn dimacs_file_round_trip_via_filesystem() {
    let inst = paper_one_sat3(25, 7);
    let dir = std::env::temp_dir().join("discsp-dimacs-test");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("instance.cnf");
    {
        let file = std::fs::File::create(&path).unwrap();
        write_dimacs(&inst.cnf, std::io::BufWriter::new(file)).unwrap();
    }
    let file = std::fs::File::open(&path).unwrap();
    let parsed = read_dimacs(std::io::BufReader::new(file)).unwrap();
    assert_eq!(parsed.clauses(), inst.cnf.clauses());
    std::fs::remove_file(&path).unwrap();
}

#[test]
fn unique_instances_resist_local_search_plain_ones_fall() {
    // The Richards & Richards hardness contrast the paper builds on.
    let plain = cnf_to_discsp(&paper_sat3(30, 2).cnf).unwrap();
    let outcome = MinConflicts::new(5).max_steps(40_000).run(&plain);
    assert!(outcome.solution.is_some());

    let unique = cnf_to_discsp(&paper_one_sat3(30, 2).cnf).unwrap();
    let outcome = MinConflicts::new(5).max_steps(40_000).run(&unique);
    assert!(outcome.solution.is_none());
}

#[test]
fn generators_respect_distinct_seeds_and_instances() {
    let a = paper_coloring(30, 0);
    let b = paper_coloring(30, 1);
    assert_ne!(a, b);
    let a = paper_one_sat3(30, 0);
    let b = paper_one_sat3(30, 1);
    assert_ne!(a.cnf.clauses(), b.cnf.clauses());
}

#[test]
fn onesat_planted_model_survives_dimacs_round_trip_solving() {
    // Full pipeline: generate → write → read → encode → solve → compare
    // with the planted model.
    let inst = paper_one_sat3(15, 11);
    let mut buf = Vec::new();
    write_dimacs(&inst.cnf, &mut buf).unwrap();
    let reread = read_dimacs(buf.as_slice()).unwrap();
    let problem = cnf_to_discsp(&reread).unwrap();
    let result = Backtracker::new(&problem).solve();
    match result {
        SolveResult::Solution(model) => {
            assert_eq!(model, discsp_probgen::model_to_assignment(&inst.planted));
        }
        other => panic!("expected a solution, got {other:?}"),
    }
}
