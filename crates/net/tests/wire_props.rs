//! Codec property tests: seeded random generators for every frame type
//! assert `decode(encode(x)) == x`, and that truncated or corrupted
//! frames always come back as typed errors — never a panic, never a
//! bogus success that re-encodes differently.

use discsp_awc::{AwcConfig, AwcMessage, Learning};
use discsp_core::{
    AgentId, Assignment, Domain, MessageClass, Nogood, Priority, RunMetrics, Termination, Value,
    VarValue, VariableId, Wire, WireError,
};
use discsp_dba::{DbaMessage, WeightMode};
use discsp_net::{
    AgentSlice, AlgoSpec, Mux, RejectReason, RunFrame, ServiceFrame, SessionOutcome, SetupFrame,
    SubmitSpec, SESSION_NONE, WIRE_VERSION,
};
use discsp_runtime::{AgentStats, Envelope, LinkPolicy, LinkStats, SplitMix64};
use discsp_trace::{FaultKind, RuntimeKind, TraceEvent};

const TRIALS: u64 = 200;

fn gen_value(rng: &mut SplitMix64, domain_size: u64) -> Value {
    Value::new(rng.next_below(domain_size) as u16)
}

fn gen_var_value(rng: &mut SplitMix64) -> VarValue {
    VarValue::new(
        VariableId::new(rng.next_below(64) as u32),
        gen_value(rng, 8),
    )
}

fn gen_nogood(rng: &mut SplitMix64) -> Nogood {
    // Distinct variables, 1..=4 of them: always a valid nogood.
    let len = 1 + rng.next_below(4) as u32;
    let base = rng.next_below(32) as u32;
    let terms: Vec<VarValue> = (0..len)
        .map(|i| VarValue::new(VariableId::new(base + i), gen_value(rng, 8)))
        .collect();
    Nogood::try_new(terms).expect("distinct vars form a valid nogood")
}

fn gen_policy(rng: &mut SplitMix64) -> LinkPolicy {
    let delay_min = rng.next_below(4);
    LinkPolicy::lossy(rng.next_below(500_000) as u32)
        .with_duplication(rng.next_below(500_000) as u32)
        .with_delay(delay_min, delay_min + rng.next_below(5))
        .with_reordering(rng.next_below(6))
}

fn gen_awc_config(rng: &mut SplitMix64) -> AwcConfig {
    match rng.next_below(5) {
        0 => AwcConfig::resolvent(),
        1 => AwcConfig::mcs(),
        2 => AwcConfig::no_learning(),
        3 => AwcConfig::kth_resolvent(1 + rng.next_below(9) as usize),
        _ => AwcConfig::resolvent_norec(),
    }
}

fn gen_algo(rng: &mut SplitMix64) -> AlgoSpec {
    match rng.next_below(3) {
        0 => AlgoSpec::Awc(gen_awc_config(rng)),
        1 => AlgoSpec::Dba(WeightMode::PerNogood),
        _ => AlgoSpec::Dba(WeightMode::PerPair),
    }
}

fn gen_slice(rng: &mut SplitMix64) -> AgentSlice {
    let domain = Domain::new(2 + rng.next_below(7) as u16);
    let init = Value::new(rng.next_below(domain.size() as u64) as u16);
    let nogoods = (0..rng.next_below(4)).map(|_| gen_nogood(rng)).collect();
    let neighbors = (0..rng.next_below(5))
        .map(|_| {
            (
                VariableId::new(rng.next_below(64) as u32),
                AgentId::new(rng.next_below(64) as u32),
            )
        })
        .collect();
    AgentSlice {
        agent: AgentId::new(rng.next_below(64) as u32),
        var: VariableId::new(rng.next_below(64) as u32),
        domain,
        init,
        nogoods,
        neighbors,
        algo: gen_algo(rng),
    }
}

fn gen_awc_message(rng: &mut SplitMix64) -> AwcMessage {
    match rng.next_below(3) {
        0 => AwcMessage::Ok {
            var: VariableId::new(rng.next_below(64) as u32),
            value: gen_value(rng, 8),
            priority: Priority::new(rng.next_below(1000)),
        },
        1 => AwcMessage::Nogood {
            nogood: gen_nogood(rng),
            owners: (0..rng.next_below(4))
                .map(|_| {
                    (
                        VariableId::new(rng.next_below(64) as u32),
                        AgentId::new(rng.next_below(64) as u32),
                    )
                })
                .collect(),
        },
        _ => AwcMessage::RequestValue,
    }
}

fn gen_dba_message(rng: &mut SplitMix64) -> DbaMessage {
    match rng.next_below(2) {
        0 => DbaMessage::Ok {
            var: VariableId::new(rng.next_below(64) as u32),
            value: gen_value(rng, 8),
        },
        _ => DbaMessage::Improve {
            improve: rng.next_below(1 << 20),
            eval: rng.next_below(1 << 20),
        },
    }
}

fn gen_envelope<M>(rng: &mut SplitMix64, payload: M) -> Envelope<M> {
    Envelope::new(
        AgentId::new(rng.next_below(64) as u32),
        AgentId::new(rng.next_below(64) as u32),
        payload,
    )
}

fn gen_stats(rng: &mut SplitMix64) -> AgentStats {
    AgentStats {
        nogoods_generated: rng.next_below(1 << 30),
        redundant_nogoods: rng.next_below(1 << 30),
        largest_nogood: rng.next_below(64),
        messages_sent: rng.next_below(1 << 30),
        messages_dropped: rng.next_below(1 << 20),
        messages_duplicated: rng.next_below(1 << 20),
        messages_reordered: rng.next_below(1 << 20),
        messages_retransmitted: rng.next_below(1 << 20),
        max_delivery_delay: rng.next_below(64),
    }
}

fn gen_trace(rng: &mut SplitMix64) -> Vec<TraceEvent> {
    (0..rng.next_below(4))
        .map(|_| match rng.next_below(3) {
            0 => TraceEvent::AgentStep {
                cycle: rng.next_below(1000),
                agent: AgentId::new(rng.next_below(64) as u32),
                checks: rng.next_below(1 << 20),
            },
            1 => TraceEvent::NogoodLearned {
                cycle: rng.next_below(1000),
                agent: AgentId::new(rng.next_below(64) as u32),
                size: rng.next_below(32),
            },
            _ => TraceEvent::ValueChanged {
                cycle: rng.next_below(1000),
                var: VariableId::new(rng.next_below(64) as u32),
                old: match rng.next_below(2) {
                    0 => None,
                    _ => Some(gen_value(rng, 8)),
                },
                new: gen_value(rng, 8),
            },
        })
        .collect()
}

fn gen_setup_frame(rng: &mut SplitMix64) -> SetupFrame {
    match rng.next_below(2) {
        0 => SetupFrame::Hello {
            index: rng.next_below(1 << 16) as u32,
        },
        _ => SetupFrame::Assign {
            n_agents: 1 + rng.next_below(64) as u32,
            seed: rng.next_u64(),
            policy: gen_policy(rng),
            record_trace: rng.next_below(2) == 0,
            slice: gen_slice(rng),
        },
    }
}

fn gen_awc_run_frame(rng: &mut SplitMix64) -> RunFrame<AwcMessage> {
    match rng.next_below(6) {
        0 => RunFrame::Start,
        1 => RunFrame::Deliver {
            tick: rng.next_below(1 << 20),
            msgs: (0..rng.next_below(6))
                .map(|_| {
                    let payload = gen_awc_message(rng);
                    gen_envelope(rng, payload)
                })
                .collect(),
        },
        2 => RunFrame::Nudge {
            tick: rng.next_below(1 << 20),
        },
        3 => RunFrame::Step {
            out: (0..rng.next_below(6))
                .map(|_| {
                    let payload = gen_awc_message(rng);
                    gen_envelope(rng, payload)
                })
                .collect(),
            checks: rng.next_below(1 << 30),
            assignments: (0..rng.next_below(4)).map(|_| gen_var_value(rng)).collect(),
            insoluble: rng.next_below(2) == 0,
        },
        4 => RunFrame::Stop,
        _ => RunFrame::Final {
            stats: gen_stats(rng),
            leftover_checks: rng.next_below(1 << 20),
            trace: gen_trace(rng),
        },
    }
}

fn gen_dba_run_frame(rng: &mut SplitMix64) -> RunFrame<DbaMessage> {
    match rng.next_below(4) {
        0 => RunFrame::Deliver {
            tick: rng.next_below(1 << 20),
            msgs: (0..rng.next_below(6))
                .map(|_| {
                    let payload = gen_dba_message(rng);
                    gen_envelope(rng, payload)
                })
                .collect(),
        },
        1 => RunFrame::Step {
            out: (0..rng.next_below(6))
                .map(|_| {
                    let payload = gen_dba_message(rng);
                    gen_envelope(rng, payload)
                })
                .collect(),
            checks: rng.next_below(1 << 30),
            assignments: (0..rng.next_below(4)).map(|_| gen_var_value(rng)).collect(),
            insoluble: false,
        },
        2 => RunFrame::Start,
        _ => RunFrame::Final {
            stats: gen_stats(rng),
            leftover_checks: rng.next_below(1 << 20),
            trace: gen_trace(rng),
        },
    }
}

fn gen_assignment(rng: &mut SplitMix64) -> Assignment {
    let n = rng.next_below(8) as usize;
    let mut assignment = Assignment::empty(n);
    for index in 0..n {
        if rng.next_below(2) == 0 {
            assignment.set(VariableId::new(index as u32), gen_value(rng, 8));
        }
    }
    assignment
}

fn gen_termination(rng: &mut SplitMix64) -> Termination {
    match rng.next_below(3) {
        0 => Termination::Solved,
        1 => Termination::CutOff,
        _ => Termination::Insoluble,
    }
}

fn gen_metrics(rng: &mut SplitMix64) -> RunMetrics {
    let mut metrics = RunMetrics::new(gen_termination(rng));
    metrics.cycles = rng.next_below(1 << 20);
    metrics.maxcck = rng.next_below(1 << 30);
    metrics.total_checks = rng.next_below(1 << 30);
    metrics.ok_messages = rng.next_below(1 << 30);
    metrics.nogood_messages = rng.next_below(1 << 30);
    metrics.other_messages = rng.next_below(1 << 20);
    metrics.nogoods_generated = rng.next_below(1 << 30);
    metrics.redundant_nogoods = rng.next_below(1 << 30);
    metrics.largest_nogood = rng.next_below(64);
    metrics.messages_sent = rng.next_below(1 << 30);
    metrics.messages_dropped = rng.next_below(1 << 20);
    metrics.messages_duplicated = rng.next_below(1 << 20);
    metrics.messages_reordered = rng.next_below(1 << 20);
    metrics.messages_retransmitted = rng.next_below(1 << 20);
    metrics.max_delivery_delay = rng.next_below(64);
    metrics
}

fn gen_link_stats(rng: &mut SplitMix64) -> LinkStats {
    LinkStats {
        sent: rng.next_below(1 << 30),
        dropped: rng.next_below(1 << 20),
        duplicated: rng.next_below(1 << 20),
        reordered: rng.next_below(1 << 20),
        retransmitted: rng.next_below(1 << 20),
        max_delay: rng.next_below(64),
    }
}

fn gen_fault_kind(rng: &mut SplitMix64) -> FaultKind {
    match rng.next_below(5) {
        0 => FaultKind::Dropped,
        1 => FaultKind::Duplicated,
        2 => FaultKind::Reordered,
        3 => FaultKind::Delayed(rng.next_below(64)),
        _ => FaultKind::Retransmitted,
    }
}

fn gen_runtime_kind(rng: &mut SplitMix64) -> RuntimeKind {
    match rng.next_below(6) {
        0 => RuntimeKind::Sync,
        1 => RuntimeKind::Virtual,
        2 => RuntimeKind::Async,
        3 => RuntimeKind::Net,
        4 => RuntimeKind::Service,
        _ => RuntimeKind::Sharded,
    }
}

fn gen_message_class(rng: &mut SplitMix64) -> MessageClass {
    match rng.next_below(3) {
        0 => MessageClass::Ok,
        1 => MessageClass::Nogood,
        _ => MessageClass::Other,
    }
}

fn gen_learning(rng: &mut SplitMix64) -> Learning {
    match rng.next_below(3) {
        0 => Learning::Resolvent,
        1 => Learning::Mcs,
        _ => Learning::None,
    }
}

/// Asserts the three codec properties on one value: exact roundtrip,
/// every strict prefix is a typed error, and every single-byte
/// corruption either errors or decodes to *something* that re-encodes
/// self-consistently (it must never panic).
fn assert_codec_properties<F>(frame: &F)
where
    F: Wire + PartialEq + std::fmt::Debug,
{
    let bytes = frame.to_bytes();
    assert_eq!(bytes.first(), Some(&WIRE_VERSION), "version byte leads");
    assert_eq!(&F::from_bytes(&bytes).expect("roundtrip"), frame);

    for cut in 0..bytes.len() {
        let truncated = &bytes[..cut];
        assert!(
            F::from_bytes(truncated).is_err(),
            "prefix of {cut}/{} bytes must not decode",
            bytes.len()
        );
    }

    for i in 0..bytes.len() {
        let mut corrupt = bytes.clone();
        corrupt[i] ^= 0xA5;
        if let Ok(decoded) = F::from_bytes(&corrupt) {
            // Accidental valid decodes are fine as long as they are
            // self-consistent values, not memory garbage.
            let again = decoded.to_bytes();
            assert_eq!(
                F::from_bytes(&again).expect("re-decode of re-encode"),
                decoded
            );
        }
    }
}

#[test]
fn setup_frames_roundtrip_and_reject_damage() {
    let mut rng = SplitMix64::new(0xC0DE_C5E7);
    for _ in 0..TRIALS {
        let frame = gen_setup_frame(&mut rng);
        assert_codec_properties(&frame);
    }
}

#[test]
fn awc_run_frames_roundtrip_and_reject_damage() {
    let mut rng = SplitMix64::new(0xC0DE_CA3C);
    for _ in 0..TRIALS {
        let frame = gen_awc_run_frame(&mut rng);
        assert_codec_properties(&frame);
    }
}

#[test]
fn dba_run_frames_roundtrip_and_reject_damage() {
    let mut rng = SplitMix64::new(0xC0DE_CDBA);
    for _ in 0..TRIALS {
        let frame = gen_dba_run_frame(&mut rng);
        assert_codec_properties(&frame);
    }
}

/// Same properties as [`assert_codec_properties`] minus the version
/// byte: standalone vocabulary types are versioned by the frame that
/// carries them, not by their own encoding.
fn assert_value_codec_properties<F>(value: &F)
where
    F: Wire + PartialEq + std::fmt::Debug,
{
    let bytes = value.to_bytes();
    assert_eq!(&F::from_bytes(&bytes).expect("roundtrip"), value);

    for cut in 0..bytes.len() {
        assert!(
            F::from_bytes(&bytes[..cut]).is_err(),
            "prefix of {cut}/{} bytes must not decode",
            bytes.len()
        );
    }

    for i in 0..bytes.len() {
        let mut corrupt = bytes.clone();
        corrupt[i] ^= 0xA5;
        if let Ok(decoded) = F::from_bytes(&corrupt) {
            let again = decoded.to_bytes();
            assert_eq!(
                F::from_bytes(&again).expect("re-decode of re-encode"),
                decoded
            );
        }
    }
}

#[test]
fn standalone_wire_impls_roundtrip_and_reject_damage() {
    let mut rng = SplitMix64::new(0xC0DE_5070);
    for _ in 0..TRIALS {
        assert_value_codec_properties(&gen_assignment(&mut rng));
        assert_value_codec_properties(&gen_message_class(&mut rng));
        assert_value_codec_properties(&gen_termination(&mut rng));
        assert_value_codec_properties(&gen_metrics(&mut rng));
        assert_value_codec_properties(&gen_link_stats(&mut rng));
        assert_value_codec_properties(&gen_learning(&mut rng));
        assert_value_codec_properties(&gen_fault_kind(&mut rng));
        assert_value_codec_properties(&gen_runtime_kind(&mut rng));
    }
}

#[test]
fn truncation_errors_are_typed_not_panics() {
    let mut rng = SplitMix64::new(7);
    let frame = SetupFrame::Assign {
        n_agents: 5,
        seed: 99,
        policy: gen_policy(&mut rng),
        record_trace: true,
        slice: gen_slice(&mut rng),
    };
    let bytes = frame.to_bytes();
    let err = SetupFrame::from_bytes(&bytes[..bytes.len() - 1]).expect_err("truncated");
    assert!(
        matches!(
            err,
            WireError::Truncated { .. } | WireError::Invalid { .. } | WireError::Trailing { .. }
        ),
        "typed error, got {err:?}"
    );
}

fn gen_total_assignment(rng: &mut SplitMix64, n: usize) -> Assignment {
    Assignment::total((0..n).map(|_| gen_value(rng, 8)))
}

fn gen_submit_spec(rng: &mut SplitMix64) -> SubmitSpec {
    let n = 1 + rng.next_below(6) as usize;
    SubmitSpec {
        domains: (0..n)
            .map(|_| Domain::new(2 + rng.next_below(7) as u16))
            .collect(),
        owners: (0..n).map(|i| AgentId::new(i as u32)).collect(),
        nogoods: (0..rng.next_below(4)).map(|_| gen_nogood(rng)).collect(),
        init: gen_total_assignment(rng, n),
        algo: gen_algo(rng),
        seed: rng.next_u64(),
        link: gen_policy(rng),
        max_ticks: rng.next_below(1 << 30),
        max_nudges: rng.next_below(256),
        record_trace: rng.next_below(2) == 0,
    }
}

fn gen_reject_reason(rng: &mut SplitMix64) -> RejectReason {
    match rng.next_below(4) {
        0 => RejectReason::Overloaded,
        1 => RejectReason::Draining,
        2 => RejectReason::DuplicateSession,
        _ => RejectReason::BadSpec,
    }
}

fn gen_session_outcome(rng: &mut SplitMix64) -> SessionOutcome {
    SessionOutcome {
        metrics: gen_metrics(rng),
        solution: match rng.next_below(2) {
            0 => None,
            _ => Some(gen_assignment(rng)),
        },
        ticks: rng.next_below(1 << 30),
        activations: rng.next_below(1 << 30),
        nudges: rng.next_below(256),
        trace: gen_trace(rng),
    }
}

fn gen_service_frame(rng: &mut SplitMix64) -> ServiceFrame {
    match rng.next_below(8) {
        0 => ServiceFrame::Submit {
            spec: gen_submit_spec(rng),
        },
        1 => ServiceFrame::Cancel,
        2 => ServiceFrame::Drain,
        3 => ServiceFrame::Accepted,
        4 => ServiceFrame::Rejected {
            reason: gen_reject_reason(rng),
        },
        5 => ServiceFrame::Done {
            outcome: gen_session_outcome(rng),
        },
        6 => ServiceFrame::Cancelled,
        _ => ServiceFrame::Drained,
    }
}

#[test]
fn service_frames_roundtrip_and_reject_damage() {
    let mut rng = SplitMix64::new(0xC0DE_5E81);
    for _ in 0..TRIALS {
        let frame = gen_service_frame(&mut rng);
        assert_codec_properties(&frame);
    }
}

#[test]
fn mux_session_ids_roundtrip_and_reject_damage() {
    // The v3 header carries the session id for every frame family; the
    // codec properties must hold for arbitrary ids, including huge ones.
    let mut rng = SplitMix64::new(0xC0DE_3030);
    for _ in 0..TRIALS / 2 {
        let session = rng.next_u64();
        assert_codec_properties(&Mux::new(session, gen_service_frame(&mut rng)));
        assert_codec_properties(&Mux::new(session, gen_setup_frame(&mut rng)));
        assert_codec_properties(&Mux::new(session, gen_awc_run_frame(&mut rng)));
    }
}

#[test]
fn v2_encodings_cross_decode_as_session_none() {
    // A v3 encoding is `[3, tag, session:8, body]`; the v2 encoding of
    // the same frame is `[2, tag, body]`. Every v2 frame must decode on
    // a v3 endpoint with the reserved session id 0.
    let mut rng = SplitMix64::new(0xC0DE_0202);
    for _ in 0..TRIALS {
        let frame = gen_setup_frame(&mut rng);
        let v3 = frame.to_bytes();
        let mut v2 = Vec::with_capacity(v3.len() - 8);
        v2.push(2u8);
        v2.push(v3[1]);
        v2.extend_from_slice(&v3[10..]);
        let decoded = Mux::<SetupFrame>::from_bytes(&v2).expect("v2 cross-decode");
        assert_eq!(decoded.session, SESSION_NONE);
        assert_eq!(decoded.frame, frame);
        // The plain impl agrees.
        assert_eq!(SetupFrame::from_bytes(&v2).expect("plain decode"), frame);
    }
}

#[test]
fn empty_input_is_a_truncation_error() {
    assert!(matches!(
        SetupFrame::from_bytes(&[]),
        Err(WireError::Truncated { .. })
    ));
    assert!(matches!(
        RunFrame::<AwcMessage>::from_bytes(&[]),
        Err(WireError::Truncated { .. })
    ));
}
