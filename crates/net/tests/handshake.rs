//! Handshake robustness: a hostile or broken client must produce a
//! typed error promptly — never a wedge, never a slot overwrite.
//!
//! Each test drives `run_session` with hand-rolled client sockets that
//! misbehave in one specific way (claim a duplicate index, claim an
//! out-of-range index, connect and then go silent) and asserts the
//! coordinator's exact `NetError`.

use std::net::{TcpListener, TcpStream};
use std::thread;
use std::time::{Duration, Instant};

use discsp_awc::{AwcConfig, AwcMessage};
use discsp_core::{Assignment, DistributedCsp, Domain, Value, Wire};
use discsp_net::{
    build_slices, run_session, AlgoSpec, NetConfig, NetError, SetupFrame, MAX_FRAME_LEN,
};

fn pair() -> DistributedCsp {
    let mut b = DistributedCsp::builder();
    let x = b.variable(Domain::new(3));
    let y = b.variable(Domain::new(3));
    b.not_equal(x, y).expect("edge");
    b.build().expect("problem")
}

fn send_raw_frame(stream: &mut TcpStream, frame: &SetupFrame) {
    use std::io::Write as _;
    let body = frame.to_bytes();
    assert!((body.len() as u64) < MAX_FRAME_LEN);
    stream
        .write_all(&(body.len() as u32).to_le_bytes())
        .expect("prefix");
    stream.write_all(&body).expect("body");
}

/// Runs the coordinator against two scripted clients and returns its
/// error. `hellos` gives the index each client claims; `None` means the
/// client connects and then stays silent.
fn run_with_clients(hellos: [Option<u32>; 2], config: NetConfig) -> NetError {
    let problem = pair();
    let init = Assignment::total([Value::new(0), Value::new(0)]);
    let slices =
        build_slices(&problem, &init, AlgoSpec::Awc(AwcConfig::resolvent())).expect("slices");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");

    let clients: Vec<_> = hellos
        .into_iter()
        .map(|hello| {
            thread::spawn(move || {
                let mut stream = TcpStream::connect(addr).expect("connect");
                if let Some(index) = hello {
                    send_raw_frame(&mut stream, &SetupFrame::Hello { index });
                }
                // Hold the socket open long enough for the coordinator
                // to reach its verdict, then drop it.
                thread::sleep(Duration::from_millis(600));
            })
        })
        .collect();

    let result = run_session::<AwcMessage>(&listener, &problem, &slices, &config);
    for client in clients {
        client.join().expect("client thread");
    }
    result.expect_err("the session must fail")
}

fn short_config() -> NetConfig {
    NetConfig {
        handshake_timeout: Duration::from_millis(300),
        ..NetConfig::default()
    }
}

#[test]
fn duplicate_hello_is_a_typed_error() {
    let err = run_with_clients([Some(1), Some(1)], short_config());
    assert!(
        matches!(err, NetError::DuplicateAgentIndex { index: 1 }),
        "got {err:?}"
    );
}

#[test]
fn out_of_range_hello_is_a_typed_error() {
    let err = run_with_clients([Some(0), Some(9)], short_config());
    assert!(
        matches!(
            err,
            NetError::BadAgentIndex {
                index: 9,
                population: 2,
            }
        ),
        "got {err:?}"
    );
}

#[test]
fn stalled_client_cannot_wedge_session_setup() {
    // The second client connects but never sends Hello. With an
    // unbounded io_timeout the old coordinator blocked forever on its
    // recv; the shared handshake deadline must instead produce a typed
    // HelloTimeout within roughly the handshake window.
    let config = NetConfig {
        io_timeout: Duration::ZERO,
        handshake_timeout: Duration::from_millis(300),
        ..NetConfig::default()
    };
    let started = Instant::now();
    let err = run_with_clients([Some(0), None], config);
    let elapsed = started.elapsed();
    assert!(
        matches!(
            err,
            NetError::HelloTimeout {
                completed: _,
                expected: 2,
            }
        ),
        "got {err:?}"
    );
    assert!(
        elapsed < Duration::from_secs(5),
        "setup must fail promptly, took {elapsed:?}"
    );
}

#[test]
fn missing_agent_times_out_the_accept_loop() {
    let err = run_with_clients([Some(0), None], short_config());
    // Depending on timing the silent client is caught either in the
    // accept phase (if it never finished connecting) or in the Hello
    // phase; both are typed timeouts.
    assert!(
        matches!(
            err,
            NetError::HelloTimeout { .. } | NetError::HandshakeTimeout { .. }
        ),
        "got {err:?}"
    );
}
