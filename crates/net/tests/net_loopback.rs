//! Multi-process loopback integration tests: a coordinator plus real
//! agent processes (the `discsp-net` binary) on 127.0.0.1 must solve
//! the same problems as the in-process virtual runtime, with the same
//! metrics and — under injected faults — bit-identical fault counters
//! replayed from the same `(seed, policy)`.

use std::path::PathBuf;

use discsp_awc::{AwcConfig, AwcSolver};
use discsp_core::{Assignment, DistributedCsp, Domain, RunMetrics, Termination, Value};
use discsp_dba::{DbaSolver, WeightMode};
use discsp_net::{AgentLaunch, NetConfig, SolveNet};
use discsp_runtime::{LinkPolicy, VirtualConfig};
use discsp_trace::{audit, canonical_sort, TraceEvent};

fn agent_binary() -> AgentLaunch {
    AgentLaunch::Processes {
        program: PathBuf::from(env!("CARGO_BIN_EXE_discsp-net")),
        args: Vec::new(),
    }
}

fn ring(n: usize) -> DistributedCsp {
    let mut b = DistributedCsp::builder();
    let vars: Vec<_> = (0..n).map(|_| b.variable(Domain::new(3))).collect();
    for i in 0..n {
        let x = vars[i];
        let y = vars[(i + 1) % n];
        if x != y {
            b.not_equal(x, y).expect("ring edge");
        }
    }
    b.build().expect("ring problem")
}

fn all_zero(n: usize) -> Assignment {
    Assignment::total((0..n).map(|_| Value::new(0)))
}

/// The message-identity invariant: every message the link layer was
/// handed is accounted for exactly once.
fn assert_identity(m: &RunMetrics) {
    assert_eq!(
        m.total_messages(),
        m.messages_sent - m.messages_dropped + m.messages_duplicated + m.messages_retransmitted,
        "message identity invariant"
    );
}

/// Every field of the virtual and networked runs must agree, `maxcck`
/// included: both executors accumulate it at the same wave boundaries
/// from the same check counts.
fn assert_metrics_match(net: &RunMetrics, virt: &RunMetrics) {
    assert_eq!(net.termination, virt.termination, "termination");
    assert_eq!(net.cycles, virt.cycles, "cycles");
    assert_eq!(net.maxcck, virt.maxcck, "maxcck");
    assert_eq!(net.total_checks, virt.total_checks, "total_checks");
    assert_eq!(net.ok_messages, virt.ok_messages, "ok_messages");
    assert_eq!(net.nogood_messages, virt.nogood_messages, "nogood_messages");
    assert_eq!(net.other_messages, virt.other_messages, "other_messages");
    assert_eq!(net.nogoods_generated, virt.nogoods_generated, "nogoods_generated");
    assert_eq!(net.redundant_nogoods, virt.redundant_nogoods, "redundant_nogoods");
    assert_eq!(net.largest_nogood, virt.largest_nogood, "largest_nogood");
    assert_eq!(net.messages_sent, virt.messages_sent, "messages_sent");
    assert_eq!(net.messages_dropped, virt.messages_dropped, "messages_dropped");
    assert_eq!(net.messages_duplicated, virt.messages_duplicated, "messages_duplicated");
    assert_eq!(net.messages_reordered, virt.messages_reordered, "messages_reordered");
    assert_eq!(
        net.messages_retransmitted, virt.messages_retransmitted,
        "messages_retransmitted"
    );
    assert_eq!(net.max_delivery_delay, virt.max_delivery_delay, "max_delivery_delay");
}

#[test]
fn awc_processes_match_virtual_run() {
    let n = 6;
    let problem = ring(n);
    let init = all_zero(n);
    let solver = AwcSolver::new(AwcConfig::resolvent());

    let net_config = NetConfig {
        seed: 11,
        ..NetConfig::default()
    };
    let report = solver
        .solve_net(&problem, &init, &net_config, &agent_binary())
        .expect("networked solve");
    let m = &report.outcome.metrics;
    assert_eq!(m.termination, Termination::Solved);
    let solution = report.outcome.solution.as_ref().expect("solution");
    assert!(problem.is_solution(solution), "claimed solution must hold");
    assert_identity(m);
    assert!(m.maxcck > 0, "networked run computes maxcck");
    assert!(m.maxcck <= m.total_checks, "maxcck is a per-wave maximum");

    let virt_config = VirtualConfig {
        seed: 11,
        ..VirtualConfig::default()
    };
    let virt = solver
        .solve_virtual(&problem, &init, &virt_config)
        .expect("virtual solve");
    assert_metrics_match(m, &virt.outcome.metrics);
    assert_eq!(report.activations, virt.activations, "activations");
    assert_eq!(report.nudges, virt.nudges, "nudges");
    assert_eq!(report.outcome.solution, virt.outcome.solution, "same solution");
}

#[test]
fn lossy_processes_replay_bit_identical_fault_counters() {
    let n = 5;
    let problem = ring(n);
    let init = all_zero(n);
    let solver = AwcSolver::new(AwcConfig::resolvent());
    let policy = LinkPolicy::lossy(250_000)
        .with_duplication(80_000)
        .with_delay(0, 2)
        .with_reordering(2);
    let config = NetConfig {
        seed: 2026,
        link: policy,
        ..NetConfig::default()
    };

    let first = solver
        .solve_net(&problem, &init, &config, &agent_binary())
        .expect("first lossy run");
    let second = solver
        .solve_net(&problem, &init, &config, &agent_binary())
        .expect("second lossy run");
    let (a, b) = (&first.outcome.metrics, &second.outcome.metrics);
    assert_identity(a);
    assert!(
        a.messages_dropped > 0 || a.messages_duplicated > 0,
        "policy must actually fire: {a:?}"
    );
    assert_eq!(a, b, "same (seed, policy) must replay bit-identically");

    // And the fault schedule is the one the virtual runtime derives from
    // the same (seed, policy): the coordinator relays through the same
    // per-link seeded lottery.
    let virt = solver
        .solve_virtual(
            &problem,
            &init,
            &VirtualConfig {
                seed: 2026,
                link: policy,
                ..VirtualConfig::default()
            },
        )
        .expect("virtual lossy run");
    assert_metrics_match(a, &virt.outcome.metrics);
}

#[test]
fn lossy_net_trace_matches_virtual_trace_and_passes_audit() {
    let n = 5;
    let problem = ring(n);
    let init = all_zero(n);
    let solver = AwcSolver::new(AwcConfig::resolvent());
    let policy = LinkPolicy::lossy(250_000)
        .with_duplication(80_000)
        .with_delay(0, 2)
        .with_reordering(2);

    let net_report = solver
        .solve_net(
            &problem,
            &init,
            &NetConfig {
                seed: 2026,
                link: policy,
                record_trace: true,
                ..NetConfig::default()
            },
            &AgentLaunch::Threads,
        )
        .expect("networked lossy run");
    let virt_report = solver
        .solve_virtual(
            &problem,
            &init,
            &VirtualConfig {
                seed: 2026,
                link: policy,
                record_trace: true,
                ..VirtualConfig::default()
            },
        )
        .expect("virtual lossy run");

    // Both traces must independently reproduce their own metrics.
    let net_audit = audit(&net_report.trace).expect("net trace audits");
    assert!(net_audit.passed(), "net audit failed: {:?}", net_audit.failures);
    assert_eq!(net_audit.metrics, net_report.outcome.metrics);
    let virt_audit = audit(&virt_report.trace).expect("virtual trace audits");
    assert!(
        virt_audit.passed(),
        "virtual audit failed: {:?}",
        virt_audit.failures
    );
    assert_eq!(virt_audit.metrics, virt_report.outcome.metrics);

    // And the two event streams are identical modulo the RunEnd stamp
    // (whose runtime kind necessarily differs).
    let strip = |trace: &[TraceEvent]| -> Vec<TraceEvent> {
        let mut events: Vec<TraceEvent> = trace
            .iter()
            .filter(|e| !matches!(e, TraceEvent::RunEnd { .. }))
            .cloned()
            .collect();
        canonical_sort(&mut events);
        events
    };
    assert_eq!(
        strip(&net_report.trace),
        strip(&virt_report.trace),
        "same (seed, policy) must produce the same event stream across the process boundary"
    );
}

#[test]
fn dba_threads_match_virtual_run() {
    let n = 5;
    let problem = ring(n);
    let init = all_zero(n);
    let solver = DbaSolver::new().weight_mode(WeightMode::PerNogood);

    let report = solver
        .solve_net(
            &problem,
            &init,
            &NetConfig {
                seed: 3,
                ..NetConfig::default()
            },
            &AgentLaunch::Threads,
        )
        .expect("networked dba solve");
    let m = &report.outcome.metrics;
    assert_eq!(m.termination, Termination::Solved);
    let solution = report.outcome.solution.as_ref().expect("solution");
    assert!(problem.is_solution(solution));
    assert_identity(m);

    let virt = solver
        .solve_virtual(
            &problem,
            &init,
            &VirtualConfig {
                seed: 3,
                ..VirtualConfig::default()
            },
        )
        .expect("virtual dba solve");
    assert_metrics_match(m, &virt.outcome.metrics);
    assert_eq!(report.outcome.solution, virt.outcome.solution);
}
