//! Multi-process TCP transport for DisCSP solve sessions.
//!
//! Every other runtime in this workspace executes all agents inside one
//! OS process. This crate runs a solve session as **one coordinator
//! process plus N agent processes** talking over TCP:
//!
//! * a length-prefixed binary wire codec with versioned frames
//!   ([`SetupFrame`], [`RunFrame`]), hand-rolled on the
//!   [`Wire`](discsp_core::Wire) trait — no serde, no external deps;
//! * a handshake/topology phase where the coordinator ships each agent
//!   its slice of the [`DistributedCsp`](discsp_core::DistributedCsp)
//!   ([`AgentSlice`]);
//! * a networked quiescence/solution detector: the coordinator relays
//!   every message, so its [`Router`](discsp_runtime::Router) queue *is*
//!   the in-flight set — the same consistent-snapshot argument as the
//!   in-process runtimes, now across sockets;
//! * end-of-run metrics aggregation: each agent ships its
//!   [`AgentStats`](discsp_runtime::AgentStats) home in a `Final` frame,
//!   so `cycle`/`maxcck` accounting survives the process boundary.
//!
//! The deterministic [`LinkPolicy`](discsp_runtime::LinkPolicy) fault
//! machinery is wired in at the socket layer: the coordinator's relay
//! path routes every frame through the same per-link seeded fault
//! lottery as `run_virtual`, so a lossy-network run replays its fault
//! counters bit-for-bit from `(seed, policy)` — the determinism boundary
//! is the *fault schedule*, not OS scheduling (see DESIGN.md §9).
//!
//! Entry points: [`SolveNet::solve_net`] on
//! [`AwcSolver`](discsp_awc::AwcSolver) /
//! [`DbaSolver`](discsp_dba::DbaSolver), and the `discsp-net` binary,
//! which can play either role (`agent` / `demo`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::time::Duration;

use discsp_core::{AgentId, VariableId, WireError};
use discsp_runtime::{LinkPolicy, RuntimeError};

mod coordinator;
mod endpoint;
mod frame;
pub mod service;
mod solve;
mod topology;
mod transport;

pub use coordinator::{run_session, NetReport};
pub use endpoint::run_agent;
pub use frame::{
    Mux, MuxWire, RunFrame, SetupFrame, MAX_FRAME_LEN, MIN_WIRE_VERSION, SESSION_NONE,
    WIRE_VERSION,
};
pub use service::{RejectReason, ServiceFrame, SessionOutcome, SubmitSpec};
pub use solve::{AgentLaunch, SolveNet};
pub use topology::{build_slices, AgentSlice, AlgoSpec};
pub use transport::{Deadline, FrameConn};

/// Configuration of a networked solve session.
///
/// The `(seed, link)` pair fully determines the fault schedule on the
/// coordinator's relay path, exactly as in
/// [`VirtualConfig`](discsp_runtime::VirtualConfig) — a failing lossy
/// run replays from these two fields alone.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Seed deriving every per-link fault stream.
    pub seed: u64,
    /// Fault policy applied to every relayed link.
    pub link: LinkPolicy,
    /// Tick budget; the run reports a cutoff beyond it.
    pub max_ticks: u64,
    /// How many stall-triggered recovery passes to run before giving up.
    pub max_nudges: u64,
    /// Stop at the first globally consistent snapshot instead of
    /// requiring the relay queue to drain (forced on for distributed
    /// breakout, whose waves never go quiet).
    pub stop_on_first_solution: bool,
    /// Record the session's event trace: the router's link-level events
    /// on the coordinator plus each endpoint's per-step events (shipped
    /// home in `Final` frames), merged into
    /// [`NetReport::trace`](crate::NetReport).
    pub record_trace: bool,
    /// How long the coordinator waits for all agents to connect and
    /// complete the handshake.
    pub handshake_timeout: Duration,
    /// Per-socket read/write timeout during the run. `Duration::ZERO`
    /// means block indefinitely.
    pub io_timeout: Duration,
}

impl Default for NetConfig {
    fn default() -> Self {
        NetConfig {
            seed: 0,
            link: LinkPolicy::perfect(),
            max_ticks: 1_000_000,
            max_nudges: 64,
            stop_on_first_solution: false,
            record_trace: false,
            handshake_timeout: Duration::from_secs(30),
            io_timeout: Duration::from_secs(30),
        }
    }
}

/// Everything that can go wrong in a networked solve session.
#[derive(Debug)]
pub enum NetError {
    /// A socket operation failed.
    Io {
        /// What the session was doing when the I/O failed.
        context: &'static str,
        /// The underlying error.
        error: std::io::Error,
    },
    /// A frame failed to encode within limits or decode at all.
    Wire(WireError),
    /// A frame exceeded [`MAX_FRAME_LEN`].
    FrameTooLong {
        /// Announced or actual frame length.
        len: u64,
    },
    /// The peer sent a frame that is valid but wrong for the current
    /// protocol phase.
    UnexpectedFrame {
        /// The phase or frame that was expected instead.
        expected: &'static str,
    },
    /// Not every agent connected within the handshake window.
    HandshakeTimeout {
        /// Agents that did connect.
        connected: usize,
        /// Agents the session needs.
        expected: usize,
    },
    /// An agent connected but did not complete its `Hello` within the
    /// handshake window — a stalled client must not wedge session setup.
    HelloTimeout {
        /// Agents that completed the greeting.
        completed: usize,
        /// Agents the session needs.
        expected: usize,
    },
    /// An agent greeted with an index outside `0..n`.
    BadAgentIndex {
        /// The offending index.
        index: u32,
        /// The population size.
        population: usize,
    },
    /// Two agents greeted with the same index.
    DuplicateAgentIndex {
        /// The contested index.
        index: u32,
    },
    /// An agent owns a number of variables other than one.
    WrongVariableCount {
        /// The offending agent.
        agent: AgentId,
        /// How many variables it owns.
        count: usize,
    },
    /// An initial value is missing or outside its variable's domain.
    BadInitialValue {
        /// The variable with the unusable initial value.
        var: VariableId,
    },
    /// An agent process or thread failed outside the protocol.
    AgentFailed {
        /// The agent's index.
        index: u32,
        /// What happened.
        detail: String,
    },
    /// The shared routing machinery rejected a message.
    Runtime(RuntimeError),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Io { context, error } => write!(f, "i/o failure while {context}: {error}"),
            NetError::Wire(e) => write!(f, "wire codec error: {e}"),
            NetError::FrameTooLong { len } => {
                write!(f, "frame of {len} bytes exceeds the {MAX_FRAME_LEN}-byte limit")
            }
            NetError::UnexpectedFrame { expected } => {
                write!(f, "unexpected frame: expected {expected}")
            }
            NetError::HandshakeTimeout {
                connected,
                expected,
            } => write!(
                f,
                "handshake timed out with {connected} of {expected} agents connected"
            ),
            NetError::HelloTimeout {
                completed,
                expected,
            } => write!(
                f,
                "handshake timed out with {completed} of {expected} agents greeted \
                 (a connected client stalled before Hello)"
            ),
            NetError::BadAgentIndex { index, population } => {
                write!(f, "agent index {index} outside population of {population}")
            }
            NetError::DuplicateAgentIndex { index } => {
                write!(f, "two agents claimed index {index}")
            }
            NetError::WrongVariableCount { agent, count } => {
                write!(f, "agent {agent} owns {count} variables; expected exactly 1")
            }
            NetError::BadInitialValue { var } => {
                write!(f, "initial value for {var} is missing or out of domain")
            }
            NetError::AgentFailed { index, detail } => {
                write!(f, "agent {index} failed: {detail}")
            }
            NetError::Runtime(e) => write!(f, "runtime error: {e}"),
        }
    }
}

impl std::error::Error for NetError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            NetError::Io { error, .. } => Some(error),
            NetError::Wire(e) => Some(e),
            NetError::Runtime(e) => Some(e),
            _ => None,
        }
    }
}

impl From<WireError> for NetError {
    fn from(e: WireError) -> Self {
        NetError::Wire(e)
    }
}

impl From<RuntimeError> for NetError {
    fn from(e: RuntimeError) -> Self {
        NetError::Runtime(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_perfect_and_bounded() {
        let config = NetConfig::default();
        assert!(config.link.is_perfect());
        assert!(!config.stop_on_first_solution);
        assert!(config.max_ticks > 0);
        assert!(config.handshake_timeout > Duration::ZERO);
    }

    #[test]
    fn errors_render_their_context() {
        let e = NetError::HandshakeTimeout {
            connected: 2,
            expected: 5,
        };
        assert!(e.to_string().contains("2 of 5"));
        let e = NetError::BadAgentIndex {
            index: 9,
            population: 3,
        };
        assert!(e.to_string().contains('9'));
        let e = NetError::Wire(WireError::Trailing { remaining: 4 });
        assert!(std::error::Error::source(&e).is_some());
    }
}
