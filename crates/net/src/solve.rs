//! High-level entry points: `solve_net` on the existing solvers.
//!
//! [`SolveNet`] is an extension trait (this crate depends on the solver
//! crates, not the other way around) that slices the problem, binds a
//! loopback listener, launches one endpoint per agent — as named threads
//! or as child processes of a user-supplied binary — and runs the
//! coordinator to completion.

use std::net::TcpListener;
use std::path::PathBuf;
use std::process::{Child, Command};
use std::thread;

use discsp_awc::{AwcMessage, AwcSolver};
use discsp_core::{Assignment, DistributedCsp, Wire};
use discsp_dba::{DbaMessage, DbaSolver};
use discsp_runtime::Classify;

use crate::coordinator::{run_session, NetReport};
use crate::endpoint::run_agent;
use crate::topology::{build_slices, AgentSlice, AlgoSpec};
use crate::{NetConfig, NetError};

/// How `solve_net` launches its agent endpoints.
#[derive(Debug, Clone)]
pub enum AgentLaunch {
    /// One named thread per agent inside this process. The cheapest way
    /// to exercise the full wire protocol (every frame still crosses a
    /// real TCP socket).
    Threads,
    /// One child process per agent: `program [args..] agent --connect
    /// ADDR --index I`. The `discsp-net` binary accepts exactly this
    /// invocation.
    Processes {
        /// The binary to spawn (usually the `discsp-net` binary itself).
        program: PathBuf,
        /// Arguments inserted before the `agent` subcommand.
        args: Vec<String>,
    },
}

/// Networked solving for the workspace's solvers.
pub trait SolveNet {
    /// Solves `problem` from `init` over TCP: one coordinator (this
    /// call) plus one endpoint per agent, launched per `launch`.
    ///
    /// # Errors
    ///
    /// Any [`NetError`]; coordinator-side errors take precedence over
    /// endpoint failures when both occur.
    fn solve_net(
        &self,
        problem: &DistributedCsp,
        init: &Assignment,
        config: &NetConfig,
        launch: &AgentLaunch,
    ) -> Result<NetReport, NetError>;
}

impl SolveNet for AwcSolver {
    fn solve_net(
        &self,
        problem: &DistributedCsp,
        init: &Assignment,
        config: &NetConfig,
        launch: &AgentLaunch,
    ) -> Result<NetReport, NetError> {
        let slices = build_slices(problem, init, AlgoSpec::Awc(self.config()))?;
        run::<AwcMessage>(problem, &slices, config, launch)
    }
}

impl SolveNet for DbaSolver {
    fn solve_net(
        &self,
        problem: &DistributedCsp,
        init: &Assignment,
        config: &NetConfig,
        launch: &AgentLaunch,
    ) -> Result<NetReport, NetError> {
        let slices = build_slices(problem, init, AlgoSpec::Dba(self.mode()))?;
        // Distributed breakout never quiesces; terminate at the first
        // consistent solution snapshot, as the other runtimes do.
        let mut config = config.clone();
        config.stop_on_first_solution = true;
        run::<DbaMessage>(problem, &slices, &config, launch)
    }
}

fn io(context: &'static str) -> impl FnOnce(std::io::Error) -> NetError {
    move |error| NetError::Io { context, error }
}

fn run<M>(
    problem: &DistributedCsp,
    slices: &[AgentSlice],
    config: &NetConfig,
    launch: &AgentLaunch,
) -> Result<NetReport, NetError>
where
    M: Wire + Classify + Clone,
{
    let listener = TcpListener::bind("127.0.0.1:0").map_err(io("binding the session listener"))?;
    let addr = listener.local_addr().map_err(io("reading the listener address"))?;
    let n = slices.len();
    match launch {
        AgentLaunch::Threads => {
            let mut handles = Vec::with_capacity(n);
            for index in 0..n as u32 {
                let io_timeout = config.io_timeout;
                let handle = thread::Builder::new()
                    .name(format!("discsp-net-agent-{index}"))
                    .spawn(move || run_agent(addr, index, io_timeout))
                    .map_err(io("spawning an agent thread"))?;
                handles.push(handle);
            }
            let session = run_session::<M>(&listener, problem, slices, config);
            let mut endpoint_err = None;
            for (index, handle) in handles.into_iter().enumerate() {
                match handle.join() {
                    Ok(Ok(())) => {}
                    Ok(Err(e)) => {
                        endpoint_err.get_or_insert(e);
                    }
                    Err(_) => {
                        endpoint_err.get_or_insert(NetError::AgentFailed {
                            index: index as u32,
                            detail: "agent thread panicked".to_string(),
                        });
                    }
                }
            }
            match (session, endpoint_err) {
                (Err(e), _) => Err(e),
                (Ok(_), Some(e)) => Err(e),
                (Ok(report), None) => Ok(report),
            }
        }
        AgentLaunch::Processes { program, args } => {
            let mut children: Vec<Child> = Vec::with_capacity(n);
            for index in 0..n {
                let spawned = Command::new(program)
                    .args(args)
                    .arg("agent")
                    .arg("--connect")
                    .arg(addr.to_string())
                    .arg("--index")
                    .arg(index.to_string())
                    .spawn()
                    .map_err(io("spawning an agent process"));
                match spawned {
                    Ok(child) => children.push(child),
                    Err(e) => {
                        reap(children);
                        return Err(e);
                    }
                }
            }
            let session = run_session::<M>(&listener, problem, slices, config);
            if session.is_err() {
                // The protocol is wedged; don't leave orphans waiting on
                // their sockets.
                reap(children);
                return session;
            }
            let mut endpoint_err = None;
            for (index, mut child) in children.into_iter().enumerate() {
                match child.wait() {
                    Ok(status) if status.success() => {}
                    Ok(status) => {
                        endpoint_err.get_or_insert(NetError::AgentFailed {
                            index: index as u32,
                            detail: format!("agent process exited with {status}"),
                        });
                    }
                    Err(error) => {
                        endpoint_err.get_or_insert(NetError::AgentFailed {
                            index: index as u32,
                            detail: format!("waiting on agent process failed: {error}"),
                        });
                    }
                }
            }
            match (session, endpoint_err) {
                (Err(e), _) => Err(e),
                (Ok(_), Some(e)) => Err(e),
                (Ok(report), None) => Ok(report),
            }
        }
    }
}

fn reap(children: Vec<Child>) {
    for mut child in children {
        let _ = child.kill();
        let _ = child.wait();
    }
}
