//! Socket-level plumbing: framed connections, handshake accept loop,
//! connect-with-retry.
//!
//! This is the only module in the crate that touches the wall clock
//! (`Instant::now` for the accept deadline, socket timeouts): everything
//! above it reasons in virtual ticks. It is exempted from the workspace
//! D2 rule by name, exactly like the virtual link layer's single
//! sanctioned clock site — see `discsp-lint`'s `D2_EXEMPT_NET_TRANSPORT`.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::thread;
use std::time::{Duration, Instant};

use discsp_core::Wire;

use crate::frame::MAX_FRAME_LEN;
use crate::NetError;

/// A wall-clock budget shared across the phases of session setup, so
/// the accept loop and the per-connection `Hello` exchanges together
/// cannot exceed one handshake window — a client that connects and then
/// stalls burns the same budget as one that never connects.
#[derive(Debug, Clone, Copy)]
pub struct Deadline {
    give_up: Instant,
}

impl Deadline {
    /// Starts a budget of `total` from now.
    pub fn new(total: Duration) -> Self {
        Deadline {
            give_up: Instant::now() + total,
        }
    }

    /// Time left, or `None` once the budget is spent.
    pub fn remaining(&self) -> Option<Duration> {
        let now = Instant::now();
        if now >= self.give_up {
            None
        } else {
            Some(self.give_up - now)
        }
    }
}

/// A TCP stream carrying length-prefixed [`Wire`] frames.
///
/// Every frame travels as a little-endian `u32` byte length followed by
/// the frame body (which itself starts with the version byte and tag —
/// see [`crate::frame`]). Lengths above [`MAX_FRAME_LEN`] are rejected
/// on both send and receive, so a corrupt prefix cannot provoke a
/// runaway allocation.
#[derive(Debug)]
pub struct FrameConn {
    stream: TcpStream,
}

impl FrameConn {
    /// Wraps a connected stream, applying `io_timeout` to every read
    /// and write. `Duration::ZERO` means block indefinitely.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] if the socket options cannot be set.
    pub fn new(stream: TcpStream, io_timeout: Duration) -> Result<Self, NetError> {
        let timeout = if io_timeout.is_zero() {
            None
        } else {
            Some(io_timeout)
        };
        stream.set_nodelay(true).map_err(|error| NetError::Io {
            context: "disabling Nagle on a session socket",
            error,
        })?;
        stream
            .set_read_timeout(timeout)
            .map_err(|error| NetError::Io {
                context: "setting the read timeout",
                error,
            })?;
        stream
            .set_write_timeout(timeout)
            .map_err(|error| NetError::Io {
                context: "setting the write timeout",
                error,
            })?;
        Ok(FrameConn { stream })
    }

    /// Re-arms the read/write timeout on the live connection.
    /// `Duration::ZERO` means block indefinitely. The coordinator uses
    /// this to bound the `Hello` phase by the handshake deadline, then
    /// restore the session's normal I/O timeout.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] if the socket options cannot be set.
    pub fn set_io_timeout(&mut self, io_timeout: Duration) -> Result<(), NetError> {
        let timeout = if io_timeout.is_zero() {
            None
        } else {
            Some(io_timeout)
        };
        self.stream
            .set_read_timeout(timeout)
            .map_err(|error| NetError::Io {
                context: "re-arming the read timeout",
                error,
            })?;
        self.stream
            .set_write_timeout(timeout)
            .map_err(|error| NetError::Io {
                context: "re-arming the write timeout",
                error,
            })
    }

    /// Sends one frame: length prefix, then the encoded body.
    ///
    /// # Errors
    ///
    /// [`NetError::FrameTooLong`] if the encoded body exceeds
    /// [`MAX_FRAME_LEN`]; [`NetError::Io`] on socket failure.
    pub fn send<F: Wire>(&mut self, frame: &F) -> Result<(), NetError> {
        let body = frame.to_bytes();
        let len = body.len() as u64;
        if len > MAX_FRAME_LEN {
            return Err(NetError::FrameTooLong { len });
        }
        self.stream
            .write_all(&(len as u32).to_le_bytes())
            .and_then(|()| self.stream.write_all(&body))
            .map_err(|error| NetError::Io {
                context: "sending a frame",
                error,
            })
    }

    /// Receives one frame, blocking up to the configured timeout.
    ///
    /// # Errors
    ///
    /// [`NetError::FrameTooLong`] if the announced length exceeds
    /// [`MAX_FRAME_LEN`]; [`NetError::Wire`] if the body fails to
    /// decode; [`NetError::Io`] on socket failure or timeout.
    pub fn recv<F: Wire>(&mut self) -> Result<F, NetError> {
        let mut prefix = [0u8; 4];
        self.stream
            .read_exact(&mut prefix)
            .map_err(|error| NetError::Io {
                context: "reading a frame length prefix",
                error,
            })?;
        let len = u64::from(u32::from_le_bytes(prefix));
        if len > MAX_FRAME_LEN {
            return Err(NetError::FrameTooLong { len });
        }
        let mut body = vec![0u8; len as usize];
        self.stream
            .read_exact(&mut body)
            .map_err(|error| NetError::Io {
                context: "reading a frame body",
                error,
            })?;
        Ok(F::from_bytes(&body)?)
    }
}

/// Accepts exactly `expected` connections within the shared `deadline`,
/// returning them in arrival order (the handshake, not arrival order,
/// assigns agent indices). The caller passes the same [`Deadline`] to
/// the `Hello` phase, so connect time and greeting time draw on one
/// budget.
///
/// # Errors
///
/// [`NetError::HandshakeTimeout`] if fewer than `expected` agents
/// connect in time; [`NetError::Io`] on listener failure.
pub fn accept_agents(
    listener: &TcpListener,
    expected: usize,
    deadline: &Deadline,
) -> Result<Vec<TcpStream>, NetError> {
    listener
        .set_nonblocking(true)
        .map_err(|error| NetError::Io {
            context: "switching the listener to non-blocking accept",
            error,
        })?;
    let mut accepted = Vec::with_capacity(expected);
    while accepted.len() < expected {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Accepted sockets may inherit the listener's
                // non-blocking mode; the session needs blocking reads.
                stream
                    .set_nonblocking(false)
                    .map_err(|error| NetError::Io {
                        context: "restoring blocking mode on an accepted socket",
                        error,
                    })?;
                accepted.push(stream);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                if deadline.remaining().is_none() {
                    return Err(NetError::HandshakeTimeout {
                        connected: accepted.len(),
                        expected,
                    });
                }
                thread::sleep(Duration::from_millis(5));
            }
            Err(error) => {
                return Err(NetError::Io {
                    context: "accepting an agent connection",
                    error,
                })
            }
        }
    }
    Ok(accepted)
}

/// Connects to the coordinator, retrying while it may still be binding
/// its listener.
///
/// # Errors
///
/// [`NetError::Io`] with the last connect error once `attempts` are
/// exhausted.
pub fn connect_with_retry(
    addr: SocketAddr,
    attempts: u32,
    backoff: Duration,
) -> Result<TcpStream, NetError> {
    let mut last = None;
    for attempt in 0..attempts.max(1) {
        if attempt > 0 {
            thread::sleep(backoff);
        }
        match TcpStream::connect(addr) {
            Ok(stream) => return Ok(stream),
            Err(error) => last = Some(error),
        }
    }
    Err(NetError::Io {
        context: "connecting to the coordinator",
        error: last
            .unwrap_or_else(|| std::io::Error::other("no connection attempts made")),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::SetupFrame;

    fn loopback_pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let addr = listener.local_addr().expect("addr");
        let client = TcpStream::connect(addr).expect("connect");
        let (server, _) = listener.accept().expect("accept");
        (client, server)
    }

    #[test]
    fn frames_survive_a_real_socket() {
        let (client, server) = loopback_pair();
        let mut tx = FrameConn::new(client, Duration::from_secs(5)).expect("tx conn");
        let mut rx = FrameConn::new(server, Duration::from_secs(5)).expect("rx conn");
        let frame = SetupFrame::Hello { index: 7 };
        tx.send(&frame).expect("send");
        let got: SetupFrame = rx.recv().expect("recv");
        assert_eq!(got, frame);
    }

    #[test]
    fn oversized_length_prefix_is_rejected_without_allocating() {
        let (client, server) = loopback_pair();
        let mut rx = FrameConn::new(server, Duration::from_secs(5)).expect("rx conn");
        let mut raw = client;
        let huge = (MAX_FRAME_LEN as u32) + 1;
        raw.write_all(&huge.to_le_bytes()).expect("write prefix");
        let got = rx.recv::<SetupFrame>();
        assert!(matches!(got, Err(NetError::FrameTooLong { .. })));
    }

    #[test]
    fn truncated_body_is_an_io_error_not_a_panic() {
        let (client, server) = loopback_pair();
        let mut rx = FrameConn::new(server, Duration::from_millis(200)).expect("rx conn");
        let mut raw = client;
        raw.write_all(&8u32.to_le_bytes()).expect("write prefix");
        raw.write_all(&[1, 0]).expect("write partial body");
        drop(raw); // close: the body can never complete
        let got = rx.recv::<SetupFrame>();
        assert!(matches!(got, Err(NetError::Io { .. })));
    }

    #[test]
    fn accept_times_out_with_a_typed_error() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let deadline = Deadline::new(Duration::from_millis(50));
        let got = accept_agents(&listener, 2, &deadline);
        assert!(matches!(
            got,
            Err(NetError::HandshakeTimeout {
                connected: 0,
                expected: 2,
            })
        ));
    }

    #[test]
    fn deadline_expires_and_reports_remaining() {
        let deadline = Deadline::new(Duration::from_secs(60));
        assert!(deadline.remaining().is_some());
        let spent = Deadline::new(Duration::ZERO);
        thread::sleep(Duration::from_millis(1));
        assert!(spent.remaining().is_none());
    }

    #[test]
    fn io_timeout_can_be_rearmed_on_a_live_connection() {
        let (client, server) = loopback_pair();
        let mut rx = FrameConn::new(server, Duration::ZERO).expect("rx conn");
        rx.set_io_timeout(Duration::from_millis(50)).expect("re-arm");
        // No frame ever arrives: the bounded read must fail, not block.
        let got = rx.recv::<SetupFrame>();
        assert!(matches!(got, Err(NetError::Io { .. })));
        drop(client);
    }

    #[test]
    fn connect_retry_reports_the_last_error() {
        // Bind then drop to get a port that (almost certainly) refuses.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").expect("bind");
            l.local_addr().expect("addr")
        };
        let got = connect_with_retry(addr, 3, Duration::from_millis(5));
        assert!(matches!(got, Err(NetError::Io { .. })));
    }
}
