//! The `discsp-net` binary: either role of a networked solve session.
//!
//! * `discsp-net agent --connect ADDR --index I` — one agent endpoint;
//!   this is the exact invocation [`AgentLaunch::Processes`] issues.
//! * `discsp-net demo [--agents N] [--algo awc|dba] [--drop-ppm P]
//!   [--seed S] [--launch threads|processes]` — solves an N-agent
//!   ring 3-coloring end to end, spawning its own agents (processes
//!   re-invoke this same binary).

use std::net::SocketAddr;
use std::process::ExitCode;
use std::time::Duration;

use discsp_awc::AwcSolver;
use discsp_core::{Assignment, DistributedCsp, Domain, Termination, Value};
use discsp_dba::DbaSolver;
use discsp_net::{run_agent, AgentLaunch, NetConfig, SolveNet};
use discsp_runtime::LinkPolicy;

const USAGE: &str = "usage:
  discsp-net agent --connect ADDR --index I [--io-timeout-secs S]
  discsp-net demo [--agents N] [--algo awc|dba] [--drop-ppm P] [--seed S] [--launch threads|processes]";

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    let pos = args.iter().position(|a| a == flag)?;
    args.get(pos + 1).cloned()
}

fn parse<T: std::str::FromStr>(args: &[String], flag: &str, default: T) -> Result<T, String> {
    match flag_value(args, flag) {
        Some(raw) => raw
            .parse()
            .map_err(|_| format!("bad value {raw:?} for {flag}")),
        None => Ok(default),
    }
}

fn agent_role(args: &[String]) -> Result<(), String> {
    let addr: SocketAddr = flag_value(args, "--connect")
        .ok_or("agent: --connect ADDR is required")?
        .parse()
        .map_err(|e| format!("agent: bad --connect address: {e}"))?;
    let index: u32 = flag_value(args, "--index")
        .ok_or("agent: --index I is required")?
        .parse()
        .map_err(|e| format!("agent: bad --index: {e}"))?;
    let io_secs: u64 = parse(args, "--io-timeout-secs", 30)?;
    run_agent(addr, index, Duration::from_secs(io_secs)).map_err(|e| format!("agent {index}: {e}"))
}

fn ring_coloring(n: usize) -> Result<DistributedCsp, String> {
    let mut b = DistributedCsp::builder();
    let vars: Vec<_> = (0..n).map(|_| b.variable(Domain::new(3))).collect();
    for (i, &x) in vars.iter().enumerate() {
        let Some(&y) = vars.get((i + 1) % n) else {
            continue;
        };
        if x != y {
            b.not_equal(x, y).map_err(|e| e.to_string())?;
        }
    }
    b.build().map_err(|e| e.to_string())
}

fn demo_role(args: &[String]) -> Result<(), String> {
    let n: usize = parse(args, "--agents", 6)?;
    let algo = flag_value(args, "--algo").unwrap_or_else(|| "awc".to_string());
    let drop_ppm: u32 = parse(args, "--drop-ppm", 0)?;
    let seed: u64 = parse(args, "--seed", 42)?;
    let launch_kind = flag_value(args, "--launch").unwrap_or_else(|| "threads".to_string());

    let problem = ring_coloring(n)?;
    let init = Assignment::total((0..n).map(|_| Value::new(0)));
    let config = NetConfig {
        seed,
        link: if drop_ppm == 0 {
            LinkPolicy::perfect()
        } else {
            LinkPolicy::lossy(drop_ppm)
        },
        ..NetConfig::default()
    };
    let launch = match launch_kind.as_str() {
        "threads" => AgentLaunch::Threads,
        "processes" => AgentLaunch::Processes {
            program: std::env::current_exe()
                .map_err(|e| format!("demo: cannot locate own binary: {e}"))?,
            args: Vec::new(),
        },
        other => return Err(format!("demo: unknown --launch {other:?}")),
    };

    let report = match algo.as_str() {
        "awc" => AwcSolver::new(discsp_awc::AwcConfig::resolvent())
            .solve_net(&problem, &init, &config, &launch)
            .map_err(|e| format!("demo: {e}"))?,
        "dba" => DbaSolver::new()
            .solve_net(&problem, &init, &config, &launch)
            .map_err(|e| format!("demo: {e}"))?,
        other => return Err(format!("demo: unknown --algo {other:?}")),
    };

    let m = &report.outcome.metrics;
    println!(
        "{n}-agent ring 3-coloring over TCP ({algo}, {launch_kind}): {:?} \
         in {} cycles, {} activations, {} nudges",
        m.termination, m.cycles, report.activations, report.nudges
    );
    println!(
        "  messages: {} ok + {} nogood + {} other \
         (sent {}, dropped {}, duplicated {}, retransmitted {})",
        m.ok_messages,
        m.nogood_messages,
        m.other_messages,
        m.messages_sent,
        m.messages_dropped,
        m.messages_duplicated,
        m.messages_retransmitted
    );
    println!("  checks: {} total, maxcck {}", m.total_checks, m.maxcck);
    if m.termination == Termination::Solved {
        Ok(())
    } else {
        Err(format!("demo: run ended {:?}", m.termination))
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("agent") => agent_role(&args),
        Some("demo") => demo_role(&args),
        _ => Err(USAGE.to_string()),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("{message}");
            ExitCode::FAILURE
        }
    }
}
