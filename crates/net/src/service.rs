//! The multi-session solve service's wire vocabulary.
//!
//! These frames ride the v3 header ([`crate::frame`]) whose session ID
//! is the multiplexing key: a client submits many sessions over one
//! connection, each under a distinct nonzero session ID it chooses, and
//! the service's responses carry the same ID back. The tag space (8–15)
//! is disjoint from the setup (0–1) and run (2–7) phases, so a frame
//! that leaks across protocols fails with a typed
//! [`WireError::BadTag`](discsp_core::WireError).
//!
//! Client → service: [`ServiceFrame::Submit`] /
//! [`ServiceFrame::Cancel`] / [`ServiceFrame::Drain`].
//! Service → client: [`ServiceFrame::Accepted`] /
//! [`ServiceFrame::Rejected`] / [`ServiceFrame::Done`] /
//! [`ServiceFrame::Cancelled`] / [`ServiceFrame::Drained`].
//!
//! The problem travels as an explicit [`SubmitSpec`] — domains, owners,
//! nogoods, initial assignment — rather than an opaque serialized
//! `DistributedCsp`, so the service re-validates through the same
//! builder path as every in-process solver and a hostile spec is
//! rejected, not trusted.

use std::fmt;

use discsp_core::{
    AgentId, Assignment, Domain, Nogood, RunMetrics, Wire, WireError, WireReader,
};
use discsp_runtime::LinkPolicy;
use discsp_trace::TraceEvent;

use crate::frame::{decode_header, encode_header, MuxWire, SESSION_NONE};
use crate::topology::AlgoSpec;

/// A complete solve request: the problem, the algorithm, and the
/// session parameters. Everything the service needs to build a
/// deterministic session — `(seed, link)` pins the fault schedule
/// exactly as in `VirtualConfig`.
#[derive(Debug, Clone, PartialEq)]
pub struct SubmitSpec {
    /// Per-variable domains; the vector index is the variable ID.
    pub domains: Vec<Domain>,
    /// Per-variable owning agents (same indexing).
    pub owners: Vec<AgentId>,
    /// The problem's constraint nogoods.
    pub nogoods: Vec<Nogood>,
    /// The initial assignment (must be total and in-domain).
    pub init: Assignment,
    /// The algorithm to run.
    pub algo: AlgoSpec,
    /// Seed deriving every per-link fault stream.
    pub seed: u64,
    /// Fault policy applied to every link.
    pub link: LinkPolicy,
    /// Tick budget; the session reports a cutoff beyond it.
    pub max_ticks: u64,
    /// Recovery-pass budget after quiescence under faults.
    pub max_nudges: u64,
    /// Whether the session records its event trace (shipped home in
    /// [`ServiceFrame::Done`]).
    pub record_trace: bool,
}

impl Wire for SubmitSpec {
    fn encode(&self, out: &mut Vec<u8>) {
        self.domains.encode(out);
        self.owners.encode(out);
        self.nogoods.encode(out);
        self.init.encode(out);
        self.algo.encode(out);
        self.seed.encode(out);
        self.link.encode(out);
        self.max_ticks.encode(out);
        self.max_nudges.encode(out);
        self.record_trace.encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let domains = Vec::<Domain>::decode(r)?;
        let owners = Vec::<AgentId>::decode(r)?;
        let nogoods = Vec::<Nogood>::decode(r)?;
        let init = Assignment::decode(r)?;
        let algo = AlgoSpec::decode(r)?;
        let seed = r.u64("SubmitSpec.seed")?;
        let link = LinkPolicy::decode(r)?;
        let max_ticks = r.u64("SubmitSpec.max_ticks")?;
        let max_nudges = r.u64("SubmitSpec.max_nudges")?;
        let record_trace = bool::decode(r)?;
        if domains.len() != owners.len() {
            return Err(WireError::Invalid {
                context: "SubmitSpec.owners",
            });
        }
        Ok(SubmitSpec {
            domains,
            owners,
            nogoods,
            init,
            algo,
            seed,
            link,
            max_ticks,
            max_nudges,
            record_trace,
        })
    }
}

/// Why the service refused a `Submit`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RejectReason {
    /// The global session budget is exhausted (backpressure — retry
    /// later).
    Overloaded,
    /// The service is draining and admits no new sessions.
    Draining,
    /// The connection already has a live session under this ID.
    DuplicateSession,
    /// The spec failed validation (empty problem, non-dense owners,
    /// out-of-domain initial value, reserved session ID 0, …).
    BadSpec,
}

impl fmt::Display for RejectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RejectReason::Overloaded => f.write_str("overloaded"),
            RejectReason::Draining => f.write_str("draining"),
            RejectReason::DuplicateSession => f.write_str("duplicate session id"),
            RejectReason::BadSpec => f.write_str("bad spec"),
        }
    }
}

impl Wire for RejectReason {
    fn encode(&self, out: &mut Vec<u8>) {
        let tag: u8 = match self {
            RejectReason::Overloaded => 0,
            RejectReason::Draining => 1,
            RejectReason::DuplicateSession => 2,
            RejectReason::BadSpec => 3,
        };
        out.push(tag);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.u8("RejectReason")? {
            0 => Ok(RejectReason::Overloaded),
            1 => Ok(RejectReason::Draining),
            2 => Ok(RejectReason::DuplicateSession),
            3 => Ok(RejectReason::BadSpec),
            tag => Err(WireError::BadTag {
                context: "RejectReason",
                tag,
            }),
        }
    }
}

/// The final accounting of a completed session, shipped in
/// [`ServiceFrame::Done`]. Field-for-field the same payload a local
/// `solve_virtual` call would report.
#[derive(Debug, Clone, PartialEq)]
pub struct SessionOutcome {
    /// The run's metrics (termination, cycles, maxcck, checks, message
    /// and fault counters).
    pub metrics: RunMetrics,
    /// The solving assignment, if one was found.
    pub solution: Option<Assignment>,
    /// Final virtual tick.
    pub ticks: u64,
    /// Total agent activations.
    pub activations: u64,
    /// Recovery passes taken.
    pub nudges: u64,
    /// The session's event trace (empty unless requested at submit).
    pub trace: Vec<TraceEvent>,
}

impl Wire for SessionOutcome {
    fn encode(&self, out: &mut Vec<u8>) {
        self.metrics.encode(out);
        self.solution.encode(out);
        self.ticks.encode(out);
        self.activations.encode(out);
        self.nudges.encode(out);
        self.trace.encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        Ok(SessionOutcome {
            metrics: RunMetrics::decode(r)?,
            solution: Option::<Assignment>::decode(r)?,
            ticks: r.u64("SessionOutcome.ticks")?,
            activations: r.u64("SessionOutcome.activations")?,
            nudges: r.u64("SessionOutcome.nudges")?,
            trace: Vec::<TraceEvent>::decode(r)?,
        })
    }
}

/// Service-phase frames (tags 8–15). The session ID lives in the v3
/// header, not the body — send these as
/// [`Mux<ServiceFrame>`](crate::frame::Mux).
#[derive(Debug, Clone, PartialEq)]
pub enum ServiceFrame {
    /// Client → service: start a session under the header's session ID.
    Submit {
        /// The solve request.
        spec: SubmitSpec,
    },
    /// Client → service: abort the header's session.
    Cancel,
    /// Client → service: stop admitting, finish in-flight sessions,
    /// answer `Drained` when the table is empty.
    Drain,
    /// Service → client: the session was admitted and is running.
    Accepted,
    /// Service → client: the session was refused.
    Rejected {
        /// Why.
        reason: RejectReason,
    },
    /// Service → client: the session ran to termination.
    Done {
        /// The session's final accounting.
        outcome: SessionOutcome,
    },
    /// Service → client: the session was cancelled before termination.
    Cancelled,
    /// Service → client: the drain completed; no sessions remain.
    Drained,
}

impl MuxWire for ServiceFrame {
    fn encode_mux(&self, session: u64, out: &mut Vec<u8>) {
        match self {
            ServiceFrame::Submit { spec } => {
                encode_header(8, session, out);
                spec.encode(out);
            }
            ServiceFrame::Cancel => encode_header(9, session, out),
            ServiceFrame::Drain => encode_header(10, session, out),
            ServiceFrame::Accepted => encode_header(11, session, out),
            ServiceFrame::Rejected { reason } => {
                encode_header(12, session, out);
                reason.encode(out);
            }
            ServiceFrame::Done { outcome } => {
                encode_header(13, session, out);
                outcome.encode(out);
            }
            ServiceFrame::Cancelled => encode_header(14, session, out),
            ServiceFrame::Drained => encode_header(15, session, out),
        }
    }

    fn decode_mux(r: &mut WireReader<'_>) -> Result<(u64, Self), WireError> {
        let (tag, session) = decode_header(r, "ServiceFrame")?;
        let frame = match tag {
            8 => Ok(ServiceFrame::Submit {
                spec: SubmitSpec::decode(r)?,
            }),
            9 => Ok(ServiceFrame::Cancel),
            10 => Ok(ServiceFrame::Drain),
            11 => Ok(ServiceFrame::Accepted),
            12 => Ok(ServiceFrame::Rejected {
                reason: RejectReason::decode(r)?,
            }),
            13 => Ok(ServiceFrame::Done {
                outcome: SessionOutcome::decode(r)?,
            }),
            14 => Ok(ServiceFrame::Cancelled),
            15 => Ok(ServiceFrame::Drained),
            tag => Err(WireError::BadTag {
                context: "ServiceFrame",
                tag,
            }),
        }?;
        Ok((session, frame))
    }
}

impl Wire for ServiceFrame {
    fn encode(&self, out: &mut Vec<u8>) {
        self.encode_mux(SESSION_NONE, out);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let (_session, frame) = Self::decode_mux(r)?;
        Ok(frame)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::Mux;
    use discsp_awc::AwcConfig;
    use discsp_core::{Termination, Value};

    fn spec() -> SubmitSpec {
        let init = Assignment::total(vec![Value::new(1)]);
        SubmitSpec {
            domains: vec![Domain::new(3)],
            owners: vec![AgentId::new(0)],
            nogoods: vec![],
            init,
            algo: AlgoSpec::Awc(AwcConfig::default()),
            seed: 7,
            link: LinkPolicy::perfect(),
            max_ticks: 1000,
            max_nudges: 8,
            record_trace: true,
        }
    }

    #[test]
    fn service_frames_roundtrip_with_sessions() {
        let frames = vec![
            ServiceFrame::Submit { spec: spec() },
            ServiceFrame::Cancel,
            ServiceFrame::Drain,
            ServiceFrame::Accepted,
            ServiceFrame::Rejected {
                reason: RejectReason::Overloaded,
            },
            ServiceFrame::Done {
                outcome: SessionOutcome {
                    metrics: RunMetrics::new(Termination::Solved),
                    solution: Some(Assignment::total(vec![Value::new(2)])),
                    ticks: 12,
                    activations: 30,
                    nudges: 1,
                    trace: vec![],
                },
            },
            ServiceFrame::Cancelled,
            ServiceFrame::Drained,
        ];
        for (i, frame) in frames.into_iter().enumerate() {
            let mux = Mux::new(1 + i as u64, frame);
            let bytes = mux.to_bytes();
            assert_eq!(Mux::<ServiceFrame>::from_bytes(&bytes).as_ref(), Ok(&mux));
        }
    }

    #[test]
    fn service_tags_are_disjoint_from_setup_and_run() {
        use crate::frame::{RunFrame, SetupFrame};
        use discsp_awc::AwcMessage;
        let bytes = ServiceFrame::Drain.to_bytes();
        assert!(matches!(
            SetupFrame::from_bytes(&bytes),
            Err(WireError::BadTag {
                context: "SetupFrame",
                ..
            })
        ));
        assert!(matches!(
            RunFrame::<AwcMessage>::from_bytes(&bytes),
            Err(WireError::BadTag {
                context: "RunFrame",
                ..
            })
        ));
        let hello = SetupFrame::Hello { index: 0 }.to_bytes();
        assert!(matches!(
            ServiceFrame::from_bytes(&hello),
            Err(WireError::BadTag {
                context: "ServiceFrame",
                ..
            })
        ));
    }

    #[test]
    fn mismatched_owner_count_is_rejected() {
        let mut s = spec();
        s.owners.push(AgentId::new(1));
        let bytes = s.to_bytes();
        assert!(matches!(
            SubmitSpec::from_bytes(&bytes),
            Err(WireError::Invalid {
                context: "SubmitSpec.owners",
            })
        ));
    }

    #[test]
    fn reject_reasons_roundtrip_and_render() {
        for reason in [
            RejectReason::Overloaded,
            RejectReason::Draining,
            RejectReason::DuplicateSession,
            RejectReason::BadSpec,
        ] {
            let bytes = reason.to_bytes();
            assert_eq!(RejectReason::from_bytes(&bytes), Ok(reason));
            assert!(!reason.to_string().is_empty());
        }
        assert!(matches!(
            RejectReason::from_bytes(&[9]),
            Err(WireError::BadTag { .. })
        ));
    }
}
