//! Protocol frames.
//!
//! Every frame travels as `[u32 length ‖ version ‖ tag ‖ body]`: the
//! length prefix is added by the transport ([`FrameConn`]), while the
//! version byte and tag are part of the frame encoding itself, so a
//! captured frame is self-describing. The protocol has two strict
//! phases with disjoint tag spaces:
//!
//! * **setup** ([`SetupFrame`], tags 0–1): `Hello` (agent → coordinator)
//!   and `Assign` (coordinator → agent), exchanged once per connection;
//! * **run** ([`RunFrame`], tags 2–7): `Start`/`Deliver`/`Nudge`/`Stop`
//!   from the coordinator, answered by `Step`/`Final` from the agent.
//!
//! Decoding a frame from the wrong phase fails with a typed
//! [`WireError::BadTag`] — a desynchronized peer is detected at the
//! first frame, not after undefined behavior.
//!
//! [`FrameConn`]: crate::transport::FrameConn

use discsp_core::{VarValue, Wire, WireError, WireReader};
use discsp_runtime::{AgentStats, Envelope, LinkPolicy};
use discsp_trace::TraceEvent;

use crate::topology::AgentSlice;

/// Version byte carried by every frame. Bump on any incompatible change
/// to a frame layout or to the encoding of a type inside one.
/// Version 2 added `record_trace` to `Assign`, the virtual tick to
/// `Deliver`/`Nudge`, and the agent's event trace to `Final`.
pub const WIRE_VERSION: u8 = 2;

/// Upper bound on one frame's encoded body, enforced on both send and
/// receive: a corrupt length prefix must not provoke a gigabyte
/// allocation.
pub const MAX_FRAME_LEN: u64 = 16 * 1024 * 1024;

fn encode_header(tag: u8, out: &mut Vec<u8>) {
    out.push(WIRE_VERSION);
    out.push(tag);
}

fn decode_header(r: &mut WireReader<'_>, context: &'static str) -> Result<u8, WireError> {
    let version = r.u8(context)?;
    if version != WIRE_VERSION {
        return Err(WireError::BadVersion {
            got: version,
            expected: WIRE_VERSION,
        });
    }
    r.u8(context)
}

/// Handshake-phase frames.
#[derive(Debug, Clone, PartialEq)]
pub enum SetupFrame {
    /// Agent → coordinator: claims a slot in the population.
    Hello {
        /// The agent's index in `0..n`.
        index: u32,
    },
    /// Coordinator → agent: ships the agent its slice of the problem
    /// plus the session parameters, completing the handshake.
    Assign {
        /// Population size.
        n_agents: u32,
        /// The run seed (documents the session; faults are injected on
        /// the coordinator's relay path, not by agents).
        seed: u64,
        /// The link fault policy in force on the relay path.
        policy: LinkPolicy,
        /// Whether the agent should record its local event trace and
        /// ship it home in `Final`.
        record_trace: bool,
        /// This agent's slice of the problem.
        slice: AgentSlice,
    },
}

impl Wire for SetupFrame {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            SetupFrame::Hello { index } => {
                encode_header(0, out);
                index.encode(out);
            }
            SetupFrame::Assign {
                n_agents,
                seed,
                policy,
                record_trace,
                slice,
            } => {
                encode_header(1, out);
                n_agents.encode(out);
                seed.encode(out);
                policy.encode(out);
                record_trace.encode(out);
                slice.encode(out);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match decode_header(r, "SetupFrame")? {
            0 => Ok(SetupFrame::Hello {
                index: r.u32("SetupFrame.Hello.index")?,
            }),
            1 => {
                let n_agents = r.u32("SetupFrame.Assign.n_agents")?;
                let seed = r.u64("SetupFrame.Assign.seed")?;
                let policy = LinkPolicy::decode(r)?;
                let record_trace = bool::decode(r)?;
                let slice = AgentSlice::decode(r)?;
                Ok(SetupFrame::Assign {
                    n_agents,
                    seed,
                    policy,
                    record_trace,
                    slice,
                })
            }
            tag => Err(WireError::BadTag {
                context: "SetupFrame",
                tag,
            }),
        }
    }
}

/// Run-phase frames, generic over the algorithm's message type.
#[derive(Debug, Clone, PartialEq)]
pub enum RunFrame<M> {
    /// Coordinator → agent: announce your initial state.
    Start,
    /// Coordinator → agent: a batch of messages due this virtual tick.
    Deliver {
        /// The virtual tick the batch is delivered at, so the agent can
        /// timestamp its trace events on the coordinator's clock.
        tick: u64,
        /// The batch, in deterministic enqueue order.
        msgs: Vec<Envelope<M>>,
    },
    /// Coordinator → agent: the system stalled; re-announce your state
    /// so views staled by lost traffic heal.
    Nudge {
        /// The virtual tick of the recovery pass.
        tick: u64,
    },
    /// Agent → coordinator: the reply to `Start`/`Deliver`/`Nudge`.
    Step {
        /// Messages the agent sent this activation.
        out: Vec<Envelope<M>>,
        /// Nogood checks performed since the last step.
        checks: u64,
        /// The agent's current assignments (consistent-snapshot input).
        assignments: Vec<VarValue>,
        /// Whether the agent derived the empty nogood.
        insoluble: bool,
    },
    /// Coordinator → agent: the session is over; send `Final` and exit.
    Stop,
    /// Agent → coordinator: end-of-run statistics, so metrics
    /// aggregation survives the process boundary.
    Final {
        /// The agent's accumulated learning/messaging statistics.
        stats: AgentStats,
        /// Checks performed since the last `Step` reply.
        leftover_checks: u64,
        /// The agent's local event stream (steps, value/priority
        /// changes, learned nogoods), empty unless `Assign` requested
        /// recording. The coordinator merges it with the router's
        /// link-level events into the session trace.
        trace: Vec<TraceEvent>,
    },
}

impl<M: Wire> Wire for RunFrame<M> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            RunFrame::Start => encode_header(2, out),
            RunFrame::Deliver { tick, msgs } => {
                encode_header(3, out);
                tick.encode(out);
                msgs.encode(out);
            }
            RunFrame::Nudge { tick } => {
                encode_header(4, out);
                tick.encode(out);
            }
            RunFrame::Step {
                out: sent,
                checks,
                assignments,
                insoluble,
            } => {
                encode_header(5, out);
                sent.encode(out);
                checks.encode(out);
                assignments.encode(out);
                insoluble.encode(out);
            }
            RunFrame::Stop => encode_header(6, out),
            RunFrame::Final {
                stats,
                leftover_checks,
                trace,
            } => {
                encode_header(7, out);
                stats.encode(out);
                leftover_checks.encode(out);
                trace.encode(out);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match decode_header(r, "RunFrame")? {
            2 => Ok(RunFrame::Start),
            3 => Ok(RunFrame::Deliver {
                tick: r.u64("RunFrame.Deliver.tick")?,
                msgs: Vec::<Envelope<M>>::decode(r)?,
            }),
            4 => Ok(RunFrame::Nudge {
                tick: r.u64("RunFrame.Nudge.tick")?,
            }),
            5 => {
                let out = Vec::<Envelope<M>>::decode(r)?;
                let checks = r.u64("RunFrame.Step.checks")?;
                let assignments = Vec::<VarValue>::decode(r)?;
                let insoluble = bool::decode(r)?;
                Ok(RunFrame::Step {
                    out,
                    checks,
                    assignments,
                    insoluble,
                })
            }
            6 => Ok(RunFrame::Stop),
            7 => {
                let stats = AgentStats::decode(r)?;
                let leftover_checks = r.u64("RunFrame.Final.leftover_checks")?;
                let trace = Vec::<TraceEvent>::decode(r)?;
                Ok(RunFrame::Final {
                    stats,
                    leftover_checks,
                    trace,
                })
            }
            tag => Err(WireError::BadTag {
                context: "RunFrame",
                tag,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use discsp_awc::AwcMessage;
    use discsp_core::{AgentId, Priority, Value, VariableId};

    fn env(from: u32, to: u32) -> Envelope<AwcMessage> {
        Envelope::new(
            AgentId::new(from),
            AgentId::new(to),
            AwcMessage::Ok {
                var: VariableId::new(from),
                value: Value::new(1),
                priority: Priority::new(2),
            },
        )
    }

    #[test]
    fn run_frames_roundtrip() {
        let frames: Vec<RunFrame<AwcMessage>> = vec![
            RunFrame::Start,
            RunFrame::Deliver {
                tick: 12,
                msgs: vec![env(0, 1), env(2, 1)],
            },
            RunFrame::Nudge { tick: 13 },
            RunFrame::Step {
                out: vec![env(1, 0)],
                checks: 17,
                assignments: vec![VarValue::new(VariableId::new(1), Value::new(2))],
                insoluble: false,
            },
            RunFrame::Stop,
            RunFrame::Final {
                stats: AgentStats::default(),
                leftover_checks: 3,
                trace: vec![discsp_trace::TraceEvent::AgentStep {
                    cycle: 12,
                    agent: AgentId::new(1),
                    checks: 17,
                }],
            },
        ];
        for frame in frames {
            let bytes = frame.to_bytes();
            assert_eq!(bytes.first(), Some(&WIRE_VERSION));
            assert_eq!(RunFrame::<AwcMessage>::from_bytes(&bytes).as_ref(), Ok(&frame));
        }
    }

    #[test]
    fn phases_have_disjoint_tags() {
        // A setup frame decoded as a run frame (and vice versa) fails
        // with BadTag, never misparses.
        let hello = SetupFrame::Hello { index: 3 }.to_bytes();
        assert!(matches!(
            RunFrame::<AwcMessage>::from_bytes(&hello),
            Err(WireError::BadTag {
                context: "RunFrame",
                ..
            })
        ));
        let start = RunFrame::<AwcMessage>::Start.to_bytes();
        assert!(matches!(
            SetupFrame::from_bytes(&start),
            Err(WireError::BadTag {
                context: "SetupFrame",
                ..
            })
        ));
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let mut bytes = RunFrame::<AwcMessage>::Start.to_bytes();
        if let Some(first) = bytes.first_mut() {
            *first = WIRE_VERSION + 1;
        }
        assert_eq!(
            RunFrame::<AwcMessage>::from_bytes(&bytes),
            Err(WireError::BadVersion {
                got: WIRE_VERSION + 1,
                expected: WIRE_VERSION,
            })
        );
    }
}
