//! Protocol frames.
//!
//! Every v3 frame travels as `[u32 length ‖ version ‖ tag ‖ session:u64
//! ‖ body]`: the length prefix is added by the transport
//! ([`FrameConn`]), while the version byte, tag, and session ID are part
//! of the frame encoding itself, so a captured frame is
//! self-describing. The protocol has three strict phases with disjoint
//! tag spaces:
//!
//! * **setup** ([`SetupFrame`], tags 0–1): `Hello` (agent → coordinator)
//!   and `Assign` (coordinator → agent), exchanged once per connection;
//! * **run** ([`RunFrame`], tags 2–7): `Start`/`Deliver`/`Nudge`/`Stop`
//!   from the coordinator, answered by `Step`/`Final` from the agent;
//! * **service** ([`ServiceFrame`], tags 8–15): the multi-session solve
//!   service's request/response vocabulary (see [`crate::service`]).
//!
//! Decoding a frame from the wrong phase fails with a typed
//! [`WireError::BadTag`] — a desynchronized peer is detected at the
//! first frame, not after undefined behavior.
//!
//! ## Versioning and the session ID
//!
//! Version 3 inserts a `u64` session ID between the tag and the body so
//! one connection can interleave frames of many concurrent sessions
//! (the multi-session solve service). Decoding stays backward
//! compatible: a v2 frame (`[2 ‖ tag ‖ body]`, no session field) is
//! accepted and reads as session 0, the reserved ID for single-session
//! peers. Encoding always emits v3. The session-aware entry points are
//! [`MuxWire::encode_mux`]/[`MuxWire::decode_mux`] and the [`Mux`]
//! wrapper; the plain [`Wire`] impls delegate to them with session 0,
//! so existing single-session code is untouched.
//!
//! [`FrameConn`]: crate::transport::FrameConn
//! [`ServiceFrame`]: crate::service::ServiceFrame

use discsp_core::{VarValue, Wire, WireError, WireReader};
use discsp_runtime::{AgentStats, Envelope, LinkPolicy};
use discsp_trace::TraceEvent;

use crate::topology::AgentSlice;

/// Version byte carried by every frame. Bump on any incompatible change
/// to a frame layout or to the encoding of a type inside one.
/// Version 2 added `record_trace` to `Assign`, the virtual tick to
/// `Deliver`/`Nudge`, and the agent's event trace to `Final`.
/// Version 3 added the `u64` session ID to the header (decode still
/// accepts v2 frames as session 0).
pub const WIRE_VERSION: u8 = 3;

/// The oldest frame version `decode` still accepts. v2 frames carry no
/// session field and decode as [`SESSION_NONE`].
pub const MIN_WIRE_VERSION: u8 = 2;

/// The session ID implied by a v2 frame and used by single-session
/// peers: "not multiplexed".
pub const SESSION_NONE: u64 = 0;

/// Upper bound on one frame's encoded body, enforced on both send and
/// receive: a corrupt length prefix must not provoke a gigabyte
/// allocation.
pub const MAX_FRAME_LEN: u64 = 16 * 1024 * 1024;

pub(crate) fn encode_header(tag: u8, session: u64, out: &mut Vec<u8>) {
    out.push(WIRE_VERSION);
    out.push(tag);
    session.encode(out);
}

pub(crate) fn decode_header(
    r: &mut WireReader<'_>,
    context: &'static str,
) -> Result<(u8, u64), WireError> {
    let version = r.u8(context)?;
    if !(MIN_WIRE_VERSION..=WIRE_VERSION).contains(&version) {
        return Err(WireError::BadVersion {
            got: version,
            expected: WIRE_VERSION,
        });
    }
    let tag = r.u8(context)?;
    let session = if version >= 3 {
        r.u64(context)?
    } else {
        SESSION_NONE
    };
    Ok((tag, session))
}

/// Frame types that carry a session ID in their v3 header.
///
/// Implementors encode as `[version ‖ tag ‖ session ‖ body]`; the plain
/// [`Wire`] impl on the same type delegates here with
/// [`SESSION_NONE`], so session-oblivious peers interoperate for free.
pub trait MuxWire: Sized {
    /// Encodes the frame with an explicit session ID in the header.
    fn encode_mux(&self, session: u64, out: &mut Vec<u8>);

    /// Decodes a frame, returning the session ID from its header
    /// ([`SESSION_NONE`] for v2 frames).
    fn decode_mux(r: &mut WireReader<'_>) -> Result<(u64, Self), WireError>;
}

/// A frame paired with its session ID, for connections that interleave
/// sessions. `Mux<F>` is itself [`Wire`], so it flows through
/// [`FrameConn`] unchanged.
///
/// [`FrameConn`]: crate::transport::FrameConn
#[derive(Debug, Clone, PartialEq)]
pub struct Mux<F> {
    /// The session this frame belongs to.
    pub session: u64,
    /// The frame itself.
    pub frame: F,
}

impl<F> Mux<F> {
    /// Pairs a frame with a session ID.
    pub fn new(session: u64, frame: F) -> Self {
        Mux { session, frame }
    }
}

impl<F: MuxWire> Wire for Mux<F> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.frame.encode_mux(self.session, out);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let (session, frame) = F::decode_mux(r)?;
        Ok(Mux { session, frame })
    }
}

/// Handshake-phase frames.
#[derive(Debug, Clone, PartialEq)]
pub enum SetupFrame {
    /// Agent → coordinator: claims a slot in the population.
    Hello {
        /// The agent's index in `0..n`.
        index: u32,
    },
    /// Coordinator → agent: ships the agent its slice of the problem
    /// plus the session parameters, completing the handshake.
    Assign {
        /// Population size.
        n_agents: u32,
        /// The run seed (documents the session; faults are injected on
        /// the coordinator's relay path, not by agents).
        seed: u64,
        /// The link fault policy in force on the relay path.
        policy: LinkPolicy,
        /// Whether the agent should record its local event trace and
        /// ship it home in `Final`.
        record_trace: bool,
        /// This agent's slice of the problem.
        slice: AgentSlice,
    },
}

impl MuxWire for SetupFrame {
    fn encode_mux(&self, session: u64, out: &mut Vec<u8>) {
        match self {
            SetupFrame::Hello { index } => {
                encode_header(0, session, out);
                index.encode(out);
            }
            SetupFrame::Assign {
                n_agents,
                seed,
                policy,
                record_trace,
                slice,
            } => {
                encode_header(1, session, out);
                n_agents.encode(out);
                seed.encode(out);
                policy.encode(out);
                record_trace.encode(out);
                slice.encode(out);
            }
        }
    }

    fn decode_mux(r: &mut WireReader<'_>) -> Result<(u64, Self), WireError> {
        let (tag, session) = decode_header(r, "SetupFrame")?;
        let frame = match tag {
            0 => Ok(SetupFrame::Hello {
                index: r.u32("SetupFrame.Hello.index")?,
            }),
            1 => {
                let n_agents = r.u32("SetupFrame.Assign.n_agents")?;
                let seed = r.u64("SetupFrame.Assign.seed")?;
                let policy = LinkPolicy::decode(r)?;
                let record_trace = bool::decode(r)?;
                let slice = AgentSlice::decode(r)?;
                Ok(SetupFrame::Assign {
                    n_agents,
                    seed,
                    policy,
                    record_trace,
                    slice,
                })
            }
            tag => Err(WireError::BadTag {
                context: "SetupFrame",
                tag,
            }),
        }?;
        Ok((session, frame))
    }
}

impl Wire for SetupFrame {
    fn encode(&self, out: &mut Vec<u8>) {
        self.encode_mux(SESSION_NONE, out);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let (_session, frame) = Self::decode_mux(r)?;
        Ok(frame)
    }
}

/// Run-phase frames, generic over the algorithm's message type.
#[derive(Debug, Clone, PartialEq)]
pub enum RunFrame<M> {
    /// Coordinator → agent: announce your initial state.
    Start,
    /// Coordinator → agent: a batch of messages due this virtual tick.
    Deliver {
        /// The virtual tick the batch is delivered at, so the agent can
        /// timestamp its trace events on the coordinator's clock.
        tick: u64,
        /// The batch, in deterministic enqueue order.
        msgs: Vec<Envelope<M>>,
    },
    /// Coordinator → agent: the system stalled; re-announce your state
    /// so views staled by lost traffic heal.
    Nudge {
        /// The virtual tick of the recovery pass.
        tick: u64,
    },
    /// Agent → coordinator: the reply to `Start`/`Deliver`/`Nudge`.
    Step {
        /// Messages the agent sent this activation.
        out: Vec<Envelope<M>>,
        /// Nogood checks performed since the last step.
        checks: u64,
        /// The agent's current assignments (consistent-snapshot input).
        assignments: Vec<VarValue>,
        /// Whether the agent derived the empty nogood.
        insoluble: bool,
    },
    /// Coordinator → agent: the session is over; send `Final` and exit.
    Stop,
    /// Agent → coordinator: end-of-run statistics, so metrics
    /// aggregation survives the process boundary.
    Final {
        /// The agent's accumulated learning/messaging statistics.
        stats: AgentStats,
        /// Checks performed since the last `Step` reply.
        leftover_checks: u64,
        /// The agent's local event stream (steps, value/priority
        /// changes, learned nogoods), empty unless `Assign` requested
        /// recording. The coordinator merges it with the router's
        /// link-level events into the session trace.
        trace: Vec<TraceEvent>,
    },
}

impl<M: Wire> MuxWire for RunFrame<M> {
    fn encode_mux(&self, session: u64, out: &mut Vec<u8>) {
        match self {
            RunFrame::Start => encode_header(2, session, out),
            RunFrame::Deliver { tick, msgs } => {
                encode_header(3, session, out);
                tick.encode(out);
                msgs.encode(out);
            }
            RunFrame::Nudge { tick } => {
                encode_header(4, session, out);
                tick.encode(out);
            }
            RunFrame::Step {
                out: sent,
                checks,
                assignments,
                insoluble,
            } => {
                encode_header(5, session, out);
                sent.encode(out);
                checks.encode(out);
                assignments.encode(out);
                insoluble.encode(out);
            }
            RunFrame::Stop => encode_header(6, session, out),
            RunFrame::Final {
                stats,
                leftover_checks,
                trace,
            } => {
                encode_header(7, session, out);
                stats.encode(out);
                leftover_checks.encode(out);
                trace.encode(out);
            }
        }
    }

    fn decode_mux(r: &mut WireReader<'_>) -> Result<(u64, Self), WireError> {
        let (tag, session) = decode_header(r, "RunFrame")?;
        let frame = match tag {
            2 => Ok(RunFrame::Start),
            3 => Ok(RunFrame::Deliver {
                tick: r.u64("RunFrame.Deliver.tick")?,
                msgs: Vec::<Envelope<M>>::decode(r)?,
            }),
            4 => Ok(RunFrame::Nudge {
                tick: r.u64("RunFrame.Nudge.tick")?,
            }),
            5 => {
                let out = Vec::<Envelope<M>>::decode(r)?;
                let checks = r.u64("RunFrame.Step.checks")?;
                let assignments = Vec::<VarValue>::decode(r)?;
                let insoluble = bool::decode(r)?;
                Ok(RunFrame::Step {
                    out,
                    checks,
                    assignments,
                    insoluble,
                })
            }
            6 => Ok(RunFrame::Stop),
            7 => {
                let stats = AgentStats::decode(r)?;
                let leftover_checks = r.u64("RunFrame.Final.leftover_checks")?;
                let trace = Vec::<TraceEvent>::decode(r)?;
                Ok(RunFrame::Final {
                    stats,
                    leftover_checks,
                    trace,
                })
            }
            tag => Err(WireError::BadTag {
                context: "RunFrame",
                tag,
            }),
        }?;
        Ok((session, frame))
    }
}

impl<M: Wire> Wire for RunFrame<M> {
    fn encode(&self, out: &mut Vec<u8>) {
        self.encode_mux(SESSION_NONE, out);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let (_session, frame) = Self::decode_mux(r)?;
        Ok(frame)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use discsp_awc::AwcMessage;
    use discsp_core::{AgentId, Priority, Value, VariableId};

    fn env(from: u32, to: u32) -> Envelope<AwcMessage> {
        Envelope::new(
            AgentId::new(from),
            AgentId::new(to),
            AwcMessage::Ok {
                var: VariableId::new(from),
                value: Value::new(1),
                priority: Priority::new(2),
            },
        )
    }

    #[test]
    fn run_frames_roundtrip() {
        let frames: Vec<RunFrame<AwcMessage>> = vec![
            RunFrame::Start,
            RunFrame::Deliver {
                tick: 12,
                msgs: vec![env(0, 1), env(2, 1)],
            },
            RunFrame::Nudge { tick: 13 },
            RunFrame::Step {
                out: vec![env(1, 0)],
                checks: 17,
                assignments: vec![VarValue::new(VariableId::new(1), Value::new(2))],
                insoluble: false,
            },
            RunFrame::Stop,
            RunFrame::Final {
                stats: AgentStats::default(),
                leftover_checks: 3,
                trace: vec![discsp_trace::TraceEvent::AgentStep {
                    cycle: 12,
                    agent: AgentId::new(1),
                    checks: 17,
                }],
            },
        ];
        for frame in frames {
            let bytes = frame.to_bytes();
            assert_eq!(bytes.first(), Some(&WIRE_VERSION));
            assert_eq!(RunFrame::<AwcMessage>::from_bytes(&bytes).as_ref(), Ok(&frame));
        }
    }

    #[test]
    fn phases_have_disjoint_tags() {
        // A setup frame decoded as a run frame (and vice versa) fails
        // with BadTag, never misparses.
        let hello = SetupFrame::Hello { index: 3 }.to_bytes();
        assert!(matches!(
            RunFrame::<AwcMessage>::from_bytes(&hello),
            Err(WireError::BadTag {
                context: "RunFrame",
                ..
            })
        ));
        let start = RunFrame::<AwcMessage>::Start.to_bytes();
        assert!(matches!(
            SetupFrame::from_bytes(&start),
            Err(WireError::BadTag {
                context: "SetupFrame",
                ..
            })
        ));
    }

    #[test]
    fn version_mismatch_is_rejected() {
        for bad in [WIRE_VERSION + 1, MIN_WIRE_VERSION - 1, 0] {
            let mut bytes = RunFrame::<AwcMessage>::Start.to_bytes();
            if let Some(first) = bytes.first_mut() {
                *first = bad;
            }
            assert_eq!(
                RunFrame::<AwcMessage>::from_bytes(&bytes),
                Err(WireError::BadVersion {
                    got: bad,
                    expected: WIRE_VERSION,
                })
            );
        }
    }

    #[test]
    fn session_id_roundtrips_through_mux() {
        let frame = Mux::new(0xDEAD_BEEF_CAFE_0001, SetupFrame::Hello { index: 7 });
        let bytes = frame.to_bytes();
        assert_eq!(Mux::<SetupFrame>::from_bytes(&bytes).as_ref(), Ok(&frame));

        let run = Mux::new(42, RunFrame::<AwcMessage>::Nudge { tick: 9 });
        let bytes = run.to_bytes();
        assert_eq!(Mux::<RunFrame<AwcMessage>>::from_bytes(&bytes).as_ref(), Ok(&run));
    }

    #[test]
    fn plain_wire_impls_imply_session_none() {
        let bytes = SetupFrame::Hello { index: 3 }.to_bytes();
        let mux = Mux::<SetupFrame>::from_bytes(&bytes).expect("v3 frame decodes as mux");
        assert_eq!(mux.session, SESSION_NONE);
        assert_eq!(mux.frame, SetupFrame::Hello { index: 3 });
    }

    #[test]
    fn v2_frames_decode_as_session_none() {
        // A hand-built v2 frame: [version=2 ‖ tag ‖ body], no session
        // field. Both the plain and mux decoders must accept it.
        let mut v2 = vec![2u8, 0u8];
        3u32.encode(&mut v2);
        assert_eq!(
            SetupFrame::from_bytes(&v2),
            Ok(SetupFrame::Hello { index: 3 })
        );
        let mux = Mux::<SetupFrame>::from_bytes(&v2).expect("v2 frame decodes as mux");
        assert_eq!(mux.session, SESSION_NONE);
        assert_eq!(mux.frame, SetupFrame::Hello { index: 3 });

        let mut v2 = vec![2u8, 4u8];
        17u64.encode(&mut v2);
        assert_eq!(
            RunFrame::<AwcMessage>::from_bytes(&v2),
            Ok(RunFrame::Nudge { tick: 17 })
        );
    }

    #[test]
    fn truncated_session_field_is_a_typed_error() {
        // A v3 header cut off inside the session ID must fail with
        // Truncated, never panic or misread the body as the session.
        let full = Mux::new(7, RunFrame::<AwcMessage>::Start).to_bytes();
        for len in 0..full.len() {
            assert!(Mux::<RunFrame<AwcMessage>>::from_bytes(&full[..len]).is_err());
        }
    }
}
