//! Problem slicing: what the coordinator ships each agent process.
//!
//! An [`AgentSlice`] is the minimal view of the
//! [`DistributedCsp`](discsp_core::DistributedCsp) one agent needs to
//! run: its variable, domain, initial value, the nogoods mentioning its
//! variable, its neighbor/owner map, and the algorithm to instantiate
//! ([`AlgoSpec`]). Slices are built coordinator-side with the same
//! validation as the in-process solvers (`build_agents`), so a
//! malformed problem is rejected before any process is spawned.

use discsp_awc::AwcConfig;
use discsp_core::{
    AgentId, Assignment, DistributedCsp, Domain, Nogood, Value, VariableId, Wire, WireError,
    WireReader,
};
use discsp_dba::WeightMode;

use crate::NetError;

/// Which algorithm an agent process should instantiate, with its
/// configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AlgoSpec {
    /// Asynchronous weak-commitment search with the given learning
    /// configuration.
    Awc(AwcConfig),
    /// Distributed breakout with the given weight placement mode.
    Dba(WeightMode),
}

impl Wire for AlgoSpec {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            AlgoSpec::Awc(config) => {
                out.push(0);
                config.encode(out);
            }
            AlgoSpec::Dba(mode) => {
                out.push(1);
                mode.encode(out);
            }
        }
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        match r.u8("AlgoSpec")? {
            0 => Ok(AlgoSpec::Awc(AwcConfig::decode(r)?)),
            1 => Ok(AlgoSpec::Dba(WeightMode::decode(r)?)),
            tag => Err(WireError::BadTag {
                context: "AlgoSpec",
                tag,
            }),
        }
    }
}

/// One agent's slice of the problem, shipped in the `Assign` frame.
#[derive(Debug, Clone, PartialEq)]
pub struct AgentSlice {
    /// The agent this slice belongs to.
    pub agent: AgentId,
    /// The variable the agent owns.
    pub var: VariableId,
    /// The variable's domain.
    pub domain: Domain,
    /// The initial value (validated to be in the domain).
    pub init: Value,
    /// Every problem nogood mentioning the variable.
    pub nogoods: Vec<Nogood>,
    /// The variable's neighbors and their owning agents.
    pub neighbors: Vec<(VariableId, AgentId)>,
    /// The algorithm to instantiate.
    pub algo: AlgoSpec,
}

impl Wire for AgentSlice {
    fn encode(&self, out: &mut Vec<u8>) {
        self.agent.encode(out);
        self.var.encode(out);
        self.domain.encode(out);
        self.init.encode(out);
        self.nogoods.encode(out);
        self.neighbors.encode(out);
        self.algo.encode(out);
    }

    fn decode(r: &mut WireReader<'_>) -> Result<Self, WireError> {
        let agent = AgentId::decode(r)?;
        let var = VariableId::decode(r)?;
        let domain = Domain::decode(r)?;
        let init = Value::decode(r)?;
        let nogoods = Vec::<Nogood>::decode(r)?;
        let neighbors = Vec::<(VariableId, AgentId)>::decode(r)?;
        let algo = AlgoSpec::decode(r)?;
        if !domain.contains(init) {
            return Err(WireError::Invalid {
                context: "AgentSlice.init",
            });
        }
        Ok(AgentSlice {
            agent,
            var,
            domain,
            init,
            nogoods,
            neighbors,
            algo,
        })
    }
}

/// Builds one slice per agent, with the same validation as the
/// in-process solvers: exactly one variable per agent, every initial
/// value present and in domain.
///
/// # Errors
///
/// [`NetError::WrongVariableCount`] / [`NetError::BadInitialValue`] on
/// the first violation, before any network activity.
pub fn build_slices(
    problem: &DistributedCsp,
    init: &Assignment,
    algo: AlgoSpec,
) -> Result<Vec<AgentSlice>, NetError> {
    let mut slices = Vec::with_capacity(problem.num_agents());
    for a in 0..problem.num_agents() {
        let agent = AgentId::new(a as u32);
        let vars = problem.vars_of_agent(agent);
        let [var] = vars[..] else {
            return Err(NetError::WrongVariableCount {
                agent,
                count: vars.len(),
            });
        };
        let domain = problem.domain(var);
        let value = init
            .get(var)
            .filter(|&v| domain.contains(v))
            .ok_or(NetError::BadInitialValue { var })?;
        let neighbors = problem
            .neighbors(var)
            .iter()
            .map(|&v| (v, problem.owner(v)))
            .collect();
        let nogoods = problem.nogoods_of(var).cloned().collect();
        slices.push(AgentSlice {
            agent,
            var,
            domain,
            init: value,
            nogoods,
            neighbors,
            algo,
        });
    }
    Ok(slices)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> DistributedCsp {
        let mut b = DistributedCsp::builder();
        let x = b.variable(Domain::new(3));
        let y = b.variable(Domain::new(3));
        let z = b.variable(Domain::new(3));
        b.not_equal(x, y).unwrap();
        b.not_equal(y, z).unwrap();
        b.not_equal(x, z).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn slices_cover_the_problem_and_roundtrip() {
        let problem = triangle();
        let init = Assignment::total([Value::new(0), Value::new(0), Value::new(0)]);
        let slices =
            build_slices(&problem, &init, AlgoSpec::Awc(AwcConfig::resolvent())).expect("builds");
        assert_eq!(slices.len(), 3);
        for (i, slice) in slices.iter().enumerate() {
            assert_eq!(slice.agent, AgentId::new(i as u32));
            assert_eq!(slice.neighbors.len(), 2, "triangle: two neighbors each");
            assert!(!slice.nogoods.is_empty());
            assert_eq!(AgentSlice::from_bytes(&slice.to_bytes()).as_ref(), Ok(slice));
        }
    }

    #[test]
    fn missing_initial_value_is_rejected() {
        let problem = triangle();
        let init = Assignment::empty(3);
        let err = build_slices(&problem, &init, AlgoSpec::Dba(WeightMode::PerNogood));
        assert!(matches!(err, Err(NetError::BadInitialValue { .. })));
    }

    #[test]
    fn out_of_domain_init_fails_to_decode() {
        let problem = triangle();
        let init = Assignment::total([Value::new(1), Value::new(0), Value::new(2)]);
        let slices =
            build_slices(&problem, &init, AlgoSpec::Dba(WeightMode::PerPair)).expect("builds");
        let mut slice = slices.into_iter().next().expect("one slice");
        slice.init = Value::new(9); // outside Domain::new(3)
        assert_eq!(
            AgentSlice::from_bytes(&slice.to_bytes()),
            Err(WireError::Invalid {
                context: "AgentSlice.init"
            })
        );
    }

    #[test]
    fn algo_specs_roundtrip() {
        for algo in [
            AlgoSpec::Awc(AwcConfig::mcs()),
            AlgoSpec::Awc(AwcConfig::kth_resolvent(4)),
            AlgoSpec::Dba(WeightMode::PerPair),
        ] {
            assert_eq!(AlgoSpec::from_bytes(&algo.to_bytes()), Ok(algo));
        }
    }
}
