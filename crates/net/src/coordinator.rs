//! The coordinator: runs the session event loop over sockets.
//!
//! The loop is shaped exactly like the in-process `run_virtual`
//! executor, with the agent step calls replaced by `Deliver`/`Step`
//! frame exchanges. The coordinator relays every inter-agent message
//! through the shared [`Router`], which gives two properties for free:
//!
//! * **exact quiescence detection** — the router's queue is the
//!   in-flight set (agents only send in reply to a delivery the
//!   coordinator made), so "queue empty" is a consistent snapshot
//!   boundary even though the agents live in other processes;
//! * **replayable faults** — the router consumes each per-link
//!   SplitMix64 stream in the same order as `run_virtual` would for the
//!   same traffic, so a lossy run's fault counters replay bit-for-bit
//!   from `(seed, policy)`.
//!
//! `maxcck` (the paper's sum over cycles of the per-cycle maximum of
//! agents' nogood checks) is accumulated from the `Step` replies of
//! each delivery wave, because the wave boundary is where "concurrent"
//! is well defined — the same wave accounting as `run_virtual`.

use std::net::TcpListener;

use discsp_core::{Assignment, DistributedCsp, RunMetrics, Termination, TrialOutcome, Wire};
use discsp_runtime::{AgentStats, Classify, Router};
use discsp_trace::{canonical_sort, RuntimeKind, TraceEvent, TraceSink};

use crate::frame::{RunFrame, SetupFrame};
use crate::topology::AgentSlice;
use crate::transport::{accept_agents, Deadline, FrameConn};
use crate::{NetConfig, NetError};

/// What a networked session reports, mirroring
/// [`VirtualReport`](discsp_runtime::VirtualReport), event trace
/// included: the coordinator records the router's link-level events,
/// each endpoint ships its per-step events home in `Final`, and the
/// merged, canonically sorted stream lands in [`NetReport::trace`].
#[derive(Debug, Clone)]
pub struct NetReport {
    /// Metrics and (for solved runs) the solution.
    pub outcome: TrialOutcome,
    /// Final virtual tick of the relay clock.
    pub ticks: u64,
    /// Agent activations (delivery batches processed, including starts).
    pub activations: u64,
    /// Stall-triggered recovery passes consumed.
    pub nudges: u64,
    /// The session's merged event trace, empty unless
    /// [`NetConfig::record_trace`](crate::NetConfig) is set.
    pub trace: Vec<TraceEvent>,
}

/// One `Step` reply, already unpacked and sanity-checked.
struct StepReply<M> {
    out: Vec<discsp_runtime::Envelope<M>>,
    checks: u64,
    assignments: Vec<discsp_core::VarValue>,
    insoluble: bool,
}

fn recv_step<M: Wire>(conn: &mut FrameConn, index: usize) -> Result<StepReply<M>, NetError> {
    match conn.recv::<RunFrame<M>>() {
        Ok(RunFrame::Step {
            out,
            checks,
            assignments,
            insoluble,
        }) => Ok(StepReply {
            out,
            checks,
            assignments,
            insoluble,
        }),
        Ok(_) => Err(NetError::UnexpectedFrame { expected: "Step" }),
        Err(NetError::Io { context, error }) => Err(NetError::AgentFailed {
            index: index as u32,
            detail: format!("i/o failure while {context}: {error}"),
        }),
        Err(e) => Err(e),
    }
}

fn conn_at(conns: &mut [FrameConn], index: usize) -> Result<&mut FrameConn, NetError> {
    let population = conns.len();
    conns.get_mut(index).ok_or(NetError::BadAgentIndex {
        index: index as u32,
        population,
    })
}

/// Accepts `slices.len()` agent connections on `listener`, completes the
/// handshake, and drives the session to termination, aggregating every
/// agent's statistics into a single [`RunMetrics`].
///
/// The generic parameter `M` is the algorithm's message type; it must
/// match what the agents instantiate from their
/// [`AlgoSpec`](crate::AlgoSpec) or the first relayed frame fails to
/// decode with a typed error.
///
/// # Errors
///
/// Any [`NetError`]: handshake timeout, bad or duplicate agent indices,
/// socket failures (attributed to the offending agent), codec errors.
pub fn run_session<M>(
    listener: &TcpListener,
    problem: &DistributedCsp,
    slices: &[AgentSlice],
    config: &NetConfig,
) -> Result<NetReport, NetError>
where
    M: Wire + Classify + Clone,
{
    let n = slices.len();

    // --- Handshake: every agent says Hello, gets its Assign. ---------
    // One deadline bounds both phases: accepting the sockets and
    // collecting the greetings. A client that connects and then goes
    // silent therefore fails the handshake with a typed error instead
    // of wedging setup on an unbounded read.
    let deadline = Deadline::new(config.handshake_timeout);
    let streams = accept_agents(listener, n, &deadline)?;
    let mut slots: Vec<Option<FrameConn>> = Vec::with_capacity(n);
    slots.resize_with(n, || None);
    // `greeted` counts connections that already completed their Hello:
    // every earlier iteration either greeted successfully or returned.
    for (greeted, stream) in streams.into_iter().enumerate() {
        let mut conn = FrameConn::new(stream, config.io_timeout)?;
        let Some(remaining) = deadline.remaining() else {
            return Err(NetError::HelloTimeout {
                completed: greeted,
                expected: n,
            });
        };
        conn.set_io_timeout(remaining)?;
        let index = match conn.recv::<SetupFrame>() {
            Ok(SetupFrame::Hello { index }) => index,
            Ok(SetupFrame::Assign { .. }) => {
                return Err(NetError::UnexpectedFrame { expected: "Hello" })
            }
            Err(NetError::Io { context: _, error })
                if matches!(
                    error.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
            {
                return Err(NetError::HelloTimeout {
                    completed: greeted,
                    expected: n,
                })
            }
            Err(e) => return Err(e),
        };
        conn.set_io_timeout(config.io_timeout)?;
        let slot = slots
            .get_mut(index as usize)
            .ok_or(NetError::BadAgentIndex {
                index,
                population: n,
            })?;
        if slot.is_some() {
            return Err(NetError::DuplicateAgentIndex { index });
        }
        let slice = slices
            .get(index as usize)
            .cloned()
            .ok_or(NetError::BadAgentIndex {
                index,
                population: n,
            })?;
        conn.send(&SetupFrame::Assign {
            n_agents: n as u32,
            seed: config.seed,
            policy: config.link,
            record_trace: config.record_trace,
            slice,
        })?;
        *slot = Some(conn);
    }
    let mut conns: Vec<FrameConn> = Vec::with_capacity(n);
    for (index, slot) in slots.into_iter().enumerate() {
        conns.push(slot.ok_or(NetError::AgentFailed {
            index: index as u32,
            detail: "connection lost between Hello and session start".to_string(),
        })?);
    }

    // --- Session: the run_virtual loop, over sockets. ----------------
    let mut net: Router<M> = Router::new(n, config.link, config.seed, config.record_trace);
    let mut metrics = RunMetrics::new(Termination::CutOff);
    let mut snapshot = Assignment::empty(problem.num_vars());
    let mut activations: u64 = 0;
    let mut nudges: u64 = 0;
    let mut tick: u64 = 0;
    let termination;

    // Tick 0: every agent announces its initial state. Starts go out to
    // all agents before any reply is read (they step concurrently), but
    // replies are routed in ascending index order — the same router
    // call order as the in-process executor.
    for conn in conns.iter_mut() {
        conn.send(&RunFrame::<M>::Start)?;
    }
    let mut insoluble = false;
    let mut start_max: u64 = 0;
    for index in 0..n {
        let reply = recv_step::<M>(conn_at(&mut conns, index)?, index)?;
        activations += 1;
        metrics.total_checks += reply.checks;
        start_max = start_max.max(reply.checks);
        for vv in reply.assignments {
            snapshot.set(vv.var, vv.value);
        }
        insoluble |= reply.insoluble;
        for env in reply.out {
            net.route(0, env)?;
        }
    }
    metrics.maxcck += start_max;
    net.sink().record(TraceEvent::CycleBarrier { cycle: 0 });

    loop {
        if insoluble {
            termination = Termination::Insoluble;
            break;
        }
        if config.stop_on_first_solution && problem.is_solution(&snapshot) {
            termination = Termination::Solved;
            break;
        }
        let Some(due) = net.next_due() else {
            // Quiescent: the relay queue is the in-flight set, so the
            // snapshot is stable unless the recovery pass injects
            // traffic.
            if problem.is_solution(&snapshot) {
                termination = Termination::Solved;
                break;
            }
            if config.link.is_perfect() || nudges >= config.max_nudges {
                termination = Termination::CutOff;
                break;
            }
            nudges += 1;
            tick += 1;
            net.flush_parked(tick);
            for conn in conns.iter_mut() {
                conn.send(&RunFrame::<M>::Nudge { tick })?;
            }
            let mut wave_max: u64 = 0;
            for index in 0..n {
                let reply = recv_step::<M>(conn_at(&mut conns, index)?, index)?;
                // Checks count (they drain the agent's counter), but the
                // in-process executor does not refresh snapshot or
                // insolubility during a nudge pass, so neither do we.
                metrics.total_checks += reply.checks;
                wave_max = wave_max.max(reply.checks);
                for env in reply.out {
                    net.route(tick, env)?;
                }
            }
            metrics.maxcck += wave_max;
            net.sink().record(TraceEvent::CycleBarrier { cycle: tick });
            if net.is_quiescent() {
                // Nothing retransmitted and nobody re-announced: the
                // stall is permanent.
                termination = Termination::CutOff;
                break;
            }
            continue;
        };
        if due > config.max_ticks {
            termination = Termination::CutOff;
            break;
        }
        tick = tick.max(due);

        // Deliver every batch due this tick, then collect the replies in
        // the same ascending recipient order the in-process executor
        // steps agents in, routing each reply's messages as it lands.
        let batches: Vec<(usize, Vec<discsp_runtime::Envelope<M>>)> =
            net.take_due(due, tick).into_iter().collect();
        for (recipient, inbox) in &batches {
            conn_at(&mut conns, *recipient)?.send(&RunFrame::Deliver {
                tick,
                msgs: inbox.clone(),
            })?;
        }
        let mut wave_max: u64 = 0;
        for (recipient, _) in &batches {
            let reply = recv_step::<M>(conn_at(&mut conns, *recipient)?, *recipient)?;
            activations += 1;
            metrics.total_checks += reply.checks;
            wave_max = wave_max.max(reply.checks);
            for vv in reply.assignments {
                snapshot.set(vv.var, vv.value);
            }
            insoluble |= reply.insoluble;
            for env in reply.out {
                net.route(tick, env)?;
            }
        }
        metrics.maxcck += wave_max;
        net.sink().record(TraceEvent::CycleBarrier { cycle: tick });
    }

    // --- Teardown: collect every agent's statistics. ------------------
    for conn in conns.iter_mut() {
        conn.send(&RunFrame::<M>::Stop)?;
    }
    let mut stats = AgentStats::default();
    let mut agent_events: Vec<TraceEvent> = Vec::new();
    for index in 0..n {
        match conn_at(&mut conns, index)?.recv::<RunFrame<M>>() {
            Ok(RunFrame::Final {
                stats: agent_stats,
                leftover_checks,
                trace,
            }) => {
                metrics.total_checks += leftover_checks;
                if leftover_checks > 0 && config.record_trace {
                    // Mirror run_virtual's final sweep: leftover checks
                    // appear in the trace so the audit's total matches.
                    agent_events.push(TraceEvent::AgentStep {
                        cycle: tick,
                        agent: discsp_core::AgentId::new(index as u32),
                        checks: leftover_checks,
                    });
                }
                agent_events.extend(trace);
                stats.absorb(agent_stats);
            }
            Ok(_) => return Err(NetError::UnexpectedFrame { expected: "Final" }),
            Err(NetError::Io { context, error }) => {
                return Err(NetError::AgentFailed {
                    index: index as u32,
                    detail: format!("i/o failure while {context}: {error}"),
                })
            }
            Err(e) => return Err(e),
        }
    }

    metrics.termination = termination;
    metrics.cycles = tick;
    let (ok, nogood, other) = net.class_counts();
    metrics.ok_messages = ok;
    metrics.nogood_messages = nogood;
    metrics.other_messages = other;
    net.link_totals().fold_into(&mut stats);
    metrics.nogoods_generated = stats.nogoods_generated;
    metrics.redundant_nogoods = stats.redundant_nogoods;
    metrics.largest_nogood = stats.largest_nogood;
    metrics.messages_sent = stats.messages_sent;
    metrics.messages_dropped = stats.messages_dropped;
    metrics.messages_duplicated = stats.messages_duplicated;
    metrics.messages_reordered = stats.messages_reordered;
    metrics.messages_retransmitted = stats.messages_retransmitted;
    metrics.max_delivery_delay = stats.max_delivery_delay;

    let trace = if config.record_trace {
        let mut trace = net.take_trace();
        trace.extend(agent_events);
        canonical_sort(&mut trace);
        let in_flight = net.queued();
        trace.push(TraceEvent::RunEnd {
            cycle: metrics.cycles,
            runtime: RuntimeKind::Net,
            in_flight,
            metrics: metrics.clone(),
        });
        trace
    } else {
        Vec::new()
    };

    let solution = if termination == Termination::Solved {
        Some(snapshot)
    } else {
        None
    };
    Ok(NetReport {
        outcome: TrialOutcome { metrics, solution },
        ticks: tick,
        activations,
        nudges,
        trace,
    })
}
