//! The agent endpoint: one process (or thread) serving one agent.
//!
//! An endpoint connects to the coordinator, claims its index with
//! `Hello`, receives its [`AgentSlice`](crate::AgentSlice) in `Assign`,
//! instantiates the algorithm named by the slice's
//! [`AlgoSpec`](crate::AlgoSpec), and then answers every
//! `Start`/`Deliver`/`Nudge` frame with a `Step` until `Stop` arrives,
//! at which point it ships its statistics home in `Final` and exits.
//!
//! The endpoint is a pure protocol follower: it never reads a clock and
//! never initiates traffic, which is what makes the coordinator's relay
//! queue an exact in-flight set.

use std::net::SocketAddr;
use std::time::Duration;

use discsp_awc::AwcAgent;
use discsp_core::Wire;
use discsp_dba::DbaAgent;
use discsp_runtime::{DistributedAgent, Outbox, RingBuffer, StepRecorder};

use crate::frame::{RunFrame, SetupFrame};
use crate::topology::AlgoSpec;
use crate::transport::{connect_with_retry, FrameConn};
use crate::NetError;

/// How many times the endpoint retries its initial connect while the
/// coordinator may still be binding, and how long it waits between
/// attempts.
const CONNECT_ATTEMPTS: u32 = 100;
const CONNECT_BACKOFF: Duration = Duration::from_millis(50);

/// Runs one agent endpoint to completion: connect, handshake as agent
/// `index`, serve the session, report statistics, return.
///
/// # Errors
///
/// Any [`NetError`]: connect failure after retries, a malformed or
/// out-of-phase frame, an initial value outside its domain, socket
/// failures mid-session.
pub fn run_agent(addr: SocketAddr, index: u32, io_timeout: Duration) -> Result<(), NetError> {
    let stream = connect_with_retry(addr, CONNECT_ATTEMPTS, CONNECT_BACKOFF)?;
    let mut conn = FrameConn::new(stream, io_timeout)?;
    conn.send(&SetupFrame::Hello { index })?;
    let (slice, record_trace) = match conn.recv::<SetupFrame>()? {
        SetupFrame::Assign {
            slice,
            record_trace,
            ..
        } => (slice, record_trace),
        SetupFrame::Hello { .. } => return Err(NetError::UnexpectedFrame { expected: "Assign" }),
    };
    // The codec already rejects out-of-domain initial values, but the
    // agent constructors assert this invariant — re-check it here so a
    // protocol bug surfaces as a typed error, not a panic.
    if !slice.domain.contains(slice.init) {
        return Err(NetError::BadInitialValue { var: slice.var });
    }
    match slice.algo {
        AlgoSpec::Awc(config) => {
            let mut agent = AwcAgent::new(
                slice.agent,
                slice.var,
                slice.domain,
                slice.init,
                slice.nogoods,
                slice.neighbors,
                config,
            );
            serve(&mut conn, &mut agent, record_trace)
        }
        AlgoSpec::Dba(mode) => {
            let mut agent = DbaAgent::new(
                slice.agent,
                slice.var,
                slice.domain,
                slice.init,
                slice.nogoods,
                slice.neighbors,
                mode,
            );
            serve(&mut conn, &mut agent, record_trace)
        }
    }
}

/// Serves the run phase: one `Step` per `Start`/`Deliver`/`Nudge`, then
/// `Final` on `Stop`.
///
/// With `record_trace` on, the endpoint records its local per-step
/// events (steps, value/priority changes, learned nogoods) timestamped
/// with the coordinator's virtual tick, and ships them home inside the
/// `Final` frame. Link-level events (`Sent`/`Delivered`/`Fault`) belong
/// to the coordinator's router, never to an endpoint.
fn serve<A>(conn: &mut FrameConn, agent: &mut A, record_trace: bool) -> Result<(), NetError>
where
    A: DistributedAgent,
    A::Message: Wire,
{
    let mut sink = if record_trace {
        RingBuffer::new()
    } else {
        RingBuffer::disabled()
    };
    let mut recorder = StepRecorder::new();
    loop {
        let mut out = Outbox::new(agent.id());
        let tick = match conn.recv::<RunFrame<A::Message>>()? {
            RunFrame::Start => {
                agent.on_start(&mut out);
                0
            }
            RunFrame::Deliver { tick, msgs } => {
                agent.on_batch(msgs, &mut out);
                tick
            }
            RunFrame::Nudge { tick } => {
                agent.on_nudge(&mut out);
                tick
            }
            RunFrame::Stop => {
                conn.send(&RunFrame::<A::Message>::Final {
                    stats: agent.stats(),
                    leftover_checks: agent.take_checks(),
                    trace: sink.take(),
                })?;
                return Ok(());
            }
            RunFrame::Step { .. } | RunFrame::Final { .. } => {
                return Err(NetError::UnexpectedFrame {
                    expected: "Start, Deliver, Nudge, or Stop",
                })
            }
        };
        // One drain serves both the Step reply and the trace: draining
        // twice would charge the checks to the wrong wave.
        let checks = agent.take_checks();
        recorder.record_step(agent, tick, checks, &mut sink);
        conn.send(&RunFrame::Step {
            out: out.drain(),
            checks,
            assignments: agent.assignments(),
            insoluble: agent.detected_insoluble(),
        })?;
    }
}
