//! Trial execution: one algorithm, one instance, one set of initial
//! values — and batched sweeps over the full protocol.
//!
//! Sweeps fan the independent trials of a cell across CPU cores
//! ([`run_cell`]). Trial *generation* (instances and initial values) is
//! always sequential and consumes the RNG streams in the exact order the
//! serial runner did, so results are bit-identical for every worker
//! count — see [`run_cell_with_jobs`].

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use discsp_awc::{AbtSolver, AwcConfig, AwcSolver};
use discsp_core::{Aggregate, Assignment, DistributedCsp, RunMetrics};
use discsp_cspsolve::random_assignment;
use discsp_dba::{DbaSolver, WeightMode};
use discsp_runtime::derive_seed;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::config::{Family, Protocol};

/// Process-wide worker-count override; 0 means "auto" (one worker per
/// available core).
static JOBS: AtomicUsize = AtomicUsize::new(0);

/// Sets the worker count used by [`run_cell`] (the repro binary's
/// `--jobs N`). Zero restores auto-detection.
pub fn set_jobs(n: usize) {
    JOBS.store(n, Ordering::Relaxed);
}

/// The worker count [`run_cell`] will use: the [`set_jobs`] override, or
/// the machine's available parallelism.
pub fn jobs() -> usize {
    match JOBS.load(Ordering::Relaxed) {
        0 => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        n => n,
    }
}

/// An algorithm under test, dispatchable uniformly by the harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Algorithm {
    /// AWC with the given learning configuration.
    Awc(AwcConfig),
    /// Distributed breakout with the given weight placement.
    Db(WeightMode),
    /// Asynchronous backtracking (extension baseline, not in the paper's
    /// tables).
    Abt,
}

impl Algorithm {
    /// The table label (`Rslv`, `3rdRslv`, `DB`, `AWC+5thRslv`, …).
    pub fn label(&self) -> String {
        match self {
            Algorithm::Awc(config) => config.label(),
            Algorithm::Db(WeightMode::PerNogood) => "DB".to_string(),
            Algorithm::Db(WeightMode::PerPair) => "DB/pair".to_string(),
            Algorithm::Abt => "ABT".to_string(),
        }
    }

    /// Runs one trial on the synchronous simulator.
    pub fn run(&self, problem: &DistributedCsp, init: &Assignment, cycle_limit: u64) -> RunMetrics {
        match self {
            Algorithm::Awc(config) => {
                AwcSolver::new(*config)
                    .cycle_limit(cycle_limit)
                    .solve_sync(problem, init)
                    .expect("benchmark problems are one variable per agent") // lint: allow(panic-path): the bench generator guarantees one variable per agent; fail fast on a bad generator
                    .outcome
                    .metrics
            }
            Algorithm::Db(mode) => {
                DbaSolver::new()
                    .weight_mode(*mode)
                    .cycle_limit(cycle_limit)
                    .solve_sync(problem, init)
                    .expect("benchmark problems are one variable per agent") // lint: allow(panic-path): the bench generator guarantees one variable per agent; fail fast on a bad generator
                    .outcome
                    .metrics
            }
            Algorithm::Abt => {
                AbtSolver::new()
                    .cycle_limit(cycle_limit)
                    .solve_sync(problem, init)
                    .expect("benchmark problems are one variable per agent") // lint: allow(panic-path): the bench generator guarantees one variable per agent; fail fast on a bad generator
                    .outcome
                    .metrics
            }
        }
    }
}

/// Runs the full protocol for one `(family, n, algorithm)` cell and
/// returns every trial's metrics.
///
/// Instance `i`, init `j` always uses the same derived seeds regardless
/// of the algorithm, so every algorithm sees identical instances and
/// identical initial values — the paper's paired-comparison design.
pub fn run_cell(
    family: Family,
    n: u32,
    algorithm: Algorithm,
    protocol: &Protocol,
) -> Vec<RunMetrics> {
    run_cell_with_jobs(family, n, algorithm, protocol, jobs())
}

/// [`run_cell`] with an explicit worker count.
///
/// All randomness is consumed during the sequential generation phase
/// (instances in index order, then each instance's initial values from
/// its own derived-seed stream), and trials are merged back by index —
/// the result is bit-identical for every `workers` value, including 1.
pub fn run_cell_with_jobs(
    family: Family,
    n: u32,
    algorithm: Algorithm,
    protocol: &Protocol,
    workers: usize,
) -> Vec<RunMetrics> {
    let mut problems: Vec<DistributedCsp> = Vec::with_capacity(protocol.instances);
    let mut trials: Vec<(usize, Assignment)> = Vec::with_capacity(protocol.trials());
    for instance_index in 0..protocol.instances {
        let problem = family.problem(n, instance_index, protocol.master_seed);
        let init_seed = derive_seed(
            protocol.master_seed ^ 0xA5A5_5A5A,
            family as u64 * 1000 + n as u64,
            instance_index as u64,
        );
        let mut rng = StdRng::seed_from_u64(init_seed);
        for _ in 0..protocol.inits {
            trials.push((problems.len(), random_assignment(&problem, &mut rng)));
        }
        problems.push(problem);
    }

    let workers = workers.clamp(1, trials.len().max(1));
    if workers == 1 {
        return trials
            .iter()
            .map(|(p, init)| algorithm.run(&problems[*p], init, protocol.cycle_limit))
            .collect();
    }

    // Dynamic work claiming: trial runtimes vary wildly (some hit the
    // cycle limit), so static chunking would leave workers idle.
    let next = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<RunMetrics>>> =
        trials.iter().map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                let Some((p, init)) = trials.get(i) else {
                    break;
                };
                let metrics = algorithm.run(&problems[*p], init, protocol.cycle_limit);
                *results[i].lock().expect("no panics hold this lock") = Some(metrics);
            });
        }
    });
    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("no panics hold this lock")
                .expect("every trial index was claimed")
        })
        .collect()
}

/// [`run_cell`] reduced to the paper's aggregate row.
pub fn run_cell_aggregate(
    family: Family,
    n: u32,
    algorithm: Algorithm,
    protocol: &Protocol,
) -> Aggregate {
    let metrics = run_cell(family, n, algorithm, protocol);
    Aggregate::from_metrics(metrics.iter())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Protocol {
        Protocol {
            instances: 2,
            inits: 2,
            cycle_limit: 2_000,
            master_seed: 7,
        }
    }

    #[test]
    fn labels() {
        assert_eq!(Algorithm::Awc(AwcConfig::resolvent()).label(), "Rslv");
        assert_eq!(
            Algorithm::Awc(AwcConfig::kth_resolvent(3)).label(),
            "3rdRslv"
        );
        assert_eq!(Algorithm::Db(WeightMode::PerNogood).label(), "DB");
        assert_eq!(Algorithm::Db(WeightMode::PerPair).label(), "DB/pair");
        assert_eq!(Algorithm::Abt.label(), "ABT");
    }

    #[test]
    fn run_cell_runs_full_protocol() {
        let metrics = run_cell(
            Family::Coloring,
            15,
            Algorithm::Awc(AwcConfig::resolvent()),
            &tiny(),
        );
        assert_eq!(metrics.len(), 4);
        assert!(metrics.iter().all(|m| m.termination.is_solved()));
    }

    #[test]
    fn identical_trials_across_algorithms() {
        // The same (instance, init) pair must be used by every
        // algorithm: verify via deterministic repetition.
        let a = run_cell(
            Family::Sat,
            12,
            Algorithm::Awc(AwcConfig::resolvent()),
            &tiny(),
        );
        let b = run_cell(
            Family::Sat,
            12,
            Algorithm::Awc(AwcConfig::resolvent()),
            &tiny(),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn aggregate_reduction_matches_manual() {
        let protocol = tiny();
        let algo = Algorithm::Db(WeightMode::PerNogood);
        let metrics = run_cell(Family::Coloring, 12, algo, &protocol);
        let agg = run_cell_aggregate(Family::Coloring, 12, algo, &protocol);
        assert_eq!(agg, Aggregate::from_metrics(metrics.iter()));
    }

    #[test]
    fn worker_count_never_changes_results() {
        let protocol = tiny();
        let algo = Algorithm::Awc(AwcConfig::resolvent());
        let serial = run_cell_with_jobs(Family::Coloring, 15, algo, &protocol, 1);
        for workers in [2, 3, 4, 16] {
            let parallel = run_cell_with_jobs(Family::Coloring, 15, algo, &protocol, workers);
            assert_eq!(serial, parallel, "jobs={workers} diverged from serial");
        }
        // Oversized and zero worker counts are clamped, not an error.
        let clamped = run_cell_with_jobs(Family::Coloring, 15, algo, &protocol, 0);
        assert_eq!(serial, clamped);
    }

    #[test]
    fn jobs_override_roundtrips() {
        // Not a parallelism test — just the setter/getter contract the
        // repro binary's --jobs flag relies on.
        set_jobs(3);
        assert_eq!(jobs(), 3);
        set_jobs(0);
        assert!(jobs() >= 1);
    }

    #[test]
    fn abt_runs_on_benchmark_problems() {
        let metrics = run_cell(Family::Coloring, 10, Algorithm::Abt, &tiny());
        assert_eq!(metrics.len(), 4);
        assert!(metrics.iter().all(|m| m.termination.is_solved()));
    }
}
