//! Trial execution: one algorithm, one instance, one set of initial
//! values — and batched sweeps over the full protocol.

use discsp_awc::{AbtSolver, AwcConfig, AwcSolver};
use discsp_core::{Aggregate, Assignment, DistributedCsp, RunMetrics};
use discsp_cspsolve::random_assignment;
use discsp_dba::{DbaSolver, WeightMode};
use discsp_runtime::derive_seed;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::config::{Family, Protocol};

/// An algorithm under test, dispatchable uniformly by the harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Algorithm {
    /// AWC with the given learning configuration.
    Awc(AwcConfig),
    /// Distributed breakout with the given weight placement.
    Db(WeightMode),
    /// Asynchronous backtracking (extension baseline, not in the paper's
    /// tables).
    Abt,
}

impl Algorithm {
    /// The table label (`Rslv`, `3rdRslv`, `DB`, `AWC+5thRslv`, …).
    pub fn label(&self) -> String {
        match self {
            Algorithm::Awc(config) => config.label(),
            Algorithm::Db(WeightMode::PerNogood) => "DB".to_string(),
            Algorithm::Db(WeightMode::PerPair) => "DB/pair".to_string(),
            Algorithm::Abt => "ABT".to_string(),
        }
    }

    /// Runs one trial on the synchronous simulator.
    pub fn run(&self, problem: &DistributedCsp, init: &Assignment, cycle_limit: u64) -> RunMetrics {
        match self {
            Algorithm::Awc(config) => {
                AwcSolver::new(*config)
                    .cycle_limit(cycle_limit)
                    .solve_sync(problem, init)
                    .expect("benchmark problems are one variable per agent")
                    .outcome
                    .metrics
            }
            Algorithm::Db(mode) => {
                DbaSolver::new()
                    .weight_mode(*mode)
                    .cycle_limit(cycle_limit)
                    .solve_sync(problem, init)
                    .expect("benchmark problems are one variable per agent")
                    .outcome
                    .metrics
            }
            Algorithm::Abt => {
                AbtSolver::new()
                    .cycle_limit(cycle_limit)
                    .solve_sync(problem, init)
                    .expect("benchmark problems are one variable per agent")
                    .outcome
                    .metrics
            }
        }
    }
}

/// Runs the full protocol for one `(family, n, algorithm)` cell and
/// returns every trial's metrics.
///
/// Instance `i`, init `j` always uses the same derived seeds regardless
/// of the algorithm, so every algorithm sees identical instances and
/// identical initial values — the paper's paired-comparison design.
pub fn run_cell(
    family: Family,
    n: u32,
    algorithm: Algorithm,
    protocol: &Protocol,
) -> Vec<RunMetrics> {
    let mut all = Vec::with_capacity(protocol.trials());
    for instance_index in 0..protocol.instances {
        let problem = family.problem(n, instance_index, protocol.master_seed);
        let init_seed = derive_seed(
            protocol.master_seed ^ 0xA5A5_5A5A,
            family as u64 * 1000 + n as u64,
            instance_index as u64,
        );
        let mut rng = StdRng::seed_from_u64(init_seed);
        for _ in 0..protocol.inits {
            let init = random_assignment(&problem, &mut rng);
            all.push(algorithm.run(&problem, &init, protocol.cycle_limit));
        }
    }
    all
}

/// [`run_cell`] reduced to the paper's aggregate row.
pub fn run_cell_aggregate(
    family: Family,
    n: u32,
    algorithm: Algorithm,
    protocol: &Protocol,
) -> Aggregate {
    let metrics = run_cell(family, n, algorithm, protocol);
    Aggregate::from_metrics(metrics.iter())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Protocol {
        Protocol {
            instances: 2,
            inits: 2,
            cycle_limit: 2_000,
            master_seed: 7,
        }
    }

    #[test]
    fn labels() {
        assert_eq!(Algorithm::Awc(AwcConfig::resolvent()).label(), "Rslv");
        assert_eq!(
            Algorithm::Awc(AwcConfig::kth_resolvent(3)).label(),
            "3rdRslv"
        );
        assert_eq!(Algorithm::Db(WeightMode::PerNogood).label(), "DB");
        assert_eq!(Algorithm::Db(WeightMode::PerPair).label(), "DB/pair");
        assert_eq!(Algorithm::Abt.label(), "ABT");
    }

    #[test]
    fn run_cell_runs_full_protocol() {
        let metrics = run_cell(
            Family::Coloring,
            15,
            Algorithm::Awc(AwcConfig::resolvent()),
            &tiny(),
        );
        assert_eq!(metrics.len(), 4);
        assert!(metrics.iter().all(|m| m.termination.is_solved()));
    }

    #[test]
    fn identical_trials_across_algorithms() {
        // The same (instance, init) pair must be used by every
        // algorithm: verify via deterministic repetition.
        let a = run_cell(
            Family::Sat,
            12,
            Algorithm::Awc(AwcConfig::resolvent()),
            &tiny(),
        );
        let b = run_cell(
            Family::Sat,
            12,
            Algorithm::Awc(AwcConfig::resolvent()),
            &tiny(),
        );
        assert_eq!(a, b);
    }

    #[test]
    fn aggregate_reduction_matches_manual() {
        let protocol = tiny();
        let algo = Algorithm::Db(WeightMode::PerNogood);
        let metrics = run_cell(Family::Coloring, 12, algo, &protocol);
        let agg = run_cell_aggregate(Family::Coloring, 12, algo, &protocol);
        assert_eq!(agg, Aggregate::from_metrics(metrics.iter()));
    }

    #[test]
    fn abt_runs_on_benchmark_problems() {
        let metrics = run_cell(Family::Coloring, 10, Algorithm::Abt, &tiny());
        assert_eq!(metrics.len(), 4);
        assert!(metrics.iter().all(|m| m.termination.is_solved()));
    }
}
