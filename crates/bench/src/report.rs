//! Text and CSV rendering of regenerated tables and figures.

use std::fmt::Write as _;

use crate::efficiency::EfficiencyFigure;
use crate::tables::{ComparisonTable, RedundancyTable};

/// Renders a comparison table in the paper's layout.
pub fn render_comparison(table: &ComparisonTable) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== {} ==", table.title);
    let _ = writeln!(
        out,
        "{:>5}  {:<12} {:>10} {:>14} {:>6}  ({} trials/row)",
        "n",
        table.algo_column,
        "cycle",
        "maxcck",
        "%",
        table.rows.first().map(|r| r.agg.trials).unwrap_or(0)
    );
    let mut last_n = None;
    for row in &table.rows {
        if last_n.is_some() && last_n != Some(row.n) {
            let _ = writeln!(out, "{}", "-".repeat(56));
        }
        last_n = Some(row.n);
        let _ = writeln!(
            out,
            "{:>5}  {:<12} {:>10.1} {:>14.1} {:>5.0}%",
            row.n, row.label, row.agg.mean_cycles, row.agg.mean_maxcck, row.agg.percent_solved
        );
    }
    out
}

/// Renders a comparison table as CSV.
pub fn comparison_csv(table: &ComparisonTable) -> String {
    let mut out = String::from("n,algorithm,cycle,maxcck,percent_solved,trials\n");
    for row in &table.rows {
        let _ = writeln!(
            out,
            "{},{},{:.3},{:.3},{:.3},{}",
            row.n,
            row.label,
            row.agg.mean_cycles,
            row.agg.mean_maxcck,
            row.agg.percent_solved,
            row.agg.trials
        );
    }
    out
}

/// Renders Table 4 in the paper's layout.
pub fn render_redundancy(table: &RedundancyTable) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "== {} ==", table.title);
    let _ = writeln!(
        out,
        "{:>8} {:>5} {:>12} {:>12}",
        "problem", "n", "Rslv/rec", "Rslv/norec"
    );
    let mut last_family = "";
    for row in &table.rows {
        if !last_family.is_empty() && last_family != row.family {
            let _ = writeln!(out, "{}", "-".repeat(40));
        }
        last_family = row.family;
        let _ = writeln!(
            out,
            "{:>8} {:>5} {:>12.1} {:>12.1}",
            row.family, row.n, row.rec, row.norec
        );
    }
    out
}

/// Renders Table 4 as CSV.
pub fn redundancy_csv(table: &RedundancyTable) -> String {
    let mut out = String::from("family,n,rslv_rec,rslv_norec\n");
    for row in &table.rows {
        let _ = writeln!(
            out,
            "{},{},{:.3},{:.3}",
            row.family, row.n, row.rec, row.norec
        );
    }
    out
}

/// Renders an efficiency figure (Figure 2) as text: the underlying
/// means, the sampled series, and the crossover.
pub fn render_efficiency(fig: &EfficiencyFigure) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== figure2: estimated efficiency on {} n={} (1 nogood check = 1 time-unit) ==",
        fig.family, fig.n
    );
    let _ = writeln!(
        out,
        "{:<12} cycle {:>9.1}  maxcck {:>11.1}",
        fig.awc_label, fig.awc_cycles, fig.awc_maxcck
    );
    let _ = writeln!(
        out,
        "{:<12} cycle {:>9.1}  maxcck {:>11.1}",
        "DB", fig.db_cycles, fig.db_maxcck
    );
    let _ = writeln!(out, "{:>7} {:>14} {:>14}", "delay", fig.awc_label, "DB");
    for p in &fig.points {
        let marker = if p.awc < p.db { "  <- AWC wins" } else { "" };
        let _ = writeln!(out, "{:>7} {:>14.0} {:>14.0}{marker}", p.delay, p.awc, p.db);
    }
    match fig.crossover {
        Some(d) => {
            let _ = writeln!(
                out,
                "crossover: {} becomes more efficient past a delay of ≈ {d:.0} time-units",
                fig.awc_label
            );
        }
        None => {
            let _ = writeln!(out, "no crossover in this regime");
        }
    }
    out
}

/// Renders an efficiency figure as CSV.
pub fn efficiency_csv(fig: &EfficiencyFigure) -> String {
    let mut out = String::from("delay,awc_time_units,db_time_units\n");
    for p in &fig.points {
        let _ = writeln!(out, "{},{:.3},{:.3}", p.delay, p.awc, p.db);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::efficiency::EfficiencyPoint;
    use crate::tables::{RedundancyRow, Row};
    use discsp_core::Aggregate;

    fn sample_comparison() -> ComparisonTable {
        let agg = Aggregate {
            trials: 4,
            mean_cycles: 83.25,
            mean_maxcck: 58084.4,
            percent_solved: 100.0,
            mean_redundant: 0.0,
            mean_messages: 120.0,
        };
        ComparisonTable {
            id: "table1",
            title: "table1: test".into(),
            algo_column: "learn",
            rows: vec![
                Row {
                    n: 60,
                    label: "Rslv".into(),
                    agg,
                },
                Row {
                    n: 90,
                    label: "Rslv".into(),
                    agg,
                },
            ],
        }
    }

    #[test]
    fn comparison_rendering() {
        let text = render_comparison(&sample_comparison());
        assert!(text.contains("table1: test"));
        assert!(text.contains("83.2"));
        assert!(text.contains("100%"));
        // Separator between n groups.
        assert!(text.contains("----"));
        let csv = comparison_csv(&sample_comparison());
        assert!(csv.starts_with("n,algorithm"));
        assert!(csv.contains("60,Rslv,83.250"));
    }

    #[test]
    fn redundancy_rendering() {
        let table = RedundancyTable {
            id: "table4",
            title: "table4: test".into(),
            rows: vec![
                RedundancyRow {
                    family: "d3c",
                    n: 60,
                    rec: 69.1,
                    norec: 1612.3,
                },
                RedundancyRow {
                    family: "d3s",
                    n: 50,
                    rec: 195.3,
                    norec: 1105.3,
                },
            ],
        };
        let text = render_redundancy(&table);
        assert!(text.contains("Rslv/norec"));
        assert!(text.contains("1612.3"));
        let csv = redundancy_csv(&table);
        assert!(csv.contains("d3s,50,195.300,1105.300"));
    }

    #[test]
    fn efficiency_rendering() {
        let fig = EfficiencyFigure {
            family: "d3s1",
            n: 50,
            awc_label: "AWC+4thRslv".into(),
            awc_cycles: 130.0,
            awc_maxcck: 38000.0,
            db_cycles: 690.0,
            db_maxcck: 11000.0,
            points: vec![
                EfficiencyPoint {
                    delay: 0,
                    awc: 38000.0,
                    db: 11000.0,
                },
                EfficiencyPoint {
                    delay: 100,
                    awc: 51000.0,
                    db: 80000.0,
                },
            ],
            crossover: Some(48.2),
        };
        let text = render_efficiency(&fig);
        assert!(text.contains("crossover"));
        assert!(text.contains("AWC wins"));
        let csv = efficiency_csv(&fig);
        assert!(csv.contains("100,51000.000,80000.000"));
    }
}
