//! Figure 2: estimated efficiency vs communication delay.
//!
//! §4.3: "We assume that one nogood check amounts to one computational
//! time-unit and a communication delay between cycles amounts to the
//! designated number of time-unit" — the total cost of an algorithm is
//! then `cycle · delay + maxcck`. The AWC's line is flatter in `delay`
//! than DB's (fewer cycles, more checks), so the two lines cross at a
//! moderate delay; the paper reads ≈ 50 time-units off the figure for
//! d3s1 n = 50 and quotes ≈ 210 (d3s n = 150) and ≈ 370 (d3c n = 150)
//! in the text.

use discsp_awc::AwcConfig;
use discsp_dba::WeightMode;
use serde::{Deserialize, Serialize};

use crate::config::{Family, Protocol};
use crate::tables::best_bound;
use crate::trial::{run_cell_aggregate, Algorithm};

/// One sampled point of the Figure 2 series.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct EfficiencyPoint {
    /// Communication delay in time-units (one nogood check = one unit).
    pub delay: u64,
    /// AWC+kthRslv total time-units at this delay.
    pub awc: f64,
    /// DB total time-units at this delay.
    pub db: f64,
}

/// The regenerated Figure 2 for one `(family, n)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EfficiencyFigure {
    /// Which family was measured.
    pub family: &'static str,
    /// Problem size.
    pub n: u32,
    /// The AWC variant used (`4thRslv` for the paper's figure).
    pub awc_label: String,
    /// Mean cycles and maxcck underlying the lines.
    pub awc_cycles: f64,
    /// AWC mean maxcck.
    pub awc_maxcck: f64,
    /// DB mean cycles.
    pub db_cycles: f64,
    /// DB mean maxcck.
    pub db_maxcck: f64,
    /// Sampled points.
    pub points: Vec<EfficiencyPoint>,
    /// The delay at which AWC becomes cheaper than DB, if any.
    pub crossover: Option<f64>,
}

/// Regenerates the Figure 2 analysis for `(family, n)` at the given
/// protocol scale, sampling delays `0..=max_delay` at `step`.
pub fn efficiency_figure(
    family: Family,
    n: u32,
    scale: f64,
    max_delay: u64,
    step: u64,
) -> EfficiencyFigure {
    let protocol = Protocol::scaled(family, scale);
    let k = best_bound(family);
    let awc = run_cell_aggregate(
        family,
        n,
        Algorithm::Awc(AwcConfig::kth_resolvent(k)),
        &protocol,
    );
    let db = run_cell_aggregate(family, n, Algorithm::Db(WeightMode::PerNogood), &protocol);

    let points = (0..=max_delay)
        .step_by(step.max(1) as usize)
        .map(|delay| EfficiencyPoint {
            delay,
            awc: awc.mean_cycles * delay as f64 + awc.mean_maxcck,
            db: db.mean_cycles * delay as f64 + db.mean_maxcck,
        })
        .collect();

    // Lines cross where cycleₐ·d + maxcckₐ = cycle_b·d + maxcck_b.
    let crossover = {
        let cycle_gap = db.mean_cycles - awc.mean_cycles;
        let check_gap = awc.mean_maxcck - db.mean_maxcck;
        // AWC wins past the crossover only when it spends fewer cycles
        // and more checks (the regime the paper analyzes).
        if cycle_gap > 0.0 && check_gap > 0.0 {
            Some(check_gap / cycle_gap)
        } else {
            None
        }
    };

    EfficiencyFigure {
        family: family.key(),
        n,
        awc_label: format!("AWC+{}", AwcConfig::kth_resolvent(k).label()),
        awc_cycles: awc.mean_cycles,
        awc_maxcck: awc.mean_maxcck,
        db_cycles: db.mean_cycles,
        db_maxcck: db.mean_maxcck,
        points,
        crossover,
    }
}

/// The paper's Figure 2 instance: d3s1, n = 50, delays 0..500.
pub fn figure2(scale: f64) -> EfficiencyFigure {
    efficiency_figure(Family::OneSat, 50, scale, 500, 25)
}

/// The two extra crossover points quoted in the §4.3 text:
/// d3s n = 150 (≈ 210) and d3c n = 150 (≈ 370).
pub fn text_crossovers(scale: f64) -> Vec<EfficiencyFigure> {
    vec![
        efficiency_figure(Family::Sat, 150, scale, 500, 25),
        efficiency_figure(Family::Coloring, 150, scale, 500, 25),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crossover_formula() {
        // Synthetic: AWC 100 cycles / 10 000 checks, DB 300 cycles /
        // 2 000 checks → crossover at 8 000 / 200 = 40.
        let fig = EfficiencyFigure {
            family: "d3s1",
            n: 50,
            awc_label: "AWC+4thRslv".into(),
            awc_cycles: 100.0,
            awc_maxcck: 10_000.0,
            db_cycles: 300.0,
            db_maxcck: 2_000.0,
            points: vec![],
            crossover: Some(40.0),
        };
        let d = fig.crossover.unwrap();
        let awc_at = fig.awc_cycles * d + fig.awc_maxcck;
        let db_at = fig.db_cycles * d + fig.db_maxcck;
        assert!((awc_at - db_at).abs() < 1e-9);
    }

    #[test]
    fn small_scale_figure_runs() {
        let fig = efficiency_figure(Family::OneSat, 20, 0.02, 100, 50);
        assert_eq!(fig.points.len(), 3);
        assert_eq!(fig.points[0].delay, 0);
        // At zero delay the totals equal the maxcck means.
        assert!((fig.points[0].awc - fig.awc_maxcck).abs() < 1e-9);
        assert!((fig.points[0].db - fig.db_maxcck).abs() < 1e-9);
    }
}
