//! Extension experiment (§5 future work): multi-variable agents.
//!
//! "Our discussion was made on one specific class of distributed CSPs,
//! where each agent has one variable. Although all distributed CSPs can
//! be converted into this class in principle, such conversion is
//! sometimes unreasonable in real-life problems." This sweep quantifies
//! the other direction: the *same* benchmark instance is re-partitioned
//! over fewer physical agents (contiguous variable blocks); co-located
//! variables exchange messages for free inside their host, so remote
//! traffic and cycles both shrink as the partition coarsens — down to
//! one agent, where the run is effectively centralized.

use discsp_awc::{AwcConfig, MultiAwcSolver};
use discsp_core::{AgentId, Aggregate, DistributedCsp};
use discsp_cspsolve::random_assignment;
use discsp_runtime::derive_seed;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::config::{Family, Protocol};

/// Rebuilds `problem` with the same variables and nogoods but ownership
/// redistributed into `agents` contiguous blocks.
///
/// # Panics
///
/// Panics when `agents` is zero or exceeds the variable count.
pub fn repartition(problem: &DistributedCsp, agents: u32) -> DistributedCsp {
    let n = problem.num_vars() as u32;
    assert!(agents >= 1 && agents <= n, "1..=n agents required");
    let mut b = DistributedCsp::builder();
    for var in problem.vars() {
        let owner = (var.raw() * agents / n).min(agents - 1);
        b.variable_owned_by(problem.domain(var), AgentId::new(owner));
    }
    for ng in problem.nogoods() {
        b.nogood(ng.clone()).expect("source problem was valid");
    }
    b.build().expect("source problem was nonempty")
}

/// One point of the partition sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PartitionPoint {
    /// Number of physical agents the instance was distributed over.
    pub agents: u32,
    /// Aggregated AWC+Rslv measurements.
    pub agg: Aggregate,
}

/// The partition sweep for one `(family, n)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PartitionSweep {
    /// Family key.
    pub family: &'static str,
    /// Problem size (variables).
    pub n: u32,
    /// Points by decreasing agent count.
    pub points: Vec<PartitionPoint>,
}

/// Runs the sweep: the same instances and initial values, re-owned over
/// each agent count in `agent_counts`.
pub fn partition_sweep(family: Family, n: u32, scale: f64, agent_counts: &[u32]) -> PartitionSweep {
    let protocol = Protocol::scaled(family, scale);
    let solver = MultiAwcSolver::new(AwcConfig::resolvent()).cycle_limit(protocol.cycle_limit);
    let points = agent_counts
        .iter()
        .map(|&agents| {
            let mut metrics = Vec::with_capacity(protocol.trials());
            for instance_index in 0..protocol.instances {
                let flat = family.problem(n, instance_index, protocol.master_seed);
                let problem = repartition(&flat, agents);
                let init_seed = derive_seed(
                    protocol.master_seed ^ 0xA5A5_5A5A,
                    family as u64 * 1000 + n as u64,
                    instance_index as u64,
                );
                let mut rng = StdRng::seed_from_u64(init_seed);
                for _ in 0..protocol.inits {
                    let init = random_assignment(&problem, &mut rng);
                    metrics.push(
                        solver
                            .solve_sync(&problem, &init)
                            .expect("any partition fits the multi solver")
                            .outcome
                            .metrics,
                    );
                }
            }
            PartitionPoint {
                agents,
                agg: Aggregate::from_metrics(metrics.iter()),
            }
        })
        .collect();
    PartitionSweep {
        family: family.key(),
        n,
        points,
    }
}

/// Renders the sweep as text.
pub fn render_partition_sweep(sweep: &PartitionSweep) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== partition sweep on {} n={} (AWC+Rslv, contiguous blocks) ==",
        sweep.family, sweep.n
    );
    let _ = writeln!(
        out,
        "{:>7} {:>10} {:>14} {:>8}",
        "agents", "cycle", "remote msgs", "%"
    );
    for p in &sweep.points {
        let _ = writeln!(
            out,
            "{:>7} {:>10.1} {:>14.1} {:>7.0}%",
            p.agents, p.agg.mean_cycles, p.agg.mean_messages, p.agg.percent_solved
        );
    }
    out
}

/// Renders the sweep as CSV.
pub fn partition_sweep_csv(sweep: &PartitionSweep) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("agents,cycle,remote_messages,percent_solved\n");
    for p in &sweep.points {
        let _ = writeln!(
            out,
            "{},{:.3},{:.3},{:.3}",
            p.agents, p.agg.mean_cycles, p.agg.mean_messages, p.agg.percent_solved
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repartition_preserves_structure() {
        let flat = Family::Coloring.problem(12, 0, 7);
        let coarse = repartition(&flat, 3);
        assert_eq!(coarse.num_vars(), 12);
        assert_eq!(coarse.num_agents(), 3);
        assert_eq!(coarse.nogoods(), flat.nogoods());
        // Block ownership: first third to agent 0, etc.
        assert_eq!(
            coarse.vars_of_agent(AgentId::new(0)).len()
                + coarse.vars_of_agent(AgentId::new(1)).len()
                + coarse.vars_of_agent(AgentId::new(2)).len(),
            12
        );
    }

    #[test]
    #[should_panic(expected = "1..=n agents")]
    fn zero_agents_rejected() {
        let flat = Family::Coloring.problem(12, 0, 7);
        let _ = repartition(&flat, 0);
    }

    #[test]
    fn sweep_shows_traffic_decline() {
        let sweep = partition_sweep(Family::Coloring, 12, 0.02, &[12, 3, 1]);
        assert_eq!(sweep.points.len(), 3);
        // Fewer agents → no more remote messages than fully distributed.
        let flat = sweep.points[0].agg.mean_messages;
        let single = sweep.points[2].agg.mean_messages;
        assert!(single <= flat);
        assert_eq!(single, 0.0, "a single agent sends nothing remotely");
        let text = render_partition_sweep(&sweep);
        assert!(text.contains("partition sweep"));
        let csv = partition_sweep_csv(&sweep);
        assert_eq!(csv.lines().count(), 4);
    }
}
