//! Figure 1: the paper's worked example of resolvent-based learning.
//!
//! Agent 5 colors node `x5` (domain {red, yellow, green}) with neighbors
//! `x1 = red @5`, `x2 = yellow @3`, `x3 = green @4`, `x4 = red @2`, the
//! twelve arc nogoods, and a previously received nogood
//! `((x3, g)(x4, r)(x5, y))`. The derivation must select the arcs through
//! `x1` (priority tie-break), `x2` (size tie-break), and `x3`, yielding
//! the new nogood `((x1, r)(x2, y)(x3, g))`.

use discsp_awc::{resolvent, resolvent_selections, Deadend};
use discsp_core::{
    AgentId, AgentView, Domain, Nogood, NogoodStore, Priority, Rank, Value, ValueLabels, VariableId,
};

/// The reconstructed Figure 1 scenario.
#[derive(Debug)]
pub struct Figure1 {
    /// Agent 5's view of x1..x4.
    pub view: AgentView,
    /// Agent 5's nogood store (12 arc nogoods + 1 received nogood).
    pub store: NogoodStore,
    /// Violated higher nogoods per color (store indices).
    pub violated_per_value: Vec<Vec<usize>>,
}

/// Builds the scenario exactly as drawn in the paper.
pub fn figure1_scenario() -> Figure1 {
    let x = VariableId::new;
    let v = Value::new;
    let mut view = AgentView::new();
    view.update(x(1), AgentId::new(1), v(0), Priority::new(5)); // x1 = r @5
    view.update(x(2), AgentId::new(2), v(1), Priority::new(3)); // x2 = y @3
    view.update(x(3), AgentId::new(3), v(2), Priority::new(4)); // x3 = g @4
    view.update(x(4), AgentId::new(4), v(0), Priority::new(2)); // x4 = r @2

    let mut store = NogoodStore::new();
    for neighbor in 1..=4u32 {
        for color in 0..3u16 {
            store.insert(Nogood::of([(x(neighbor), v(color)), (x(5), v(color))]));
        }
    }
    store.insert(Nogood::of([(x(3), v(2)), (x(4), v(0)), (x(5), v(1))]));

    let own_rank = Rank::new(x(5), Priority::ZERO);
    let violated_per_value = Domain::new(3)
        .iter()
        .map(|value| {
            let lookup = view.lookup_with(x(5), value);
            (0..store.len())
                .filter(|&i| {
                    let ng = store.get(i).expect("index in range");
                    view.is_higher_nogood(ng, own_rank) && store.eval(ng, &lookup)
                })
                .collect()
        })
        .collect();

    Figure1 {
        view,
        store,
        violated_per_value,
    }
}

/// Renders the full derivation as the text the `repro figure1` command
/// prints, and returns the learned nogood.
pub fn render_figure1() -> (String, Nogood) {
    let scenario = figure1_scenario();
    let colors = ValueLabels::colors3();
    let deadend = Deadend {
        var: VariableId::new(5),
        domain: Domain::new(3),
        view: &scenario.view,
        store: &scenario.store,
        violated_per_value: &scenario.violated_per_value,
    };

    let mut out = String::new();
    out.push_str("Figure 1 — resolvent-based learning at agent 5 (x5, priority 0)\n");
    out.push_str("view: x1=red@5  x2=yellow@3  x3=green@4  x4=red@2\n\n");
    for (value, candidates) in deadend
        .domain
        .iter()
        .zip(scenario.violated_per_value.iter())
    {
        out.push_str(&format!(
            "value '{}' violates {} higher nogood(s):\n",
            colors.label(value),
            candidates.len()
        ));
        for &i in candidates {
            out.push_str(&format!(
                "    {}\n",
                scenario.store.get(i).expect("in range")
            ));
        }
    }
    out.push('\n');
    for (value, selected) in resolvent_selections(&deadend) {
        out.push_str(&format!(
            "selected for '{}': {}\n",
            colors.label(value),
            selected
        ));
    }
    let learned = resolvent(&deadend);
    out.push_str(&format!("\nnew nogood (union minus x5): {learned}\n"));
    out.push_str("paper derives: ¬((x1=0) (x2=1) (x3=2))  — (x1,r)(x2,y)(x3,g)\n");
    (out, learned)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivation_matches_paper() {
        let (text, learned) = render_figure1();
        assert_eq!(
            learned,
            Nogood::of([
                (VariableId::new(1), Value::new(0)),
                (VariableId::new(2), Value::new(1)),
                (VariableId::new(3), Value::new(2)),
            ])
        );
        assert!(text.contains("selected for 'red'"));
        assert!(text.contains("new nogood"));
    }

    #[test]
    fn scenario_counts_match_paper_text() {
        let scenario = figure1_scenario();
        // "The value 'r' will violate ((x1,r)(x5,r)) and ((x4,r)(x5,r))".
        assert_eq!(scenario.violated_per_value[0].len(), 2);
        // "the value 'y' will violate ((x2,y)(x5,y)) and ((x3,g)(x4,r)(x5,y))".
        assert_eq!(scenario.violated_per_value[1].len(), 2);
        // "the value 'g' will violate ((x3,g)(x5,g)) alone".
        assert_eq!(scenario.violated_per_value[2].len(), 1);
        assert_eq!(scenario.store.len(), 13);
    }
}
