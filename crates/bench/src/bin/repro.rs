//! `repro` — regenerate the paper's tables and figures.
//!
//! ```text
//! repro <experiment>... [--scale S] [--out DIR] [--jobs N]
//!
//! experiments: table1 … table10, figure1, figure2, crossovers,
//!              db-weights, abt, delay-sweep, partition-sweep, all
//! --scale S    fraction of the paper's 100-trial protocol to run
//!              (default 0.1; 1.0 = the full protocol)
//! --out DIR    also write CSV files into DIR
//! --jobs N     worker threads per sweep cell (default: all cores).
//!              Results are bit-identical for every N.
//! ```

use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use discsp_bench::delay::{delay_sweep, delay_sweep_csv, render_delay_sweep};
use discsp_bench::efficiency::{figure2, text_crossovers};
use discsp_bench::figure1::render_figure1;
use discsp_bench::partition::{partition_sweep, partition_sweep_csv, render_partition_sweep};
use discsp_bench::report::{
    comparison_csv, efficiency_csv, redundancy_csv, render_comparison, render_efficiency,
    render_redundancy,
};
use discsp_bench::tables;
use discsp_bench::Family;

const USAGE: &str = "usage: repro <experiment>... [--scale S] [--out DIR] [--jobs N]
experiments: table1..table10, figure1, figure2, crossovers, db-weights, abt,
             delay-sweep, partition-sweep, all
  --scale S   fraction of the paper's 100-trial protocol (default 0.1)
  --out DIR   also write CSV files into DIR
  --jobs N    worker threads per sweep cell (default: all cores);
              results are bit-identical for every N";

struct Options {
    experiments: Vec<String>,
    scale: f64,
    out: Option<PathBuf>,
    jobs: Option<usize>,
}

fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut experiments = Vec::new();
    let mut scale = 0.1;
    let mut out = None;
    let mut jobs = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                let value = args.get(i).ok_or("--scale needs a value")?;
                scale = value
                    .parse::<f64>()
                    .map_err(|_| format!("bad --scale value {value:?}"))?;
                if scale <= 0.0 {
                    return Err("--scale must be positive".into());
                }
            }
            "--jobs" => {
                i += 1;
                let value = args.get(i).ok_or("--jobs needs a value")?;
                let n = value
                    .parse::<usize>()
                    .map_err(|_| format!("bad --jobs value {value:?}"))?;
                if n == 0 {
                    return Err("--jobs must be at least 1".into());
                }
                jobs = Some(n);
            }
            "--out" => {
                i += 1;
                out = Some(PathBuf::from(args.get(i).ok_or("--out needs a directory")?));
            }
            "--help" | "-h" => return Err(String::new()),
            other if other.starts_with('-') => {
                return Err(format!("unknown flag {other:?}"));
            }
            other => experiments.push(other.to_string()),
        }
        i += 1;
    }
    if experiments.is_empty() {
        return Err("no experiment named".into());
    }
    Ok(Options {
        experiments,
        scale,
        out,
        jobs,
    })
}

fn write_csv(out: &Option<PathBuf>, name: &str, content: &str) {
    if let Some(dir) = out {
        std::fs::create_dir_all(dir).expect("create output directory");
        let path: &Path = dir.as_ref();
        let file = path.join(format!("{name}.csv"));
        let mut f = std::fs::File::create(&file).expect("create csv file");
        f.write_all(content.as_bytes()).expect("write csv file");
        println!("[wrote {}]", file.display());
    }
}

fn run_experiment(id: &str, scale: f64, out: &Option<PathBuf>) -> Result<(), String> {
    let start = std::time::Instant::now();
    match id {
        "table1" | "table2" | "table3" | "table5" | "table6" | "table7" | "table8" | "table9"
        | "table10" => {
            let table = match id {
                "table1" => tables::table1(scale),
                "table2" => tables::table2(scale),
                "table3" => tables::table3(scale),
                "table5" => tables::table5(scale),
                "table6" => tables::table6(scale),
                "table7" => tables::table7(scale),
                "table8" => tables::table8(scale),
                "table9" => tables::table9(scale),
                _ => tables::table10(scale),
            };
            print!("{}", render_comparison(&table));
            write_csv(out, id, &comparison_csv(&table));
        }
        "table4" => {
            let table = tables::table4(scale);
            print!("{}", render_redundancy(&table));
            write_csv(out, id, &redundancy_csv(&table));
        }
        "figure1" => {
            let (text, _) = render_figure1();
            print!("{text}");
        }
        "figure2" => {
            let fig = figure2(scale);
            print!("{}", render_efficiency(&fig));
            write_csv(out, id, &efficiency_csv(&fig));
        }
        "crossovers" => {
            for fig in text_crossovers(scale) {
                print!("{}", render_efficiency(&fig));
                write_csv(
                    out,
                    &format!("crossover-{}-{}", fig.family, fig.n),
                    &efficiency_csv(&fig),
                );
            }
        }
        "db-weights" => {
            for family in Family::all() {
                let table = tables::db_weight_ablation(family, scale);
                print!("{}", render_comparison(&table));
                write_csv(
                    out,
                    &format!("db-weights-{}", family.key()),
                    &comparison_csv(&table),
                );
            }
        }
        "delay-sweep" => {
            let sweep = delay_sweep(Family::Coloring, 60, scale, &[0, 1, 2, 4, 8, 16]);
            print!("{}", render_delay_sweep(&sweep));
            write_csv(out, "delay-sweep-d3c-60", &delay_sweep_csv(&sweep));
        }
        "partition-sweep" => {
            let sweep = partition_sweep(Family::Coloring, 60, scale, &[60, 30, 20, 12, 6, 3, 1]);
            print!("{}", render_partition_sweep(&sweep));
            write_csv(out, "partition-sweep-d3c-60", &partition_sweep_csv(&sweep));
        }
        "abt" => {
            let table = tables::abt_comparison(Family::Coloring, scale);
            print!("{}", render_comparison(&table));
            write_csv(out, "abt-d3c", &comparison_csv(&table));
        }
        other => return Err(format!("unknown experiment {other:?}")),
    }
    println!("[{id} done in {:.1?}]\n", start.elapsed());
    Ok(())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let options = match parse_args(&args) {
        Ok(options) => options,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}");
            }
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    };

    let mut experiments = Vec::new();
    for id in &options.experiments {
        if id == "all" {
            experiments.extend(
                [
                    "figure1",
                    "table1",
                    "table2",
                    "table3",
                    "table4",
                    "table5",
                    "table6",
                    "table7",
                    "table8",
                    "table9",
                    "table10",
                    "figure2",
                    "crossovers",
                ]
                .map(String::from),
            );
        } else {
            experiments.push(id.clone());
        }
    }

    if let Some(n) = options.jobs {
        discsp_bench::trial::set_jobs(n);
    }
    println!(
        "reproducing {} experiment(s) at scale {} of the paper's protocol ({} worker(s))\n",
        experiments.len(),
        options.scale,
        discsp_bench::trial::jobs()
    );
    for id in &experiments {
        if let Err(msg) = run_experiment(id, options.scale, &options.out) {
            eprintln!("error: {msg}");
            eprintln!("{USAGE}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
