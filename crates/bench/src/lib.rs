//! Reproduction harness for every table and figure of Hirayama & Yokoo,
//! *The Effect of Nogood Learning in Distributed Constraint
//! Satisfaction* (ICDCS 2000).
//!
//! * [`tables`] — Tables 1–10 (learning-method comparison, redundancy
//!   study, size-bounded learning, AWC vs DB), plus two extension
//!   studies (DB weight placement, ABT baseline);
//! * [`efficiency`] — Figure 2's time-unit model and crossover analysis;
//! * [`figure1`] — the worked resolvent derivation of Figure 1;
//! * [`delay`] — an extension sweep over message-delivery delays (§5);
//! * [`partition`] — an extension sweep over multi-variable-per-agent
//!   partitions (§5);
//! * [`report`] — text/CSV rendering;
//! * [`config`] / [`trial`] — the benchmark families, the 100-trial
//!   protocol (scalable via `--scale`), and the paired trial executor.
//!
//! Run everything with `cargo run -p discsp-bench --bin repro --release
//! -- all --scale 0.1`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod delay;
pub mod efficiency;
pub mod figure1;
pub mod partition;
pub mod report;
pub mod tables;
pub mod trial;

pub use config::{Family, Protocol};
pub use trial::Algorithm;
