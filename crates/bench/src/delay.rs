//! Extension experiment (§5 future work): performance under unreliable
//! timing — "we should analyze the performance of our algorithm on other
//! types of distributed systems."
//!
//! The synchronous simulator's delay model delivers each message after
//! `1 + U(0..=d)` cycles. Sweeping `d` shows how gracefully each
//! algorithm degrades as the system drifts away from lockstep: the AWC
//! tolerates stale views by design (it re-evaluates on every update),
//! while DB's wave synchronization stretches proportionally to the
//! slowest link.

use discsp_awc::{AwcConfig, AwcSolver};
use discsp_core::{Aggregate, DistributedCsp};
use discsp_cspsolve::random_assignment;
use discsp_dba::DbaSolver;
use discsp_runtime::derive_seed;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::config::{Family, Protocol};

/// One sampled point of the delay sweep.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DelayPoint {
    /// Maximum extra delivery delay in cycles (0 = the paper's setting).
    pub max_extra_delay: u64,
    /// AWC+Rslv aggregate at this delay.
    pub awc: Aggregate,
    /// DB aggregate at this delay.
    pub db: Aggregate,
}

/// The delay sweep for one `(family, n)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DelaySweep {
    /// Family key.
    pub family: &'static str,
    /// Problem size.
    pub n: u32,
    /// Sampled points by increasing delay.
    pub points: Vec<DelayPoint>,
}

fn run_delay_cell(
    family: Family,
    n: u32,
    protocol: &Protocol,
    max_extra: u64,
    solver: &dyn Fn(&DistributedCsp, &discsp_core::Assignment, u64) -> discsp_core::RunMetrics,
) -> Aggregate {
    let mut metrics = Vec::with_capacity(protocol.trials());
    for instance_index in 0..protocol.instances {
        let problem = family.problem(n, instance_index, protocol.master_seed);
        let init_seed = derive_seed(
            protocol.master_seed ^ 0xA5A5_5A5A,
            family as u64 * 1000 + n as u64,
            instance_index as u64,
        );
        let mut rng = StdRng::seed_from_u64(init_seed);
        for _ in 0..protocol.inits {
            let init = random_assignment(&problem, &mut rng);
            metrics.push(solver(&problem, &init, max_extra));
        }
    }
    Aggregate::from_metrics(metrics.iter())
}

/// Runs the sweep over `delays` for `(family, n)` at the given protocol
/// scale.
pub fn delay_sweep(family: Family, n: u32, scale: f64, delays: &[u64]) -> DelaySweep {
    let protocol = Protocol::scaled(family, scale);
    let points = delays
        .iter()
        .map(|&d| {
            let awc = run_delay_cell(family, n, &protocol, d, &|problem, init, max_extra| {
                AwcSolver::new(AwcConfig::resolvent())
                    .cycle_limit(protocol.cycle_limit)
                    .message_delay(max_extra, 17)
                    .solve_sync(problem, init)
                    .expect("fits")
                    .outcome
                    .metrics
            });
            let db = run_delay_cell(family, n, &protocol, d, &|problem, init, max_extra| {
                DbaSolver::new()
                    .cycle_limit(protocol.cycle_limit)
                    .message_delay(max_extra, 17)
                    .solve_sync(problem, init)
                    .expect("fits")
                    .outcome
                    .metrics
            });
            DelayPoint {
                max_extra_delay: d,
                awc,
                db,
            }
        })
        .collect();
    DelaySweep {
        family: family.key(),
        n,
        points,
    }
}

/// Renders the sweep as text.
pub fn render_delay_sweep(sweep: &DelaySweep) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(
        out,
        "== delay sweep on {} n={} (message delay 1 + U(0..=d) cycles) ==",
        sweep.family, sweep.n
    );
    let _ = writeln!(
        out,
        "{:>4} {:>12} {:>8} {:>12} {:>8}",
        "d", "AWC cycle", "AWC %", "DB cycle", "DB %"
    );
    for p in &sweep.points {
        let _ = writeln!(
            out,
            "{:>4} {:>12.1} {:>7.0}% {:>12.1} {:>7.0}%",
            p.max_extra_delay,
            p.awc.mean_cycles,
            p.awc.percent_solved,
            p.db.mean_cycles,
            p.db.percent_solved
        );
    }
    out
}

/// Renders the sweep as CSV.
pub fn delay_sweep_csv(sweep: &DelaySweep) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("max_extra_delay,awc_cycle,awc_percent,db_cycle,db_percent\n");
    for p in &sweep.points {
        let _ = writeln!(
            out,
            "{},{:.3},{:.3},{:.3},{:.3}",
            p.max_extra_delay,
            p.awc.mean_cycles,
            p.awc.percent_solved,
            p.db.mean_cycles,
            p.db.percent_solved
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_runs_and_degrades_monotonically_in_spirit() {
        let sweep = delay_sweep(Family::Coloring, 15, 0.05, &[0, 6]);
        assert_eq!(sweep.points.len(), 2);
        // Both algorithms must still solve at this tiny size.
        for p in &sweep.points {
            assert_eq!(p.awc.percent_solved, 100.0);
            assert_eq!(p.db.percent_solved, 100.0);
        }
        // Extra delay cannot make the run faster on average.
        assert!(sweep.points[1].awc.mean_cycles >= sweep.points[0].awc.mean_cycles);
    }

    #[test]
    fn rendering_contains_rows() {
        let sweep = delay_sweep(Family::Coloring, 12, 0.02, &[0]);
        let text = render_delay_sweep(&sweep);
        assert!(text.contains("delay sweep"));
        let csv = delay_sweep_csv(&sweep);
        assert!(csv.starts_with("max_extra_delay"));
        assert_eq!(csv.lines().count(), 2);
    }
}
