//! Experiment configuration: the paper's benchmark families and trial
//! protocol.

use discsp_core::DistributedCsp;
use discsp_probgen::{
    cnf_to_discsp, coloring_to_discsp, paper_coloring, paper_one_sat3, paper_sat3,
};
use discsp_runtime::derive_seed;
use serde::{Deserialize, Serialize};

/// The three benchmark families of §4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Family {
    /// Distributed 3-coloring, m = 2.7n (Tables 1, 5, 8).
    Coloring,
    /// Distributed 3SAT by 3SAT-GEN, m = 4.3n (Tables 2, 6, 9).
    Sat,
    /// Distributed 3SAT by 3ONESAT-GEN, m = 3.4n, unique solution
    /// (Tables 3, 7, 10 and Figure 2).
    OneSat,
}

impl Family {
    /// The paper's abbreviation (`d3c`, `d3s`, `d3s1`).
    pub fn key(self) -> &'static str {
        match self {
            Family::Coloring => "d3c",
            Family::Sat => "d3s",
            Family::OneSat => "d3s1",
        }
    }

    /// Long description.
    pub fn title(self) -> &'static str {
        match self {
            Family::Coloring => "distributed 3-coloring problems",
            Family::Sat => "distributed 3SAT problems by 3SAT-GEN",
            Family::OneSat => "distributed 3SAT problems by 3ONESAT-GEN",
        }
    }

    /// The problem sizes the paper reports for this family.
    pub fn paper_sizes(self) -> &'static [u32] {
        match self {
            Family::Coloring => &[60, 90, 120, 150],
            Family::Sat => &[50, 100, 150],
            Family::OneSat => &[50, 100, 200],
        }
    }

    /// Instances per size in the paper's protocol (10 / 25 / 4).
    pub fn paper_instances(self) -> usize {
        match self {
            Family::Coloring => 10,
            Family::Sat => 25,
            Family::OneSat => 4,
        }
    }

    /// Random initial-value sets per instance in the paper's protocol
    /// (10 / 4 / 25) — always 100 trials per size.
    pub fn paper_inits(self) -> usize {
        match self {
            Family::Coloring => 10,
            Family::Sat => 4,
            Family::OneSat => 25,
        }
    }

    /// Generates instance `index` of size `n` under `master_seed`.
    pub fn problem(self, n: u32, index: usize, master_seed: u64) -> DistributedCsp {
        let seed = derive_seed(master_seed, self as u64 * 1000 + n as u64, index as u64);
        match self {
            Family::Coloring => coloring_to_discsp(&paper_coloring(n, seed))
                .expect("generated coloring instances encode cleanly"),
            Family::Sat => cnf_to_discsp(&paper_sat3(n, seed).cnf)
                .expect("generated 3SAT instances encode cleanly"),
            Family::OneSat => cnf_to_discsp(&paper_one_sat3(n, seed).cnf)
                .expect("generated 3ONESAT instances encode cleanly"),
        }
    }

    /// All three families.
    pub fn all() -> [Family; 3] {
        [Family::Coloring, Family::Sat, Family::OneSat]
    }
}

/// The trial protocol: how many instances and initial-value sets to run,
/// and under which seed and cycle limit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Protocol {
    /// Number of generated instances per size.
    pub instances: usize,
    /// Number of random initial-value sets per instance.
    pub inits: usize,
    /// Synchronous cycle limit (the paper: 10 000).
    pub cycle_limit: u64,
    /// Master seed from which instance and init seeds derive.
    pub master_seed: u64,
}

impl Protocol {
    /// The paper's exact protocol for `family` (100 trials per size).
    pub fn paper(family: Family) -> Self {
        Protocol {
            instances: family.paper_instances(),
            inits: family.paper_inits(),
            cycle_limit: discsp_core::PAPER_CYCLE_LIMIT,
            master_seed: 20000419, // ICDCS 2000 ran April 10–13, 2000
        }
    }

    /// The paper's protocol scaled down by `scale` (each count rounded
    /// up, so `scale = 0` still runs one trial).
    pub fn scaled(family: Family, scale: f64) -> Self {
        let paper = Protocol::paper(family);
        let shrink =
            |count: usize| -> usize { ((count as f64 * scale).ceil() as usize).clamp(1, count) };
        Protocol {
            instances: shrink(paper.instances),
            inits: shrink(paper.inits),
            ..paper
        }
    }

    /// Total trials per table cell.
    pub fn trials(&self) -> usize {
        self.instances * self.inits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_protocols_give_100_trials() {
        for family in Family::all() {
            assert_eq!(Protocol::paper(family).trials(), 100, "{}", family.key());
        }
    }

    #[test]
    fn family_metadata() {
        assert_eq!(Family::Coloring.key(), "d3c");
        assert_eq!(Family::Sat.key(), "d3s");
        assert_eq!(Family::OneSat.key(), "d3s1");
        assert_eq!(Family::Coloring.paper_sizes(), &[60, 90, 120, 150]);
        assert_eq!(Family::OneSat.paper_sizes(), &[50, 100, 200]);
    }

    #[test]
    fn scaling_rounds_up_and_clamps() {
        let p = Protocol::scaled(Family::Coloring, 0.05);
        assert_eq!(p.instances, 1);
        assert_eq!(p.inits, 1);
        let p = Protocol::scaled(Family::Coloring, 0.31);
        assert_eq!(p.instances, 4);
        assert_eq!(p.inits, 4);
        let p = Protocol::scaled(Family::Coloring, 5.0);
        assert_eq!(p.instances, 10);
        assert_eq!(p.inits, 10);
    }

    #[test]
    fn problems_are_deterministic_per_index() {
        let a = Family::Sat.problem(20, 0, 1);
        let b = Family::Sat.problem(20, 0, 1);
        assert_eq!(a, b);
        let c = Family::Sat.problem(20, 1, 1);
        assert_ne!(a, c);
    }

    #[test]
    fn problem_sizes_match_paper_ratios() {
        let p = Family::Coloring.problem(30, 0, 1);
        assert_eq!(p.num_vars(), 30);
        assert_eq!(p.nogoods().len(), 81 * 3); // 2.7 × 30 arcs × 3 colors
        let p = Family::Sat.problem(20, 0, 1);
        assert_eq!(p.nogoods().len(), 86); // 4.3 × 20
        let p = Family::OneSat.problem(20, 0, 1);
        assert_eq!(p.nogoods().len(), 68); // 3.4 × 20
    }
}
