//! Regeneration of the paper's Tables 1–10.

use discsp_awc::AwcConfig;
use discsp_core::Aggregate;
use discsp_dba::WeightMode;
use serde::{Deserialize, Serialize};

use crate::config::{Family, Protocol};
use crate::trial::{run_cell, run_cell_aggregate, Algorithm};

/// One row of a comparison table: `(n, algorithm) → cycle, maxcck, %`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Row {
    /// Problem size.
    pub n: u32,
    /// Algorithm label as printed in the paper.
    pub label: String,
    /// Aggregated measurements.
    pub agg: Aggregate,
}

/// A regenerated comparison table (Tables 1–3, 5–10).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComparisonTable {
    /// Experiment id (`table1` … `table10`).
    pub id: &'static str,
    /// The paper's caption.
    pub title: String,
    /// Column header for the algorithm column (`learn` or `alg`).
    pub algo_column: &'static str,
    /// Rows in the paper's order (sizes outer, algorithms inner).
    pub rows: Vec<Row>,
}

/// One row of Table 4: mean redundant nogood generation, rec vs norec.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RedundancyRow {
    /// Family key (`d3c`, `d3s`, `d3s1`).
    pub family: &'static str,
    /// Problem size.
    pub n: u32,
    /// Mean redundant generations with recording (`Rslv/rec`).
    pub rec: f64,
    /// Mean redundant generations without recording (`Rslv/norec`).
    pub norec: f64,
}

/// The regenerated Table 4.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RedundancyTable {
    /// Experiment id (`table4`).
    pub id: &'static str,
    /// The paper's caption.
    pub title: String,
    /// Rows grouped by family, then size.
    pub rows: Vec<RedundancyRow>,
}

fn comparison(
    id: &'static str,
    family: Family,
    algo_column: &'static str,
    algorithms: &[Algorithm],
    scale: f64,
) -> ComparisonTable {
    let protocol = Protocol::scaled(family, scale);
    let mut rows = Vec::new();
    for &n in family.paper_sizes() {
        for algorithm in algorithms {
            rows.push(Row {
                n,
                label: algorithm.label(),
                agg: run_cell_aggregate(family, n, *algorithm, &protocol),
            });
        }
    }
    ComparisonTable {
        id,
        title: format!("{id}: {}", family.title()),
        algo_column,
        rows,
    }
}

/// The three learning methods compared in Tables 1–3.
pub fn learning_algorithms() -> Vec<Algorithm> {
    vec![
        Algorithm::Awc(AwcConfig::resolvent()),
        Algorithm::Awc(AwcConfig::mcs()),
        Algorithm::Awc(AwcConfig::no_learning()),
    ]
}

/// Table 1: learning methods on distributed 3-coloring.
pub fn table1(scale: f64) -> ComparisonTable {
    comparison(
        "table1",
        Family::Coloring,
        "learn",
        &learning_algorithms(),
        scale,
    )
}

/// Table 2: learning methods on distributed 3SAT (3SAT-GEN).
pub fn table2(scale: f64) -> ComparisonTable {
    comparison(
        "table2",
        Family::Sat,
        "learn",
        &learning_algorithms(),
        scale,
    )
}

/// Table 3: learning methods on distributed 3SAT (3ONESAT-GEN).
pub fn table3(scale: f64) -> ComparisonTable {
    comparison(
        "table3",
        Family::OneSat,
        "learn",
        &learning_algorithms(),
        scale,
    )
}

/// Table 4: total redundant nogood generation, Rslv/rec vs Rslv/norec,
/// across all three families.
pub fn table4(scale: f64) -> RedundancyTable {
    let mut rows = Vec::new();
    for family in Family::all() {
        let protocol = Protocol::scaled(family, scale);
        for &n in family.paper_sizes() {
            let rec = run_cell(family, n, Algorithm::Awc(AwcConfig::resolvent()), &protocol);
            let norec = run_cell(
                family,
                n,
                Algorithm::Awc(AwcConfig::resolvent_norec()),
                &protocol,
            );
            rows.push(RedundancyRow {
                family: family.key(),
                n,
                rec: Aggregate::from_metrics(rec.iter()).mean_redundant,
                norec: Aggregate::from_metrics(norec.iter()).mean_redundant,
            });
        }
    }
    RedundancyTable {
        id: "table4",
        title: "table4: total redundant nogood generation (Rslv/rec vs Rslv/norec)".to_string(),
        rows,
    }
}

/// The size bounds the paper evaluates per family (Tables 5–7).
pub fn size_bounds(family: Family) -> [usize; 2] {
    match family {
        Family::Coloring => [3, 4],
        Family::Sat => [4, 5],
        Family::OneSat => [4, 5],
    }
}

fn size_bounded(id: &'static str, family: Family, scale: f64) -> ComparisonTable {
    let [k1, k2] = size_bounds(family);
    let algorithms = vec![
        Algorithm::Awc(AwcConfig::resolvent()),
        Algorithm::Awc(AwcConfig::kth_resolvent(k1)),
        Algorithm::Awc(AwcConfig::kth_resolvent(k2)),
    ];
    comparison(id, family, "learn", &algorithms, scale)
}

/// Table 5: size-bounded resolvent learning on distributed 3-coloring.
pub fn table5(scale: f64) -> ComparisonTable {
    size_bounded("table5", Family::Coloring, scale)
}

/// Table 6: size-bounded resolvent learning on 3SAT (3SAT-GEN).
pub fn table6(scale: f64) -> ComparisonTable {
    size_bounded("table6", Family::Sat, scale)
}

/// Table 7: size-bounded resolvent learning on 3SAT (3ONESAT-GEN).
pub fn table7(scale: f64) -> ComparisonTable {
    size_bounded("table7", Family::OneSat, scale)
}

/// The most effective bound per family used in Tables 8–10 (§4.3):
/// 3rdRslv for d3c, 5thRslv for d3s, 4thRslv for d3s1.
pub fn best_bound(family: Family) -> usize {
    match family {
        Family::Coloring => 3,
        Family::Sat => 5,
        Family::OneSat => 4,
    }
}

fn versus_db(id: &'static str, family: Family, scale: f64) -> ComparisonTable {
    let k = best_bound(family);
    let algorithms = vec![
        Algorithm::Awc(AwcConfig::kth_resolvent(k)),
        Algorithm::Db(WeightMode::PerNogood),
    ];
    comparison(id, family, "alg", &algorithms, scale)
}

/// Table 8: AWC+3rdRslv vs DB on distributed 3-coloring.
pub fn table8(scale: f64) -> ComparisonTable {
    versus_db("table8", Family::Coloring, scale)
}

/// Table 9: AWC+5thRslv vs DB on 3SAT (3SAT-GEN).
pub fn table9(scale: f64) -> ComparisonTable {
    versus_db("table9", Family::Sat, scale)
}

/// Table 10: AWC+4thRslv vs DB on 3SAT (3ONESAT-GEN).
pub fn table10(scale: f64) -> ComparisonTable {
    versus_db("table10", Family::OneSat, scale)
}

/// Extension (not in the paper): DB weight-placement ablation, per-nogood
/// vs per-pair weights (footnote 7 claims per-nogood is better).
pub fn db_weight_ablation(family: Family, scale: f64) -> ComparisonTable {
    let algorithms = vec![
        Algorithm::Db(WeightMode::PerNogood),
        Algorithm::Db(WeightMode::PerPair),
    ];
    comparison("db-weights", family, "alg", &algorithms, scale)
}

/// Extension (not in the paper): ABT vs AWC+Rslv.
///
/// Runs at small sizes only: ABT learns whole agent views, so its nogood
/// stores (and per-cycle check costs) blow up super-linearly — exactly
/// the weakness of "free but ineffective" learning the paper's §1 uses to
/// motivate resolvent-based learning. Paper-scale sizes are intractable
/// for it.
pub fn abt_comparison(family: Family, scale: f64) -> ComparisonTable {
    let algorithms = [Algorithm::Awc(AwcConfig::resolvent()), Algorithm::Abt];
    let protocol = Protocol::scaled(family, scale);
    let mut rows = Vec::new();
    for &n in &[15u32, 20, 25, 30] {
        for algorithm in &algorithms {
            rows.push(Row {
                n,
                label: algorithm.label(),
                agg: run_cell_aggregate(family, n, *algorithm, &protocol),
            });
        }
    }
    ComparisonTable {
        id: "abt",
        title: format!("abt: AWC+Rslv vs ABT on {} (small sizes)", family.title()),
        algo_column: "alg",
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_bounds_match_paper() {
        assert_eq!(size_bounds(Family::Coloring), [3, 4]);
        assert_eq!(size_bounds(Family::Sat), [4, 5]);
        assert_eq!(size_bounds(Family::OneSat), [4, 5]);
        assert_eq!(best_bound(Family::Coloring), 3);
        assert_eq!(best_bound(Family::Sat), 5);
        assert_eq!(best_bound(Family::OneSat), 4);
    }

    #[test]
    fn learning_algorithm_labels_match_paper() {
        let labels: Vec<String> = learning_algorithms().iter().map(|a| a.label()).collect();
        assert_eq!(labels, ["Rslv", "Mcs", "No"]);
    }
}
