//! Scale benchmark: the M:N sharded executor on large planted coloring
//! instances.
//!
//! `run_async` spawns one OS thread per agent and tops out at a few
//! thousand agents; `run_sharded` multiplexes the population onto a
//! fixed worker pool. This bench drives the distributed breakout over
//! `paper_coloring` instances of 10^5–3×10^5 agents, started from a
//! lightly perturbed planted solution so the repair is real work with
//! a bounded, size-tracked wave count (AWC's repair cost from the same
//! init is wildly seed-dependent), and reports the two numbers the
//! executor exists for: **agents per second** (activations retired per
//! wall-clock second) and **bytes per agent** (resident-set growth
//! across build + solve, divided by the population).
//!
//! Writes `BENCH_scale.json` at the repo root. Set
//! `DISCSP_BENCH_SMOKE=1` for the CI smoke matrix (10^4 agents, fewer
//! worker counts) — the snapshot is then left untouched.

use std::io::Write as _;
use std::time::Instant;

use discsp_core::{Assignment, Termination, Value};
use discsp_dba::DbaSolver;
use discsp_probgen::{coloring_to_discsp, paper_coloring};
use discsp_runtime::{ShardConfig, SplitMix64, VirtualConfig};

/// One agent in 64 starts off the planted color, so ~1.5% of the
/// population (plus their neighborhoods) has genuine repair work while
/// the run still terminates in a handful of waves at any size.
const PERTURB_ONE_IN: u64 = 64;

fn smoke() -> bool {
    std::env::var_os("DISCSP_BENCH_SMOKE").is_some()
}

/// `(agents, workers)` cells. Full mode sweeps worker counts at 10^5
/// and runs a 3×10^5 headline row; smoke keeps CI under a minute.
///
/// Why the headline is not 10^6: the executor's per-activation cost is
/// nearly flat (≈70k activations/s at 10^5, ≈57k at 3×10^5 on the
/// reference box), but the *workload's* breakout wave count grows with
/// the population (20 waves at 10^5, 100 at 3×10^5) and every wave
/// activates all n agents — a 10^6 solve is hour-scale wall time on
/// one machine. Capacity at 10^6 is real (the arena holds a million
/// agents in ≈9.3 GB, bytes-per-agent flat); solve *time* at that size
/// is an open workload/locality problem, not an executor ceiling.
fn matrix() -> Vec<(u32, usize)> {
    if smoke() {
        vec![(10_000, 1), (10_000, 4)]
    } else {
        vec![(100_000, 1), (100_000, 4), (100_000, 8), (300_000, 8)]
    }
}

/// Resident set size in bytes, from `/proc/self/status` (`VmRSS`).
/// Returns 0 where procfs is unavailable; the JSON then reports
/// `bytes_per_agent: 0` rather than a guess.
fn rss_bytes() -> u64 {
    #[cfg(target_os = "linux")]
    {
        let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
            return 0;
        };
        for line in status.lines() {
            if let Some(rest) = line.strip_prefix("VmRSS:") {
                let kb: u64 = rest
                    .trim()
                    .trim_end_matches("kB")
                    .trim()
                    .parse()
                    .unwrap_or(0);
                return kb * 1024;
            }
        }
        0
    }
    #[cfg(not(target_os = "linux"))]
    {
        0
    }
}

struct Row {
    agents: u32,
    workers: usize,
    ticks: u64,
    activations: u64,
    solve_secs: f64,
    agents_per_sec: f64,
    activations_per_sec: f64,
    bytes_per_agent: f64,
}

fn run_cell(agents: u32, workers: usize) -> Row {
    let rss_before = rss_bytes();
    let instance = paper_coloring(agents, 11);
    let problem = coloring_to_discsp(&instance).expect("encode");

    // Perturb a deterministic 1-in-64 slice of the planted coloring.
    let mut rng = SplitMix64::new(agents as u64 ^ 0x5ca1_ab1e);
    let init = Assignment::total(instance.planted.iter().map(|&c| {
        if rng.next_below(PERTURB_ONE_IN) == 0 {
            Value::new((c + 1) % 3)
        } else {
            Value::new(c)
        }
    }));

    let config = ShardConfig::with_base(
        VirtualConfig {
            seed: 7,
            stop_on_first_solution: true,
            ..VirtualConfig::default()
        },
        workers,
    );
    let solver = DbaSolver::new();
    let start = Instant::now();
    let report = solver
        .solve_sharded(&problem, &init, &config)
        .expect("one variable per agent");
    let solve_secs = start.elapsed().as_secs_f64();
    let rss_after = rss_bytes();

    assert_eq!(
        report.outcome.metrics.termination,
        Termination::Solved,
        "{agents} agents / {workers} workers: scale instance must solve"
    );
    let solution = report.outcome.solution.expect("solved");
    assert!(problem.is_solution(&solution));

    let grown = rss_after.saturating_sub(rss_before);
    Row {
        agents,
        workers,
        ticks: report.ticks,
        activations: report.activations,
        solve_secs,
        agents_per_sec: f64::from(agents) / solve_secs,
        activations_per_sec: report.activations as f64 / solve_secs,
        bytes_per_agent: grown as f64 / f64::from(agents),
    }
}

fn write_snapshot(rows: &[Row]) {
    let mut json = String::from(
        "{\n  \"bench\": \"scale\",\n  \"executor\": \"run_sharded\",\n  \"results\": [\n",
    );
    for (i, r) in rows.iter().enumerate() {
        let sep = if i + 1 < rows.len() { "," } else { "" };
        json.push_str(&format!(
            "    {{\"agents\": {}, \"workers\": {}, \"ticks\": {}, \"activations\": {}, \
             \"solve_secs\": {:.3}, \"agents_per_sec\": {:.0}, \
             \"activations_per_sec\": {:.0}, \"bytes_per_agent\": {:.0}}}{sep}\n",
            r.agents,
            r.workers,
            r.ticks,
            r.activations,
            r.solve_secs,
            r.agents_per_sec,
            r.activations_per_sec,
            r.bytes_per_agent
        ));
    }
    json.push_str("  ]\n}\n");
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_scale.json");
    let mut f = std::fs::File::create(path).expect("create BENCH_scale.json");
    f.write_all(json.as_bytes()).expect("write BENCH_scale.json");
    println!("[wrote {path}]");
}

fn main() {
    let mut rows = Vec::new();
    for (agents, workers) in matrix() {
        let row = run_cell(agents, workers);
        println!(
            "scale/{}agents/{}workers: {:.3}s, {} ticks, {:.0} agents/s, \
             {:.0} activations/s, {:.0} bytes/agent",
            row.agents,
            row.workers,
            row.solve_secs,
            row.ticks,
            row.agents_per_sec,
            row.activations_per_sec,
            row.bytes_per_agent
        );
        rows.push(row);
    }
    if smoke() {
        println!("[smoke mode: snapshot not written]");
    } else {
        write_snapshot(&rows);
    }
    println!("benchmarks completed");
}
