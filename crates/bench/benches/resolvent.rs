//! Micro-benchmark: resolvent construction (§3.1).
//!
//! The paper claims resolvent selection adds *no* nogood checks beyond
//! deadend detection; this bench quantifies its wall-time, and ablates
//! the smallest-then-highest selection policy against a naive
//! first-violated pick (DESIGN.md ablation 1).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use discsp_awc::{resolvent, Deadend};
use discsp_core::{AgentId, AgentView, Domain, Nogood, NogoodStore, Priority, Value, VariableId};
use discsp_runtime::SplitMix64;

/// A synthetic deadend: `candidates` violated higher nogoods per value,
/// mixing binary and ternary nogoods over a populated view.
fn synthetic_deadend(candidates: usize, seed: u64) -> (AgentView, NogoodStore, Vec<Vec<usize>>) {
    let own = VariableId::new(0);
    let domain = Domain::new(3);
    let mut rng = SplitMix64::new(seed);
    let mut view = AgentView::new();
    for v in 1..40u32 {
        view.update(
            VariableId::new(v),
            AgentId::new(v),
            Value::new(rng.next_below(3) as u16),
            Priority::new(rng.next_below(10)),
        );
    }
    let mut store = NogoodStore::new();
    let mut violated = vec![Vec::new(); domain.size()];
    for value in domain.iter() {
        while violated[value.index()].len() < candidates {
            let a = 1 + rng.next_below(39) as u32;
            let b = 1 + rng.next_below(39) as u32;
            if a == b {
                continue;
            }
            let va = view.value_of(VariableId::new(a)).unwrap();
            let elems = if rng.next_below(2) == 0 {
                vec![(VariableId::new(a), va), (own, value)]
            } else {
                let vb = view.value_of(VariableId::new(b)).unwrap();
                vec![
                    (VariableId::new(a), va),
                    (VariableId::new(b), vb),
                    (own, value),
                ]
            };
            let ng = Nogood::of(elems);
            if store.insert(ng) {
                violated[value.index()].push(store.len() - 1);
            }
        }
    }
    (view, store, violated)
}

/// The naive ablation: take the first violated nogood per value.
fn first_found(deadend: &Deadend<'_>) -> Nogood {
    let mut union = Vec::new();
    for value in deadend.domain.iter() {
        let &first = deadend.violated_per_value[value.index()]
            .first()
            .expect("deadend");
        union.extend(
            deadend
                .store
                .get(first)
                .unwrap()
                .elems()
                .iter()
                .copied()
                .filter(|e| e.var != deadend.var),
        );
    }
    Nogood::new(union)
}

fn bench_resolvent(c: &mut Criterion) {
    let mut group = c.benchmark_group("resolvent_construction");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for &candidates in &[2usize, 8, 32] {
        let (view, store, violated) = synthetic_deadend(candidates, 7);
        let deadend = Deadend {
            var: VariableId::new(0),
            domain: Domain::new(3),
            view: &view,
            store: &store,
            violated_per_value: &violated,
        };
        group.bench_with_input(
            BenchmarkId::new("smallest_highest", candidates),
            &deadend,
            |bench, deadend| bench.iter(|| resolvent(std::hint::black_box(deadend))),
        );
        group.bench_with_input(
            BenchmarkId::new("first_found", candidates),
            &deadend,
            |bench, deadend| bench.iter(|| first_found(std::hint::black_box(deadend))),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_resolvent);
criterion_main!(benches);
