//! Micro-benchmark: nogood evaluation cost — the `maxcck` unit.
//!
//! Measures single-nogood evaluation, full-store violation scans, the
//! agent hot-path violation *query* (one view variable changed per
//! query) across four implementations, and forgetting churn. Check
//! *counts* are representation-independent; wall-time is what this
//! measures.
//!
//! Query variants, per store size:
//!
//! * `naive` — re-evaluate every stored nogood's literals (the
//!   pre-index implementation);
//! * `rescan` — bench-local replica of the pre-watched incremental
//!   scheme: re-evaluate all nogoods mentioning the changed variable,
//!   answer from O(1) counters;
//! * `indexed` — the production [`IncrementalEval`] (per-variable
//!   rescan below its small-store limit, two-watched-literals above),
//!   reading the violated *set*;
//! * `indexed_count` — same, answering the violation *count* from the
//!   O(1) counters (the apples-to-apples rival of `rescan`).
//!
//! Stored nogoods have 2–8 literals over distinct variables — learned
//! resolvents are long, and the length distribution decides which
//! scheme wins (watching 2 of k literals buys nothing at k = 2). Sizes
//! reach 10^6 nogoods; the variable count scales with the size so the
//! per-variable mention lists keep a realistic degree.
//!
//! Running this bench writes a snapshot of every measurement plus the
//! headline speedups to `BENCH_store.json` at the repo root. Set
//! `DISCSP_BENCH_SMOKE=1` to run a reduced matrix (≤10^4, fewer
//! samples) without touching the snapshot — the CI smoke step.

use std::io::Write as _;
use std::time::Duration;

use criterion::{criterion_group, BenchmarkId, Criterion, Measurement};
use discsp_core::{IncrementalEval, Nogood, NogoodIdx, NogoodRef, NogoodStore, Value, VariableId};
use discsp_runtime::SplitMix64;

/// (store size, variable count) pairs for the query group.
const QUERY_SIZES: [(usize, u32); 5] = [
    (100, 64),
    (1_000, 64),
    (10_000, 64),
    (100_000, 512),
    (1_000_000, 2048),
];

fn smoke() -> bool {
    std::env::var_os("DISCSP_BENCH_SMOKE").is_some()
}

fn query_sizes() -> &'static [(usize, u32)] {
    if smoke() {
        &QUERY_SIZES[..3]
    } else {
        &QUERY_SIZES
    }
}

/// A random nogood of 2–8 literals over distinct variables, values in
/// `0..3`. The length spread mirrors learned resolvents, which span
/// much of the sender's view rather than single constraint arcs.
fn random_nogood(rng: &mut SplitMix64, vars: u32) -> Nogood {
    let len = 2 + rng.next_below(7) as usize;
    let mut elems: Vec<(VariableId, Value)> = Vec::with_capacity(len);
    while elems.len() < len {
        let var = VariableId::new(rng.next_below(vars as u64) as u32);
        if elems.iter().all(|&(existing, _)| existing != var) {
            elems.push((var, Value::new(rng.next_below(3) as u16)));
        }
    }
    Nogood::of(elems)
}

fn random_store(nogoods: usize, vars: u32, seed: u64, learned: bool) -> NogoodStore {
    let mut rng = SplitMix64::new(seed);
    let mut store = NogoodStore::new();
    while store.len() < nogoods {
        let ng = random_nogood(&mut rng, vars);
        if learned {
            store.insert_learned(ng);
        } else {
            store.insert(ng);
        }
    }
    store
}

fn bench_single_eval(c: &mut Criterion) {
    let ternary = Nogood::of([
        (VariableId::new(0), Value::new(0)),
        (VariableId::new(1), Value::new(1)),
        (VariableId::new(2), Value::new(2)),
    ]);
    c.bench_function("nogood_eval_ternary_violated", |bench| {
        bench.iter(|| {
            std::hint::black_box(&ternary).is_violated_by(|var| Some(Value::new(var.raw() as u16)))
        })
    });
    c.bench_function("nogood_eval_ternary_first_mismatch", |bench| {
        bench.iter(|| std::hint::black_box(&ternary).is_violated_by(|_| Some(Value::new(9))))
    });
}

fn bench_store_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_violation_scan");
    group.sample_size(20);
    group.measurement_time(Duration::from_secs(2));
    group.warm_up_time(Duration::from_millis(500));
    for &size in &[16usize, 128, 1024] {
        let store = random_store(size, 64, 42, false);
        group.bench_with_input(BenchmarkId::from_parameter(size), &store, |bench, store| {
            bench.iter(|| {
                store
                    .violated(|var| Some(Value::new((var.raw() % 3) as u16)))
                    .len()
            })
        });
    }
    group.finish();
}

/// Bench-local replica of the pre-watched incremental scheme: a view
/// change re-evaluates the full literal list of every nogood mentioning
/// the changed variable, and violation counts come from O(1) counters.
/// It is even slightly flattered here — the changed variable is handed
/// to it directly, so it pays no shadow diff.
struct RescanEval {
    own: VariableId,
    foreign_sat: Vec<bool>,
    own_prohibited: Vec<Option<Value>>,
    sat_unconditional: u64,
    sat_by_value: Vec<u64>,
}

impl RescanEval {
    fn new(own: VariableId, store: &NogoodStore, values: &[Value], domain: usize) -> Self {
        let mut this = RescanEval {
            own,
            foreign_sat: vec![false; store.slot_count()],
            own_prohibited: vec![None; store.slot_count()],
            sat_unconditional: 0,
            sat_by_value: vec![0; domain],
        };
        for (idx, ng) in store.entries() {
            this.resync(idx, ng, values);
        }
        this
    }

    fn resync(&mut self, idx: NogoodIdx, ng: NogoodRef<'_>, values: &[Value]) {
        if self.foreign_sat[idx] {
            match self.own_prohibited[idx] {
                None => self.sat_unconditional -= 1,
                Some(pv) => self.sat_by_value[pv.index()] -= 1,
            }
        }
        let sat = ng
            .elems()
            .iter()
            .filter(|e| e.var != self.own)
            .all(|e| values[e.var.index()] == e.value);
        self.foreign_sat[idx] = sat;
        self.own_prohibited[idx] = ng.value_of(self.own);
        if sat {
            match self.own_prohibited[idx] {
                None => self.sat_unconditional += 1,
                Some(pv) => self.sat_by_value[pv.index()] += 1,
            }
        }
    }

    fn on_change(&mut self, store: &NogoodStore, changed: VariableId, values: &[Value]) {
        for (idx, ng) in store.for_variable(changed) {
            self.resync(idx, ng, values);
        }
    }

    fn violation_count(&self, own_value: Value) -> u64 {
        self.sat_unconditional + self.sat_by_value[own_value.index()]
    }
}

/// The agent hot path: the view changes in exactly one variable, then
/// the violated set (or count) under the own value is recomputed.
fn bench_incremental_query(c: &mut Criterion) {
    let own = VariableId::new(0);
    let mut group = c.benchmark_group("violation_query_one_var_changed");
    group.warm_up_time(Duration::from_millis(500));
    for &(size, vars) in query_sizes() {
        if size >= 100_000 {
            group.sample_size(10);
            group.measurement_time(Duration::from_secs(2));
        } else {
            group.sample_size(20);
            group.measurement_time(Duration::from_secs(2));
        }
        let store = random_store(size, vars, 42, false);
        let changed = VariableId::new(1);

        let mut values: Vec<Value> = (0..vars).map(|v| Value::new((v % 3) as u16)).collect();
        let mut flip = 0u16;
        group.bench_with_input(BenchmarkId::new("naive", size), &store, |bench, store| {
            bench.iter(|| {
                flip ^= 1;
                values[changed.index()] = Value::new(flip);
                let values = &values;
                store
                    .violated(|var| {
                        if var == own {
                            Some(Value::new(0))
                        } else {
                            Some(values[var.index()])
                        }
                    })
                    .len()
            })
        });
        // The naive variant charges checks into the shared store meter;
        // clear them so the next variant starts from a clean slate.
        store.take_checks();

        let mut rescan_values: Vec<Value> =
            (0..vars).map(|v| Value::new((v % 3) as u16)).collect();
        let mut rescan = RescanEval::new(own, &store, &rescan_values, 3);
        let mut flip = 0u16;
        group.bench_with_input(BenchmarkId::new("rescan", size), &store, |bench, store| {
            bench.iter(|| {
                flip ^= 1;
                rescan_values[changed.index()] = Value::new(flip);
                rescan.on_change(store, changed, &rescan_values);
                rescan.violation_count(Value::new(0))
            })
        });

        let mut view: Vec<(VariableId, Value)> = (1..vars)
            .map(|v| (VariableId::new(v), Value::new((v % 3) as u16)))
            .collect();
        let mut eval = IncrementalEval::new(own);
        eval.refresh(&store, view.iter().copied());
        let mut flip = 0u16;
        group.bench_with_input(BenchmarkId::new("indexed", size), &store, |bench, store| {
            bench.iter(|| {
                flip ^= 1;
                view[0].1 = Value::new(flip);
                eval.refresh(store, view.iter().copied());
                eval.violated_with(Value::new(0)).len()
            })
        });

        let mut flip = 0u16;
        group.bench_with_input(
            BenchmarkId::new("indexed_count", size),
            &store,
            |bench, store| {
                bench.iter(|| {
                    flip ^= 1;
                    view[0].1 = Value::new(flip);
                    eval.refresh(store, view.iter().copied());
                    eval.violation_count_with(Value::new(0))
                })
            },
        );
    }
    group.finish();
}

/// Forgetting churn at steady state: each iteration records one fresh
/// learned nogood, runs a forget pass (evicting exactly one cold entry),
/// and resyncs the incremental cache — insert, eviction sort, watcher
/// teardown/reinstall, all included.
fn bench_forgetting(c: &mut Criterion) {
    const VARS: u32 = 256;
    let own = VariableId::new(0);
    let mut group = c.benchmark_group("forgetting_churn");
    group.sample_size(10);
    group.measurement_time(Duration::from_secs(1));
    group.warm_up_time(Duration::from_millis(300));
    let budgets: &[usize] = if smoke() { &[1_000] } else { &[1_000, 10_000] };
    for &budget in budgets {
        let mut store = random_store(budget, VARS, 7, true);
        let view: Vec<(VariableId, Value)> = (1..VARS)
            .map(|v| (VariableId::new(v), Value::new((v % 3) as u16)))
            .collect();
        let mut eval = IncrementalEval::new(own);
        eval.refresh(&store, view.iter().copied());
        let mut rng = SplitMix64::new(9);
        group.bench_function(BenchmarkId::new("insert_forget_resync", budget), |bench| {
            bench.iter(|| {
                while !store.insert_learned(random_nogood(&mut rng, VARS)) {}
                store.forget(budget);
                eval.refresh(&store, view.iter().copied());
                eval.violation_count_with(Value::new(0))
            })
        });
    }
    group.finish();
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn mean_of<'m>(ms: &'m [Measurement], name: &str) -> Option<&'m Measurement> {
    ms.iter().find(|m| m.name == name)
}

fn push_speedups(json: &mut String, ms: &[Measurement], key: &str, num: &str, den: &str) {
    json.push_str(&format!("  \"{key}\": {{\n"));
    let sizes = query_sizes();
    for (i, &(size, _)) in sizes.iter().enumerate() {
        let slow = mean_of(ms, &format!("violation_query_one_var_changed/{num}/{size}"));
        let fast = mean_of(ms, &format!("violation_query_one_var_changed/{den}/{size}"));
        let speedup = match (slow, fast) {
            (Some(n), Some(x)) if x.mean_ns > 0.0 => n.mean_ns / x.mean_ns,
            _ => f64::NAN,
        };
        let sep = if i + 1 < sizes.len() { "," } else { "" };
        json.push_str(&format!("    \"{size}\": {speedup:.2}{sep}\n"));
        println!("speedup {den} vs {num} at {size:>7} nogoods: {speedup:.2}x");
    }
    json.push_str("  }");
}

/// Serializes every measurement (ns/iter) and the headline speedups to
/// `BENCH_store.json` at the repository root.
fn write_snapshot(c: &Criterion) {
    let ms = c.measurements();
    let mut json = String::from(
        "{\n  \"bench\": \"nogood_check\",\n  \"unit\": \"ns_per_iter\",\n  \"results\": [\n",
    );
    for (i, m) in ms.iter().enumerate() {
        let sep = if i + 1 < ms.len() { "," } else { "" };
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"mean_ns\": {:.1}, \"min_ns\": {:.1}, \"samples\": {}}}{sep}\n",
            json_escape(&m.name),
            m.mean_ns,
            m.min_ns,
            m.samples
        ));
    }
    json.push_str("  ],\n");
    push_speedups(&mut json, ms, "speedup_indexed_over_naive", "naive", "indexed");
    json.push_str(",\n");
    push_speedups(
        &mut json,
        ms,
        "speedup_watched_over_rescan",
        "rescan",
        "indexed_count",
    );
    json.push_str("\n}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_store.json");
    let mut f = std::fs::File::create(path).expect("create BENCH_store.json");
    f.write_all(json.as_bytes()).expect("write BENCH_store.json");
    println!("[wrote {path}]");
}

criterion_group!(
    benches,
    bench_single_eval,
    bench_store_scan,
    bench_incremental_query,
    bench_forgetting
);

fn main() {
    let mut criterion = Criterion::default();
    benches(&mut criterion);
    criterion.final_summary();
    if smoke() {
        println!("[smoke mode: snapshot not written]");
    } else {
        write_snapshot(&criterion);
    }
}
