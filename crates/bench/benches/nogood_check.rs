//! Micro-benchmark: nogood evaluation cost — the `maxcck` unit.
//!
//! Measures single-nogood evaluation and full-store violation scans
//! against store size; the ablation DESIGN.md calls out (check *counts*
//! are representation-independent; wall-time is what this measures).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use discsp_core::{Nogood, NogoodStore, Value, VariableId};
use discsp_runtime::SplitMix64;

fn random_store(nogoods: usize, vars: u32, seed: u64) -> NogoodStore {
    let mut rng = SplitMix64::new(seed);
    let mut store = NogoodStore::new();
    while store.len() < nogoods {
        let a = rng.next_below(vars as u64) as u32;
        let b = rng.next_below(vars as u64) as u32;
        if a == b {
            continue;
        }
        let va = Value::new(rng.next_below(3) as u16);
        let vb = Value::new(rng.next_below(3) as u16);
        store.insert(Nogood::of([
            (VariableId::new(a), va),
            (VariableId::new(b), vb),
        ]));
    }
    store
}

fn bench_single_eval(c: &mut Criterion) {
    let ternary = Nogood::of([
        (VariableId::new(0), Value::new(0)),
        (VariableId::new(1), Value::new(1)),
        (VariableId::new(2), Value::new(2)),
    ]);
    c.bench_function("nogood_eval_ternary_violated", |bench| {
        bench.iter(|| {
            std::hint::black_box(&ternary).is_violated_by(|var| Some(Value::new(var.raw() as u16)))
        })
    });
    c.bench_function("nogood_eval_ternary_first_mismatch", |bench| {
        bench.iter(|| std::hint::black_box(&ternary).is_violated_by(|_| Some(Value::new(9))))
    });
}

fn bench_store_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_violation_scan");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for &size in &[16usize, 128, 1024] {
        let store = random_store(size, 64, 42);
        group.bench_with_input(BenchmarkId::from_parameter(size), &store, |bench, store| {
            bench.iter(|| {
                store
                    .violated(|var| Some(Value::new((var.raw() % 3) as u16)))
                    .len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_single_eval, bench_store_scan);
criterion_main!(benches);
