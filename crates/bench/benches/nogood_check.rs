//! Micro-benchmark: nogood evaluation cost — the `maxcck` unit.
//!
//! Measures single-nogood evaluation, full-store violation scans, and
//! the indexed-vs-naive violation *query* (one view variable changed per
//! query — the agent hot path) against store size. Check *counts* are
//! representation-independent; wall-time is what this measures.
//!
//! Running this bench writes a snapshot of every measurement, plus the
//! indexed-over-naive speedups, to `BENCH_store.json` at the repo root.

use std::io::Write as _;

use criterion::{criterion_group, BenchmarkId, Criterion, Measurement};
use discsp_core::{IncrementalEval, Nogood, NogoodStore, Value, VariableId};
use discsp_runtime::SplitMix64;

fn random_store(nogoods: usize, vars: u32, seed: u64) -> NogoodStore {
    let mut rng = SplitMix64::new(seed);
    let mut store = NogoodStore::new();
    while store.len() < nogoods {
        let a = rng.next_below(vars as u64) as u32;
        let b = rng.next_below(vars as u64) as u32;
        if a == b {
            continue;
        }
        let va = Value::new(rng.next_below(3) as u16);
        let vb = Value::new(rng.next_below(3) as u16);
        store.insert(Nogood::of([
            (VariableId::new(a), va),
            (VariableId::new(b), vb),
        ]));
    }
    store
}

fn bench_single_eval(c: &mut Criterion) {
    let ternary = Nogood::of([
        (VariableId::new(0), Value::new(0)),
        (VariableId::new(1), Value::new(1)),
        (VariableId::new(2), Value::new(2)),
    ]);
    c.bench_function("nogood_eval_ternary_violated", |bench| {
        bench.iter(|| {
            std::hint::black_box(&ternary).is_violated_by(|var| Some(Value::new(var.raw() as u16)))
        })
    });
    c.bench_function("nogood_eval_ternary_first_mismatch", |bench| {
        bench.iter(|| std::hint::black_box(&ternary).is_violated_by(|_| Some(Value::new(9))))
    });
}

fn bench_store_scan(c: &mut Criterion) {
    let mut group = c.benchmark_group("store_violation_scan");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for &size in &[16usize, 128, 1024] {
        let store = random_store(size, 64, 42);
        group.bench_with_input(BenchmarkId::from_parameter(size), &store, |bench, store| {
            bench.iter(|| {
                store
                    .violated(|var| Some(Value::new((var.raw() % 3) as u16)))
                    .len()
            })
        });
    }
    group.finish();
}

/// The agent hot path: the view changes in exactly one variable, then
/// the violated set under the own value is recomputed.
///
/// `naive` re-evaluates every stored nogood's literals (the pre-index
/// implementation); `indexed` refreshes the [`IncrementalEval`] cache
/// (re-evaluating only the ~deg(var) nogoods mentioning the changed
/// variable) and reads the cached statuses; `indexed_count` answers the
/// violation *count* from the O(1) counters.
fn bench_incremental_query(c: &mut Criterion) {
    const VARS: u32 = 64;
    let own = VariableId::new(0);
    let mut group = c.benchmark_group("violation_query_one_var_changed");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for &size in &[100usize, 1_000, 10_000] {
        let store = random_store(size, VARS, 42);
        let changed = VariableId::new(1);

        let mut values: Vec<Value> = (0..VARS).map(|v| Value::new((v % 3) as u16)).collect();
        let mut flip = 0u16;
        group.bench_with_input(BenchmarkId::new("naive", size), &store, |bench, store| {
            bench.iter(|| {
                flip ^= 1;
                values[changed.index()] = Value::new(flip);
                let values = &values;
                store
                    .violated(|var| {
                        if var == own {
                            Some(Value::new(0))
                        } else {
                            Some(values[var.index()])
                        }
                    })
                    .len()
            })
        });
        // The naive variant charges checks into the shared store meter;
        // clear them so the next variant starts from a clean slate.
        store.take_checks();

        let mut view: Vec<(VariableId, Value)> = (1..VARS)
            .map(|v| (VariableId::new(v), Value::new((v % 3) as u16)))
            .collect();
        let mut eval = IncrementalEval::new(own);
        eval.refresh(&store, view.iter().copied());
        let mut flip = 0u16;
        group.bench_with_input(BenchmarkId::new("indexed", size), &store, |bench, store| {
            bench.iter(|| {
                flip ^= 1;
                view[0].1 = Value::new(flip);
                eval.refresh(store, view.iter().copied());
                eval.violated_with(Value::new(0)).len()
            })
        });

        let mut flip = 0u16;
        group.bench_with_input(
            BenchmarkId::new("indexed_count", size),
            &store,
            |bench, store| {
                bench.iter(|| {
                    flip ^= 1;
                    view[0].1 = Value::new(flip);
                    eval.refresh(store, view.iter().copied());
                    eval.violation_count_with(Value::new(0))
                })
            },
        );
    }
    group.finish();
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn mean_of<'m>(ms: &'m [Measurement], name: &str) -> Option<&'m Measurement> {
    ms.iter().find(|m| m.name == name)
}

/// Serializes every measurement (ns/iter) and the indexed-over-naive
/// speedups to `BENCH_store.json` at the repository root.
fn write_snapshot(c: &Criterion) {
    let ms = c.measurements();
    let mut json = String::from("{\n  \"bench\": \"nogood_check\",\n  \"unit\": \"ns_per_iter\",\n  \"results\": [\n");
    for (i, m) in ms.iter().enumerate() {
        let sep = if i + 1 < ms.len() { "," } else { "" };
        json.push_str(&format!(
            "    {{\"name\": \"{}\", \"mean_ns\": {:.1}, \"min_ns\": {:.1}, \"samples\": {}}}{sep}\n",
            json_escape(&m.name),
            m.mean_ns,
            m.min_ns,
            m.samples
        ));
    }
    json.push_str("  ],\n  \"speedup_indexed_over_naive\": {\n");
    let sizes = [100usize, 1_000, 10_000];
    for (i, size) in sizes.iter().enumerate() {
        let naive = mean_of(ms, &format!("violation_query_one_var_changed/naive/{size}"));
        let indexed = mean_of(ms, &format!("violation_query_one_var_changed/indexed/{size}"));
        let speedup = match (naive, indexed) {
            (Some(n), Some(x)) if x.mean_ns > 0.0 => n.mean_ns / x.mean_ns,
            _ => f64::NAN,
        };
        let sep = if i + 1 < sizes.len() { "," } else { "" };
        json.push_str(&format!("    \"{size}\": {speedup:.2}{sep}\n"));
        println!("speedup indexed vs naive at {size:>6} nogoods: {speedup:.2}x");
    }
    json.push_str("  }\n}\n");

    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_store.json");
    let mut f = std::fs::File::create(path).expect("create BENCH_store.json");
    f.write_all(json.as_bytes()).expect("write BENCH_store.json");
    println!("[wrote {path}]");
}

criterion_group!(
    benches,
    bench_single_eval,
    bench_store_scan,
    bench_incremental_query
);

fn main() {
    let mut criterion = Criterion::default();
    benches(&mut criterion);
    criterion.final_summary();
    write_snapshot(&criterion);
}
