//! Micro-benchmark: mcs-based learning's subset search (§4.1).
//!
//! The paper: "finding such nogoods by the mcs-based learning is
//! computationally expensive." This bench measures the larger-to-smaller
//! subset probe against seed size and store size (DESIGN.md ablation 3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use discsp_awc::{minimize_conflict_set, resolvent, Deadend};
use discsp_core::{AgentId, AgentView, Domain, Nogood, NogoodStore, Priority, Value, VariableId};

/// A deadend whose resolvent has exactly `seed_size` elements: one
/// unary-style prohibition per domain value routed through disjoint
/// foreign variables, padded with extra recorded nogoods.
fn deadend_fixture(seed_size: usize, padding: usize) -> (AgentView, NogoodStore, Vec<Vec<usize>>) {
    assert!(seed_size >= 2);
    let own = VariableId::new(0);
    let mut view = AgentView::new();
    for v in 1..=(seed_size as u32 + padding as u32) {
        view.update(
            VariableId::new(v),
            AgentId::new(v),
            Value::new(0),
            Priority::new(v as u64),
        );
    }
    let mut store = NogoodStore::new();
    let mut violated = vec![Vec::new(); 2];
    // Value 0 prohibited by a nogood over the first half of the seed
    // variables; value 1 by the second half.
    let half = seed_size / 2;
    let first: Vec<_> = (1..=half as u32)
        .map(|v| (VariableId::new(v), Value::new(0)))
        .chain([(own, Value::new(0))])
        .collect();
    store.insert(Nogood::of(first));
    violated[0].push(store.len() - 1);
    let second: Vec<_> = ((half as u32 + 1)..=(seed_size as u32))
        .map(|v| (VariableId::new(v), Value::new(0)))
        .chain([(own, Value::new(1))])
        .collect();
    store.insert(Nogood::of(second));
    violated[1].push(store.len() - 1);
    // Padding: nogoods that are never violated but must be scanned.
    for p in 0..padding as u32 {
        let v = seed_size as u32 + 1 + p;
        store.insert(Nogood::of([
            (VariableId::new(v), Value::new(1)),
            (own, Value::new(0)),
        ]));
    }
    (view, store, violated)
}

fn bench_mcs(c: &mut Criterion) {
    let mut group = c.benchmark_group("mcs_subset_search");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for &seed_size in &[2usize, 4, 6, 8] {
        let (view, store, violated) = deadend_fixture(seed_size, 128);
        let deadend = Deadend {
            var: VariableId::new(0),
            domain: Domain::new(2),
            view: &view,
            store: &store,
            violated_per_value: &violated,
        };
        let seed = resolvent(&deadend);
        assert_eq!(seed.len(), seed_size);
        group.bench_with_input(
            BenchmarkId::from_parameter(seed_size),
            &(deadend, seed),
            |bench, (deadend, seed)| {
                bench.iter(|| minimize_conflict_set(std::hint::black_box(deadend), seed.clone()))
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_mcs);
criterion_main!(benches);
