//! End-to-end benchmark: full synchronous solves of one fixed instance
//! per family, per algorithm — the wall-clock companion to the paper's
//! cycle/maxcck tables.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use discsp_awc::{AbtSolver, AwcConfig, AwcSolver};
use discsp_core::{Assignment, DistributedCsp, Value};
use discsp_dba::{DbaSolver, WeightMode};
use discsp_probgen::{cnf_to_discsp, coloring_to_discsp, paper_coloring, paper_one_sat3};

fn fixtures() -> Vec<(&'static str, DistributedCsp, Assignment)> {
    let coloring = coloring_to_discsp(&paper_coloring(30, 11)).unwrap();
    let coloring_init = Assignment::total(vec![Value::new(0); 30]);
    let onesat = cnf_to_discsp(&paper_one_sat3(30, 11).cnf).unwrap();
    let onesat_init = Assignment::total(vec![Value::FALSE; 30]);
    vec![
        ("d3c30", coloring, coloring_init),
        ("d3s1_30", onesat, onesat_init),
    ]
}

fn bench_awc(c: &mut Criterion) {
    let mut group = c.benchmark_group("solve_awc");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for (name, problem, init) in fixtures() {
        for config in [
            AwcConfig::resolvent(),
            AwcConfig::mcs(),
            AwcConfig::kth_resolvent(3),
            AwcConfig::no_learning(),
        ] {
            group.bench_with_input(
                BenchmarkId::new(config.label(), name),
                &(&problem, &init),
                |bench, (problem, init)| {
                    let solver = AwcSolver::new(config);
                    bench.iter(|| {
                        solver
                            .solve_sync(problem, init)
                            .expect("one variable per agent")
                            .outcome
                            .metrics
                            .cycles
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_baselines(c: &mut Criterion) {
    let mut group = c.benchmark_group("solve_baselines");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));
    for (name, problem, init) in fixtures() {
        group.bench_with_input(
            BenchmarkId::new("DB", name),
            &(&problem, &init),
            |bench, (problem, init)| {
                let solver = DbaSolver::new().weight_mode(WeightMode::PerNogood);
                bench.iter(|| {
                    solver
                        .solve_sync(problem, init)
                        .expect("one variable per agent")
                        .outcome
                        .metrics
                        .cycles
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("ABT", name),
            &(&problem, &init),
            |bench, (problem, init)| {
                let solver = AbtSolver::new();
                bench.iter(|| {
                    solver
                        .solve_sync(problem, init)
                        .expect("one variable per agent")
                        .outcome
                        .metrics
                        .cycles
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_awc, bench_baselines);
criterion_main!(benches);
