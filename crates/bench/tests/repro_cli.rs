//! Integration tests of the `repro` command-line surface.

use std::process::Command;

fn repro() -> Command {
    Command::new(env!("CARGO_BIN_EXE_repro"))
}

#[test]
fn no_arguments_prints_usage_and_fails() {
    let output = repro().output().expect("spawn repro");
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("usage: repro"));
}

#[test]
fn unknown_experiment_is_rejected() {
    let output = repro().arg("table99").output().expect("spawn repro");
    assert!(!output.status.success());
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("unknown experiment"));
}

#[test]
fn bad_scale_is_rejected() {
    for bad in ["-1", "0", "zebra"] {
        let output = repro()
            .args(["figure1", "--scale", bad])
            .output()
            .expect("spawn repro");
        assert!(!output.status.success(), "--scale {bad} accepted");
    }
}

#[test]
fn help_flag_prints_usage() {
    let output = repro().arg("--help").output().expect("spawn repro");
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert!(stderr.contains("--scale"));
    assert!(stderr.contains("table1..table10"));
}

#[test]
fn figure1_regenerates_the_paper_derivation() {
    let output = repro().arg("figure1").output().expect("spawn repro");
    assert!(output.status.success());
    let stdout = String::from_utf8_lossy(&output.stdout);
    assert!(stdout.contains("new nogood (union minus x5): ¬((x1=0) (x2=1) (x3=2))"));
    assert!(stdout.contains("[figure1 done"));
}

#[test]
fn csv_output_lands_in_the_requested_directory() {
    let dir = std::env::temp_dir().join(format!("repro-cli-test-{}", std::process::id()));
    let output = repro()
        .args([
            "table8",
            "--scale",
            "0.01",
            "--out",
            dir.to_str().expect("utf-8 temp path"),
        ])
        .output()
        .expect("spawn repro");
    assert!(
        output.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&output.stderr)
    );
    let csv = std::fs::read_to_string(dir.join("table8.csv")).expect("csv written");
    assert!(csv.starts_with("n,algorithm,cycle,maxcck"));
    // 4 sizes × 2 algorithms + header.
    assert_eq!(csv.lines().count(), 9);
    std::fs::remove_dir_all(&dir).expect("cleanup");
}
