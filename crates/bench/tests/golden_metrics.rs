//! Golden metric-fidelity tests.
//!
//! The paper's reproduced outputs are check counts (`maxcck`), cycle
//! counts, and message counts. Performance work on the nogood store is
//! only admissible if it leaves these *bit-identical*: the store may
//! evaluate incrementally in wall-clock terms, but it must charge
//! exactly the checks the paper's naive scanning algorithm would
//! perform. The values below were recorded from the naive full-scan
//! implementation (pre-index, pre-cache) and pin that contract down —
//! if any of these tests fails after a store or hot-loop change, the
//! change altered the reproduction, not just its speed.

use discsp_awc::AwcConfig;
use discsp_bench::trial::run_cell;
use discsp_bench::{Algorithm, Family, Protocol};
use discsp_core::RunMetrics;
use discsp_dba::WeightMode;

/// One trial's pinned metrics:
/// (cycles, maxcck, total_checks, ok, nogood, other, nogoods_generated).
type Golden = (u64, u64, u64, u64, u64, u64, u64);

fn protocol() -> Protocol {
    Protocol {
        instances: 2,
        inits: 2,
        cycle_limit: 2_000,
        master_seed: 7,
    }
}

fn observed(family: Family, n: u32, algorithm: Algorithm) -> Vec<Golden> {
    run_cell(family, n, algorithm, &protocol())
        .iter()
        .map(|m: &RunMetrics| {
            (
                m.cycles,
                m.maxcck,
                m.total_checks,
                m.ok_messages,
                m.nogood_messages,
                m.other_messages,
                m.nogoods_generated,
            )
        })
        .collect()
}

fn check(family: Family, n: u32, algorithm: Algorithm, golden: &[Golden]) {
    let observed = observed(family, n, algorithm);
    assert_eq!(
        observed, golden,
        "metric drift on {family:?} n={n} {}: the reproduction changed, \
         not just its wall-clock speed",
        algorithm.label()
    );
}

#[test]
fn coloring_awc_resolvent() {
    check(
        Family::Coloring,
        15,
        Algorithm::Awc(AwcConfig::resolvent()),
        &[
            (10, 949, 3649, 437, 47, 50, 16),
            (7, 660, 2518, 287, 48, 52, 16),
            (7, 566, 2351, 286, 33, 20, 11),
            (9, 1011, 4259, 493, 72, 54, 24),
        ],
    );
}

#[test]
fn coloring_awc_mcs() {
    check(
        Family::Coloring,
        15,
        Algorithm::Awc(AwcConfig::mcs()),
        &[
            (10, 2218, 6469, 437, 47, 50, 16),
            (7, 1749, 5263, 287, 48, 52, 16),
            (7, 1259, 4160, 286, 33, 20, 11),
            (9, 2682, 8789, 491, 70, 52, 24),
        ],
    );
}

#[test]
fn coloring_db() {
    check(
        Family::Coloring,
        15,
        Algorithm::Db(WeightMode::PerNogood),
        &[
            (29, 1008, 10332, 1230, 0, 1148, 0),
            (17, 576, 5904, 738, 0, 656, 0),
            (13, 432, 4428, 574, 0, 492, 0),
            (33, 1152, 11808, 1394, 0, 1312, 0),
        ],
    );
}

#[test]
fn sat_awc_resolvent() {
    check(
        Family::Sat,
        12,
        Algorithm::Awc(AwcConfig::resolvent()),
        &[
            (25, 1523, 3748, 698, 113, 4, 32),
            (11, 566, 1593, 429, 62, 4, 17),
            (24, 1485, 3519, 685, 113, 6, 33),
            (4, 105, 318, 174, 8, 2, 2),
        ],
    );
}

#[test]
fn sat_awc_mcs() {
    check(
        Family::Sat,
        12,
        Algorithm::Awc(AwcConfig::mcs()),
        &[
            (25, 4927, 8383, 698, 107, 4, 32),
            (11, 1824, 3933, 417, 52, 4, 16),
            (24, 5549, 8861, 685, 109, 6, 33),
            (4, 211, 534, 174, 8, 2, 2),
        ],
    );
}

/// A forget limit the stores never reach must be a perfect no-op: the
/// forgetting pass runs every review but evicts nothing, so every
/// metric stays bit-identical to the paper's configuration. This pins
/// the "forgetting removes work, it must not charge checks" contract
/// from the other side — the mere presence of the pass is unmetered.
#[test]
fn huge_forget_budget_is_metric_identical_to_no_forgetting() {
    for (family, n) in [(Family::Coloring, 15), (Family::Sat, 12)] {
        let plain = observed(family, n, Algorithm::Awc(AwcConfig::resolvent()));
        let forgetful = observed(
            family,
            n,
            Algorithm::Awc(AwcConfig::resolvent().with_forget_limit(1_000_000)),
        );
        assert_eq!(
            plain, forgetful,
            "an unreachable forget limit altered {family:?} metrics — \
             the forgetting pass is not free"
        );
    }
}

/// With an aggressive forget limit the search itself legitimately
/// changes (evicted nogoods may be re-derived), so no tuple is pinned —
/// but the runs must stay deterministic and complete.
#[test]
fn aggressive_forgetting_is_deterministic() {
    let algorithm = Algorithm::Awc(AwcConfig::resolvent().with_forget_limit(4));
    let first = observed(Family::Coloring, 15, algorithm);
    let replay = observed(Family::Coloring, 15, algorithm);
    assert_eq!(
        first, replay,
        "forgetting-enabled replay diverged — eviction is not deterministic"
    );
    assert_eq!(first.len(), 4, "the 2x2 protocol cell must yield 4 runs");
}

#[test]
fn sat_db() {
    check(
        Family::Sat,
        12,
        Algorithm::Db(WeightMode::PerNogood),
        &[
            (13, 252, 1872, 854, 0, 732, 0),
            (5, 84, 624, 366, 0, 244, 0),
            (9, 136, 1248, 600, 0, 480, 0),
            (17, 272, 2496, 1080, 0, 960, 0),
        ],
    );
}
