//! One-off generator for `tests/explore_repros/` fixtures: reproduces
//! the first campaign's non-quiescence finding (AWC on K4 under the
//! `hostile` policy) at a small nudge budget and minimizes it.

use discsp_core::Termination;
use discsp_explore::{ddmin, Algo, Repro, Subject};
use discsp_runtime::{FaultSchedule, LinkPolicy, VirtualConfig};

fn burns_budget(subject: &Subject, base: &VirtualConfig, schedule: &FaultSchedule) -> bool {
    let config = VirtualConfig {
        schedule: Some(schedule.clone()),
        link: LinkPolicy::perfect(),
        ..base.clone()
    };
    match subject.run(&config) {
        Ok(r) => {
            r.outcome.metrics.termination == Termination::CutOff && r.nudges >= base.max_nudges
        }
        Err(_) => false,
    }
}

fn main() {
    let subject = Subject::k4(Algo::Awc).unwrap();
    for seed in 0..40u64 {
        let base = VirtualConfig {
            seed,
            link: LinkPolicy::lossy(150_000)
                .with_duplication(100_000)
                .with_delay(0, 3)
                .with_reordering(2),
            schedule: None,
            max_ticks: 5_000,
            max_nudges: 5,
            stop_on_first_solution: false,
            record_trace: true,
        };
        let report = subject.run(&base).unwrap();
        let exhausted = report.outcome.metrics.termination == Termination::CutOff
            && report.nudges >= base.max_nudges;
        println!(
            "seed {seed}: term {:?} nudges {} ticks {} log {}",
            report.outcome.metrics.termination,
            report.nudges,
            report.ticks,
            report.fault_log.len()
        );
        if !exhausted {
            continue;
        }
        if !burns_budget(&subject, &base, &report.fault_log) {
            println!("  scripted replay does not carry the signature");
            continue;
        }
        let out = ddmin(report.fault_log.events(), |s| {
            burns_budget(&subject, &base, s)
        });
        println!(
            "  minimized {} -> {} events in {} tests",
            report.fault_log.len(),
            out.schedule.len(),
            out.tests
        );
        let repro = Repro {
            algo: Algo::Awc,
            instance: discsp_explore::Instance::K4,
            run_seed: seed,
            max_ticks: base.max_ticks,
            max_nudges: base.max_nudges,
            violation: "non-quiescence".to_string(),
            schedule: out.schedule,
        };
        println!("---\n{}---", repro.to_text());
        break;
    }
}
