//! Simulation-campaign explorer for the DisCSP runtimes.
//!
//! The deterministic virtual executor makes every fault-injected run a
//! pure function of `(seed, policy)` — which turns bug hunting into
//! search. This crate industrializes that search, FoundationDB-style:
//!
//! * [`campaign`] — sweeps trials across a deterministic link-policy
//!   grid and planted instances, judging every run against four
//!   independent oracle families (trace audit with the
//!   message-conservation identity split out, answer checks against a
//!   centralized [`Backtracker`](discsp_cspsolve::Backtracker) ground
//!   truth, quiescence/deadlock detection, and bit-exact replay);
//! * [`minimize`] — delta-debugs a failing run's recorded fault log
//!   (every lottery run emits one, replayable as a script) down to a
//!   1-minimal fault set that still shows the same violation class;
//! * [`repro`] — serializes minimized failures as line-oriented
//!   fixture files that rebuild and replay bit-identically from a few
//!   integers, for `tests/explore_repros/`;
//! * [`subject`] — the runnable unit: an algorithm (AWC without
//!   learning, complete AWC with resolvent recording, or distributed
//!   breakout) deployed on an instance with known ground truth;
//! * the `discsp-explore` binary — `discsp-explore --algo awc-rslv
//!   --trials 1000` from CI or the command line.
//!
//! Everything reasons in virtual ticks and derives from explicit
//! seeds: a campaign is as reproducible as a single run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod campaign;
pub mod minimize;
pub mod repro;
pub mod subject;

pub use campaign::{
    minimize_finding, policy_grid, reproduces, run_campaign, violations, CampaignConfig,
    CampaignReport, Finding, Violation, MINIMIZE_EVENT_CAP,
};
pub use minimize::{ddmin, MinimizeOutcome};
pub use repro::Repro;
pub use subject::{Algo, GroundTruth, Instance, Subject};

#[doc(hidden)]
pub use subject::Sabotage;
