//! Runnable campaign subjects: an algorithm deployed on an instance with
//! a centrally-established ground truth.
//!
//! A [`Subject`] bundles everything a trial (or a minimization replay)
//! needs to run and to be judged: the algorithm under test, the problem,
//! a fixed initial assignment, what the [`Backtracker`] proved about the
//! instance, and whether the deployed configuration is complete (so a
//! cutoff is a bug rather than bad luck).

use discsp_awc::{AwcConfig, AwcSolver};
use discsp_core::{Assignment, DistributedCsp, Domain, Value};
use discsp_cspsolve::{Backtracker, SolveResult};
use discsp_dba::DbaSolver;
use discsp_probgen::{coloring_to_discsp, paper_coloring};
use discsp_runtime::{ShardConfig, TraceEvent, VirtualConfig, VirtualReport};

/// Node budget for the centralized ground-truth solver. The campaign
/// instances are small (tens of variables), so the backtracker settles
/// them well within this; hitting the limit yields
/// [`GroundTruth::Unknown`] and the answer oracles stand down.
const TRUTH_NODE_LIMIT: u64 = 5_000_000;

/// Which algorithm a subject deploys on the virtual executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Algo {
    /// AWC without nogood learning (incomplete under the paper's §2.3
    /// discussion: forgetting breaks the completeness argument).
    Awc,
    /// AWC with unrestricted resolvent recording — the complete
    /// configuration; must terminate on every finite instance.
    AwcRslv,
    /// Distributed breakout — local search, incomplete by design.
    Dba,
}

impl Algo {
    /// Every algorithm, in campaign order.
    pub fn all() -> [Algo; 3] {
        [Algo::Awc, Algo::AwcRslv, Algo::Dba]
    }

    /// The CLI / fixture-file label.
    pub fn label(self) -> &'static str {
        match self {
            Algo::Awc => "awc",
            Algo::AwcRslv => "awc-rslv",
            Algo::Dba => "dba",
        }
    }

    /// Parses a CLI / fixture-file label.
    pub fn parse(s: &str) -> Option<Algo> {
        Algo::all().into_iter().find(|a| a.label() == s)
    }
}

impl std::fmt::Display for Algo {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// What the centralized solver proved about a subject's instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GroundTruth {
    /// A solution exists (the backtracker found one).
    Solvable,
    /// No solution exists (the backtracker exhausted the space).
    Insoluble,
    /// The node budget ran out first; answer oracles stand down.
    Unknown,
}

/// Which instance family a subject runs, so a fixture file can rebuild
/// it from a couple of integers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instance {
    /// `paper_coloring(agents, seed)` — the paper's planted-solvable
    /// 3-coloring distribution.
    Coloring {
        /// Number of agents (= variables).
        agents: u32,
        /// Generator seed.
        seed: u64,
    },
    /// K₄ with 3 colors — the canonical insoluble instance, exercising
    /// the insolubility oracle.
    K4,
}

/// Deliberate accounting corruption, reachable only through the
/// test-only hooks below. This exists so the campaign's own detectors
/// can be validated end-to-end: a planted bug must be flagged and must
/// minimize to the fault events that expose it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[doc(hidden)]
pub enum Sabotage {
    /// No corruption: report the runtime's metrics untouched.
    #[default]
    None,
    /// Under-report `messages_duplicated` by one (when any duplication
    /// happened), in both the outcome metrics and the trace's `RunEnd`
    /// event — exactly the shape of a real lost-increment accounting
    /// bug. Breaks the conservation identity and the auditor's
    /// recomputed duplicate count at once.
    UnderreportDuplicates,
}

/// An algorithm deployed on an instance, ready to run under any
/// [`VirtualConfig`].
#[derive(Debug, Clone)]
pub struct Subject {
    /// The algorithm under test.
    pub algo: Algo,
    /// How the instance was built (for fixture files).
    pub instance: Instance,
    /// The instance itself.
    pub problem: DistributedCsp,
    /// Initial assignment handed to every run.
    pub init: Assignment,
    /// What the centralized solver proved about `problem`.
    pub truth: GroundTruth,
    /// Whether the deployed configuration is complete: a cutoff under a
    /// generous budget on a solvable instance is then a violation.
    pub complete: bool,
    /// Worker threads for the sharded executor; `0` keeps runs on the
    /// single-threaded virtual executor. Either way the run is a pure
    /// function of the config — the sharded executor is bit-identical to
    /// the virtual one — so the campaign's oracles apply unchanged.
    pub workers: usize,
    sabotage: Sabotage,
}

impl Subject {
    /// Builds a subject on a planted paper 3-coloring instance.
    ///
    /// # Errors
    ///
    /// Propagates instance-construction failures as strings.
    pub fn coloring(algo: Algo, agents: u32, instance_seed: u64) -> Result<Subject, String> {
        let inst = paper_coloring(agents, instance_seed);
        let problem = coloring_to_discsp(&inst).map_err(|e| e.to_string())?;
        Subject::assemble(algo, Instance::Coloring { agents, seed: instance_seed }, problem)
    }

    /// Builds a subject on K₄ with 3 colors (insoluble).
    ///
    /// # Errors
    ///
    /// Propagates instance-construction failures as strings.
    pub fn k4(algo: Algo) -> Result<Subject, String> {
        let mut b = DistributedCsp::builder();
        let vars: Vec<_> = (0..4).map(|_| b.variable(Domain::new(3))).collect();
        for i in 0..4 {
            for j in (i + 1)..4 {
                b.not_equal(vars[i], vars[j]).map_err(|e| e.to_string())?;
            }
        }
        let problem = b.build().map_err(|e| e.to_string())?;
        Subject::assemble(algo, Instance::K4, problem)
    }

    /// Rebuilds a subject from its [`Instance`] tag (fixture replay).
    ///
    /// # Errors
    ///
    /// Propagates instance-construction failures as strings.
    pub fn from_instance(algo: Algo, instance: Instance) -> Result<Subject, String> {
        match instance {
            Instance::Coloring { agents, seed } => Subject::coloring(algo, agents, seed),
            Instance::K4 => Subject::k4(algo),
        }
    }

    fn assemble(algo: Algo, instance: Instance, problem: DistributedCsp) -> Result<Subject, String> {
        let truth = match Backtracker::new(&problem).node_limit(TRUTH_NODE_LIMIT).solve() {
            SolveResult::Solution(_) => GroundTruth::Solvable,
            SolveResult::Unsatisfiable => GroundTruth::Insoluble,
            SolveResult::LimitReached => GroundTruth::Unknown,
        };
        let init = Assignment::total(vec![Value::new(0); problem.num_vars()]);
        let complete = match algo {
            Algo::Awc => AwcConfig::no_learning().is_complete(),
            Algo::AwcRslv => AwcConfig::resolvent().is_complete(),
            Algo::Dba => DbaSolver::new().is_complete(),
        };
        Ok(Subject {
            algo,
            instance,
            problem,
            init,
            truth,
            complete,
            workers: 0,
            sabotage: Sabotage::None,
        })
    }

    /// Moves the subject's runs onto the M:N sharded executor with
    /// `workers` threads; `0` restores the virtual executor.
    pub fn on_sharded(mut self, workers: usize) -> Subject {
        self.workers = workers;
        self
    }

    /// Arms a test-only corruption (see [`Sabotage`]). Campaign code
    /// never calls this; the planted-bug end-to-end test does.
    #[doc(hidden)]
    pub fn with_sabotage(mut self, sabotage: Sabotage) -> Subject {
        self.sabotage = sabotage;
        self
    }

    /// Runs the subject once — on the virtual executor, or on the
    /// sharded executor when [`Subject::on_sharded`] armed a worker
    /// count.
    ///
    /// # Errors
    ///
    /// Propagates solver-construction and runtime failures as strings.
    pub fn run(&self, config: &VirtualConfig) -> Result<VirtualReport, String> {
        let mut report = if self.workers > 0 {
            let sharded = ShardConfig::with_base(config.clone(), self.workers);
            match self.algo {
                Algo::Awc => AwcSolver::new(AwcConfig::no_learning())
                    .solve_sharded(&self.problem, &self.init, &sharded)
                    .map_err(|e| e.to_string())?,
                Algo::AwcRslv => AwcSolver::new(AwcConfig::resolvent())
                    .solve_sharded(&self.problem, &self.init, &sharded)
                    .map_err(|e| e.to_string())?,
                Algo::Dba => DbaSolver::new()
                    .solve_sharded(&self.problem, &self.init, &sharded)
                    .map_err(|e| e.to_string())?,
            }
        } else {
            match self.algo {
                Algo::Awc => AwcSolver::new(AwcConfig::no_learning())
                    .solve_virtual(&self.problem, &self.init, config)
                    .map_err(|e| e.to_string())?,
                Algo::AwcRslv => AwcSolver::new(AwcConfig::resolvent())
                    .solve_virtual(&self.problem, &self.init, config)
                    .map_err(|e| e.to_string())?,
                Algo::Dba => DbaSolver::new()
                    .solve_virtual(&self.problem, &self.init, config)
                    .map_err(|e| e.to_string())?,
            }
        };
        if self.sabotage == Sabotage::UnderreportDuplicates {
            underreport_duplicates(&mut report);
        }
        Ok(report)
    }
}

/// The planted accounting bug: lose one `messages_duplicated` increment
/// in every place the runtime reports metrics, mirroring how a real
/// counter bug would surface (outcome and `RunEnd` agree with each
/// other, both disagree with the events the trace actually contains).
fn underreport_duplicates(report: &mut VirtualReport) {
    if report.outcome.metrics.messages_duplicated == 0 {
        return;
    }
    report.outcome.metrics.messages_duplicated -= 1;
    for event in &mut report.trace {
        if let TraceEvent::RunEnd { metrics, .. } = event {
            metrics.messages_duplicated = report.outcome.metrics.messages_duplicated;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use discsp_core::Termination;
    use discsp_runtime::LinkPolicy;

    #[test]
    fn labels_round_trip() {
        for algo in Algo::all() {
            assert_eq!(Algo::parse(algo.label()), Some(algo));
        }
        assert_eq!(Algo::parse("nope"), None);
    }

    #[test]
    fn coloring_subjects_are_solvable_and_k4_is_not() {
        let s = Subject::coloring(Algo::AwcRslv, 10, 1).unwrap();
        assert_eq!(s.truth, GroundTruth::Solvable);
        assert!(s.complete);
        let k = Subject::k4(Algo::Dba).unwrap();
        assert_eq!(k.truth, GroundTruth::Insoluble);
        assert!(!k.complete);
    }

    #[test]
    fn subjects_run_and_solve_on_perfect_links() {
        for algo in Algo::all() {
            let s = Subject::coloring(algo, 10, 3).unwrap();
            let report = s.run(&VirtualConfig::default()).unwrap();
            assert_eq!(
                report.outcome.metrics.termination,
                Termination::Solved,
                "{algo}"
            );
        }
    }

    #[test]
    fn sabotage_underreports_exactly_one_duplicate() {
        let s = Subject::coloring(Algo::AwcRslv, 10, 3).unwrap();
        let config = VirtualConfig {
            link: LinkPolicy::perfect().with_duplication(400_000).with_delay(0, 2),
            record_trace: true,
            ..VirtualConfig::default()
        };
        let honest = s.run(&config).unwrap();
        assert!(honest.outcome.metrics.messages_duplicated > 0);
        let lying = s
            .clone()
            .with_sabotage(Sabotage::UnderreportDuplicates)
            .run(&config)
            .unwrap();
        assert_eq!(
            lying.outcome.metrics.messages_duplicated + 1,
            honest.outcome.metrics.messages_duplicated
        );
    }
}
