//! `discsp-explore` — run fault-schedule simulation campaigns from the
//! command line.
//!
//! ```text
//! discsp-explore --algo awc-rslv --trials 1000
//! discsp-explore --algo all --trials 200 --seed 1 --out repros/
//! ```
//!
//! Exit status is 0 when every trial passed every oracle, 1 when any
//! violation was found (minimized repro files are then written under
//! `--out`, one per finding), and 2 on usage errors.

use std::fmt::Write as _;
use std::path::PathBuf;
use std::process::ExitCode;

use discsp_explore::{run_campaign, Algo, CampaignConfig, Repro};

struct Args {
    algos: Vec<Algo>,
    trials: u64,
    seed: u64,
    agents: u32,
    out: Option<PathBuf>,
    minimize: bool,
    workers: usize,
}

const USAGE: &str = "usage: discsp-explore --algo <awc|awc-rslv|dba|all> [--trials N] \
                     [--seed S] [--agents N] [--out DIR] [--no-minimize] [--sharded W]";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        algos: Vec::new(),
        trials: 200,
        seed: 1,
        agents: 10,
        out: None,
        minimize: true,
        workers: 0,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |name: &str| it.next().ok_or(format!("{name} needs a value"));
        match flag.as_str() {
            "--algo" => {
                let v = value("--algo")?;
                if v == "all" {
                    args.algos = Algo::all().to_vec();
                } else {
                    args.algos.push(
                        Algo::parse(&v).ok_or(format!("unknown algorithm `{v}`"))?,
                    );
                }
            }
            "--trials" => {
                let v = value("--trials")?;
                args.trials = v.parse().map_err(|_| format!("bad --trials `{v}`"))?;
            }
            "--seed" => {
                let v = value("--seed")?;
                args.seed = v.parse().map_err(|_| format!("bad --seed `{v}`"))?;
            }
            "--agents" => {
                let v = value("--agents")?;
                args.agents = v.parse().map_err(|_| format!("bad --agents `{v}`"))?;
            }
            "--out" => args.out = Some(PathBuf::from(value("--out")?)),
            "--no-minimize" => args.minimize = false,
            "--sharded" => {
                let v = value("--sharded")?;
                args.workers = v.parse().map_err(|_| format!("bad --sharded `{v}`"))?;
            }
            "--help" | "-h" => return Err(USAGE.to_string()),
            other => return Err(format!("unknown flag `{other}`\n{USAGE}")),
        }
    }
    if args.algos.is_empty() {
        return Err(format!("--algo is required\n{USAGE}"));
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    let mut total_findings = 0usize;
    for &algo in &args.algos {
        let config = CampaignConfig {
            trials: args.trials,
            master_seed: args.seed,
            agents: args.agents,
            minimize: args.minimize,
            workers: args.workers,
            ..CampaignConfig::new(algo)
        };
        println!(
            "campaign: algo={algo} trials={} seed={} agents={} executor={}",
            config.trials,
            config.master_seed,
            config.agents,
            if config.workers > 0 {
                format!("sharded({})", config.workers)
            } else {
                "virtual".to_string()
            }
        );
        let report = match run_campaign(&config) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("campaign failed: {e}");
                return ExitCode::from(2);
            }
        };
        if report.clean() {
            println!("  {} trials, all oracles clean", report.trials_run);
            continue;
        }
        for finding in &report.findings {
            total_findings += 1;
            let mut line = format!(
                "  trial {} [{}]: {} fault(s) injected;",
                finding.trial,
                finding.policy,
                finding.fault_log.len()
            );
            for v in &finding.violations {
                let _ = write!(line, " {v};");
            }
            if let Some(m) = &finding.minimized {
                let _ = write!(
                    line,
                    " minimized to {} event(s) in {} replays",
                    m.schedule.len(),
                    m.tests
                );
            }
            println!("{line}");
            if let Some(dir) = &args.out {
                let repro = Repro::from_finding(finding);
                let name = format!(
                    "{}_trial{}_{}.repro",
                    algo.label(),
                    finding.trial,
                    repro.violation
                );
                let path = dir.join(name);
                let body = format!(
                    "# discsp-explore finding: trial {} under the `{}` policy grid entry\n{}",
                    finding.trial,
                    finding.policy,
                    repro.to_text()
                );
                if let Err(e) = std::fs::create_dir_all(dir).and_then(|()| std::fs::write(&path, body))
                {
                    eprintln!("cannot write {}: {e}", path.display());
                    return ExitCode::from(2);
                }
                println!("    wrote {}", path.display());
            }
        }
    }

    if total_findings == 0 {
        ExitCode::SUCCESS
    } else {
        println!("{total_findings} finding(s)");
        ExitCode::from(1)
    }
}
