//! Delta debugging over fault schedules.
//!
//! Zeller & Hildebrandt's `ddmin` specialized to [`FaultSchedule`]s: a
//! failing schedule is repeatedly split into chunks, and chunks (or
//! their complements) that still fail replace the current schedule,
//! until no single event can be removed without losing the failure.
//! The result is 1-minimal — every remaining fault event is necessary.
//!
//! Scripted replays are bit-deterministic, so the predicate is a pure
//! function of the schedule and the classic algorithm applies without
//! retry logic. When the failure is pinned to one event among `k`
//! irrelevant ones, the chunk search degenerates to binary search and
//! converges in `O(log k)` predicate evaluations (asserted by a test).

use discsp_runtime::{FaultEvent, FaultSchedule};

/// The result of a minimization run.
#[derive(Debug, Clone)]
pub struct MinimizeOutcome {
    /// The 1-minimal failing schedule.
    pub schedule: FaultSchedule,
    /// How many predicate evaluations (replays) the search spent.
    pub tests: usize,
}

/// Minimizes `events` while `failing` keeps returning `true`.
///
/// `failing` must hold for the full input; if it does not, the input is
/// returned unchanged with the single disproving test counted. Events
/// are treated as a set — [`FaultSchedule::new`] canonicalizes order —
/// so chunk boundaries never change replay semantics.
pub fn ddmin<F>(events: &[FaultEvent], mut failing: F) -> MinimizeOutcome
where
    F: FnMut(&FaultSchedule) -> bool,
{
    let mut tests = 0usize;
    let mut current: Vec<FaultEvent> = events.to_vec();

    tests += 1;
    if !failing(&FaultSchedule::new(current.clone())) {
        return MinimizeOutcome {
            schedule: FaultSchedule::new(current),
            tests,
        };
    }

    let mut granularity = 2usize;
    while current.len() >= 2 {
        let chunk = current.len().div_ceil(granularity);
        let mut reduced = false;

        // Try each chunk alone: does a small subset already fail?
        let mut start = 0;
        while start < current.len() {
            let end = (start + chunk).min(current.len());
            let subset: Vec<FaultEvent> = current.get(start..end).unwrap_or_default().to_vec();
            tests += 1;
            if failing(&FaultSchedule::new(subset.clone())) {
                current = subset;
                granularity = 2;
                reduced = true;
                break;
            }
            start = end;
        }
        if reduced {
            continue;
        }

        // Try each complement: does removing one chunk keep the failure?
        // At granularity 2 the complements are the subsets just tested.
        if granularity > 2 {
            let mut start = 0;
            while start < current.len() {
                let end = (start + chunk).min(current.len());
                let complement: Vec<FaultEvent> = current
                    .get(..start)
                    .unwrap_or_default()
                    .iter()
                    .chain(current.get(end..).unwrap_or_default().iter())
                    .cloned()
                    .collect();
                tests += 1;
                if failing(&FaultSchedule::new(complement.clone())) {
                    current = complement;
                    granularity = granularity.saturating_sub(1).max(2);
                    reduced = true;
                    break;
                }
                start = end;
            }
        }
        if reduced {
            continue;
        }

        if granularity >= current.len() {
            break;
        }
        granularity = (granularity * 2).min(current.len());
    }

    MinimizeOutcome {
        schedule: FaultSchedule::new(current),
        tests,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use discsp_core::AgentId;
    use discsp_runtime::FaultAction;

    fn event(from: u32, to: u32, call: u64, action: FaultAction) -> FaultEvent {
        FaultEvent {
            from: AgentId::new(from),
            to: AgentId::new(to),
            call,
            action,
        }
    }

    fn noise(n: u64) -> Vec<FaultEvent> {
        (0..n)
            .map(|i| event((i % 5) as u32, ((i + 1) % 5) as u32, i, FaultAction::Delay(1 + i % 3)))
            .collect()
    }

    #[test]
    fn single_culprit_converges_exactly_in_log_bounded_tests() {
        for total in [2u64, 3, 8, 17, 64, 100] {
            let culprit = event(7, 8, 0, FaultAction::Drop);
            let mut events = noise(total - 1);
            events.push(culprit);
            let outcome = ddmin(&events, |s| s.events().contains(&culprit));
            assert_eq!(outcome.schedule.events(), &[culprit], "n={total}");
            // Binary-search regime: one failing + one passing probe per
            // halving, plus the initial confirmation and final level.
            let bound = 2 * (total as usize).next_power_of_two().trailing_zeros() as usize + 4;
            assert!(
                outcome.tests <= bound,
                "n={total}: {} tests > bound {bound}",
                outcome.tests
            );
        }
    }

    #[test]
    fn conjunction_of_two_events_is_one_minimal() {
        let a = event(9, 1, 0, FaultAction::Drop);
        let b = event(1, 9, 2, FaultAction::Delay(4));
        let mut events = noise(20);
        events.push(a);
        events.push(b);
        let outcome = ddmin(&events, |s| {
            s.events().contains(&a) && s.events().contains(&b)
        });
        let mut want = [a, b];
        want.sort();
        assert_eq!(outcome.schedule.events(), &want[..]);
    }

    #[test]
    fn non_failing_input_is_returned_unchanged() {
        let events = noise(6);
        let outcome = ddmin(&events, |_| false);
        assert_eq!(outcome.schedule.len(), 6);
        assert_eq!(outcome.tests, 1);
    }

    #[test]
    fn empty_input_stays_empty() {
        let outcome = ddmin(&[], |_| true);
        assert!(outcome.schedule.is_empty());
    }
}
