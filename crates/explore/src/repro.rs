//! Repro fixture files: a failing (or once-failing) trial serialized
//! as a few integers plus its minimized fault schedule.
//!
//! The format is line-oriented text so fixtures read well in review:
//!
//! ```text
//! # free-form root-cause commentary
//! algo = awc-rslv
//! instance = coloring 10 42
//! run-seed = 7
//! max-ticks = 200000
//! max-nudges = 200
//! violation = conservation
//! 0 -> 1 @3 drop
//! 2 -> 0 @0 dup 0 2
//! ```
//!
//! Header lines are `key = value`; any line containing `->` is a fault
//! event in [`FaultSchedule`]'s own text format. `#` comments and
//! blank lines are ignored. A fixture rebuilds its [`Subject`] from
//! the `algo`/`instance` pair and replays the schedule bit-identically
//! under `run-seed`, so regression tests need nothing but this file.

use discsp_runtime::{FaultSchedule, LinkPolicy, VirtualConfig, VirtualReport};

use crate::campaign::{violations, Finding, Violation};
use crate::subject::{Algo, Instance, Subject};

/// A self-contained, replayable record of one failing trial.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Repro {
    /// The algorithm under test.
    pub algo: Algo,
    /// How to rebuild the instance.
    pub instance: Instance,
    /// Seed of the failing run (fixes same-tick delivery order).
    pub run_seed: u64,
    /// Tick budget of the failing run.
    pub max_ticks: u64,
    /// Nudge budget of the failing run.
    pub max_nudges: u64,
    /// Class label of the violation this schedule exposed (see
    /// [`Violation::class`]).
    pub violation: String,
    /// The (minimized) fault schedule.
    pub schedule: FaultSchedule,
}

impl Repro {
    /// Captures a campaign finding, preferring its minimized schedule.
    pub fn from_finding(finding: &Finding) -> Repro {
        let schedule = match &finding.minimized {
            Some(m) => m.schedule.clone(),
            None => finding.fault_log.clone(),
        };
        let violation = finding
            .violations
            .first()
            .map(|v| v.class().to_string())
            .unwrap_or_default();
        Repro {
            algo: finding.subject.algo,
            instance: finding.subject.instance,
            run_seed: finding.config.seed,
            max_ticks: finding.config.max_ticks,
            max_nudges: finding.config.max_nudges,
            violation,
            schedule,
        }
    }

    /// Renders the fixture body (no leading commentary).
    pub fn to_text(&self) -> String {
        let instance = match self.instance {
            Instance::Coloring { agents, seed } => format!("coloring {agents} {seed}"),
            Instance::K4 => "k4".to_string(),
        };
        let mut out = String::new();
        out.push_str(&format!("algo = {}\n", self.algo));
        out.push_str(&format!("instance = {instance}\n"));
        out.push_str(&format!("run-seed = {}\n", self.run_seed));
        out.push_str(&format!("max-ticks = {}\n", self.max_ticks));
        out.push_str(&format!("max-nudges = {}\n", self.max_nudges));
        out.push_str(&format!("violation = {}\n", self.violation));
        out.push_str(&self.schedule.to_text());
        out
    }

    /// Parses a fixture file.
    ///
    /// # Errors
    ///
    /// Reports the first malformed or missing line as a string.
    pub fn parse(text: &str) -> Result<Repro, String> {
        let mut algo = None;
        let mut instance = None;
        let mut run_seed = None;
        let mut max_ticks = None;
        let mut max_nudges = None;
        let mut violation = None;
        let mut schedule_lines = String::new();

        for (index, raw) in text.lines().enumerate() {
            let line = raw.trim();
            let lineno = index + 1;
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line.contains("->") {
                schedule_lines.push_str(line);
                schedule_lines.push('\n');
                continue;
            }
            let (key, value) = line
                .split_once('=')
                .ok_or_else(|| format!("line {lineno}: expected `key = value` or a fault event"))?;
            let (key, value) = (key.trim(), value.trim());
            match key {
                "algo" => {
                    algo = Some(
                        Algo::parse(value)
                            .ok_or_else(|| format!("line {lineno}: unknown algo `{value}`"))?,
                    );
                }
                "instance" => {
                    instance = Some(parse_instance(value, lineno)?);
                }
                "run-seed" => run_seed = Some(parse_u64(value, lineno)?),
                "max-ticks" => max_ticks = Some(parse_u64(value, lineno)?),
                "max-nudges" => max_nudges = Some(parse_u64(value, lineno)?),
                "violation" => violation = Some(value.to_string()),
                other => return Err(format!("line {lineno}: unknown key `{other}`")),
            }
        }

        let schedule = FaultSchedule::parse(&schedule_lines).map_err(|e| e.to_string())?;
        Ok(Repro {
            algo: algo.ok_or("missing `algo`")?,
            instance: instance.ok_or("missing `instance`")?,
            run_seed: run_seed.ok_or("missing `run-seed`")?,
            max_ticks: max_ticks.ok_or("missing `max-ticks`")?,
            max_nudges: max_nudges.ok_or("missing `max-nudges`")?,
            violation: violation.ok_or("missing `violation`")?,
            schedule,
        })
    }

    /// Rebuilds the subject this fixture ran.
    ///
    /// # Errors
    ///
    /// Propagates instance-construction failures.
    pub fn subject(&self) -> Result<Subject, String> {
        Subject::from_instance(self.algo, self.instance)
    }

    /// The exact scripted config of the recorded run.
    pub fn config(&self) -> VirtualConfig {
        VirtualConfig {
            seed: self.run_seed,
            link: LinkPolicy::perfect(),
            schedule: Some(self.schedule.clone()),
            max_ticks: self.max_ticks,
            max_nudges: self.max_nudges,
            stop_on_first_solution: false,
            record_trace: true,
        }
    }

    /// Replays the fixture once and judges it against every oracle.
    ///
    /// # Errors
    ///
    /// Propagates subject-construction and runtime failures.
    pub fn replay(&self) -> Result<(VirtualReport, Vec<Violation>), String> {
        let subject = self.subject()?;
        let config = self.config();
        let report = subject.run(&config)?;
        let found = violations(&subject, &config, &report);
        Ok((report, found))
    }
}

fn parse_instance(value: &str, lineno: usize) -> Result<Instance, String> {
    let mut parts = value.split_whitespace();
    match parts.next() {
        Some("k4") => Ok(Instance::K4),
        Some("coloring") => {
            let agents = parts
                .next()
                .and_then(|s| s.parse::<u32>().ok())
                .ok_or_else(|| format!("line {lineno}: `instance = coloring <agents> <seed>`"))?;
            let seed = parts
                .next()
                .and_then(|s| s.parse::<u64>().ok())
                .ok_or_else(|| format!("line {lineno}: `instance = coloring <agents> <seed>`"))?;
            Ok(Instance::Coloring { agents, seed })
        }
        _ => Err(format!("line {lineno}: unknown instance `{value}`")),
    }
}

fn parse_u64(value: &str, lineno: usize) -> Result<u64, String> {
    value
        .parse::<u64>()
        .map_err(|_| format!("line {lineno}: `{value}` is not an unsigned integer"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use discsp_core::AgentId;
    use discsp_runtime::{FaultAction, FaultEvent};

    fn sample() -> Repro {
        Repro {
            algo: Algo::AwcRslv,
            instance: Instance::Coloring { agents: 10, seed: 3 },
            run_seed: 7,
            max_ticks: 200_000,
            max_nudges: 200,
            violation: "conservation".to_string(),
            schedule: FaultSchedule::new(vec![
                FaultEvent {
                    from: AgentId::new(0),
                    to: AgentId::new(1),
                    call: 3,
                    action: FaultAction::Drop,
                },
                FaultEvent {
                    from: AgentId::new(2),
                    to: AgentId::new(0),
                    call: 0,
                    action: FaultAction::Duplicate { first: 0, second: 2 },
                },
            ]),
        }
    }

    #[test]
    fn text_round_trips() {
        let repro = sample();
        let parsed = Repro::parse(&repro.to_text()).unwrap();
        assert_eq!(parsed, repro);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = format!("# root cause\n\n{}\n# trailing\n", sample().to_text());
        assert_eq!(Repro::parse(&text).unwrap(), sample());
    }

    #[test]
    fn k4_instances_round_trip() {
        let mut repro = sample();
        repro.instance = Instance::K4;
        repro.algo = Algo::Dba;
        assert_eq!(Repro::parse(&repro.to_text()).unwrap(), repro);
    }

    #[test]
    fn parse_errors_name_the_line() {
        let err = Repro::parse("algo = awc\nwhatever\n").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        let err = Repro::parse("algo = zzz\n").unwrap_err();
        assert!(err.contains("unknown algo"), "{err}");
        let err = Repro::parse("").unwrap_err();
        assert!(err.contains("missing"), "{err}");
    }

    #[test]
    fn replay_is_bit_identical() {
        let repro = sample();
        let (first, v1) = repro.replay().unwrap();
        let (second, v2) = repro.replay().unwrap();
        assert_eq!(first.outcome, second.outcome);
        assert_eq!(first.trace, second.trace);
        assert_eq!(first.fault_log, second.fault_log);
        assert_eq!(v1, v2);
    }
}
