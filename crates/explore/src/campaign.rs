//! Simulation campaigns: sweep fault schedules, judge every run
//! against independent oracles, and minimize what fails.
//!
//! Each trial draws a `(instance, run-seed, link-policy)` triple from a
//! master seed, runs one [`Subject`] on the virtual executor with trace
//! recording on, and checks four invariant families:
//!
//! 1. **Trace audit** — the auditor recomputes every counter from the
//!    event stream; any structured [`AuditFailure`] is a violation,
//!    with the message-conservation identity split out as its own
//!    class (it is the paper-critical one).
//! 2. **Answer oracles** — a claimed solution must satisfy the
//!    instance; `Insoluble` on a provably solvable instance (and
//!    `Solved` on a provably insoluble one) is a wrong answer.
//! 3. **Quiescence oracles** — a complete configuration that gets cut
//!    off on a solvable instance under a generous budget, or any
//!    configuration that exhausts the stall-recovery nudge budget
//!    (repeated quiescent stalls the recovery pass cannot repair —
//!    the deadlock signature, distinct from tick-budget wandering),
//!    is flagged as non-quiescence. Incomplete algorithms on insoluble
//!    instances are exempt: they can never terminate, so burning the
//!    budgets there is the expected outcome.
//! 4. **Replay determinism** — the identical config must reproduce the
//!    identical run, bit for bit.
//!
//! A failing trial's recorded fault log is first re-run as a script
//! (confirming the failure is carried by the schedule), then handed to
//! [`ddmin`] to find a 1-minimal fault set with the same violation
//! class.
//!
//! [`AuditFailure`]: discsp_trace::AuditFailure

use std::fmt;

use discsp_core::Termination;
use discsp_runtime::{derive_seed, FaultSchedule, LinkPolicy, VirtualConfig, VirtualReport};
use discsp_trace::{audit, AuditField};

use crate::minimize::{ddmin, MinimizeOutcome};
use crate::subject::{Algo, GroundTruth, Subject};

/// An invariant violation observed on one trial.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// The run was cut off although the oracles say it must terminate:
    /// either the configuration is complete and the instance solvable,
    /// or the nudge budget was exhausted by unrepairable stalls.
    NonQuiescence {
        /// Final virtual tick.
        ticks: u64,
        /// Recovery nudges consumed.
        nudges: u64,
    },
    /// The run's verdict contradicts the centralized ground truth or
    /// the claimed solution violates a constraint.
    WrongAnswer {
        /// Human-readable description of the contradiction.
        detail: String,
    },
    /// The trace auditor's recomputation disagrees with the runtime's
    /// reported metrics on the listed fields.
    AuditMismatch {
        /// The disagreeing counters.
        fields: Vec<AuditField>,
    },
    /// The message-conservation identity
    /// `total == sent − dropped + duplicated + retransmitted` broke.
    ConservationBroken,
    /// Re-running the identical config produced a different run.
    ReplayDivergence,
    /// The solver or runtime returned an error instead of a report.
    Failure {
        /// The reported error.
        error: String,
    },
}

impl Violation {
    /// A stable class label, used for fixture files and for matching a
    /// minimization replay against the original failure.
    pub fn class(&self) -> &'static str {
        match self {
            Violation::NonQuiescence { .. } => "non-quiescence",
            Violation::WrongAnswer { .. } => "wrong-answer",
            Violation::AuditMismatch { .. } => "audit-mismatch",
            Violation::ConservationBroken => "conservation",
            Violation::ReplayDivergence => "replay-divergence",
            Violation::Failure { .. } => "failure",
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::NonQuiescence { ticks, nudges } => write!(
                f,
                "non-quiescence: cut off at tick {ticks} after {nudges} recovery nudges"
            ),
            Violation::WrongAnswer { detail } => write!(f, "wrong answer: {detail}"),
            Violation::AuditMismatch { fields } => {
                write!(f, "audit mismatch:")?;
                for field in fields {
                    write!(f, " {field}")?;
                }
                Ok(())
            }
            Violation::ConservationBroken => f.write_str("message conservation broken"),
            Violation::ReplayDivergence => f.write_str("replay divergence"),
            Violation::Failure { error } => write!(f, "run failed: {error}"),
        }
    }
}

/// One failing trial, with everything needed to reproduce it.
#[derive(Debug, Clone)]
pub struct Finding {
    /// Trial index within the campaign.
    pub trial: u64,
    /// Grid label of the link policy the trial ran under.
    pub policy: &'static str,
    /// The subject that failed (rebuildable from its `instance` tag).
    pub subject: Subject,
    /// The exact config of the failing run.
    pub config: VirtualConfig,
    /// Every violation the oracles raised.
    pub violations: Vec<Violation>,
    /// Every fault the run injected, as a replayable schedule.
    pub fault_log: FaultSchedule,
    /// 1-minimal schedule still showing `violations[0]`'s class, when
    /// minimization was enabled and the scripted replay reproduced it.
    pub minimized: Option<MinimizeOutcome>,
}

/// Aggregate result of a campaign.
#[derive(Debug, Clone, Default)]
pub struct CampaignReport {
    /// Trials executed.
    pub trials_run: u64,
    /// Failing trials.
    pub findings: Vec<Finding>,
}

impl CampaignReport {
    /// Whether every trial passed every oracle.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }
}

/// Campaign shape: which algorithm, how many trials, and the budgets.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// The algorithm to sweep.
    pub algo: Algo,
    /// Number of `(instance, seed, policy)` trials.
    pub trials: u64,
    /// Master seed; every per-trial seed derives from it.
    pub master_seed: u64,
    /// Agents (= variables) in each coloring instance.
    pub agents: u32,
    /// Tick budget per solvable-instance run.
    pub max_ticks: u64,
    /// Stall-recovery nudge budget per run.
    pub max_nudges: u64,
    /// Whether to delta-debug failing schedules.
    pub minimize: bool,
    /// Worker threads for the M:N sharded executor; `0` keeps trials on
    /// the single-threaded virtual executor. Because the sharded
    /// executor is bit-identical to the virtual one, every oracle —
    /// including replay determinism and scripted minimization —
    /// applies unchanged.
    pub workers: usize,
}

impl CampaignConfig {
    /// The default campaign for `algo`: 200 trials of 10-agent planted
    /// colorings (every 10th trial swaps in the insoluble K₄).
    pub fn new(algo: Algo) -> Self {
        CampaignConfig {
            algo,
            trials: 200,
            master_seed: 1,
            agents: 10,
            max_ticks: 200_000,
            max_nudges: 200,
            minimize: true,
            workers: 0,
        }
    }
}

/// Incomplete algorithms on the insoluble instance never terminate;
/// cap those runs well below the solvable-instance budget (the only
/// oracle there is "never claims `Solved`", which a short run checks).
const INSOLUBLE_TICK_CAP: u64 = 5_000;

/// The deterministic policy grid trials cycle through. Rates are in
/// parts per million; the `hostile` entry stacks every fault type the
/// way the seed repo's soak test does.
pub fn policy_grid() -> Vec<(&'static str, LinkPolicy)> {
    vec![
        ("drop20", LinkPolicy::lossy(200_000)),
        ("delay4", LinkPolicy::delayed(0, 4)),
        ("dup20", LinkPolicy::perfect().with_duplication(200_000)),
        ("reorder3", LinkPolicy::reordering(3)),
        (
            "dup_delay",
            LinkPolicy::perfect().with_duplication(200_000).with_delay(0, 4),
        ),
        (
            "hostile",
            LinkPolicy::lossy(150_000)
                .with_duplication(100_000)
                .with_delay(0, 3)
                .with_reordering(2),
        ),
    ]
}

/// Judges one report against every oracle. `config` must have had
/// `record_trace` set (the campaign always does).
pub fn violations(subject: &Subject, config: &VirtualConfig, report: &VirtualReport) -> Vec<Violation> {
    let mut out = Vec::new();

    match audit(&report.trace) {
        Err(e) => out.push(Violation::Failure {
            error: format!("unauditable trace: {e}"),
        }),
        Ok(a) => {
            if a.failed(AuditField::Conservation) {
                out.push(Violation::ConservationBroken);
            }
            let fields: Vec<AuditField> = a
                .failures
                .iter()
                .map(|f| f.field)
                .filter(|&f| f != AuditField::Conservation)
                .collect();
            if !fields.is_empty() {
                out.push(Violation::AuditMismatch { fields });
            }
        }
    }

    let metrics = &report.outcome.metrics;
    match metrics.termination {
        Termination::Solved => match &report.outcome.solution {
            Some(s) if subject.problem.is_solution(s) => {
                if subject.truth == GroundTruth::Insoluble {
                    out.push(Violation::WrongAnswer {
                        detail: "claimed a solution to a provably insoluble instance".to_string(),
                    });
                }
            }
            Some(_) => out.push(Violation::WrongAnswer {
                detail: "claimed solution violates a constraint".to_string(),
            }),
            None => out.push(Violation::WrongAnswer {
                detail: "terminated Solved without a solution".to_string(),
            }),
        },
        Termination::Insoluble => {
            if subject.truth == GroundTruth::Solvable {
                out.push(Violation::WrongAnswer {
                    detail: "claimed insoluble but the centralized solver found a solution"
                        .to_string(),
                });
            }
        }
        Termination::CutOff => {
            let must_terminate = subject.complete && subject.truth == GroundTruth::Solvable;
            // An incomplete algorithm on an insoluble instance can never
            // terminate, so it quiesces at non-solutions for as long as
            // the budgets allow; exhausting the nudge budget there is
            // the expected outcome, not a deadlock.
            let hopeless = !subject.complete && subject.truth == GroundTruth::Insoluble;
            let deadlocked =
                !hopeless && config.max_nudges > 0 && report.nudges >= config.max_nudges;
            if must_terminate || deadlocked {
                out.push(Violation::NonQuiescence {
                    ticks: report.ticks,
                    nudges: report.nudges,
                });
            }
        }
    }

    out
}

/// Replays `schedule` as a script under `base`'s seed and budgets and
/// reports whether a violation of class `class` shows up. This is the
/// `ddmin` predicate: scripted runs are bit-deterministic, so it is a
/// pure function of the schedule.
pub fn reproduces(
    subject: &Subject,
    base: &VirtualConfig,
    schedule: &FaultSchedule,
    class: &str,
) -> bool {
    let config = VirtualConfig {
        schedule: Some(schedule.clone()),
        link: LinkPolicy::perfect(),
        record_trace: true,
        ..base.clone()
    };
    match subject.run(&config) {
        Ok(report) => violations(subject, &config, &report)
            .iter()
            .any(|v| v.class() == class),
        Err(e) => class == Violation::Failure { error: e }.class(),
    }
}

/// Fault logs longer than this are not minimized: `ddmin` replays the
/// subject once per test, and a multi-thousand-event log (a long run
/// under a dense policy) can need thousands of replays. The full log
/// still ships with the finding, so nothing is lost — only the
/// 1-minimal form.
pub const MINIMIZE_EVENT_CAP: usize = 2_000;

/// Minimizes a failing trial's fault log: confirm the scripted replay
/// of the full log still shows `class`, then `ddmin` it down. Returns
/// `None` when the failure is not carried by the schedule (e.g. replay
/// divergence, or a lottery/scripted discrepancy — itself a bug the
/// un-minimized finding documents), or when the log exceeds
/// [`MINIMIZE_EVENT_CAP`].
pub fn minimize_finding(
    subject: &Subject,
    base: &VirtualConfig,
    fault_log: &FaultSchedule,
    class: &str,
) -> Option<MinimizeOutcome> {
    if fault_log.len() > MINIMIZE_EVENT_CAP {
        return None;
    }
    if !reproduces(subject, base, fault_log, class) {
        return None;
    }
    Some(ddmin(fault_log.events(), |s| {
        reproduces(subject, base, s, class)
    }))
}

/// Runs one trial and returns its finding, if it failed.
fn run_trial(config: &CampaignConfig, trial: u64) -> Result<Option<Finding>, String> {
    let grid = policy_grid();
    let instance_seed = derive_seed(config.master_seed, 0, trial);
    let run_seed = derive_seed(config.master_seed, 1, trial);
    let index = (trial as usize) % grid.len();
    let (policy_name, link) = grid[index];

    let subject = if trial % 10 == 9 {
        Subject::k4(config.algo)?
    } else {
        Subject::coloring(config.algo, config.agents, instance_seed)?
    }
    .on_sharded(config.workers);
    let max_ticks = if subject.truth == GroundTruth::Insoluble && !subject.complete {
        config.max_ticks.min(INSOLUBLE_TICK_CAP)
    } else {
        config.max_ticks
    };
    let vconfig = VirtualConfig {
        seed: run_seed,
        link,
        schedule: None,
        max_ticks,
        max_nudges: config.max_nudges,
        stop_on_first_solution: false,
        record_trace: true,
    };

    let report = match subject.run(&vconfig) {
        Ok(r) => r,
        Err(error) => {
            return Ok(Some(Finding {
                trial,
                policy: policy_name,
                subject,
                config: vconfig,
                violations: vec![Violation::Failure { error }],
                fault_log: FaultSchedule::default(),
                minimized: None,
            }))
        }
    };

    let mut found = violations(&subject, &vconfig, &report);

    // Determinism oracle: the identical config must replay bit for bit.
    match subject.run(&vconfig) {
        Ok(second) => {
            let same = second.outcome == report.outcome
                && second.ticks == report.ticks
                && second.activations == report.activations
                && second.nudges == report.nudges
                && second.trace == report.trace
                && second.fault_log == report.fault_log;
            if !same {
                found.push(Violation::ReplayDivergence);
            }
        }
        Err(error) => found.push(Violation::Failure { error }),
    }

    let Some(first) = found.first() else {
        return Ok(None);
    };
    let minimized = if config.minimize {
        minimize_finding(&subject, &vconfig, &report.fault_log, first.class())
    } else {
        None
    };
    Ok(Some(Finding {
        trial,
        policy: policy_name,
        subject,
        config: vconfig,
        violations: found,
        fault_log: report.fault_log,
        minimized,
    }))
}

/// Sweeps `config.trials` fault schedules and collects every failure.
///
/// # Errors
///
/// Fails only on instance-construction errors; solver and runtime
/// failures become [`Violation::Failure`] findings instead.
pub fn run_campaign(config: &CampaignConfig) -> Result<CampaignReport, String> {
    let mut report = CampaignReport::default();
    for trial in 0..config.trials {
        if let Some(finding) = run_trial(config, trial)? {
            report.findings.push(finding);
        }
        report.trials_run += 1;
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::subject::Sabotage;
    use discsp_runtime::FaultAction;

    #[test]
    fn clean_run_raises_no_violations() {
        let subject = Subject::coloring(Algo::AwcRslv, 10, 5).unwrap();
        let config = VirtualConfig {
            record_trace: true,
            ..VirtualConfig::default()
        };
        let report = subject.run(&config).unwrap();
        assert_eq!(violations(&subject, &config, &report), vec![]);
    }

    #[test]
    fn insoluble_claim_on_solvable_instance_is_flagged() {
        // Judge a K4 run against a solvable subject's oracles: the
        // Insoluble termination must be flagged as a wrong answer.
        let k4 = Subject::k4(Algo::AwcRslv).unwrap();
        let config = VirtualConfig {
            record_trace: true,
            ..VirtualConfig::default()
        };
        let report = k4.run(&config).unwrap();
        assert_eq!(
            report.outcome.metrics.termination,
            discsp_core::Termination::Insoluble
        );
        let solvable = Subject::coloring(Algo::AwcRslv, 10, 5).unwrap();
        let found = violations(&solvable, &config, &report);
        assert!(found.iter().any(|v| v.class() == "wrong-answer"), "{found:?}");
    }

    #[test]
    fn sabotaged_accounting_breaks_conservation_and_audit() {
        let subject = Subject::coloring(Algo::AwcRslv, 10, 3)
            .unwrap()
            .with_sabotage(Sabotage::UnderreportDuplicates);
        let config = VirtualConfig {
            link: LinkPolicy::perfect().with_duplication(400_000).with_delay(0, 2),
            record_trace: true,
            ..VirtualConfig::default()
        };
        let report = subject.run(&config).unwrap();
        let found = violations(&subject, &config, &report);
        assert!(found.contains(&Violation::ConservationBroken), "{found:?}");
        assert!(
            found.iter().any(|v| matches!(
                v,
                Violation::AuditMismatch { fields } if fields.contains(&AuditField::MessagesDuplicated)
            )),
            "{found:?}"
        );
    }

    #[test]
    fn scripted_replay_reproduces_a_lottery_violation() {
        let subject = Subject::coloring(Algo::AwcRslv, 10, 3)
            .unwrap()
            .with_sabotage(Sabotage::UnderreportDuplicates);
        let config = VirtualConfig {
            link: LinkPolicy::perfect().with_duplication(400_000).with_delay(0, 2),
            record_trace: true,
            ..VirtualConfig::default()
        };
        let report = subject.run(&config).unwrap();
        assert!(!report.fault_log.is_empty());
        assert!(reproduces(&subject, &config, &report.fault_log, "conservation"));
        // An all-delays schedule (no duplicates) cannot trip the
        // duplicate-undercount bug.
        let delays_only = FaultSchedule::new(
            report
                .fault_log
                .events()
                .iter()
                .filter(|e| !matches!(e.action, FaultAction::Duplicate { .. }))
                .cloned()
                .collect(),
        );
        assert!(!reproduces(&subject, &config, &delays_only, "conservation"));
    }

    #[test]
    fn incomplete_algo_on_insoluble_instance_may_exhaust_nudges() {
        // AWC without learning can never terminate on K4, so burning the
        // whole nudge budget under a lossy policy is the expected
        // outcome, not a deadlock — the quiescence oracle must not fire.
        let subject = Subject::k4(Algo::Awc).unwrap();
        let config = VirtualConfig {
            seed: 11,
            link: LinkPolicy::lossy(150_000)
                .with_duplication(100_000)
                .with_delay(0, 3)
                .with_reordering(2),
            max_ticks: INSOLUBLE_TICK_CAP,
            max_nudges: 50,
            stop_on_first_solution: false,
            record_trace: true,
            schedule: None,
        };
        let report = subject.run(&config).unwrap();
        assert_eq!(
            report.outcome.metrics.termination,
            discsp_core::Termination::CutOff
        );
        assert!(report.nudges >= 50, "the run must actually burn the budget");
        assert_eq!(violations(&subject, &config, &report), vec![]);
    }

    #[test]
    fn oversized_fault_logs_are_not_minimized() {
        // Build a syntactically valid but oversized schedule; the guard
        // must bail before attempting thousands of replays.
        let subject = Subject::coloring(Algo::AwcRslv, 10, 3).unwrap();
        let config = VirtualConfig {
            record_trace: true,
            ..VirtualConfig::default()
        };
        let events: Vec<_> = (0..=MINIMIZE_EVENT_CAP as u64)
            .map(|i| discsp_runtime::FaultEvent {
                from: discsp_core::AgentId::new((i % 10) as u32),
                to: discsp_core::AgentId::new(((i + 1) % 10) as u32),
                call: i,
                action: FaultAction::Delay(1),
            })
            .collect();
        let log = FaultSchedule::new(events);
        assert!(log.len() > MINIMIZE_EVENT_CAP);
        assert!(minimize_finding(&subject, &config, &log, "conservation").is_none());
    }

    #[test]
    fn sharded_campaign_is_clean_and_replays_like_the_virtual_one() {
        // The campaign smoke for the M:N executor: the same trials must
        // pass every oracle (including the bit-replay determinism check,
        // which now replays *sharded* runs) and raise exactly the same
        // findings as the virtual executor — none.
        let base = CampaignConfig {
            trials: 20,
            minimize: false,
            ..CampaignConfig::new(Algo::AwcRslv)
        };
        let virtual_report = run_campaign(&base).unwrap();
        assert!(virtual_report.clean(), "{:?}", virtual_report.findings);
        let sharded = CampaignConfig {
            workers: 4,
            ..base
        };
        let sharded_report = run_campaign(&sharded).unwrap();
        assert!(sharded_report.clean(), "{:?}", sharded_report.findings);
        assert_eq!(sharded_report.trials_run, virtual_report.trials_run);
    }

    #[test]
    fn grid_labels_are_unique() {
        let grid = policy_grid();
        let mut labels: Vec<_> = grid.iter().map(|(l, _)| *l).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), grid.len());
    }
}
