//! Multi-variable agents (§5 future work): "The authors have proposed a
//! few extended versions of the AWC to handle a problem with
//! multi-variables per agent. Perhaps, it is easy to introduce our
//! learning method into these algorithms."
//!
//! This module realizes the reduction the paper invokes ("all
//! distributed CSPs can be converted into this class in principle") in
//! the efficient direction: each physical agent hosts one *virtual* AWC
//! agent per owned variable. Messages between co-located virtual agents
//! are exchanged inside the physical agent's turn — several local rounds
//! per cycle at **zero communication cost** — while messages to
//! variables owned elsewhere travel the network as usual. The virtual
//! agents are ordinary [`AwcAgent`]s, so every learning strategy
//! (resolvent, mcs, size-bounded, none) carries over unchanged.

use std::collections::BTreeMap;
use std::fmt;

use discsp_core::{AgentId, Assignment, DistributedCsp, VarValue};
use discsp_runtime::{
    AgentStats, Classify, DistributedAgent, Envelope, MessageClass, Outbox, SyncRun, SyncSimulator,
};
use serde::{Deserialize, Serialize};

use crate::agent::{AwcAgent, AwcConfig};
use crate::msg::AwcMessage;
use crate::solver::AwcError;

/// The wire format between physical agents: a virtual-agent envelope.
///
/// Virtual agent ids coincide with variable ids (`AgentId(i) ↔
/// VariableId(i)`), so the inner envelope fully identifies the
/// conversation; the outer envelope routes to the owning physical agent.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MultiAwcMessage(pub Envelope<AwcMessage>);

impl Classify for MultiAwcMessage {
    fn class(&self) -> MessageClass {
        self.0.payload.class()
    }
}

impl fmt::Display for MultiAwcMessage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}]", self.0)
    }
}

/// A physical agent hosting the virtual AWC agents of its variables.
#[derive(Debug)]
pub struct MultiAwcAgent {
    id: AgentId,
    inner: Vec<AwcAgent>,
    /// Virtual agent id → index into `inner`.
    local_index: BTreeMap<AgentId, usize>,
    /// Physical owner of every variable in the problem (dense by
    /// variable index).
    owner_of: Vec<AgentId>,
    /// Local message rounds per cycle.
    local_rounds: usize,
    /// Local messages deferred past the round budget.
    carryover: Vec<Envelope<AwcMessage>>,
}

impl MultiAwcAgent {
    /// Creates a physical agent hosting `inner` virtual agents.
    ///
    /// `owner_of[i]` must name the physical owner of variable `i` for
    /// the entire problem. `local_rounds` bounds how many intra-agent
    /// message rounds run inside one cycle (the excess is deferred to
    /// the next cycle, preserving fairness with remote traffic).
    pub fn new(
        id: AgentId,
        inner: Vec<AwcAgent>,
        owner_of: Vec<AgentId>,
        local_rounds: usize,
    ) -> Self {
        let local_index = inner
            .iter()
            .enumerate()
            .map(|(i, agent)| (agent.id(), i))
            .collect();
        MultiAwcAgent {
            id,
            inner,
            local_index,
            owner_of,
            local_rounds: local_rounds.max(1),
            carryover: Vec::new(),
        }
    }

    /// Number of hosted virtual agents (owned variables).
    pub fn num_variables(&self) -> usize {
        self.inner.len()
    }

    /// Routes one virtual envelope: local targets queue for the next
    /// local round, remote targets are wrapped onto the wire.
    fn route(
        &self,
        env: Envelope<AwcMessage>,
        local_queue: &mut Vec<Envelope<AwcMessage>>,
        out: &mut Outbox<MultiAwcMessage>,
    ) {
        if self.local_index.contains_key(&env.to) {
            local_queue.push(env);
        } else {
            // Virtual ids coincide with variable indices.
            let owner = self.owner_of[env.to.index()];
            out.send(owner, MultiAwcMessage(env));
        }
    }

    /// Runs up to `local_rounds` rounds of intra-agent message exchange
    /// starting from `queue`, deferring any remainder.
    fn run_local_rounds(
        &mut self,
        mut queue: Vec<Envelope<AwcMessage>>,
        out: &mut Outbox<MultiAwcMessage>,
    ) {
        for _ in 0..self.local_rounds {
            if queue.is_empty() {
                break;
            }
            // Partition this round's messages by hosted target.
            let mut per_inner: Vec<Vec<Envelope<AwcMessage>>> = vec![Vec::new(); self.inner.len()];
            for env in queue.drain(..) {
                let idx = self.local_index[&env.to];
                per_inner[idx].push(env);
            }
            let mut next_queue = Vec::new();
            for (idx, batch) in per_inner.into_iter().enumerate() {
                if batch.is_empty() {
                    continue;
                }
                let mut virtual_out = Outbox::new(self.inner[idx].id());
                self.inner[idx].on_batch(batch, &mut virtual_out);
                for env in virtual_out.drain() {
                    self.route(env, &mut next_queue, out);
                }
            }
            queue = next_queue;
        }
        self.carryover = queue;
    }
}

impl DistributedAgent for MultiAwcAgent {
    type Message = MultiAwcMessage;

    fn id(&self) -> AgentId {
        self.id
    }

    fn on_start(&mut self, out: &mut Outbox<MultiAwcMessage>) {
        let mut local_queue = Vec::new();
        for idx in 0..self.inner.len() {
            let mut virtual_out = Outbox::new(self.inner[idx].id());
            self.inner[idx].on_start(&mut virtual_out);
            for env in virtual_out.drain() {
                self.route(env, &mut local_queue, out);
            }
        }
        self.run_local_rounds(local_queue, out);
    }

    fn on_batch(
        &mut self,
        inbox: Vec<Envelope<MultiAwcMessage>>,
        out: &mut Outbox<MultiAwcMessage>,
    ) {
        let mut queue = std::mem::take(&mut self.carryover);
        queue.extend(inbox.into_iter().map(|env| env.payload.0));
        self.run_local_rounds(queue, out);
    }

    fn assignments(&self) -> Vec<VarValue> {
        self.inner.iter().flat_map(|a| a.assignments()).collect()
    }

    fn take_checks(&mut self) -> u64 {
        self.inner.iter_mut().map(|a| a.take_checks()).sum()
    }

    fn stats(&self) -> AgentStats {
        let mut stats = AgentStats::default();
        for agent in &self.inner {
            stats.absorb(agent.stats());
        }
        stats
    }

    fn detected_insoluble(&self) -> bool {
        self.inner.iter().any(|a| a.detected_insoluble())
    }
}

/// Builds and runs multi-variable AWC populations on the synchronous
/// simulator.
///
/// # Examples
///
/// ```
/// use discsp_awc::{AwcConfig, MultiAwcSolver};
/// use discsp_core::{AgentId, Assignment, DistributedCsp, Domain, Value};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // One agent owns both variables of a ≠ constraint.
/// let mut b = DistributedCsp::builder();
/// let agent = AgentId::new(0);
/// let x = b.variable_owned_by(Domain::new(2), agent);
/// let y = b.variable_owned_by(Domain::new(2), agent);
/// b.not_equal(x, y)?;
/// let problem = b.build()?;
///
/// let init = Assignment::total([Value::new(0), Value::new(0)]);
/// let run = MultiAwcSolver::new(AwcConfig::resolvent()).solve_sync(&problem, &init)?;
/// assert!(run.outcome.metrics.termination.is_solved());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MultiAwcSolver {
    config: AwcConfig,
    cycle_limit: u64,
    record_history: bool,
    local_rounds: usize,
}

impl MultiAwcSolver {
    /// Creates a solver with the given virtual-agent configuration.
    pub fn new(config: AwcConfig) -> Self {
        MultiAwcSolver {
            config,
            cycle_limit: discsp_core::PAPER_CYCLE_LIMIT,
            record_history: false,
            local_rounds: 3,
        }
    }

    /// Overrides the cycle limit.
    pub fn cycle_limit(mut self, limit: u64) -> Self {
        self.cycle_limit = limit;
        self
    }

    /// Enables per-cycle history recording.
    pub fn record_history(mut self, on: bool) -> Self {
        self.record_history = on;
        self
    }

    /// Sets the number of free intra-agent message rounds per cycle
    /// (default 3; at least 1).
    pub fn local_rounds(mut self, rounds: usize) -> Self {
        self.local_rounds = rounds;
        self
    }

    /// Builds one physical agent per problem agent.
    ///
    /// # Errors
    ///
    /// Fails when an initial value is missing or out of domain. Any
    /// variable-to-agent distribution is accepted (including empty
    /// agents).
    pub fn build_agents(
        &self,
        problem: &DistributedCsp,
        init: &Assignment,
    ) -> Result<Vec<MultiAwcAgent>, AwcError> {
        let owner_of: Vec<AgentId> = problem.vars().map(|v| problem.owner(v)).collect();
        let mut agents = Vec::with_capacity(problem.num_agents());
        for a in 0..problem.num_agents() {
            let physical = AgentId::new(a as u32);
            let mut inner = Vec::new();
            for var in problem.vars_of_agent(physical) {
                let domain = problem.domain(var);
                let value = init
                    .get(var)
                    .filter(|&v| domain.contains(v))
                    .ok_or(AwcError::BadInitialValue { var })?;
                // Virtual agent id = variable id, globally.
                let virtual_id = AgentId::new(var.raw());
                let neighbors = problem
                    .neighbors(var)
                    .iter()
                    .map(|&v| (v, AgentId::new(v.raw())))
                    .collect();
                let nogoods = problem.nogoods_of(var).cloned().collect();
                inner.push(AwcAgent::new(
                    virtual_id,
                    var,
                    domain,
                    value,
                    nogoods,
                    neighbors,
                    self.config,
                ));
            }
            agents.push(MultiAwcAgent::new(
                physical,
                inner,
                owner_of.clone(),
                self.local_rounds,
            ));
        }
        Ok(agents)
    }

    /// Runs on the synchronous cycle simulator.
    ///
    /// Message counts in the returned metrics cover **remote** messages
    /// only — intra-agent exchanges are the free local computation this
    /// execution model exists to exploit.
    ///
    /// # Errors
    ///
    /// See [`MultiAwcSolver::build_agents`].
    pub fn solve_sync(
        &self,
        problem: &DistributedCsp,
        init: &Assignment,
    ) -> Result<SyncRun, AwcError> {
        let agents = self.build_agents(problem, init)?;
        let mut sim = SyncSimulator::new(agents);
        sim.cycle_limit(self.cycle_limit)
            .record_history(self.record_history);
        sim.run(problem).map_err(AwcError::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use discsp_core::{Domain, Termination, Value};

    /// A 9-node 3-coloring ring distributed over `agents` physical
    /// agents in contiguous blocks (so co-located variables share ring
    /// edges).
    fn ring_problem(agents: u32) -> DistributedCsp {
        let mut b = DistributedCsp::builder();
        let vars: Vec<_> = (0..9u32)
            .map(|i| {
                let owner = (i * agents / 9).min(agents - 1);
                b.variable_owned_by(Domain::new(3), AgentId::new(owner))
            })
            .collect();
        for i in 0..9 {
            b.not_equal(vars[i], vars[(i + 1) % 9]).unwrap();
        }
        b.build().unwrap()
    }

    #[test]
    fn multi_agent_partition_solves() {
        for agents in [1u32, 2, 3, 9] {
            let problem = ring_problem(agents);
            let init = Assignment::total(vec![Value::new(0); 9]);
            let run = MultiAwcSolver::new(AwcConfig::resolvent())
                .solve_sync(&problem, &init)
                .unwrap();
            assert_eq!(
                run.outcome.metrics.termination,
                Termination::Solved,
                "{agents} agents"
            );
            assert!(problem.is_solution(run.outcome.solution.as_ref().unwrap()));
        }
    }

    #[test]
    fn colocated_variables_save_messages() {
        let init = Assignment::total(vec![Value::new(0); 9]);
        // Fully distributed: every message is remote.
        let flat = MultiAwcSolver::new(AwcConfig::resolvent())
            .solve_sync(&ring_problem(9), &init)
            .unwrap();
        // Three agents own three consecutive... (round-robin) variables
        // each: a third of the links become intra-agent.
        let grouped = MultiAwcSolver::new(AwcConfig::resolvent())
            .solve_sync(&ring_problem(3), &init)
            .unwrap();
        // Single agent: everything is local, zero remote messages.
        let central = MultiAwcSolver::new(AwcConfig::resolvent())
            .solve_sync(&ring_problem(1), &init)
            .unwrap();
        assert_eq!(central.outcome.metrics.total_messages(), 0);
        assert!(
            grouped.outcome.metrics.total_messages() < flat.outcome.metrics.total_messages(),
            "grouping must reduce remote traffic ({} vs {})",
            grouped.outcome.metrics.total_messages(),
            flat.outcome.metrics.total_messages()
        );
    }

    #[test]
    fn multi_detects_insolubility() {
        // K4 with 3 colors over 2 agents.
        let mut b = DistributedCsp::builder();
        let vars: Vec<_> = (0..4u32)
            .map(|i| b.variable_owned_by(Domain::new(3), AgentId::new(i % 2)))
            .collect();
        for i in 0..4 {
            for j in (i + 1)..4 {
                b.not_equal(vars[i], vars[j]).unwrap();
            }
        }
        let problem = b.build().unwrap();
        let init = Assignment::total(vec![Value::new(0); 4]);
        let run = MultiAwcSolver::new(AwcConfig::resolvent())
            .cycle_limit(5_000)
            .solve_sync(&problem, &init)
            .unwrap();
        assert_eq!(run.outcome.metrics.termination, Termination::Insoluble);
    }

    #[test]
    fn matches_flat_awc_on_one_var_per_agent() {
        // With one variable per agent and one local round, the multi
        // solver degenerates to the flat AWC: same termination, same
        // solution.
        let problem = ring_problem(9);
        let init = Assignment::total(vec![Value::new(0); 9]);
        let multi = MultiAwcSolver::new(AwcConfig::resolvent())
            .local_rounds(1)
            .solve_sync(&problem, &init)
            .unwrap();
        let flat = crate::solver::AwcSolver::new(AwcConfig::resolvent())
            .solve_sync(&problem, &init)
            .unwrap();
        assert_eq!(
            multi.outcome.metrics.termination,
            flat.outcome.metrics.termination
        );
        assert_eq!(multi.outcome.solution, flat.outcome.solution);
        assert_eq!(multi.outcome.metrics.cycles, flat.outcome.metrics.cycles);
    }

    #[test]
    fn message_wrapper_classifies_like_inner() {
        let inner = Envelope::new(AgentId::new(0), AgentId::new(1), AwcMessage::RequestValue);
        let msg = MultiAwcMessage(inner);
        assert_eq!(msg.class(), MessageClass::Other);
        assert!(msg.to_string().contains("request-value"));
    }

    #[test]
    fn bad_initial_value_rejected() {
        let problem = ring_problem(3);
        let err = MultiAwcSolver::new(AwcConfig::resolvent())
            .solve_sync(&problem, &Assignment::empty(9))
            .unwrap_err();
        assert!(matches!(err, AwcError::BadInitialValue { .. }));
    }
}
