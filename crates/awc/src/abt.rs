//! Asynchronous backtracking (ABT) — the AWC's ancestor (Yokoo et al.,
//! ICDCS'92), included as a baseline.
//!
//! ABT fixes the agent ordering up front: agent ids define priority, the
//! smallest id being the highest. Agents announce values to lower-priority
//! linked agents; a deadended agent "uses an agent_view itself as a
//! nogood" (this paper, §1) and sends it to the lowest-priority agent in
//! the nogood. Because the full view is used, ABT's learning is free to
//! compute but weak — the contrast motivating the paper's resolvent
//! method.

use std::collections::BTreeSet;
use std::fmt;

use discsp_core::{
    AgentId, AgentView, Domain, Nogood, NogoodStore, Priority, Rank, Value, VarValue, VariableId,
};
use discsp_runtime::{
    run_sharded, run_virtual, AgentNote, AgentStats, Classify, DistributedAgent, Envelope,
    MessageClass, Outbox, ShardConfig, SyncRun, SyncSimulator, VirtualConfig, VirtualReport,
};
use serde::{Deserialize, Serialize};

use crate::solver::AwcError;

/// Messages exchanged by ABT agents.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum AbtMessage {
    /// `ok?` — announces the sender's current value.
    Ok {
        /// The announced variable.
        var: VariableId,
        /// Its current value.
        value: Value,
    },
    /// `nogood` — the sender's agent view, sent to the lowest-priority
    /// agent appearing in it.
    Nogood {
        /// The nogood (the sender's view at the deadend).
        nogood: Nogood,
        /// Owner of each variable in the nogood.
        owners: Vec<(VariableId, AgentId)>,
    },
    /// Asks the recipient to start announcing its value to the sender
    /// (new link discovered through a received nogood).
    AddLink,
}

impl Classify for AbtMessage {
    fn class(&self) -> MessageClass {
        match self {
            AbtMessage::Ok { .. } => MessageClass::Ok,
            AbtMessage::Nogood { .. } => MessageClass::Nogood,
            AbtMessage::AddLink => MessageClass::Other,
        }
    }
}

impl fmt::Display for AbtMessage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbtMessage::Ok { var, value } => write!(f, "ok?({var}={value})"),
            AbtMessage::Nogood { nogood, .. } => write!(f, "nogood({nogood})"),
            AbtMessage::AddLink => write!(f, "add-link"),
        }
    }
}

/// One ABT agent owning a single variable.
///
/// Priorities are static: variable ids order the agents, the smallest id
/// ranking highest (encoded by [`Priority::ZERO`] everywhere and the
/// id tie-break of [`Rank`]).
#[derive(Debug)]
pub struct AbtAgent {
    id: AgentId,
    var: VariableId,
    domain: Domain,
    value: Value,
    view: AgentView,
    store: NogoodStore,
    /// Lower-priority agents that receive this agent's `ok?` messages.
    lower_links: BTreeSet<AgentId>,
    stats: AgentStats,
    generated_before: BTreeSet<Nogood>,
    /// Trace notes (learned nogoods) accumulated since the last drain.
    notes: Vec<AgentNote>,
    insoluble: bool,
}

impl AbtAgent {
    /// Creates an agent for `var`.
    ///
    /// `neighbors` lists all constraint-graph neighbors with their
    /// owners; only the lower-priority ones (larger variable id) receive
    /// announcements.
    ///
    /// # Panics
    ///
    /// Panics if `initial_value` is outside `domain`.
    pub fn new(
        id: AgentId,
        var: VariableId,
        domain: Domain,
        initial_value: Value,
        nogoods: Vec<Nogood>,
        neighbors: Vec<(VariableId, AgentId)>,
    ) -> Self {
        assert!(
            domain.contains(initial_value),
            "initial value {initial_value} outside domain {domain}"
        );
        let lower_links = neighbors
            .iter()
            .filter(|&&(v, _)| v > var)
            .map(|&(_, agent)| agent)
            .collect();
        AbtAgent {
            id,
            var,
            domain,
            value: initial_value,
            view: AgentView::new(),
            store: NogoodStore::with_nogoods(nogoods),
            lower_links,
            stats: AgentStats::default(),
            generated_before: BTreeSet::new(),
            notes: Vec::new(),
            insoluble: false,
        }
    }

    /// The variable this agent owns.
    pub fn var(&self) -> VariableId {
        self.var
    }

    /// The variable's current value.
    pub fn value(&self) -> Value {
        self.value
    }

    /// The agent's nogood store.
    pub fn store(&self) -> &NogoodStore {
        &self.store
    }

    fn own_rank(&self) -> Rank {
        Rank::new(self.var, Priority::ZERO)
    }

    fn announce(&self, out: &mut Outbox<AbtMessage>) {
        for &peer in &self.lower_links {
            out.send(
                peer,
                AbtMessage::Ok {
                    var: self.var,
                    value: self.value,
                },
            );
        }
    }

    /// Metered: is `value` consistent with every *higher* nogood under
    /// the current view?
    fn is_consistent(&self, value: Value) -> bool {
        let own_rank = self.own_rank();
        let lookup = self.view.lookup_with(self.var, value);
        let mut consistent = true;
        for ng in self.store.iter() {
            if self.view.is_higher_nogood(ng, own_rank) && self.store.eval(ng, &lookup) {
                consistent = false;
                // Keep scanning: ABT implementations typically evaluate
                // the full relevant set; this also keeps check counts
                // comparable across values.
            }
        }
        consistent
    }

    fn check_agent_view(&mut self, out: &mut Outbox<AbtMessage>) {
        if self.insoluble {
            return;
        }
        if self.is_consistent(self.value) {
            return;
        }
        // Chronological search for any consistent value.
        let replacement = self.domain.iter().find(|&d| self.is_consistent(d));
        match replacement {
            Some(d) => {
                self.value = d;
                self.announce(out);
            }
            None => self.backtrack(out),
        }
    }

    fn backtrack(&mut self, out: &mut Outbox<AbtMessage>) {
        // The agent view itself is the nogood.
        let nogood: Nogood = self
            .view
            .iter()
            .map(|(var, e)| VarValue::new(var, e.value))
            .collect();
        self.stats.nogoods_generated += 1;
        self.stats.largest_nogood = self.stats.largest_nogood.max(nogood.len() as u64);
        self.notes.push(AgentNote::NogoodLearned {
            size: nogood.len() as u64,
        });
        if !self.generated_before.insert(nogood.clone()) {
            self.stats.redundant_nogoods += 1;
        }
        if nogood.is_empty() {
            self.insoluble = true;
            return;
        }
        // Send to the lowest-priority agent in the nogood (largest id).
        // The nogood IS the agent view, so every variable resolves; the
        // let-else fallbacks keep this hot path panic-free.
        let Some(lowest_var) = nogood.vars().max() else {
            return; // empty nogood already handled above
        };
        let Some(target) = self.view.entry(lowest_var).map(|e| e.agent) else {
            return;
        };
        let owners: Vec<(VariableId, AgentId)> = nogood
            .vars()
            .filter_map(|v| self.view.entry(v).map(|e| (v, e.agent)))
            .collect();
        out.send(target, AbtMessage::Nogood { nogood, owners });
        // Assume the recipient changes: forget its value and re-check.
        self.view.remove(lowest_var);
        self.check_agent_view(out);
    }
}

impl DistributedAgent for AbtAgent {
    type Message = AbtMessage;

    fn id(&self) -> AgentId {
        self.id
    }

    fn on_start(&mut self, out: &mut Outbox<AbtMessage>) {
        self.announce(out);
        // Repair unary prohibitions immediately; an isolated agent never
        // receives the messages that would otherwise trigger the check.
        self.check_agent_view(out);
    }

    fn on_batch(&mut self, inbox: Vec<Envelope<AbtMessage>>, out: &mut Outbox<AbtMessage>) {
        let mut need_check = false;
        for env in inbox {
            match env.payload {
                AbtMessage::Ok { var, value } => {
                    // ABT's priorities are static: store at ZERO so the
                    // Rank id-order gives smaller ids higher priority.
                    need_check |= self.view.update(var, env.from, value, Priority::ZERO);
                }
                AbtMessage::Nogood { nogood, owners } => {
                    if nogood.is_empty() {
                        self.insoluble = true;
                        continue;
                    }
                    if self.store.insert_learned(nogood.clone()) {
                        for &(var, owner) in &owners {
                            if var != self.var && !self.view.knows(var) {
                                out.send(owner, AbtMessage::AddLink);
                            }
                        }
                    }
                    // The sender dropped this agent's value from its view
                    // when it backtracked; re-announce so it re-learns the
                    // current value even when this agent does not move
                    // (the "obsolete nogood" reply of Yokoo's ABT).
                    out.send(
                        env.from,
                        AbtMessage::Ok {
                            var: self.var,
                            value: self.value,
                        },
                    );
                    need_check = true;
                }
                AbtMessage::AddLink => {
                    self.lower_links.insert(env.from);
                    out.send(
                        env.from,
                        AbtMessage::Ok {
                            var: self.var,
                            value: self.value,
                        },
                    );
                }
            }
        }
        if need_check {
            self.check_agent_view(out);
        }
    }

    fn assignments(&self) -> Vec<VarValue> {
        vec![VarValue::new(self.var, self.value)]
    }

    fn take_checks(&mut self) -> u64 {
        self.store.take_checks()
    }

    fn stats(&self) -> AgentStats {
        self.stats
    }

    fn detected_insoluble(&self) -> bool {
        self.insoluble
    }

    fn drain_notes(&mut self) -> Vec<AgentNote> {
        std::mem::take(&mut self.notes)
    }
}

/// Builds and runs ABT agent populations on the synchronous simulator.
#[derive(Debug, Clone)]
pub struct AbtSolver {
    cycle_limit: u64,
    record_history: bool,
    record_trace: bool,
}

impl AbtSolver {
    /// Creates a solver with the paper's 10 000-cycle limit.
    pub fn new() -> Self {
        AbtSolver {
            cycle_limit: discsp_core::PAPER_CYCLE_LIMIT,
            record_history: false,
            record_trace: false,
        }
    }

    /// Overrides the cycle limit.
    pub fn cycle_limit(mut self, limit: u64) -> Self {
        self.cycle_limit = limit;
        self
    }

    /// Enables per-cycle history recording.
    pub fn record_history(mut self, on: bool) -> Self {
        self.record_history = on;
        self
    }

    /// Enables event-trace recording (see `discsp_runtime::TraceEvent`).
    pub fn record_trace(mut self, on: bool) -> Self {
        self.record_trace = on;
        self
    }

    /// Builds the ABT agent population for `problem` from `init`.
    ///
    /// # Errors
    ///
    /// Fails when an agent owns a number of variables other than one, or
    /// an initial value is missing or out of domain.
    fn build_agents(
        &self,
        problem: &discsp_core::DistributedCsp,
        init: &discsp_core::Assignment,
    ) -> Result<Vec<AbtAgent>, AwcError> {
        let mut agents = Vec::with_capacity(problem.num_agents());
        for a in 0..problem.num_agents() {
            let agent_id = AgentId::new(a as u32);
            let vars = problem.vars_of_agent(agent_id);
            let [var] = vars[..] else {
                return Err(AwcError::WrongVariableCount {
                    agent: agent_id,
                    count: vars.len(),
                });
            };
            let domain = problem.domain(var);
            let value = init
                .get(var)
                .filter(|&v| domain.contains(v))
                .ok_or(AwcError::BadInitialValue { var })?;
            let neighbors = problem
                .neighbors(var)
                .iter()
                .map(|&v| (v, problem.owner(v)))
                .collect();
            let nogoods = problem.nogoods_of(var).cloned().collect();
            agents.push(AbtAgent::new(
                agent_id, var, domain, value, nogoods, neighbors,
            ));
        }
        Ok(agents)
    }

    /// Runs ABT against `problem` from initial values `init` on the
    /// synchronous cycle simulator.
    ///
    /// # Errors
    ///
    /// See [`AbtSolver::build_agents`].
    pub fn solve_sync(
        &self,
        problem: &discsp_core::DistributedCsp,
        init: &discsp_core::Assignment,
    ) -> Result<SyncRun, AwcError> {
        let agents = self.build_agents(problem, init)?;
        let mut sim = SyncSimulator::new(agents);
        sim.cycle_limit(self.cycle_limit)
            .record_history(self.record_history)
            .record_trace(self.record_trace);
        sim.run(problem).map_err(AwcError::from)
    }

    /// Runs ABT on the deterministic discrete-event runtime with link
    /// faults: identical `(seed, LinkPolicy)` pairs replay
    /// bit-identically.
    ///
    /// # Errors
    ///
    /// See [`AbtSolver::build_agents`].
    pub fn solve_virtual(
        &self,
        problem: &discsp_core::DistributedCsp,
        init: &discsp_core::Assignment,
        config: &VirtualConfig,
    ) -> Result<VirtualReport, AwcError> {
        let agents = self.build_agents(problem, init)?;
        run_virtual(agents, problem, config).map_err(AwcError::from)
    }

    /// Runs ABT on the M:N sharded executor. Reports are bit-identical
    /// to [`AbtSolver::solve_virtual`] under `config.base` for any
    /// worker count.
    ///
    /// # Errors
    ///
    /// See [`AbtSolver::build_agents`].
    pub fn solve_sharded(
        &self,
        problem: &discsp_core::DistributedCsp,
        init: &discsp_core::Assignment,
        config: &ShardConfig,
    ) -> Result<VirtualReport, AwcError> {
        let agents = self.build_agents(problem, init)?;
        run_sharded(agents, problem, config).map_err(AwcError::from)
    }
}

impl Default for AbtSolver {
    fn default() -> Self {
        AbtSolver::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use discsp_core::{Assignment, DistributedCsp, Termination};

    fn triangle() -> DistributedCsp {
        let mut b = DistributedCsp::builder();
        let x = b.variable(Domain::new(3));
        let y = b.variable(Domain::new(3));
        let z = b.variable(Domain::new(3));
        b.not_equal(x, y).unwrap();
        b.not_equal(y, z).unwrap();
        b.not_equal(x, z).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn message_classification() {
        assert_eq!(
            AbtMessage::Ok {
                var: VariableId::new(0),
                value: Value::new(0)
            }
            .class(),
            MessageClass::Ok
        );
        assert_eq!(AbtMessage::AddLink.class(), MessageClass::Other);
    }

    #[test]
    fn abt_solves_triangle() {
        let problem = triangle();
        let init = Assignment::total([Value::new(0); 3]);
        let run = AbtSolver::new().solve_sync(&problem, &init).unwrap();
        assert_eq!(run.outcome.metrics.termination, Termination::Solved);
        assert!(problem.is_solution(run.outcome.solution.as_ref().unwrap()));
    }

    #[test]
    fn abt_detects_k4_insoluble() {
        let mut b = DistributedCsp::builder();
        let vars: Vec<_> = (0..4).map(|_| b.variable(Domain::new(3))).collect();
        for i in 0..4 {
            for j in (i + 1)..4 {
                b.not_equal(vars[i], vars[j]).unwrap();
            }
        }
        let problem = b.build().unwrap();
        let init = Assignment::total([Value::new(0); 4]);
        let run = AbtSolver::new()
            .cycle_limit(5_000)
            .solve_sync(&problem, &init)
            .unwrap();
        assert_eq!(run.outcome.metrics.termination, Termination::Insoluble);
    }

    #[test]
    fn lower_links_only_include_larger_ids() {
        let agent = AbtAgent::new(
            AgentId::new(1),
            VariableId::new(1),
            Domain::new(3),
            Value::new(0),
            vec![],
            vec![
                (VariableId::new(0), AgentId::new(0)),
                (VariableId::new(2), AgentId::new(2)),
            ],
        );
        let mut out = Outbox::new(agent.id());
        agent.announce(&mut out);
        let msgs = out.drain();
        assert_eq!(msgs.len(), 1);
        assert_eq!(msgs[0].to, AgentId::new(2));
    }

    #[test]
    fn display_forms() {
        let m = AbtMessage::Ok {
            var: VariableId::new(1),
            value: Value::new(2),
        };
        assert_eq!(m.to_string(), "ok?(x1=2)");
        assert_eq!(AbtMessage::AddLink.to_string(), "add-link");
    }
}
