//! Front-end: run the AWC against a [`DistributedCsp`] on either runtime.

use std::error::Error;
use std::fmt;

use discsp_core::{AgentId, Assignment, DistributedCsp, VariableId};
use discsp_runtime::{
    run_async, run_sharded, run_virtual, AsyncConfig, AsyncReport, ShardConfig, SyncRun,
    SyncSimulator, VirtualConfig, VirtualReport,
};

use crate::agent::{AwcAgent, AwcConfig};

/// Errors raised when a problem does not fit the AWC's one-variable-per-
/// agent execution model, or initial values are unusable.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum AwcError {
    /// An agent owns a number of variables other than one. The paper's
    /// AWC targets exactly one variable per agent (§2.2); see the
    /// multi-variable extensions in Yokoo & Hirayama (ICMAS'98) for the
    /// general case.
    WrongVariableCount {
        /// The offending agent.
        agent: AgentId,
        /// How many variables it owns.
        count: usize,
    },
    /// A variable has no initial value, or the value is outside its
    /// domain.
    BadInitialValue {
        /// The offending variable.
        var: VariableId,
    },
    /// The underlying runtime failed (misrouted message, dead agent
    /// thread).
    Runtime(discsp_runtime::RuntimeError),
}

impl fmt::Display for AwcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AwcError::WrongVariableCount { agent, count } => write!(
                f,
                "agent {agent} owns {count} variables; the AWC runs one variable per agent"
            ),
            AwcError::BadInitialValue { var } => {
                write!(f, "variable {var} has no usable initial value")
            }
            AwcError::Runtime(e) => write!(f, "runtime failure: {e}"),
        }
    }
}

impl Error for AwcError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            AwcError::Runtime(e) => Some(e),
            _ => None,
        }
    }
}

impl From<discsp_runtime::RuntimeError> for AwcError {
    fn from(e: discsp_runtime::RuntimeError) -> Self {
        AwcError::Runtime(e)
    }
}

/// Builds and runs AWC agent populations.
///
/// # Examples
///
/// Solve a 3-colorable triangle:
///
/// ```
/// use discsp_awc::{AwcConfig, AwcSolver};
/// use discsp_core::{Assignment, DistributedCsp, Domain, Value};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut b = DistributedCsp::builder();
/// let x = b.variable(Domain::new(3));
/// let y = b.variable(Domain::new(3));
/// let z = b.variable(Domain::new(3));
/// b.not_equal(x, y)?;
/// b.not_equal(y, z)?;
/// b.not_equal(x, z)?;
/// let problem = b.build()?;
///
/// let init = Assignment::total([Value::new(0); 3]);
/// let solver = AwcSolver::new(AwcConfig::resolvent());
/// let run = solver.solve_sync(&problem, &init)?;
/// assert!(run.outcome.metrics.termination.is_solved());
/// assert!(problem.is_solution(run.outcome.solution.as_ref().unwrap()));
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct AwcSolver {
    config: AwcConfig,
    cycle_limit: u64,
    record_history: bool,
    record_trace: bool,
    message_delay: Option<(u64, u64)>,
}

impl AwcSolver {
    /// Creates a solver with the given agent configuration and the
    /// paper's 10 000-cycle limit.
    pub fn new(config: AwcConfig) -> Self {
        AwcSolver {
            config,
            cycle_limit: discsp_core::PAPER_CYCLE_LIMIT,
            record_history: false,
            record_trace: false,
            message_delay: None,
        }
    }

    /// Adds a random per-message delivery delay of up to `max_extra`
    /// additional cycles on synchronous runs (the paper's §5 "other
    /// types of distributed systems"), drawn deterministically from
    /// `seed`.
    pub fn message_delay(mut self, max_extra: u64, seed: u64) -> Self {
        self.message_delay = Some((max_extra, seed));
        self
    }

    /// Overrides the synchronous cycle limit.
    pub fn cycle_limit(mut self, limit: u64) -> Self {
        self.cycle_limit = limit;
        self
    }

    /// Enables per-cycle history recording on synchronous runs.
    pub fn record_history(mut self, on: bool) -> Self {
        self.record_history = on;
        self
    }

    /// Enables event-trace recording on synchronous runs (see
    /// `discsp_runtime::TraceEvent`).
    pub fn record_trace(mut self, on: bool) -> Self {
        self.record_trace = on;
        self
    }

    /// The agent configuration this solver deploys.
    pub fn config(&self) -> AwcConfig {
        self.config
    }

    /// Whether the deployed configuration retains AWC's completeness
    /// guarantee (see [`AwcConfig::is_complete`]). Complete
    /// configurations must terminate on every finite instance, so a
    /// cutoff under a generous budget is a bug, not bad luck.
    pub fn is_complete(&self) -> bool {
        self.config.is_complete()
    }

    /// Builds one agent per problem agent, seeded with `init`.
    ///
    /// # Errors
    ///
    /// Fails when an agent owns a number of variables other than one, or
    /// an initial value is missing or out of domain.
    pub fn build_agents(
        &self,
        problem: &DistributedCsp,
        init: &Assignment,
    ) -> Result<Vec<AwcAgent>, AwcError> {
        let mut agents = Vec::with_capacity(problem.num_agents());
        for a in 0..problem.num_agents() {
            let agent_id = AgentId::new(a as u32);
            let vars = problem.vars_of_agent(agent_id);
            let &[var] = &vars[..] else {
                return Err(AwcError::WrongVariableCount {
                    agent: agent_id,
                    count: vars.len(),
                });
            };
            let domain = problem.domain(var);
            let value = init
                .get(var)
                .filter(|&v| domain.contains(v))
                .ok_or(AwcError::BadInitialValue { var })?;
            let neighbors = problem
                .neighbors(var)
                .iter()
                .map(|&v| (v, problem.owner(v)))
                .collect();
            let nogoods = problem.nogoods_of(var).cloned().collect();
            agents.push(AwcAgent::new(
                agent_id,
                var,
                domain,
                value,
                nogoods,
                neighbors,
                self.config,
            ));
        }
        Ok(agents)
    }

    /// Runs on the synchronous cycle simulator (the paper's measurement
    /// setting).
    ///
    /// # Errors
    ///
    /// See [`AwcSolver::build_agents`].
    pub fn solve_sync(
        &self,
        problem: &DistributedCsp,
        init: &Assignment,
    ) -> Result<SyncRun, AwcError> {
        let agents = self.build_agents(problem, init)?;
        let mut sim = SyncSimulator::new(agents);
        sim.cycle_limit(self.cycle_limit)
            .record_history(self.record_history)
            .record_trace(self.record_trace);
        if let Some((max_extra, seed)) = self.message_delay {
            sim.message_delay(max_extra, seed);
        }
        sim.run(problem).map_err(AwcError::from)
    }

    /// Runs on the asynchronous threads-and-channels runtime.
    ///
    /// # Errors
    ///
    /// See [`AwcSolver::build_agents`].
    pub fn solve_async(
        &self,
        problem: &DistributedCsp,
        init: &Assignment,
        config: &AsyncConfig,
    ) -> Result<AsyncReport, AwcError> {
        let agents = self.build_agents(problem, init)?;
        run_async(agents, problem, config).map_err(AwcError::from)
    }

    /// Runs on the deterministic discrete-event runtime with link faults:
    /// identical `(seed, LinkPolicy)` pairs replay bit-identically, so any
    /// fault-induced failure is reproducible from the config alone.
    ///
    /// # Errors
    ///
    /// See [`AwcSolver::build_agents`].
    pub fn solve_virtual(
        &self,
        problem: &DistributedCsp,
        init: &Assignment,
        config: &VirtualConfig,
    ) -> Result<VirtualReport, AwcError> {
        let agents = self.build_agents(problem, init)?;
        run_virtual(agents, problem, config).map_err(AwcError::from)
    }

    /// Runs on the M:N sharded executor: the deterministic virtual-time
    /// semantics of [`AwcSolver::solve_virtual`], with agent activations
    /// fanned out to `config.workers` threads. Reports are bit-identical
    /// to `solve_virtual` under `config.base` for any worker count.
    ///
    /// # Errors
    ///
    /// See [`AwcSolver::build_agents`].
    pub fn solve_sharded(
        &self,
        problem: &DistributedCsp,
        init: &Assignment,
        config: &ShardConfig,
    ) -> Result<VirtualReport, AwcError> {
        let agents = self.build_agents(problem, init)?;
        run_sharded(agents, problem, config).map_err(AwcError::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use discsp_core::{Domain, Termination, Value};

    fn triangle() -> DistributedCsp {
        let mut b = DistributedCsp::builder();
        let x = b.variable(Domain::new(3));
        let y = b.variable(Domain::new(3));
        let z = b.variable(Domain::new(3));
        b.not_equal(x, y).unwrap();
        b.not_equal(y, z).unwrap();
        b.not_equal(x, z).unwrap();
        b.build().unwrap()
    }

    fn k4_three_colors() -> DistributedCsp {
        let mut b = DistributedCsp::builder();
        let vars: Vec<_> = (0..4).map(|_| b.variable(Domain::new(3))).collect();
        for i in 0..4 {
            for j in (i + 1)..4 {
                b.not_equal(vars[i], vars[j]).unwrap();
            }
        }
        b.build().unwrap()
    }

    #[test]
    fn solves_triangle_from_worst_init() {
        let problem = triangle();
        let init = Assignment::total([Value::new(0); 3]);
        for config in [
            AwcConfig::resolvent(),
            AwcConfig::mcs(),
            AwcConfig::no_learning(),
            AwcConfig::kth_resolvent(3),
        ] {
            let run = AwcSolver::new(config).solve_sync(&problem, &init).unwrap();
            assert_eq!(
                run.outcome.metrics.termination,
                Termination::Solved,
                "config {config:?} failed"
            );
            assert!(problem.is_solution(run.outcome.solution.as_ref().unwrap()));
        }
    }

    #[test]
    fn detects_k4_insoluble_with_full_recording() {
        // K4 is not 3-colorable. With unrestricted resolvent recording
        // the AWC is complete and must derive the empty nogood.
        let problem = k4_three_colors();
        let init = Assignment::total([Value::new(0); 4]);
        let run = AwcSolver::new(AwcConfig::resolvent())
            .cycle_limit(5_000)
            .solve_sync(&problem, &init)
            .unwrap();
        assert_eq!(run.outcome.metrics.termination, Termination::Insoluble);
    }

    #[test]
    fn rejects_multi_variable_agents() {
        let mut b = DistributedCsp::builder();
        let agent = AgentId::new(0);
        let x = b.variable_owned_by(Domain::new(2), agent);
        let y = b.variable_owned_by(Domain::new(2), agent);
        b.not_equal(x, y).unwrap();
        let problem = b.build().unwrap();
        let init = Assignment::total([Value::new(0); 2]);
        let err = AwcSolver::new(AwcConfig::resolvent())
            .solve_sync(&problem, &init)
            .unwrap_err();
        assert!(matches!(err, AwcError::WrongVariableCount { count: 2, .. }));
    }

    #[test]
    fn rejects_missing_initial_value() {
        let problem = triangle();
        let init = Assignment::empty(3);
        let err = AwcSolver::new(AwcConfig::resolvent())
            .solve_sync(&problem, &init)
            .unwrap_err();
        assert!(matches!(err, AwcError::BadInitialValue { .. }));
    }

    #[test]
    fn solves_triangle_asynchronously() {
        let problem = triangle();
        let init = Assignment::total([Value::new(0); 3]);
        let report = AwcSolver::new(AwcConfig::resolvent())
            .solve_async(&problem, &init, &AsyncConfig::default())
            .unwrap();
        assert_eq!(report.outcome.metrics.termination, Termination::Solved);
        assert!(problem.is_solution(report.outcome.solution.as_ref().unwrap()));
    }

    #[test]
    fn error_messages() {
        let e = AwcError::WrongVariableCount {
            agent: AgentId::new(1),
            count: 0,
        };
        assert!(e.to_string().contains("owns 0 variables"));
        let e = AwcError::BadInitialValue {
            var: VariableId::new(2),
        };
        assert!(e.to_string().contains("x2"));
    }
}
